//! # rtopex — reproduction of RT-OPEX (CoNEXT 2016)
//!
//! A from-scratch Rust implementation of *RT-OPEX: Flexible Scheduling for
//! Cloud-RAN Processing* (Garikipati, Fawaz, Shin), including every
//! substrate the paper depends on:
//!
//! * [`phy`] — a real LTE-style uplink PHY (turbo codec, FFT, equalizer…);
//! * [`model`] — the Eq. (1) processing-time model, platform jitter,
//!   iteration statistics, OLS fitting;
//! * [`transport`] — fronthaul/cloud latency models and IQ packetization;
//! * [`workload`] — synthetic tower load traces and scenario presets;
//! * [`core`] — the contribution: deadline budgets, partitioned/global
//!   schedulers, and RT-OPEX's migration Algorithm 1;
//! * [`sim`] — a discrete-event simulator of the compute node;
//! * [`runtime`] — a real pinned-thread node running the real PHY.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results. The
//! `rtopex-experiments` binary regenerates every table and figure.
//!
//! ```
//! use rtopex::sim::{run, SchedulerKind, SimConfig};
//! use rtopex::workload::Scenario;
//!
//! let mut cfg = SimConfig::from_scenario(&Scenario::smoke_test(), 500);
//! cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
//! let report = run(&cfg);
//! assert!(report.miss_rate() < 0.05);
//! ```

pub use rtopex_core as core;
pub use rtopex_model as model;
pub use rtopex_phy as phy;
pub use rtopex_runtime as runtime;
pub use rtopex_sim as sim;
pub use rtopex_transport as transport;
pub use rtopex_workload as workload;
