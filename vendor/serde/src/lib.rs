//! Offline stand-in for `serde`. The workspace uses serde exclusively in
//! `#[derive(Serialize, Deserialize)]` position as forward-looking metadata;
//! no serializer is ever invoked. The derives expand to nothing, so the
//! derived types simply carry no serde impls until a real backend lands.

pub use serde_derive::{Deserialize, Serialize};
