//! Offline stand-in for the `rand` crate, implementing exactly the subset
//! of the 0.8 API this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen`, `gen_range`, `gen_bool`.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so the real crates.io `rand` cannot be fetched. The
//! stand-in keeps the same call-site syntax; streams are deterministic per
//! seed (xoshiro256++ seeded via SplitMix64) but differ from upstream
//! `StdRng` (ChaCha12), so seed-sensitive test expectations were re-checked
//! against this generator.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is offered).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can produce a uniform sample. A single generic impl pair
/// (as upstream) so integer-literal inference unifies the range's item
/// type with the call-site's expected type.
pub trait SampleRange<T> {
    /// Draws one value from `rng` inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

float_range_impls!(f32 => unit_f32, f64 => unit_f64);

/// Types producible by `Rng::gen` (the `Standard` distribution upstream).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (full integer range, `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample inside `range` (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i: i64 = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
