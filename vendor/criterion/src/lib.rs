//! Offline stand-in for the `criterion` crate: same macro/builder surface,
//! but a small wall-clock runner instead of the full statistical engine.
//!
//! Each benchmark warms up briefly, then runs timed batches until the
//! group's `measurement_time` budget is spent, and prints mean time per
//! iteration (plus throughput when configured). Good enough to compare
//! before/after numbers in this repository; not a substitute for upstream
//! criterion's outlier analysis.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends (only wall time exists here).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Units for reporting throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id in `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    meas_time: Duration,
    /// Mean nanoseconds per iteration, set by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, up to ~10% of the budget.
        let warm_budget = self.meas_time.mul_f64(0.1).max(Duration::from_millis(5));
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= warm_budget {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch size targeting ~10ms per batch so Instant overhead vanishes.
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        let mut total_iters = 0u64;
        while start.elapsed() < self.meas_time {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
        self.iters = total_iters;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    meas_time: Duration,
    throughput: Option<Throughput>,
    _marker: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the time budget for each benchmark in the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.meas_time = t;
        self
    }

    /// Accepted for API compatibility; the runner sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.full.clone();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            meas_time: self.meas_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let mut line = format!("{full:<60} time: {:>12}", fmt_time(b.mean_ns));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / (b.mean_ns / 1e9);
            line.push_str(&format!("   thrpt: {rate:.3e} {unit}"));
        }
        println!("{line}");
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Picks up a substring filter from the command line (`cargo bench -- foo`).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            meas_time: Duration::from_secs(1),
            throughput: None,
            _marker: PhantomData,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, &mut f);
        g.finish();
        self
    }

    /// Upstream prints a summary here; the stand-in has nothing buffered.
    pub fn final_summary(&self) {}
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_times_a_cheap_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.measurement_time(Duration::from_millis(30));
        let mut ran = false;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 600).full, "fft/600");
        assert_eq!(BenchmarkId::from_parameter(42).full, "42");
    }
}
