//! Offline stand-in for `parking_lot`, built on `std::sync` with the
//! parking_lot API shape: `lock()` returns the guard directly (poisoning is
//! swallowed — a poisoned mutex just hands back the inner guard), and
//! `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// Mutual exclusion without poisoning semantics.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Blocks until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard; the `Option` exists so [`Condvar::wait`] can temporarily
/// hand the std guard to the std condvar.
pub struct MutexGuard<'a, T> {
    guard: Option<StdGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Condition variable with parking_lot's `&mut guard` wait signature.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// A fresh condvar.
    pub fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases the lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    /// Atomically releases the lock and waits for a notification or for
    /// `timeout` to elapse; returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        res.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock without poisoning semantics, parking_lot-shaped:
/// `read()`/`write()` return the guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Blocks until a shared read guard is held.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the exclusive write guard is held.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let timed_out = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(timed_out);
        drop(g); // guard restored and usable after the timed wait
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(l.into_inner(), 9);
    }
}
