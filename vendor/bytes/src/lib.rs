//! Offline stand-in for the `bytes` crate: `Bytes` (cheaply clonable,
//! sliceable, consumable-from-the-front) and `BytesMut` (growable builder),
//! with the big-endian `Buf`/`BufMut` accessors the transport layer uses.

use std::ops::RangeBounds;
use std::sync::Arc;

/// Read-side cursor operations (big-endian).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes([self.get_u8(), self.get_u8()])
    }

    /// Consumes a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes([self.get_u8(), self.get_u8(), self.get_u8(), self.get_u8()])
    }

    /// Consumes a big-endian i16.
    fn get_i16(&mut self) -> i16 {
        i16::from_be_bytes([self.get_u8(), self.get_u8()])
    }
}

/// Write-side append operations (big-endian).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        for b in v.to_be_bytes() {
            self.put_u8(b);
        }
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        for b in v.to_be_bytes() {
            self.put_u8(b);
        }
    }

    /// Appends a big-endian i16.
    fn put_i16(&mut self, v: i16) {
        for b in v.to_be_bytes() {
            self.put_u8(b);
        }
    }
}

/// Immutable, cheaply clonable byte buffer with a consuming cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Bytes not yet consumed.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of the unconsumed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-range of the unconsumed bytes, sharing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.start < self.end, "advance past end of Bytes");
        let b = self.data[self.start];
        self.start += 1;
        b
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

/// Growable byte builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0xBEEF);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_i16(-1234);
        assert_eq!(b.len(), 9);
        let mut r = b.freeze();
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i16(), -1234);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let mut b = BytesMut::new();
        for i in 0..10u8 {
            b.put_u8(i);
        }
        let frozen = b.freeze();
        let cut = frozen.slice(2..5);
        assert_eq!(cut.as_slice(), &[2, 3, 4]);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }
}
