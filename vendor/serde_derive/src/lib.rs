//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The workspace only uses serde in `#[derive(...)]` position — nothing is
//! ever actually serialized — so the derives expand to nothing. If a future
//! PR introduces real serialization it must vendor a real implementation.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
