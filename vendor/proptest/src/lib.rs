//! Offline stand-in for the `proptest` crate, covering the subset this
//! workspace uses: the `proptest!` macro with `x in strategy` bindings,
//! `ProptestConfig::with_cases`, `prop_assert!`/`prop_assert_eq!`,
//! integer/float range strategies, `prop::sample::select`,
//! `proptest::collection::vec`, and `any::<prop::sample::Index>()`.
//!
//! No shrinking is performed: a failing case panics immediately with the
//! case number. Value generation is deterministic per test name, so
//! failures are reproducible run-to-run.

/// Test-runner plumbing: deterministic RNG plus the failure type that
/// `prop_assert!` returns.
pub mod test_runner {
    /// Number of cases and (unused upstream knobs elided) for one property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many random cases to execute.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic value source handed to strategies.
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Seeds the runner from the test name so each property gets a
        /// stable, independent stream.
        pub fn new(_config: &Config, name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { state: h | 1 }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A recipe for producing random values of `Value`.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (runner.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (runner.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * runner.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * runner.unit_f64() as $t
                }
            }
        )*};
    }
    float_strategies!(f32, f64);

    /// Strategy wrapper produced by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRunner;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }
}

/// `prop::sample` equivalents: `select` and `Index`.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T>(Vec<T>);

    /// Uniform choice among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            let i = (runner.next_u64() as usize) % self.0.len();
            self.0[i].clone()
        }
    }

    /// A position into a collection of as-yet-unknown length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Projects the abstract index onto a collection of `len` items.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 as usize) % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            Index(runner.next_u64())
        }
    }
}

/// `proptest::collection` equivalents.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (runner.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            let span = self.end() - self.start() + 1;
            self.start() + (runner.next_u64() as usize) % span
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.pick(runner);
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Mirror of the upstream `prop` module path (`prop::sample::select` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface used at every call site.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::new_value(&($strat), &mut runner);)+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_hold(x in 1usize..10, f in -1.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(0u8..2, 1..32),
                          pick in prop::sample::select(vec![2usize, 4, 6]),
                          idx in any::<prop::sample::Index>()) {
            prop_assert!(!v.is_empty() && v.len() < 32);
            prop_assert!(v.iter().all(|&b| b < 2));
            prop_assert!(pick == 2 || pick == 4 || pick == 6);
            let i = idx.index(v.len());
            prop_assert!(i < v.len());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
