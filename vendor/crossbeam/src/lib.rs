//! Offline stand-in for `crossbeam`, providing the MPMC-ish channel subset
//! the runtime uses (`unbounded`, `Sender`, `Receiver`) on top of
//! `std::sync::mpsc`. Only multi-producer/single-consumer is exercised in
//! this repository, which `mpsc` covers directly.

/// Channel types mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when the channel is closed and drained.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueues `value`; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `Err` covers both empty and closed.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_and_close_semantics() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }
}
