//! Offline stand-in for `libc`, declaring only the glibc symbols and types
//! the runtime's affinity module uses: `sysconf`, `sched_setaffinity`,
//! `sched_setscheduler`, and the `cpu_set_t` helpers. Layouts and constants
//! match x86-64/aarch64 Linux glibc.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type pid_t = i32;
pub type size_t = usize;

/// `sysconf` name for the number of online processors (Linux).
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

/// Real-time FIFO scheduling policy (Linux).
pub const SCHED_FIFO: c_int = 1;

/// CPU affinity mask — 1024 bits, matching glibc's `cpu_set_t`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Scheduling parameters for `sched_setscheduler`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sched_param {
    pub sched_priority: c_int,
}

extern "C" {
    pub fn sysconf(name: c_int) -> c_long;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sched_setscheduler(pid: pid_t, policy: c_int, param: *const sched_param) -> c_int;
}

/// Clears every CPU in the set (glibc macro equivalent).
#[allow(non_snake_case)]
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// Adds `cpu` to the set; out-of-range indices are ignored, as glibc does.
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1 << (cpu % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysconf_reports_cpus() {
        let n = unsafe { sysconf(_SC_NPROCESSORS_ONLN) };
        assert!(n >= 1, "sysconf returned {n}");
    }

    #[test]
    fn cpu_set_bit_arithmetic() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_ZERO(&mut set);
        CPU_SET(3, &mut set);
        CPU_SET(130, &mut set);
        assert_eq!(set.bits[0], 1 << 3);
        assert_eq!(set.bits[2], 1 << 2);
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }
}
