//! The sharded multi-cell runtime: one `CranCluster` drives N cells
//! (RAPs) on one host — the consolidation regime of Figs. 17/18.
//!
//! Four scheduler modes share the same transport cadence, calibration and
//! PHY so their deadline behaviour is directly comparable:
//!
//! * **Partitioned** (§3.1.1) — each cell owns `⌈T_max⌉ = 2` cores; a
//!   subframe runs serially on its assigned core; no cross-core help.
//! * **Global** (§3.1.2) — one shared FIFO queue, any core takes the next
//!   subframe whole.
//! * **RT-OPEX (mutex)** — the PR-2 era migration path: Algorithm 1 plans
//!   at the *owner*, ships subtasks as boxed closures through per-core
//!   `Mutex<VecDeque>+Condvar` inboxes, and recovers stragglers. Kept as
//!   the baseline the lock-free path is measured against.
//! * **RT-OPEX (steal)** — the lock-free path: the owner publishes
//!   subtask *tickets* into its bounded Chase–Lev deque
//!   ([`rtopex_core::steal`]) and drains it LIFO; parked cores steal FIFO
//!   from the top and run the δ admission check (*steal-time*, not
//!   plan-time) before executing into the owner's preallocated slot
//!   arena. Nothing migrates unless a thief actually had the idle cycles
//!   to take it — Algorithm 1's "migrate to idle cores" without the
//!   sender ever guessing wrong about who is idle.
//!
//! ## Allocation discipline
//!
//! Every per-subframe buffer lives in a per-worker [`JobSlab`] or a
//! per-core [`CoreArena`] warmed before the run starts: the steady-state
//! steal-mode loop performs **zero heap allocations** (enforced by
//! `tests/alloc_regression.rs`). The mutex baseline still boxes one
//! closure per migrated subtask — that allocation is the mailbox's cost
//! and part of what the comparison measures.
//!
//! ## Memory-safety protocol for the slot arena
//!
//! A stage publication bumps the arena epoch under the `RwLock` write
//! guard; a thief holds the read guard for its whole execution and
//! re-validates the ticket's epoch first. A straggler from a recovered
//! stage therefore either (a) still holds the read guard — the owner's
//! next publication blocks until it finishes — or (b) acquires it after
//! the bump, sees a stale epoch, and drops the ticket without writing.
//! Slot payloads are only read by the owner after the slot's ready flag
//! turns `DONE` (release/acquire paired), so a half-written slot is never
//! absorbed.

use crate::affinity::{pin_current_thread, NumaTopology};
use crate::migrate::{Envelope, ResultFlag};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_core::metrics::{DeadlineMetrics, MigrationStats};
use rtopex_core::migration::plan_migration;
use rtopex_core::partitioned::PartitionedSchedule;
use rtopex_core::slots::{SlotBoard, SlotState};
use rtopex_core::steal::{self, decode_ticket, encode_ticket, AdmissionPolicy, DeltaGuard, Steal};
use rtopex_core::time::Nanos;
use rtopex_model::stats::Samples;
use rtopex_phy::channel::{AwgnChannel, ChannelModel};
use rtopex_phy::params::Bandwidth;
use rtopex_phy::tasks::TaskKind;
use rtopex_phy::uplink::{
    BlockBuf, DecodeBatchScratch, JobSlab, UplinkConfig, UplinkRx, UplinkTx, MAX_DECODE_BATCH,
};
use rtopex_phy::Cf32;
use rtopex_transport::{FronthaulRx, MulticellIngest, Recv, RxStats, SubframeBuf, TestbedLink};
use rtopex_workload::{load_to_mcs, LoadTrace, TraceParams};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// How subframes are scheduled across the cluster's cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerMode {
    /// §3.1.1 — static core ownership, serial subframes, no migration.
    Partitioned,
    /// §3.1.2 — one shared FIFO queue of whole subframes.
    Global,
    /// RT-OPEX over the mutex mailbox (Algorithm 1, sender-initiated).
    RtOpexMutex,
    /// RT-OPEX over the Chase–Lev deque (steal-time admission,
    /// receiver-initiated).
    RtOpexSteal,
}

impl SchedulerMode {
    /// Every mode, in sweep order.
    pub const ALL: [SchedulerMode; 4] = [
        SchedulerMode::Partitioned,
        SchedulerMode::Global,
        SchedulerMode::RtOpexMutex,
        SchedulerMode::RtOpexSteal,
    ];

    /// Stable identifier for reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::Partitioned => "partitioned",
            SchedulerMode::Global => "global",
            SchedulerMode::RtOpexMutex => "rtopex_mutex",
            SchedulerMode::RtOpexSteal => "rtopex_steal",
        }
    }

    /// Whether the mode migrates subtasks across cores.
    pub fn migrates(self) -> bool {
        matches!(
            self,
            SchedulerMode::RtOpexMutex | SchedulerMode::RtOpexSteal
        )
    }
}

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Channel bandwidth of every cell.
    pub bandwidth: Bandwidth,
    /// Receive antennas per cell.
    pub num_antennas: usize,
    /// Consolidated cells (RAPs); each owns 2 cores (`⌈T_max⌉ = 2`).
    pub num_cells: usize,
    /// Subframes per cell.
    pub subframes: usize,
    /// Subframe period (LTE: 1 ms; dilatable — see `node` module docs).
    pub period: Duration,
    /// Emulated one-way transport latency.
    pub rtt_half: Duration,
    /// Scheduler under test.
    pub mode: SchedulerMode,
    /// Channel SNR for the pre-encoded subframes.
    pub snr_db: f64,
    /// Distinct MCS values to pre-encode; trace loads snap to the nearest.
    pub mcs_pool: Vec<u8>,
    /// Per-subtask migration cost estimate δ, µs.
    pub delta_us: f64,
    /// RNG seed (traces, payloads, channel noise).
    pub seed: u64,
    /// Whether workers drain locally-run decode subtasks through the
    /// batched same-`K` turbo kernel
    /// ([`rtopex_phy::uplink::run_staged_decode_batch`]) instead of one
    /// [`rtopex_phy::uplink::SlabJob::run_decode_subtask_local`] call per
    /// block. Bit-identical results either way; this only moves time.
    pub batch_decode: bool,
}

impl ClusterConfig {
    /// A demo cluster: 3 cells at 1.4 MHz / 2 antennas on the true 1 ms
    /// LTE cadence, RT-OPEX(steal).
    pub fn demo() -> Self {
        ClusterConfig {
            bandwidth: Bandwidth::Mhz1_4,
            num_antennas: 2,
            num_cells: 3,
            subframes: 200,
            period: Duration::from_micros(1_000),
            rtt_half: Duration::from_micros(1_000),
            mode: SchedulerMode::RtOpexSteal,
            snr_db: 30.0,
            mcs_pool: vec![5, 10, 16, 22, 27],
            delta_us: 60.0,
            seed: 0xC0DE,
            batch_decode: true,
        }
    }

    /// Processing budget per subframe: `2·period − rtt_half` (Eq. 3).
    pub fn budget(&self) -> Duration {
        2 * self.period - self.rtt_half
    }

    /// Total processing cores (2 per cell).
    pub fn total_cores(&self) -> usize {
        self.num_cells * 2
    }
}

/// Results of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The mode that ran.
    pub mode: SchedulerMode,
    /// Cells driven.
    pub cells: usize,
    /// Per-cell deadline outcomes.
    pub deadline: DeadlineMetrics,
    /// Migration accounting (zero for Partitioned/Global).
    pub migration: MigrationStats,
    /// Wall-clock processing times of completed subframes, µs.
    pub proc_us: Samples,
    /// Subframes dropped by the slack check.
    pub dropped: u64,
    /// Completed subframes whose transport-block CRC failed (NACKs).
    pub crc_failures: u64,
    /// Whether CPU pinning succeeded on this machine.
    pub pinned: bool,
    /// Subtasks actually executed by a thief (steal mode).
    pub steals: u64,
    /// Steals the δ admission guard declined at the thief.
    pub declined_steals: u64,
    /// Steals executed across a NUMA-domain boundary (last-resort help,
    /// admitted under the stiffened cross-domain δ).
    pub cross_numa_steals: u64,
    /// Wall clock from the first release to run end.
    pub elapsed: Duration,
}

impl ClusterReport {
    /// Aggregate deadline-miss rate across cells.
    pub fn miss_rate(&self) -> f64 {
        self.deadline.overall().rate()
    }

    /// Completed subframes per wall-clock second.
    pub fn subframes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.proc_us.len() as f64 / secs
        }
    }
}

/// A pre-encoded, channel-impaired subframe ready for decoding.
pub(crate) struct Prepared {
    pub(crate) mcs: u8,
    pub(crate) rx: UplinkRx,
    pub(crate) samples: Vec<Vec<Cf32>>,
}

/// Calibrated per-MCS execution estimates (µs), indexed like `mcs_pool`.
#[derive(Clone, Debug, Default)]
struct Calib {
    fft_batch_us: f64,
    demod_us: Vec<f64>,
    decode_block_us: Vec<f64>,
    decode_total_us: Vec<f64>,
}

/// One subframe release. `Copy` so the release queues never allocate.
/// Jobs are pre-staged into the inboxes with an embargo timestamp:
/// workers take a job only once `release` has passed, which keeps the
/// cadence exact without a per-release delivery-thread wakeup (whose OS
/// scheduling jitter on a busy host would eat into every budget).
#[derive(Clone, Copy, Debug)]
struct OwnJob {
    cell: usize,
    pool_idx: usize,
    /// Fed-mode delivery slot holding this subframe's samples; unused
    /// (always 0) in the emulated `run()` path, where samples come from
    /// the pre-encoded pool.
    slot: usize,
    release: Instant,
    deadline: Instant,
}

struct InboxState<'a> {
    own: VecDeque<OwnJob>,
    migrated: VecDeque<Envelope<'a>>,
    shutdown: bool,
}

struct Inbox<'a> {
    state: Mutex<InboxState<'a>>,
    cv: Condvar,
}

impl<'a> Inbox<'a> {
    fn with_capacity(cap: usize) -> Self {
        Inbox {
            state: Mutex::new(InboxState {
                own: VecDeque::with_capacity(cap),
                migrated: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }
}

/// The stage a core has published for helpers. The epoch and the ready
/// flags live in the [`SlotBoard`] (rtopex-core's model-checked
/// publication protocol); this is just its descriptor payload.
struct StageDesc {
    kind: TaskKind,
    pool_idx: usize,
    tp_us: f64,
    deadline: Instant,
    /// Snapshot of the coded-LLR stream for decode stages.
    llrs: Vec<f32>,
}

/// Per-core preallocated migration arena: the publication board (stage
/// descriptor + epoch + ready flags) plus reusable result slots for both
/// subtask kinds. Replaces the per-subframe `Arc<Vec<Mutex<Option<…>>>>`
/// churn the node used to pay.
pub(crate) struct CoreArena {
    board: SlotBoard<StageDesc>,
    /// One flattened 14-row buffer per FFT batch (antenna).
    fft_slots: Vec<Mutex<Vec<Cf32>>>,
    /// One block buffer per decode subtask.
    dec_slots: Vec<Mutex<BlockBuf>>,
}

impl CoreArena {
    fn new(pool: &[Prepared], cfg: &ClusterConfig) -> Self {
        let nsc = cfg.bandwidth.num_subcarriers();
        let max_blocks = pool
            .iter()
            .map(|p| p.rx.config().segmentation().num_blocks)
            .max()
            .unwrap_or(1);
        let max_llrs = pool
            .iter()
            .map(|p| p.rx.config().coded_bits())
            .max()
            .unwrap_or(0);
        let fft_slots = (0..cfg.num_antennas)
            .map(|_| Mutex::new(Vec::with_capacity(14 * nsc)))
            .collect();
        let dec_slots = (0..max_blocks)
            .map(|_| {
                let mut b = BlockBuf::new();
                for p in pool {
                    b.warm(p.rx.config());
                }
                Mutex::new(b)
            })
            .collect();
        CoreArena {
            board: SlotBoard::new(
                cfg.num_antennas.max(max_blocks),
                StageDesc {
                    kind: TaskKind::Demod,
                    pool_idx: 0,
                    tp_us: 0.0,
                    deadline: Instant::now(),
                    llrs: Vec::with_capacity(max_llrs),
                },
            ),
            fft_slots,
            dec_slots,
        }
    }
}

/// Publishes a stage on the arena's board: bumps the epoch (blocking out
/// stragglers of the previous stage), records the descriptor, resets the
/// ready flags. Returns the new epoch.
fn publish_stage(
    arena: &CoreArena,
    kind: TaskKind,
    pool_idx: usize,
    count: usize,
    tp_us: f64,
    deadline: Instant,
    llrs: Option<&[f32]>,
) -> u64 {
    arena.board.publish(count, |d| {
        d.kind = kind;
        d.pool_idx = pool_idx;
        d.tp_us = tp_us;
        d.deadline = deadline;
        if let Some(l) = llrs {
            d.llrs.clear();
            d.llrs.extend_from_slice(l);
        }
    })
}

/// Per-worker accumulators, merged once at worker exit so the hot loop
/// never touches a shared metrics lock.
struct WorkerTotals {
    deadline: DeadlineMetrics,
    migration: MigrationStats,
    proc_us: Samples,
    dropped: u64,
    crc_failures: u64,
    steals: u64,
    declined: u64,
    cross_numa_steals: u64,
}

impl WorkerTotals {
    fn new(cells: usize) -> Self {
        WorkerTotals {
            deadline: DeadlineMetrics::new(cells),
            migration: MigrationStats::default(),
            proc_us: Samples::new(),
            dropped: 0,
            crc_failures: 0,
            steals: 0,
            declined: 0,
            cross_numa_steals: 0,
        }
    }

    fn merge(&mut self, other: &WorkerTotals) {
        self.deadline.merge(&other.deadline);
        self.migration.merge(&other.migration);
        self.proc_us.merge(&other.proc_us);
        self.dropped += other.dropped;
        self.crc_failures += other.crc_failures;
        self.steals += other.steals;
        self.declined += other.declined;
        self.cross_numa_steals += other.cross_numa_steals;
    }
}

/// Delivery slots per fed-mode cell. Sized so one cell can have a
/// subframe in flight on each of its two cores plus a small landing
/// margin for jitter before the shed path (miss + drop) kicks in.
const FED_SLOTS: usize = 4;

/// One fed-mode cell's landing area: preallocated sample buffers the
/// delivery thread swaps network subframes into, and a free list the
/// owning worker returns slots through. Contention is delivery ↔ one
/// owner only; both critical sections are a pointer swap or an index
/// push.
struct FedCell {
    slots: Vec<Mutex<Vec<Vec<Cf32>>>>,
    free: Mutex<Vec<usize>>,
}

/// Fed-mode shared state: per-cell slot arenas plus the shed counter
/// (subframes that arrived while every slot of their cell was busy).
struct FedShared {
    cells: Vec<FedCell>,
    shed: AtomicU64,
}

impl FedShared {
    fn new(cfg: &ClusterConfig, samples_per_subframe: usize) -> Self {
        let cells = (0..cfg.num_cells)
            .map(|_| FedCell {
                slots: (0..FED_SLOTS)
                    .map(|_| {
                        Mutex::new(vec![
                            vec![Cf32::new(0.0, 0.0); samples_per_subframe];
                            cfg.num_antennas
                        ])
                    })
                    .collect(),
                free: Mutex::new((0..FED_SLOTS).rev().collect()),
            })
            .collect();
        FedShared {
            cells,
            shed: AtomicU64::new(0),
        }
    }
}

/// Returns a fed job's delivery slot to its cell's free list on every
/// exit path of `process_subframe` (drop at a slack check included).
/// Declared before the slot's sample guard so the guard releases first.
struct FedSlotRelease<'f> {
    fed: Option<(&'f FedShared, usize, usize)>,
}

impl Drop for FedSlotRelease<'_> {
    fn drop(&mut self) {
        if let Some((f, cell, slot)) = self.fed {
            f.cells[cell].free.lock().push(slot);
        }
    }
}

struct Shared<'a> {
    cfg: &'a ClusterConfig,
    arenas: &'a [CoreArena],
    /// `Some` when subframes arrive over a [`FronthaulRx`] instead of the
    /// pre-encoded pool; `None` in the emulated `run()` path.
    fed: Option<&'a FedShared>,
    inboxes: Vec<Inbox<'a>>,
    global: Inbox<'a>,
    stealers: Vec<steal::Stealer>,
    idle: Vec<AtomicBool>,
    totals: Mutex<WorkerTotals>,
    calib: Calib,
    schedule: PartitionedSchedule,
    /// Reference instant for `epoch_ns` (captured at construction).
    base: Instant,
    /// Over-the-air instant of subframe 0, as nanoseconds after `base`;
    /// written once by the transport thread after every worker has warmed
    /// up and passed the start barrier, so cold caches never eat into the
    /// first subframes' budgets.
    epoch_ns: AtomicU64,
    /// Per-cell ingest stagger within a period (shared 10 GbE port).
    stagger: Vec<Duration>,
    pinned: AtomicBool,
    /// NUMA domain of each worker core (workers pin to core index `me`,
    /// so the domain map follows [`NumaTopology::domain_of`] with the
    /// same modulo wrapping). Thieves prefer same-domain victims; a
    /// cross-domain steal pays [`CROSS_NUMA_DELTA_FACTOR`]·δ.
    domain: Vec<usize>,
}

impl<'a> Shared<'a> {
    /// Over-the-air instant of subframe 0.
    fn epoch(&self) -> Instant {
        self.base + Duration::from_nanos(self.epoch_ns.load(Ordering::Acquire))
    }

    /// Arrival instant of cell `cell`'s subframe `j` at the compute node.
    fn release_instant(&self, cell: usize, j: u64) -> Instant {
        self.epoch() + self.cfg.period * j as u32 + self.cfg.rtt_half + self.stagger[cell]
    }

    /// The next release that will claim `core`, strictly after `now`.
    fn next_release(&self, core: usize, now: Instant) -> Instant {
        let cell = core / 2;
        let phase = (core % 2) as u64;
        let base = self.epoch() + self.cfg.rtt_half + self.stagger[cell];
        let elapsed = now.saturating_duration_since(base);
        let mut j = (elapsed.as_nanos() / self.cfg.period.as_nanos()) as u64;
        while j % 2 != phase || self.release_instant(cell, j) <= now {
            j += 1;
        }
        if j >= self.cfg.subframes as u64 {
            return now + self.cfg.period * 64;
        }
        self.release_instant(cell, j)
    }

    /// Idle-core candidates for Algorithm 1 at `now` (free time in ns).
    fn idle_cores_into(&self, now: Instant, me: usize, out: &mut Vec<(usize, Nanos)>) {
        out.clear();
        for c in 0..self.inboxes.len() {
            if c == me || !self.idle[c].load(Ordering::Acquire) {
                continue;
            }
            let window = self.next_release(c, now).saturating_duration_since(now);
            let w = Nanos(window.as_nanos() as u64);
            if w > Nanos::ZERO {
                out.push((c, w));
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    /// Whether any other core is currently parked (cheap lazy-publish
    /// check: no helper → no point copying LLRs or bumping epochs).
    fn any_idle_helper(&self, me: usize) -> bool {
        self.idle
            .iter()
            .enumerate()
            .any(|(c, f)| c != me && f.load(Ordering::Acquire))
    }

    /// Owner-side benefit gate for steal-mode publication: some parked
    /// core must have an idle window long enough to fit one subtask plus
    /// the migration cost δ. Without this, a saturated cluster pays the
    /// publication overhead (epoch bump, LLR snapshot, thief wake) on
    /// every stage while no thief ever has the cycles to help — the
    /// steal-time guard at the thief would decline anyway. This mirrors
    /// the information the mutex baseline feeds `plan_migration`; the
    /// binding δ admission decision still happens at steal time.
    fn worth_publishing(&self, me: usize, tp_us: f64, now: Instant) -> bool {
        let need = Duration::from_secs_f64((tp_us + self.cfg.delta_us) / 1e6);
        self.idle.iter().enumerate().any(|(c, f)| {
            c != me
                && f.load(Ordering::Acquire)
                && self.next_release(c, now).saturating_duration_since(now) >= need
        })
    }

    fn push_migrated(&self, host: usize, env: Envelope<'a>) {
        let mut st = self.inboxes[host].state.lock();
        st.migrated.push_back(env);
        drop(st);
        self.inboxes[host].cv.notify_one();
    }

    /// Wakes parked workers so they scan the deques (steal mode).
    fn wake_thieves(&self, me: usize) {
        for (c, inbox) in self.inboxes.iter().enumerate() {
            if c != me && self.idle[c].load(Ordering::Acquire) {
                inbox.cv.notify_one();
            }
        }
    }
}

/// The sharded multi-cell runtime.
pub struct CranCluster {
    cfg: ClusterConfig,
}

impl CranCluster {
    /// Creates a cluster.
    ///
    /// # Panics
    /// Panics on an empty MCS pool or zero cells/subframes.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(!cfg.mcs_pool.is_empty(), "MCS pool must be non-empty");
        assert!(cfg.num_cells > 0 && cfg.subframes > 0, "empty run");
        CranCluster { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Pre-encodes one subframe per pool MCS (shared by every cell: the
    /// trace decides which entry a given release uses).
    pub(crate) fn prepare_pool(cfg: &ClusterConfig) -> Vec<Prepared> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37);
        cfg.mcs_pool
            .iter()
            .map(|&mcs| {
                let ucfg = UplinkConfig::new(cfg.bandwidth, cfg.num_antennas, mcs).expect("config");
                let tx = UplinkTx::new(ucfg.clone());
                let payload: Vec<u8> = (0..ucfg.transport_block_bytes())
                    .map(|_| rng.gen())
                    .collect();
                let sf = tx.encode_subframe(&payload).expect("encode");
                let mut chan = AwgnChannel::new(cfg.snr_db);
                let samples = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
                Prepared {
                    mcs,
                    rx: UplinkRx::new(ucfg),
                    samples,
                }
            })
            .collect()
    }

    /// Measures per-stage execution through the slab path so Algorithm 1
    /// and the δ guard have deterministic `tp` estimates (median of 3).
    fn calibrate(pool: &[Prepared]) -> Calib {
        const TRIALS: usize = 3;
        rtopex_phy::workspace::with_thread_workspace(|ws| {
            for p in pool {
                ws.warm(p.rx.config());
            }
        });
        let mut slab = JobSlab::new();
        for p in pool {
            slab.warm(p.rx.config());
        }
        let mut calib = Calib::default();
        let mut fft_batches = Samples::new();
        for p in pool {
            let mut fft_trials = Samples::new();
            let mut demod_trials = Samples::new();
            let mut dec_trials = Samples::new();
            let mut blocks = 1usize;
            for _ in 0..TRIALS {
                let mut job = p.rx.start_job_in(&p.samples, &mut slab).expect("job");
                let t0 = Instant::now();
                let batches = p.samples.len();
                for b in 0..batches {
                    job.run_fft_batch_local(b);
                }
                fft_trials.push(t0.elapsed().as_secs_f64() * 1e6 / batches as f64);
                job.finish_fft();
                let t1 = Instant::now();
                for i in 0..job.demod_subtask_count() {
                    job.run_demod_subtask_local(i);
                }
                demod_trials.push(t1.elapsed().as_secs_f64() * 1e6);
                let t2 = Instant::now();
                blocks = job.decode_subtask_count();
                for r in 0..blocks {
                    job.run_decode_subtask_local(r);
                }
                dec_trials.push(t2.elapsed().as_secs_f64() * 1e6);
                let _ = job.finish();
            }
            fft_batches.push(fft_trials.median());
            calib.demod_us.push(demod_trials.median());
            let dec_us = dec_trials.median();
            calib.decode_total_us.push(dec_us);
            calib.decode_block_us.push(dec_us / blocks as f64);
        }
        calib.fft_batch_us = fft_batches.mean();
        calib
    }

    /// Per-cell pool-index sequences from the tower traces.
    fn schedule_mcs(&self, pool: &[Prepared]) -> Vec<Vec<usize>> {
        let mcs: Vec<u8> = pool.iter().map(|p| p.mcs).collect();
        Self::mcs_plan_for(&self.cfg, &mcs)
    }

    fn mcs_plan_for(cfg: &ClusterConfig, pool_mcs: &[u8]) -> Vec<Vec<usize>> {
        (0..cfg.num_cells)
            .map(|cell| {
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(cell as u64 * 7919));
                let mut trace = LoadTrace::new(TraceParams::tower(cell % 4));
                (0..cfg.subframes)
                    .map(|_| {
                        let mcs = load_to_mcs(trace.next_load(&mut rng)).index();
                        pool_mcs
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &p)| (p as i32 - mcs as i32).abs())
                            .map(|(i, _)| i)
                            .expect("non-empty pool")
                    })
                    .collect()
            })
            .collect()
    }

    /// The deterministic per-cell MCS plan (tower traces) as pool indices
    /// into `cfg.mcs_pool` — public so a fronthaul aggregator can
    /// transmit exactly the load schedule an emulated `run()` would have
    /// generated for the same config and seed.
    pub fn mcs_plan(cfg: &ClusterConfig) -> Vec<Vec<usize>> {
        Self::mcs_plan_for(cfg, &cfg.mcs_pool)
    }

    /// The sender-side subframe pool: the same pre-encoded,
    /// channel-impaired sample streams `run()` decodes from memory, keyed
    /// by MCS. A fronthaul aggregator pairs this with [`Self::mcs_plan`]
    /// to put the emulated workload on a real wire.
    pub fn encode_pool(cfg: &ClusterConfig) -> Vec<(u8, Vec<Vec<Cf32>>)> {
        Self::prepare_pool(cfg)
            .into_iter()
            .map(|p| (p.mcs, p.samples))
            .collect()
    }

    /// Runs the cluster to completion (blocking) and reports.
    pub fn run(&self) -> ClusterReport {
        let cfg = &self.cfg;
        let pool = Self::prepare_pool(cfg);
        let calib = Self::calibrate(&pool);
        let mcs_seq = self.schedule_mcs(&pool);
        let cores = cfg.total_cores();
        let arenas: Vec<CoreArena> = (0..cores).map(|_| CoreArena::new(&pool, cfg)).collect();
        let ingest = MulticellIngest::homogeneous(
            TestbedLink::paper_testbed(),
            cfg.num_cells,
            cfg.bandwidth,
            cfg.num_antennas,
        );
        let d0 = ingest.deterministic_delivery_us(0).unwrap_or(0.0);
        let stagger: Vec<Duration> = (0..cfg.num_cells)
            .map(|c| {
                let d = ingest.deterministic_delivery_us(c).unwrap_or(d0);
                Duration::from_secs_f64(((d - d0).max(0.0)) / 1e6)
            })
            .collect();
        let (mut workers, stealers): (Vec<steal::Worker>, Vec<steal::Stealer>) =
            (0..cores).map(|_| steal::steal_pair(64)).unzip();
        let shared = Shared {
            cfg,
            arenas: &arenas,
            fed: None,
            inboxes: (0..cores)
                .map(|_| Inbox::with_capacity(cfg.subframes + 2))
                .collect(),
            global: Inbox::with_capacity(cfg.num_cells * cfg.subframes + 2),
            stealers,
            idle: (0..cores).map(|_| AtomicBool::new(false)).collect(),
            totals: Mutex::new(WorkerTotals::new(cfg.num_cells)),
            calib,
            schedule: PartitionedSchedule::with_cores_per_bs(cfg.num_cells, 2),
            base: Instant::now(),
            epoch_ns: AtomicU64::new(0),
            stagger,
            pinned: AtomicBool::new(false),
            domain: {
                let topo = NumaTopology::detect();
                (0..cores).map(|c| topo.domain_of(c)).collect()
            },
        };
        // Start barrier: workers warm caches (a full decode of every pool
        // entry) before the release cadence exists, so subframe 0 never
        // pays the cold-start penalty. The transport thread pins the epoch
        // only after every worker has reported ready.
        let barrier = Barrier::new(cores + 1);

        std::thread::scope(|s| {
            let shared = &shared;
            let pool = &pool;
            let barrier = &barrier;
            for (core, w) in workers.drain(..).enumerate() {
                s.spawn(move || worker_loop(core, shared, pool, w, barrier));
            }
            // Transport: play the batched-ingest delivery thread — one
            // port, cells back-to-back per period. The whole delivery
            // schedule is deterministic, so every release is pre-staged
            // with its embargo timestamp; workers gate on it themselves
            // (see `OwnJob`).
            barrier.wait();
            let epoch = Instant::now() + Duration::from_millis(5);
            shared.epoch_ns.store(
                epoch.saturating_duration_since(shared.base).as_nanos() as u64,
                Ordering::Release,
            );
            barrier.wait();
            for j in 0..cfg.subframes as u64 {
                for (cell, seq) in mcs_seq.iter().enumerate() {
                    let release = shared.release_instant(cell, j);
                    let job = OwnJob {
                        cell,
                        pool_idx: seq[j as usize],
                        slot: 0,
                        release,
                        deadline: release + cfg.budget(),
                    };
                    match cfg.mode {
                        SchedulerMode::Global => {
                            shared.global.state.lock().own.push_back(job);
                        }
                        _ => {
                            let core = shared.schedule.core_for(cell, j);
                            shared.inboxes[core].state.lock().own.push_back(job);
                        }
                    }
                }
            }
            for inbox in &shared.inboxes {
                inbox.cv.notify_all();
            }
            shared.global.cv.notify_all();
            // Sleep out the cadence plus drain margin, then shut down.
            let end =
                shared.epoch() + cfg.period * cfg.subframes as u32 + cfg.budget() + cfg.period * 4;
            std::thread::sleep(end.saturating_duration_since(Instant::now()));
            for inbox in &shared.inboxes {
                inbox.state.lock().shutdown = true;
                inbox.cv.notify_all();
            }
            shared.global.state.lock().shutdown = true;
            shared.global.cv.notify_all();
        });

        let elapsed = Instant::now().saturating_duration_since(shared.epoch());
        let m = shared.totals.into_inner();
        ClusterReport {
            mode: cfg.mode,
            cells: cfg.num_cells,
            deadline: m.deadline,
            migration: m.migration,
            proc_us: m.proc_us,
            dropped: m.dropped,
            crc_failures: m.crc_failures,
            pinned: shared.pinned.load(Ordering::Relaxed),
            steals: m.steals,
            declined_steals: m.declined,
            cross_numa_steals: m.cross_numa_steals,
            elapsed,
        }
    }

    /// Runs the cluster fed by a real fronthaul receiver instead of the
    /// emulated pre-encoded pool: IQ subframes arrive through `rx`
    /// (in-process, UDP or TCP — any [`FronthaulRx`]), land in
    /// preallocated per-cell slot arenas, and are scheduled exactly like
    /// emulated releases except that deadlines are **arrival-based**
    /// (`arrival + budget`): the network already charged `T_fronthaul`,
    /// so the budget clock starts when the subframe reaches the node.
    ///
    /// Differences from [`CranCluster::run`], all confined to where the
    /// samples come from:
    ///
    /// * The pre-encoded pool still exists but only for calibration and
    ///   per-MCS decoder configs — received samples are what gets decoded.
    /// * FFT stages are never published for stealing: a thief reads the
    ///   owner's samples, and a fed job's samples live behind its slot
    ///   guard for exactly the job's lifetime. Decode stages migrate as
    ///   usual — the published LLR snapshot is self-contained.
    /// * A subframe arriving while all [`FED_SLOTS`] slots of its cell
    ///   are busy is shed at delivery and recorded as a miss + drop, the
    ///   overload behaviour Eq. 3 prescribes.
    ///
    /// Returns when the sender closes the stream (or goes silent for a
    /// generous idle window) and every queued subframe has drained.
    ///
    /// # Panics
    /// Panics if `rx`'s negotiated stream geometry (antennas, cell count,
    /// samples per subframe) does not match this cluster's config.
    pub fn run_fed(&self, rx: &mut dyn FronthaulRx) -> FedReport {
        let cfg = &self.cfg;
        let params = rx.params().clone();
        assert_eq!(
            params.antennas as usize, cfg.num_antennas,
            "stream antennas != cluster antennas"
        );
        assert_eq!(
            params.cells.len(),
            cfg.num_cells,
            "stream cell count != cluster cells"
        );
        assert_eq!(
            params.samples_per_subframe as usize,
            cfg.bandwidth.samples_per_subframe(),
            "stream samples/subframe != bandwidth"
        );
        let pool = Self::prepare_pool(cfg);
        let calib = Self::calibrate(&pool);
        let cores = cfg.total_cores();
        let arenas: Vec<CoreArena> = (0..cores).map(|_| CoreArena::new(&pool, cfg)).collect();
        let fed = FedShared::new(cfg, cfg.bandwidth.samples_per_subframe());
        let ingest = MulticellIngest::homogeneous(
            TestbedLink::paper_testbed(),
            cfg.num_cells,
            cfg.bandwidth,
            cfg.num_antennas,
        );
        let d0 = ingest.deterministic_delivery_us(0).unwrap_or(0.0);
        let stagger: Vec<Duration> = (0..cfg.num_cells)
            .map(|c| {
                let d = ingest.deterministic_delivery_us(c).unwrap_or(d0);
                Duration::from_secs_f64(((d - d0).max(0.0)) / 1e6)
            })
            .collect();
        let (mut workers, stealers): (Vec<steal::Worker>, Vec<steal::Stealer>) =
            (0..cores).map(|_| steal::steal_pair(64)).unzip();
        let shared = Shared {
            cfg,
            arenas: &arenas,
            fed: Some(&fed),
            inboxes: (0..cores)
                .map(|_| Inbox::with_capacity(cfg.subframes + 2))
                .collect(),
            global: Inbox::with_capacity(cfg.num_cells * cfg.subframes + 2),
            stealers,
            idle: (0..cores).map(|_| AtomicBool::new(false)).collect(),
            totals: Mutex::new(WorkerTotals::new(cfg.num_cells)),
            calib,
            schedule: PartitionedSchedule::with_cores_per_bs(cfg.num_cells, 2),
            base: Instant::now(),
            epoch_ns: AtomicU64::new(0),
            stagger,
            pinned: AtomicBool::new(false),
            domain: {
                let topo = NumaTopology::detect();
                (0..cores).map(|c| topo.domain_of(c)).collect()
            },
        };
        let barrier = Barrier::new(cores + 1);

        std::thread::scope(|s| {
            let shared = &shared;
            let pool = &pool;
            let barrier = &barrier;
            for (core, w) in workers.drain(..).enumerate() {
                s.spawn(move || worker_loop(core, shared, pool, w, barrier));
            }
            barrier.wait(); // workers warm
                            // Provisional epoch so idle-window math is defined before the
                            // first subframe lands; re-pinned to the true arrival below.
            let provisional = Instant::now();
            shared.epoch_ns.store(
                provisional
                    .saturating_duration_since(shared.base)
                    .as_nanos() as u64,
                Ordering::Release,
            );
            barrier.wait();

            // Delivery: pull subframes off the transport, swap their
            // samples into a free slot of the owning cell, and stage the
            // job on the cell's core (or the global queue). The swap is
            // two pointer exchanges per antenna — the recv buffer and the
            // slot trade allocations, so steady state never touches the
            // heap.
            let mut buf = SubframeBuf::for_stream(&params);
            let mut first = true;
            let mut last_traffic = Instant::now();
            let idle_limit = (cfg.period * 64).max(Duration::from_secs(5));
            let poll = cfg.period.max(Duration::from_millis(10));
            loop {
                match rx.recv_into(&mut buf, poll) {
                    Ok(Recv::Subframe) => {
                        let now = Instant::now();
                        last_traffic = now;
                        if first {
                            first = false;
                            let e = now.checked_sub(cfg.rtt_half).unwrap_or(now);
                            shared.epoch_ns.store(
                                e.saturating_duration_since(shared.base).as_nanos() as u64,
                                Ordering::Release,
                            );
                        }
                        let Some(cell) = params.local_cell(buf.cell) else {
                            continue; // foreign cell id: transport bug, shed
                        };
                        let pool_idx = pool
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, p)| (p.mcs as i32 - buf.mcs as i32).abs())
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        let slot = fed.cells[cell].free.lock().pop();
                        let Some(slot) = slot else {
                            // Every slot busy: the cell is overloaded;
                            // shed now rather than queue a subframe that
                            // would miss anyway.
                            fed.shed.fetch_add(1, Ordering::Relaxed);
                            let mut t = shared.totals.lock();
                            t.deadline.record(cell, true);
                            t.dropped += 1;
                            continue;
                        };
                        {
                            let mut dst = fed.cells[cell].slots[slot].lock();
                            for (d, s) in dst.iter_mut().zip(buf.samples.iter_mut()) {
                                std::mem::swap(d, s);
                            }
                        }
                        let job = OwnJob {
                            cell,
                            pool_idx,
                            slot,
                            release: now,
                            deadline: now + cfg.budget(),
                        };
                        match cfg.mode {
                            SchedulerMode::Global => {
                                shared.global.state.lock().own.push_back(job);
                                shared.global.cv.notify_one();
                            }
                            _ => {
                                let core = shared.schedule.core_for(cell, buf.seq as u64);
                                shared.inboxes[core].state.lock().own.push_back(job);
                                shared.inboxes[core].cv.notify_one();
                            }
                        }
                    }
                    Ok(Recv::TimedOut) => {
                        if last_traffic.elapsed() > idle_limit {
                            break; // sender vanished without a BYE
                        }
                    }
                    Ok(Recv::Closed) | Err(_) => break,
                }
            }
            // Drain margin, then shut the workers down.
            let end = Instant::now() + cfg.budget() + cfg.period * 4;
            std::thread::sleep(end.saturating_duration_since(Instant::now()));
            for inbox in &shared.inboxes {
                inbox.state.lock().shutdown = true;
                inbox.cv.notify_all();
            }
            shared.global.state.lock().shutdown = true;
            shared.global.cv.notify_all();
        });

        let elapsed = Instant::now().saturating_duration_since(shared.epoch());
        let m = shared.totals.into_inner();
        FedReport {
            cluster: ClusterReport {
                mode: cfg.mode,
                cells: cfg.num_cells,
                deadline: m.deadline,
                migration: m.migration,
                proc_us: m.proc_us,
                dropped: m.dropped,
                crc_failures: m.crc_failures,
                pinned: shared.pinned.load(Ordering::Relaxed),
                steals: m.steals,
                declined_steals: m.declined,
                cross_numa_steals: m.cross_numa_steals,
                elapsed,
            },
            rx: rx.stats(),
            shed: fed.shed.load(Ordering::Relaxed),
        }
    }
}

/// Results of a fed (network-driven) cluster run: the usual cluster
/// report plus the transport's receive-side accounting.
#[derive(Clone, Debug)]
pub struct FedReport {
    /// Scheduler-side outcomes, identical in shape to an emulated run.
    pub cluster: ClusterReport,
    /// Transport receive stats (delivered/gaps/stale/drops) at run end.
    pub rx: RxStats,
    /// Subframes shed at delivery because their cell's slots were all
    /// busy (each is also recorded as a miss + drop in `cluster`).
    pub shed: u64,
}

/// What the fan-out helpers ask the owner to do with subtask `i`.
enum StageOp {
    /// Execute locally through the slab job.
    RunLocal(usize),
    /// Execute the masked subtasks locally as one batch (decode stages
    /// drain these through the wide same-`K` turbo kernel).
    RunLocalBatch(u64),
    /// Absorb a completed result from the arena slot.
    Absorb(usize),
}

/// Stiffening factor applied to δ for a cross-NUMA steal: the LLR
/// snapshot and the result write-back both cross the socket interconnect,
/// so remote-domain help must clear roughly twice the migration-cost bar
/// before it is admitted.
const CROSS_NUMA_DELTA_FACTOR: f64 = 2.0;

/// Accumulates locally-run subtask indices and flushes them to `exec` in
/// groups of up to `limit`, so batch-capable stages (decode) hit the wide
/// kernels while unit-batch stages (FFT) keep per-index dispatch. A
/// `limit` of 1 degenerates to immediate `RunLocal` — the unbatched
/// behaviour, bit for bit.
struct LocalBatcher {
    mask: u64,
    pending: usize,
    limit: usize,
}

impl LocalBatcher {
    fn new(limit: usize) -> Self {
        LocalBatcher {
            mask: 0,
            pending: 0,
            limit: limit.max(1),
        }
    }

    fn push(&mut self, i: usize, exec: &mut dyn FnMut(StageOp)) {
        if self.limit == 1 {
            exec(StageOp::RunLocal(i));
            return;
        }
        self.mask |= 1 << i;
        self.pending += 1;
        if self.pending >= self.limit {
            self.flush(exec);
        }
    }

    fn flush(&mut self, exec: &mut dyn FnMut(StageOp)) {
        match self.pending {
            0 => {}
            1 => exec(StageOp::RunLocal(self.mask.trailing_zeros() as usize)),
            _ => exec(StageOp::RunLocalBatch(self.mask)),
        }
        self.mask = 0;
        self.pending = 0;
    }
}

fn worker_loop<'a>(
    me: usize,
    shared: &Shared<'a>,
    pool: &'a [Prepared],
    mut steal_worker: steal::Worker,
    barrier: &Barrier,
) {
    if matches!(pin_current_thread(me), crate::affinity::PinOutcome::Pinned) && me == 0 {
        shared.pinned.store(true, Ordering::Relaxed);
    }
    rtopex_phy::workspace::with_thread_workspace(|ws| {
        for p in pool {
            ws.warm(p.rx.config());
        }
    });
    let mut slab = JobSlab::new();
    let mut dec_scratch = DecodeBatchScratch::new();
    for p in pool {
        slab.warm(p.rx.config());
        dec_scratch.warm(p.rx.config());
        // Warm decode: run the whole pipeline once so instruction and data
        // caches, branch predictors and the slab's buffers are all hot
        // before the first real release. The decode leg uses the same
        // drain (batched or serial) the run will, so the first subframe
        // hits warm code paths either way.
        // analyze: allow(panic): warm-up job before the epoch barrier; the pool was just prepared with this exact config
        let mut job = p.rx.start_job_in(&p.samples, &mut slab).expect("warm job");
        for b in 0..p.samples.len() {
            job.run_fft_batch_local(b);
        }
        job.finish_fft();
        for i in 0..job.demod_subtask_count() {
            job.run_demod_subtask_local(i);
        }
        let blocks = job.decode_subtask_count();
        if shared.cfg.batch_decode && blocks > 1 {
            job.run_decode_batch_local(u64::MAX >> (64 - blocks), &mut dec_scratch);
        } else {
            for r in 0..blocks {
                job.run_decode_subtask_local(r);
            }
        }
        let _ = job.finish();
    }
    barrier.wait(); // all workers warm
    barrier.wait(); // transport has pinned the epoch
    let mode = shared.cfg.mode;
    let mut wm = WorkerTotals::new(shared.cfg.num_cells);
    let mut idle_scratch: Vec<(usize, Nanos)> = Vec::with_capacity(shared.inboxes.len());
    let mut flag_scratch: Vec<(usize, ResultFlag)> = Vec::with_capacity(64);

    enum Got<'e> {
        Own(OwnJob),
        Migrated(Envelope<'e>),
        Shutdown,
    }

    loop {
        let inbox = if mode == SchedulerMode::Global {
            &shared.global
        } else {
            &shared.inboxes[me]
        };
        let got = 'acquire: loop {
            // The front job may still be embargoed (release in the
            // future); until then this core is idle and may help others.
            let mut embargo: Option<Instant> = None;
            {
                let mut st = inbox.state.lock();
                match st.own.front().copied() {
                    Some(j) if j.release <= Instant::now() => {
                        st.own.pop_front();
                        break 'acquire Got::Own(j);
                    }
                    Some(j) => embargo = Some(j.release),
                    None => {}
                }
                if let Some(e) = st.migrated.pop_front() {
                    break 'acquire Got::Migrated(e);
                }
                if st.shutdown && st.own.is_empty() {
                    break 'acquire Got::Shutdown;
                }
                if mode != SchedulerMode::RtOpexSteal {
                    shared.idle[me].store(true, Ordering::Release);
                    match embargo {
                        Some(t) => {
                            let d = t.saturating_duration_since(Instant::now());
                            inbox.cv.wait_for(&mut st, d);
                        }
                        None => inbox.cv.wait(&mut st),
                    }
                    shared.idle[me].store(false, Ordering::Release);
                    continue 'acquire;
                }
            }
            // Steal mode: advertise idleness, scan the other deques, then
            // *yield* instead of parking. A parked thread pays the OS wake
            // latency — 1-3 ms on a loaded host — the moment its own
            // release fires, which alone sinks a 5-cell node on start
            // lateness; a yielding thread is already on the runqueue and
            // resumes within a scheduling quantum. This is the same
            // always-runnable property the mutex baseline inherits
            // accidentally from its flag-wait yield loops, adopted here as
            // a deliberate design: each idle turn is ~1 µs (inbox peek +
            // deque scan), so busy peers lose only a few context switches
            // per subframe to their idle neighbours.
            shared.idle[me].store(true, Ordering::Release);
            if try_steal(me, shared, pool, &mut wm) {
                shared.idle[me].store(false, Ordering::Release);
                continue 'acquire;
            }
            std::thread::yield_now();
        };
        shared.idle[me].store(false, Ordering::Release);
        match got {
            Got::Own(job) => process_subframe(
                me,
                shared,
                pool,
                job,
                &mut slab,
                &mut dec_scratch,
                &mut steal_worker,
                &mut idle_scratch,
                &mut flag_scratch,
                &mut wm,
            ),
            // analyze: allow(call:run): dispatches the migrated Envelope only — name-based resolution would pull every engine run loop into the worker
            Got::Migrated(env) => env.run(),
            Got::Shutdown => break,
        }
    }
    shared.totals.lock().merge(&wm);
}

/// A thief's scan: steal one ticket from another core's deque, validate
/// its epoch, run the steal-time δ admission check, and execute it into
/// the victim's arena. Victims in the thief's own NUMA domain are scanned
/// first; cross-domain victims are a last resort and must clear the
/// stiffened [`CROSS_NUMA_DELTA_FACTOR`]·δ admission bar. Returns whether
/// anything was executed or declined.
fn try_steal(me: usize, shared: &Shared<'_>, pool: &[Prepared], wm: &mut WorkerTotals) -> bool {
    let n = shared.stealers.len();
    for pass in 0..2 {
        for off in 1..n {
            let victim = (me + off) % n;
            let same_domain = shared.domain[victim] == shared.domain[me];
            if (pass == 0) != same_domain {
                continue;
            }
            if steal_from(me, victim, same_domain, shared, pool, wm) {
                return true;
            }
        }
    }
    false
}

/// One steal attempt against `victim`'s deque; see [`try_steal`].
fn steal_from(
    me: usize,
    victim: usize,
    same_domain: bool,
    shared: &Shared<'_>,
    pool: &[Prepared],
    wm: &mut WorkerTotals,
) -> bool {
    let mut retries = 0u32;
    let ticket = loop {
        match shared.stealers[victim].steal() {
            Steal::Taken(t) => break Some(t),
            Steal::Retry if retries < 4 => {
                retries += 1;
                continue;
            }
            _ => break None,
        }
    };
    let Some(ticket) = ticket else { return false };
    let (epoch, idx) = decode_ticket(ticket);
    let arena = &shared.arenas[victim];
    // `enter` validates the epoch and holds the board's read guard
    // for the whole execution: the victim's next publication (epoch
    // bump) cannot start until we are done, so a stale thief can
    // never write into a newer stage's slots.
    let Some(stage) = arena.board.enter(epoch) else {
        return true; // stale ticket of a recovered stage: drop it
    };
    let now = Instant::now();
    let slack = stage.deadline.saturating_duration_since(now);
    let idle_window = shared.next_release(me, now).saturating_duration_since(now);
    let delta_us = if same_domain {
        shared.cfg.delta_us
    } else {
        shared.cfg.delta_us * CROSS_NUMA_DELTA_FACTOR
    };
    let guard = DeltaGuard {
        delta: Nanos::from_us_f64(delta_us),
    };
    if !guard.admit(
        Nanos::from_us_f64(stage.tp_us),
        Nanos(slack.as_nanos() as u64),
        Nanos(idle_window.as_nanos() as u64),
    ) {
        stage.decline(idx);
        wm.declined += 1;
        return true;
    }
    let prepared = &pool[stage.pool_idx];
    match stage.kind {
        TaskKind::Fft => {
            // analyze: allow(guard-held-lock): per-subtask slot mutex, contended only with the recovering owner; stealing without holding it would race the straggler's write-back
            let mut slot = arena.fft_slots[idx].lock();
            prepared
                .rx
                .run_fft_batch_into(&prepared.samples, idx, &mut slot);
        }
        TaskKind::Decode => {
            // analyze: allow(guard-held-lock): per-subtask slot mutex, contended only with the recovering owner; stealing without holding it would race the straggler's write-back
            let mut slot = arena.dec_slots[idx].lock();
            let (iterations, crc_ok) =
                prepared
                    .rx
                    .run_decode_subtask_into(&stage.llrs, idx, &mut slot.bits);
            slot.iterations = iterations;
            slot.crc_ok = crc_ok;
        }
        TaskKind::Demod => {}
    }
    stage.complete(idx);
    wm.steals += 1;
    if !same_domain {
        wm.cross_numa_steals += 1;
    }
    true
}

/// Steal-mode fan-out: publish tickets, drain own deque LIFO, absorb or
/// recover what thieves took. `published` is `Some(epoch)` when the stage
/// descriptor is already in the arena; `None` means run fully local.
/// `batch` is the owner's local drain granularity: locally-run subtasks
/// accumulate and flush to `exec` as `RunLocalBatch` masks of up to that
/// many (1 = per-index `RunLocal`, the unbatched behaviour).
#[allow(clippy::too_many_arguments)]
fn fanout_steal(
    me: usize,
    shared: &Shared<'_>,
    worker: &mut steal::Worker,
    kind: TaskKind,
    count: usize,
    batch: usize,
    published: Option<u64>,
    deadline: Instant,
    exec: &mut dyn FnMut(StageOp),
    wm: &mut WorkerTotals,
) {
    let Some(epoch) = published else {
        let mut local = LocalBatcher::new(batch);
        for i in 0..count {
            local.push(i, exec);
        }
        local.flush(exec);
        wm.migration.record_stage(kind, count, 0);
        return;
    };
    // analyze: allow(panic): the owner mask is a u64 bitset; a config with more than 64 subtasks cannot be represented and must be rejected at fan-out
    assert!(count <= 64, "subtask count exceeds owner mask");
    let arena = &shared.arenas[me];
    let mut local_mask: u64 = 0;
    for i in 0..count {
        if worker.push(encode_ticket(epoch, i)).is_err() {
            local_mask |= 1 << i; // deque full: keep it local
        }
    }
    if (local_mask.count_ones() as usize) < count {
        shared.wake_thieves(me);
    }
    let mut local = LocalBatcher::new(batch);
    for i in 0..count {
        if local_mask & (1 << i) != 0 {
            local.push(i, exec);
        }
    }
    // Drain own work LIFO; anything not popped here was stolen. With
    // batching the owner claims up to `batch` tickets before running them
    // as one group — thieves keep stealing the rest from the other end
    // while the group decodes.
    while let Some(t) = worker.pop() {
        let (e, i) = decode_ticket(t);
        debug_assert_eq!(e, epoch, "own deque holds a stale ticket");
        local_mask |= 1 << i;
        local.push(i, exec);
    }
    local.flush(exec);
    let mut migrated = 0usize;
    let mut recoveries = 0usize;
    let mut recover = LocalBatcher::new(batch);
    for i in 0..count {
        if local_mask & (1 << i) != 0 {
            continue;
        }
        match arena.board.wait(i, deadline) {
            SlotState::Done => {
                exec(StageOp::Absorb(i));
                migrated += 1;
            }
            _ => {
                // Declined by the guard, or a straggler: recover locally
                // (Fig. 12 state 6).
                recover.push(i, exec);
                recoveries += 1;
            }
        }
    }
    recover.flush(exec);
    wm.migration.record_stage(kind, count, migrated);
    if recoveries > 0 {
        wm.migration.record_recovery(recoveries);
    }
}

/// Mutex-mode fan-out: Algorithm 1 at the owner, boxed envelopes through
/// the inboxes, flag waits, local recovery — the PR-2 baseline, now
/// writing into the preallocated arena instead of per-subframe slots.
#[allow(clippy::too_many_arguments)]
fn fanout_mutex<'a>(
    me: usize,
    shared: &Shared<'a>,
    kind: TaskKind,
    count: usize,
    batch: usize,
    tp_us: f64,
    published: Option<u64>,
    deadline: Instant,
    make_remote: &dyn Fn(usize, u64) -> (Envelope<'a>, ResultFlag),
    exec: &mut dyn FnMut(StageOp),
    idle_scratch: &mut Vec<(usize, Nanos)>,
    flag_scratch: &mut Vec<(usize, ResultFlag)>,
    wm: &mut WorkerTotals,
) {
    let serial = |exec: &mut dyn FnMut(StageOp), wm: &mut WorkerTotals| {
        let mut local = LocalBatcher::new(batch);
        for i in 0..count {
            local.push(i, exec);
        }
        local.flush(exec);
        wm.migration.record_stage(kind, count, 0);
    };
    let Some(epoch) = published else {
        serial(exec, wm);
        return;
    };
    let now = Instant::now();
    shared.idle_cores_into(now, me, idle_scratch);
    let plan = plan_migration(
        count,
        Nanos::from_us_f64(tp_us),
        Nanos::from_us_f64(shared.cfg.delta_us),
        idle_scratch,
    );
    if plan.migrated() == 0 {
        serial(exec, wm);
        return;
    }
    let mut next = plan.local;
    flag_scratch.clear();
    for &(host, n) in &plan.assignments {
        for _ in 0..n {
            let (env, flag) = make_remote(next, epoch);
            shared.push_migrated(host, env);
            flag_scratch.push((next, flag));
            next += 1;
        }
    }
    debug_assert_eq!(next, count);
    let mut local = LocalBatcher::new(batch);
    for i in 0..plan.local {
        local.push(i, exec);
    }
    local.flush(exec);
    let mut recoveries = 0usize;
    let migrated = flag_scratch.len();
    let mut recover = LocalBatcher::new(batch);
    for (i, flag) in flag_scratch.drain(..) {
        let budget = deadline.saturating_duration_since(Instant::now());
        if flag.wait(budget.min(Duration::from_millis(50))) {
            exec(StageOp::Absorb(i));
        } else {
            recover.push(i, exec);
            recoveries += 1;
        }
    }
    recover.flush(exec);
    wm.migration.record_stage(kind, count, migrated);
    if recoveries > 0 {
        wm.migration.record_recovery(recoveries);
    }
}

#[allow(clippy::too_many_arguments)]
fn process_subframe<'a>(
    me: usize,
    shared: &Shared<'a>,
    pool: &'a [Prepared],
    job: OwnJob,
    slab: &mut JobSlab,
    dec_scratch: &mut DecodeBatchScratch,
    steal_worker: &mut steal::Worker,
    idle_scratch: &mut Vec<(usize, Nanos)>,
    flag_scratch: &mut Vec<(usize, ResultFlag)>,
    wm: &mut WorkerTotals,
) {
    let cfg = shared.cfg;
    let mode = cfg.mode;
    // Owner-side local decode drain granularity (thief-side steals stay
    // single-block: a stolen ticket is one arena slot).
    let dec_batch = if cfg.batch_decode {
        MAX_DECODE_BATCH
    } else {
        1
    };
    let prepared = &pool[job.pool_idx];
    // Fed mode: the subframe's samples live in its delivery slot. The
    // guard is held for the whole job; the release sentinel (declared
    // first, so it drops last) returns the slot to the free list on
    // every exit path, slack drops included.
    let _slot_release = FedSlotRelease {
        fed: shared.fed.map(|f| (f, job.cell, job.slot)),
    };
    let fed_samples = shared.fed.map(|f| f.cells[job.cell].slots[job.slot].lock());
    let samples: &[Vec<Cf32>] = match fed_samples.as_deref() {
        Some(s) => s,
        None => &prepared.samples,
    };
    let started = Instant::now();
    let pidx = job.pool_idx;
    let calib = &shared.calib;
    // Re-borrow through the `'a` slice so envelope closures may hold the
    // arena reference for the scope's lifetime.
    let arenas: &'a [CoreArena] = shared.arenas;
    let arena = &arenas[me];

    // Stage slack checks use the calibrated serial stage estimates.
    let est_fft = Duration::from_secs_f64(calib.fft_batch_us * cfg.num_antennas as f64 / 1e6);
    if Instant::now() + est_fft > job.deadline {
        wm.deadline.record(job.cell, true);
        wm.dropped += 1;
        return;
    }

    let mut phy = prepared
        .rx
        .start_job_in(samples, slab)
        // analyze: allow(panic): pool entries come from prepare_pool with the same config; a shape mismatch means the pool was corrupted and the slot must die loudly
        .expect("prepared samples are consistent");

    // --- FFT task: subtask = one antenna's 14-symbol batch. ---
    let antennas = cfg.num_antennas;
    match mode {
        SchedulerMode::RtOpexSteal => {
            // Fed mode never publishes FFT: a thief executes against the
            // *pool's* samples, but a fed job's real samples live behind
            // its slot guard. Decode stages still migrate — their LLR
            // snapshot is self-contained.
            let published = (antennas > 1
                && shared.fed.is_none()
                && shared.worth_publishing(me, calib.fft_batch_us, Instant::now()))
            .then(|| {
                publish_stage(
                    arena,
                    TaskKind::Fft,
                    pidx,
                    antennas,
                    calib.fft_batch_us,
                    job.deadline,
                    None,
                )
            });
            let mut exec = |op: StageOp| match op {
                StageOp::RunLocal(b) => phy.run_fft_batch_local(b),
                StageOp::RunLocalBatch(m) => {
                    for b in 0..antennas {
                        if m & (1 << b) != 0 {
                            phy.run_fft_batch_local(b);
                        }
                    }
                }
                StageOp::Absorb(b) => {
                    let slot = arena.fft_slots[b].lock();
                    phy.absorb_fft_batch(b, &slot);
                }
            };
            fanout_steal(
                me,
                shared,
                steal_worker,
                TaskKind::Fft,
                antennas,
                1,
                published,
                job.deadline,
                &mut exec,
                wm,
            );
        }
        SchedulerMode::RtOpexMutex => {
            // Same fed-mode rule as steal: FFT helpers read the pool's
            // samples, so a fed subframe keeps its FFT owner-local.
            let published = (antennas > 1 && shared.fed.is_none() && shared.any_idle_helper(me))
                .then(|| {
                    publish_stage(
                        arena,
                        TaskKind::Fft,
                        pidx,
                        antennas,
                        calib.fft_batch_us,
                        job.deadline,
                        None,
                    )
                });
            let rx = &prepared.rx;
            let samples = &prepared.samples;
            let make_remote = |b: usize, ep: u64| {
                Envelope::new(move || {
                    // Hold the board guard while writing the slot so a
                    // straggler of a recovered stage is fenced out.
                    let Some(_stage) = arena.board.enter(ep) else {
                        return; // straggler of a recovered stage
                    };
                    // analyze: allow(guard-held-lock): the stage guard must stay held across the slot write-back to fence a recovering owner's straggler; the slot mutex is a leaf and uncontended outside recovery
                    let mut slot = arena.fft_slots[b].lock();
                    rx.run_fft_batch_into(samples, b, &mut slot);
                })
            };
            let mut exec = |op: StageOp| match op {
                StageOp::RunLocal(b) => phy.run_fft_batch_local(b),
                StageOp::RunLocalBatch(m) => {
                    for b in 0..antennas {
                        if m & (1 << b) != 0 {
                            phy.run_fft_batch_local(b);
                        }
                    }
                }
                StageOp::Absorb(b) => {
                    let slot = arena.fft_slots[b].lock();
                    phy.absorb_fft_batch(b, &slot);
                }
            };
            fanout_mutex(
                me,
                shared,
                TaskKind::Fft,
                antennas,
                1,
                calib.fft_batch_us,
                published,
                job.deadline,
                &make_remote,
                &mut exec,
                idle_scratch,
                flag_scratch,
                wm,
            );
        }
        _ => {
            for b in 0..antennas {
                phy.run_fft_batch_local(b);
            }
        }
    }
    phy.finish_fft();

    // --- Demod task: serial on the owner. ---
    let est_demod = Duration::from_secs_f64(calib.demod_us[pidx] / 1e6);
    if Instant::now() + est_demod > job.deadline {
        wm.deadline.record(job.cell, true);
        wm.dropped += 1;
        return;
    }
    for i in 0..phy.demod_subtask_count() {
        phy.run_demod_subtask_local(i);
    }

    // --- Decode task: subtask = one code block. ---
    let est_dec = Duration::from_secs_f64(calib.decode_total_us[pidx] / 1e6);
    let blocks = phy.decode_subtask_count();
    // Migration roughly halves the decode critical path; the slack check
    // is plan-aware like the simulator's.
    let est_effective = if mode.migrates() && blocks > 1 {
        est_dec / 2 + Duration::from_secs_f64(cfg.delta_us / 1e6)
    } else {
        est_dec
    };
    if Instant::now() + est_effective > job.deadline {
        wm.deadline.record(job.cell, true);
        wm.dropped += 1;
        return;
    }
    match mode {
        SchedulerMode::RtOpexSteal => {
            let published = (blocks > 1
                && shared.worth_publishing(me, calib.decode_block_us[pidx], Instant::now()))
            .then(|| {
                publish_stage(
                    arena,
                    TaskKind::Decode,
                    pidx,
                    blocks,
                    calib.decode_block_us[pidx],
                    job.deadline,
                    Some(phy.coded_llrs()),
                )
            });
            let mut exec = |op: StageOp| match op {
                StageOp::RunLocal(r) => phy.run_decode_subtask_local(r),
                StageOp::RunLocalBatch(m) => phy.run_decode_batch_local(m, dec_scratch),
                StageOp::Absorb(r) => {
                    let slot = arena.dec_slots[r].lock();
                    phy.absorb_decode_buf(r, &slot);
                }
            };
            fanout_steal(
                me,
                shared,
                steal_worker,
                TaskKind::Decode,
                blocks,
                dec_batch,
                published,
                job.deadline,
                &mut exec,
                wm,
            );
        }
        SchedulerMode::RtOpexMutex => {
            let published = (blocks > 1 && shared.any_idle_helper(me)).then(|| {
                publish_stage(
                    arena,
                    TaskKind::Decode,
                    pidx,
                    blocks,
                    calib.decode_block_us[pidx],
                    job.deadline,
                    Some(phy.coded_llrs()),
                )
            });
            let rx = &prepared.rx;
            let make_remote = |r: usize, ep: u64| {
                Envelope::new(move || {
                    let Some(stage) = arena.board.enter(ep) else {
                        return;
                    };
                    // analyze: allow(guard-held-lock): the stage guard must stay held across the slot write-back to fence a recovering owner's straggler; the slot mutex is a leaf and uncontended outside recovery
                    let mut slot = arena.dec_slots[r].lock();
                    let (iterations, crc_ok) =
                        rx.run_decode_subtask_into(&stage.llrs, r, &mut slot.bits);
                    slot.iterations = iterations;
                    slot.crc_ok = crc_ok;
                })
            };
            let mut exec = |op: StageOp| match op {
                StageOp::RunLocal(r) => phy.run_decode_subtask_local(r),
                StageOp::RunLocalBatch(m) => phy.run_decode_batch_local(m, dec_scratch),
                StageOp::Absorb(r) => {
                    let slot = arena.dec_slots[r].lock();
                    phy.absorb_decode_buf(r, &slot);
                }
            };
            fanout_mutex(
                me,
                shared,
                TaskKind::Decode,
                blocks,
                dec_batch,
                calib.decode_block_us[pidx],
                published,
                job.deadline,
                &make_remote,
                &mut exec,
                idle_scratch,
                flag_scratch,
                wm,
            );
        }
        _ => {
            if cfg.batch_decode && blocks > 1 {
                // analyze: allow(panic): the owner mask is a u64 bitset; a config with more than 64 subtasks cannot be represented and must be rejected at fan-out
                assert!(blocks <= 64, "subtask count exceeds owner mask");
                phy.run_decode_batch_local(u64::MAX >> (64 - blocks), dec_scratch);
            } else {
                for r in 0..blocks {
                    phy.run_decode_subtask_local(r);
                }
            }
        }
    }

    // analyze: allow(panic): the recovery loop above re-runs every unconfirmed subtask before finish(); an unabsorbed subtask here is a scheduler bug, not a runtime condition
    let verdict = phy.finish().expect("all subtasks absorbed");
    let finished = Instant::now();
    wm.deadline.record(job.cell, finished > job.deadline);
    if !verdict.crc_ok {
        wm.crc_failures += 1;
    }
    wm.proc_us
        .push(finished.saturating_duration_since(started).as_secs_f64() * 1e6);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(mode: SchedulerMode) -> ClusterConfig {
        ClusterConfig {
            bandwidth: Bandwidth::Mhz5,
            num_cells: 2,
            subframes: 40,
            period: Duration::from_micros(3_000),
            mode,
            mcs_pool: vec![5, 16, 27],
            ..ClusterConfig::demo()
        }
    }

    #[test]
    fn every_mode_accounts_for_all_subframes() {
        for mode in SchedulerMode::ALL {
            let r = CranCluster::new(quick_cfg(mode)).run();
            assert_eq!(r.deadline.total_subframes(), 2 * 40, "{}", mode.name());
            assert_eq!(
                r.proc_us.len() as u64 + r.dropped,
                2 * 40,
                "{}",
                mode.name()
            );
            assert_eq!(r.crc_failures, 0, "{} corrupted decodes", mode.name());
        }
    }

    #[test]
    fn serial_modes_never_migrate() {
        for mode in [SchedulerMode::Partitioned, SchedulerMode::Global] {
            let r = CranCluster::new(quick_cfg(mode)).run();
            assert_eq!(
                r.migration.fft_migrated + r.migration.decode_migrated,
                0,
                "{}",
                mode.name()
            );
            assert_eq!(r.steals, 0);
        }
    }

    #[test]
    fn steal_mode_decodes_correctly_under_migration() {
        // Give thieves real idle windows: a long period and few cells.
        let r = CranCluster::new(quick_cfg(SchedulerMode::RtOpexSteal)).run();
        assert_eq!(r.crc_failures, 0, "stolen subtasks corrupted decodes");
        // Steal accounting is self-consistent: every absorbed migration
        // was a thief execution.
        assert!(
            r.steals >= r.migration.fft_migrated + r.migration.decode_migrated,
            "steals {} < absorbed {}",
            r.steals,
            r.migration.fft_migrated + r.migration.decode_migrated
        );
    }

    #[test]
    fn deterministic_thief_correctness() {
        // Owner publishes a decode stage; two thieves race to steal every
        // ticket; the owner absorbs and the payload must be bit-exact.
        let cfg = ClusterConfig {
            bandwidth: Bandwidth::Mhz5,
            num_cells: 1,
            subframes: 1,
            mcs_pool: vec![20],
            mode: SchedulerMode::RtOpexSteal,
            ..ClusterConfig::demo()
        };
        let pool = CranCluster::prepare_pool(&cfg);
        let p = &pool[0];
        let serial = p.rx.decode_subframe(&p.samples).unwrap();
        let blocks = p.rx.config().segmentation().num_blocks;
        assert!(blocks >= 2, "need multiple code blocks");

        let arena = CoreArena::new(&pool, &cfg);
        let mut slab = JobSlab::new();
        slab.warm(p.rx.config());
        let mut job = p.rx.start_job_in(&p.samples, &mut slab).unwrap();
        for b in 0..cfg.num_antennas {
            job.run_fft_batch_local(b);
        }
        job.finish_fft();
        for i in 0..job.demod_subtask_count() {
            job.run_demod_subtask_local(i);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let epoch = publish_stage(
            &arena,
            TaskKind::Decode,
            0,
            blocks,
            50.0,
            deadline,
            Some(job.coded_llrs()),
        );
        let (mut w, s) = steal::steal_pair(64);
        for r in 0..blocks {
            w.push(encode_ticket(epoch, r)).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let s = s.clone();
                let arena = &arena;
                let p = &pool[0];
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Taken(t) => {
                            let (e, r) = decode_ticket(t);
                            let stage = arena.board.enter(e).expect("live epoch");
                            let mut slot = arena.dec_slots[r].lock();
                            let (iters, ok) =
                                p.rx.run_decode_subtask_into(&stage.llrs, r, &mut slot.bits);
                            slot.iterations = iters;
                            slot.crc_ok = ok;
                            drop(slot);
                            stage.complete(r);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                });
            }
        });
        // Owner: whatever was not stolen is still in the deque.
        let mut local = 0;
        while let Some(t) = w.pop() {
            let (_, r) = decode_ticket(t);
            job.run_decode_subtask_local(r);
            local += 1;
        }
        for r in 0..blocks {
            if !job.decode_done(r) {
                assert_eq!(arena.board.wait(r, deadline), SlotState::Done);
                let slot = arena.dec_slots[r].lock();
                job.absorb_decode_buf(r, &slot);
            }
        }
        let verdict = job.finish().unwrap();
        assert!(local < blocks, "thieves never stole anything");
        assert_eq!(verdict.crc_ok, serial.crc_ok);
        assert_eq!(slab.payload(), &serial.payload[..]);
    }

    #[test]
    fn unbatched_drain_accounts_for_all_subframes() {
        // batch_decode=false exercises the per-index RunLocal path through
        // the same LocalBatcher plumbing (limit 1); results and accounting
        // must be indistinguishable from the batched default.
        for mode in [SchedulerMode::RtOpexSteal, SchedulerMode::Partitioned] {
            let cfg = ClusterConfig {
                batch_decode: false,
                ..quick_cfg(mode)
            };
            let r = CranCluster::new(cfg).run();
            assert_eq!(r.deadline.total_subframes(), 2 * 40, "{}", mode.name());
            assert_eq!(r.crc_failures, 0, "{} corrupted decodes", mode.name());
            assert!(r.cross_numa_steals <= r.steals);
        }
    }

    #[test]
    fn fed_run_accounts_for_every_delivered_subframe() {
        // Stream the pool's subframes through the in-process transport
        // (i16-quantized, exactly what the wire carries) into run_fed.
        // Every delivered subframe must be accounted: processed, dropped
        // at a slack check, or shed at delivery — and nothing the
        // cluster completed may fail CRC.
        let cfg = quick_cfg(SchedulerMode::RtOpexSteal);
        let total = cfg.num_cells * cfg.subframes;
        let params = rtopex_transport::StreamParams {
            samples_per_subframe: cfg.bandwidth.samples_per_subframe() as u32,
            antennas: cfg.num_antennas as u8,
            cells: vec![10, 11],
            period_us: cfg.period.as_micros() as u32,
            budget_us: cfg.budget().as_micros() as u32,
            mcs_pool: cfg.mcs_pool.clone(),
            subframes: cfg.subframes as u32,
        };
        // Depth covers the whole run so warm-up cannot overrun the queue.
        use rtopex_transport::FronthaulTx;
        let (mut tx, mut rx) = rtopex_transport::inproc_pair(params.clone(), total + 4);
        let cluster = CranCluster::new(cfg.clone());
        let mcs_seq = cluster.schedule_mcs(&CranCluster::prepare_pool(&cfg));
        let sender = {
            let cfg = cfg.clone();
            let cells = params.cells.clone();
            std::thread::spawn(move || {
                let pool = CranCluster::prepare_pool(&cfg);
                for j in 0..cfg.subframes {
                    for (c, &cell) in cells.iter().enumerate() {
                        let p = &pool[mcs_seq[c][j]];
                        tx.send(cell, j as u32, p.mcs, &p.samples).unwrap();
                    }
                    std::thread::sleep(cfg.period / 4);
                }
                tx.finish().unwrap();
            })
        };
        let fed = cluster.run_fed(&mut rx);
        sender.join().unwrap();
        assert_eq!(fed.rx.delivered, total as u64, "transport lost subframes");
        assert_eq!(fed.rx.gaps, 0);
        assert_eq!(
            fed.cluster.deadline.total_subframes(),
            total as u64,
            "every delivered subframe must be accounted"
        );
        assert_eq!(
            fed.cluster.proc_us.len() as u64 + fed.cluster.dropped,
            total as u64
        );
        assert!(fed.shed <= fed.cluster.dropped);
        assert_eq!(fed.cluster.crc_failures, 0, "fed decodes corrupted");
    }

    #[test]
    fn budget_and_core_math() {
        let cfg = ClusterConfig::demo();
        assert_eq!(cfg.budget(), Duration::from_micros(1_000));
        assert_eq!(cfg.total_cores(), 6);
        assert!(SchedulerMode::RtOpexSteal.migrates());
        assert!(!SchedulerMode::Global.migrates());
    }

    #[test]
    #[should_panic(expected = "MCS pool")]
    fn empty_pool_rejected() {
        CranCluster::new(ClusterConfig {
            mcs_pool: vec![],
            ..ClusterConfig::demo()
        });
    }
}
