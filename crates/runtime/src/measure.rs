//! Micro-measurement harnesses behind Fig. 4 and Fig. 18.
//!
//! These run the **real** PHY kernels on **real** pinned threads and time
//! them with the monotonic clock:
//!
//! * [`measure_stage_parallelism`] — a task's serial time vs. its time
//!   when its subtasks are split across two cores (Fig. 4);
//! * [`measure_migration_overhead`] — per-subtask execution time locally
//!   vs. end-to-end through a migration mailbox on another core, whose
//!   difference is the machine's real migration cost δ (Fig. 18 reports
//!   ≈ 18–20 µs on the paper's Xeon);
//! * [`measure_steal_overhead`] — the same comparison through the
//!   lock-free work-stealing path, where the handoff is a ticket in a
//!   bounded Chase–Lev deque instead of a boxed closure in a channel.
//!   The gap between the two deltas is what the cluster's steal mode
//!   saves per migration.

use crate::affinity::pin_current_thread;
use crate::migrate::{host_loop, mailbox, Envelope};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_core::steal::{self, Steal};
use rtopex_model::stats::Samples;
use rtopex_phy::channel::{AwgnChannel, ChannelModel};
use rtopex_phy::params::Bandwidth;
use rtopex_phy::tasks::TaskKind;
use rtopex_phy::uplink::{SubframeJob, UplinkConfig, UplinkRx, UplinkTx};
use rtopex_phy::Cf32;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Serial vs. two-core timings of one task (µs).
#[derive(Clone, Debug)]
pub struct StageMeasurement {
    /// The task measured.
    pub task: TaskKind,
    /// Serial execution times.
    pub serial_us: Samples,
    /// Execution times with the subtasks split across two cores.
    pub two_core_us: Samples,
}

/// Local vs. migrated per-subtask timings (µs) — Fig. 18's comparison.
#[derive(Clone, Debug)]
pub struct MigrationMeasurement {
    /// The task whose subtasks were measured.
    pub task: TaskKind,
    /// Per-subtask time when executed by the owning thread.
    pub local_us: Samples,
    /// Per-subtask time when shipped to another core (includes handoff).
    pub migrated_us: Samples,
    /// Median overhead `migrated − local` (the measured δ), µs.
    pub delta_us: f64,
}

/// A ready-to-decode subframe: receiver + received samples.
struct Workbench {
    rx: UplinkRx,
    samples: Vec<Vec<Cf32>>,
}

impl Workbench {
    fn new(bw: Bandwidth, antennas: usize, mcs: u8, seed: u64) -> Self {
        let cfg = UplinkConfig::new(bw, antennas, mcs).expect("valid config");
        let tx = UplinkTx::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..cfg.transport_block_bytes())
            .map(|_| rng.gen())
            .collect();
        let sf = tx.encode_subframe(&payload).expect("encode");
        let mut chan = AwgnChannel::new(30.0);
        let samples = chan.apply(&sf.samples, antennas, &mut rng);
        Workbench {
            rx: UplinkRx::new(cfg),
            samples,
        }
    }

    /// Starts a job and advances it so the requested stage is runnable.
    fn job_at(&self, task: TaskKind) -> SubframeJob<'_> {
        // analyze: allow(panic): bench setup of the job under test; the prepared subframe cannot fail to start once the config was validated
        let mut job = self.rx.start_job(&self.samples).expect("job");
        if task == TaskKind::Fft {
            return job;
        }
        for i in 0..job.fft_subtask_count() {
            let out = job.run_fft_subtask(i);
            job.absorb_fft(out);
        }
        job.finish_fft();
        if task == TaskKind::Demod {
            return job;
        }
        for i in 0..job.demod_subtask_count() {
            let out = job.run_demod_subtask(i);
            job.absorb_demod(out);
        }
        job
    }

    fn subtask_count(&self, job: &SubframeJob<'_>, task: TaskKind) -> usize {
        match task {
            TaskKind::Fft => job.fft_subtask_count(),
            TaskKind::Demod => job.demod_subtask_count(),
            TaskKind::Decode => job.decode_subtask_count(),
        }
    }

    /// Runs subtask `i` of `task`, discarding the output (timing only).
    fn run_subtask(&self, job: &SubframeJob<'_>, task: TaskKind, i: usize) {
        match task {
            TaskKind::Fft => {
                std::hint::black_box(job.run_fft_subtask(i));
            }
            TaskKind::Demod => {
                std::hint::black_box(job.run_demod_subtask(i));
            }
            TaskKind::Decode => {
                std::hint::black_box(job.run_decode_subtask(i));
            }
        }
    }
}

fn as_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Measures one task's serial vs. two-core execution time (Fig. 4).
///
/// The two-core run splits the subtask indices in half; the second half
/// executes on a helper thread pinned to another core.
pub fn measure_stage_parallelism(
    bw: Bandwidth,
    antennas: usize,
    mcs: u8,
    task: TaskKind,
    trials: usize,
) -> StageMeasurement {
    let bench = Workbench::new(bw, antennas, mcs, 0x0F16_4000);
    let mut serial_us = Samples::new();
    let mut two_core_us = Samples::new();

    // Serial timings.
    pin_current_thread(0);
    for _ in 0..trials {
        let job = bench.job_at(task);
        let n = bench.subtask_count(&job, task);
        let t0 = Instant::now();
        for i in 0..n {
            bench.run_subtask(&job, task, i);
        }
        serial_us.push(as_us(t0.elapsed()));
    }

    // Two-core timings: helper runs the second half of the subtasks.
    // Jobs are prepared up front so the envelopes' borrows outlive the
    // mailbox channel.
    let jobs: Vec<SubframeJob<'_>> = (0..trials).map(|_| bench.job_at(task)).collect();
    std::thread::scope(|s| {
        let (tx, rx) = mailbox();
        s.spawn(move || {
            pin_current_thread(1);
            host_loop(rx);
        });
        for job in &jobs {
            let n = bench.subtask_count(job, task);
            let split = n / 2;
            let bench_ref = &bench;
            let t0 = Instant::now();
            let (env, flag) = Envelope::new(move || {
                for i in split..n {
                    bench_ref.run_subtask(job, task, i);
                }
            });
            tx.send(env).expect("host alive");
            for i in 0..split {
                bench.run_subtask(job, task, i);
            }
            assert!(flag.wait(Duration::from_secs(30)), "helper hung");
            two_core_us.push(as_us(t0.elapsed()));
        }
        drop(tx);
    });

    StageMeasurement {
        task,
        serial_us,
        two_core_us,
    }
}

/// Measures a subtask locally vs. migrated to a second core (Fig. 18).
pub fn measure_migration_overhead(
    bw: Bandwidth,
    antennas: usize,
    mcs: u8,
    task: TaskKind,
    trials: usize,
) -> MigrationMeasurement {
    // analyze: allow(call:new): one-time bench construction before the timed loops; failing fast on a bad config is intended
    let bench = Workbench::new(bw, antennas, mcs, 0x0F18_0000);
    let mut local_us = Samples::new();
    let mut migrated_us = Samples::new();

    pin_current_thread(0);
    let job = bench.job_at(task);
    let count = bench.subtask_count(&job, task);

    std::thread::scope(|s| {
        let (tx, rx) = mailbox();
        s.spawn(move || {
            pin_current_thread(1);
            host_loop(rx);
        });
        // Warm both paths before timing: the channel/thread wake-up
        // machinery, plus each thread's workspace and caches (one untimed
        // pass over every subtask locally and on the host).
        let (warm, wflag) = Envelope::new(|| {});
        // analyze: allow(panic): the host thread holds rx open for the scope's lifetime; a dead host must abort the probe loudly
        tx.send(warm).unwrap();
        wflag.wait(Duration::from_secs(5));
        for i in 0..count {
            bench.run_subtask(&job, task, i);
            let job_ref = &job;
            let bench_ref = &bench;
            let (env, flag) = Envelope::new(move || {
                bench_ref.run_subtask(job_ref, task, i);
            });
            // analyze: allow(panic): a wedged or dead host invalidates the measurement; abort loudly rather than record garbage
            tx.send(env).expect("host alive");
            // analyze: allow(panic): a wedged or dead host invalidates the measurement; abort loudly rather than record garbage
            assert!(flag.wait(Duration::from_secs(30)), "host hung");
        }
        // Interleave local and migrated trials so ambient load (other
        // tests, frequency scaling) perturbs both series equally.
        for t in 0..trials {
            let i = t % count;
            let t0 = Instant::now();
            bench.run_subtask(&job, task, i);
            local_us.push(as_us(t0.elapsed()));

            let job_ref = &job;
            let bench_ref = &bench;
            let t1 = Instant::now();
            let (env, flag) = Envelope::new(move || {
                bench_ref.run_subtask(job_ref, task, i);
            });
            // analyze: allow(panic): a wedged or dead host invalidates the measurement; abort loudly rather than record garbage
            tx.send(env).expect("host alive");
            // analyze: allow(panic): a wedged or dead host invalidates the measurement; abort loudly rather than record garbage
            assert!(flag.wait(Duration::from_secs(30)), "host hung");
            migrated_us.push(as_us(t1.elapsed()));
        }
        drop(tx);
    });

    let delta_us = {
        let mut l = local_us.clone();
        let mut m = migrated_us.clone();
        m.median() - l.median()
    };
    MigrationMeasurement {
        task,
        local_us,
        migrated_us,
        delta_us,
    }
}

/// Local vs. stolen per-subtask timings (µs): the lock-free counterpart
/// of [`MigrationMeasurement`].
#[derive(Clone, Debug)]
pub struct StealMeasurement {
    /// The task whose subtasks were measured.
    pub task: TaskKind,
    /// Per-subtask time when executed by the owning thread.
    pub local_us: Samples,
    /// Per-subtask time when stolen by another core (push → steal →
    /// execute → ready-flag round trip).
    pub stolen_us: Samples,
    /// Median overhead `stolen − local` (the steal-path δ), µs.
    pub delta_us: f64,
}

/// Spin-then-yield until `done` reads `epoch` (pure spinning would starve
/// the thief on machines with few CPUs).
fn wait_done(done: &AtomicU64, epoch: u64) {
    let mut spins = 0u32;
    while done.load(Ordering::Acquire) != epoch {
        if spins < 128 {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Measures a subtask locally vs. stolen by a second core through the
/// Chase–Lev deque — the steal-path analogue of
/// [`measure_migration_overhead`]. No allocation happens at handoff: the
/// owner pushes a `(epoch, index)` ticket, the thief steals it, runs the
/// subtask, and publishes completion through an atomic.
pub fn measure_steal_overhead(
    bw: Bandwidth,
    antennas: usize,
    mcs: u8,
    task: TaskKind,
    trials: usize,
) -> StealMeasurement {
    // analyze: allow(call:new): one-time bench construction before the timed loops; failing fast on a bad config is intended
    let bench = Workbench::new(bw, antennas, mcs, 0x057E_A100);
    let mut local_us = Samples::new();
    let mut stolen_us = Samples::new();

    pin_current_thread(0);
    let job = bench.job_at(task);
    let count = bench.subtask_count(&job, task);
    let (mut w, s) = steal::steal_pair(64);
    let done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|sc| {
        let job_ref = &job;
        let bench_ref = &bench;
        let done = &done;
        let stop = &stop;
        sc.spawn(move || {
            pin_current_thread(1);
            loop {
                match s.steal() {
                    Steal::Taken(t) => {
                        let (epoch, i) = steal::decode_ticket(t);
                        bench_ref.run_subtask(job_ref, task, i);
                        done.store(epoch, Ordering::Release);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        });
        // Warm both paths untimed: caches and workspaces on each thread.
        let mut epoch = 0u64;
        for i in 0..count {
            bench.run_subtask(&job, task, i);
            epoch += 1;
            // analyze: allow(panic): capacity proof — at most one outstanding ticket in a 64-slot deque
            w.push(steal::encode_ticket(epoch, i)).expect("deque room");
            wait_done(done, epoch);
        }
        // Interleave local and stolen trials so ambient load perturbs
        // both series equally.
        for t in 0..trials {
            let i = t % count;
            let t0 = Instant::now();
            bench.run_subtask(&job, task, i);
            local_us.push(as_us(t0.elapsed()));

            epoch += 1;
            let t1 = Instant::now();
            // analyze: allow(panic): capacity proof — at most one outstanding ticket in a 64-slot deque
            w.push(steal::encode_ticket(epoch, i)).expect("deque room");
            wait_done(done, epoch);
            stolen_us.push(as_us(t1.elapsed()));
        }
        stop.store(true, Ordering::Release);
    });

    let delta_us = {
        let mut l = local_us.clone();
        let mut m = stolen_us.clone();
        m.median() - l.median()
    };
    StealMeasurement {
        task,
        local_us,
        stolen_us,
        delta_us,
    }
}

/// Measures the serial wall time of one full subframe decode (µs) —
/// handy for calibrating node periods on the current machine.
pub fn measure_subframe_decode(bw: Bandwidth, antennas: usize, mcs: u8, trials: usize) -> Samples {
    let bench = Workbench::new(bw, antennas, mcs, 0xDEC0);
    let mut out = Samples::new();
    let guard = Mutex::new(());
    let _g = guard.lock();
    for _ in 0..trials {
        let t0 = Instant::now();
        let result = bench.rx.decode_subframe(&bench.samples).expect("decode");
        std::hint::black_box(result);
        out.push(as_us(t0.elapsed()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_two_cores_speed_up_decode() {
        // Narrow band keeps the test quick; MCS 16 at 5 MHz has ≥ 2 code
        // blocks, so splitting across cores must beat serial — but only
        // where a second CPU actually exists (CI containers may have one).
        let m = measure_stage_parallelism(Bandwidth::Mhz5, 1, 16, TaskKind::Decode, 5);
        let mut serial = m.serial_us.clone();
        let mut dual = m.two_core_us.clone();
        if crate::affinity::num_cpus() < 2 {
            // Single-CPU machine: the split degenerates to time-sharing.
            // The harness must still complete and produce sane samples.
            assert!(dual.median() > 0.0 && serial.median() > 0.0);
            return;
        }
        assert!(
            dual.median() < serial.median(),
            "two-core {} vs serial {}",
            dual.median(),
            serial.median()
        );
    }

    #[test]
    fn fig18_migration_has_positive_overhead() {
        // FFT subtasks are ~10 µs of work, so the fixed migration cost
        // (envelope + wake-up) dominates the comparison; decode subtasks
        // run hundreds of µs and their jitter would swamp the overhead.
        let m = measure_migration_overhead(Bandwidth::Mhz5, 1, 16, TaskKind::Fft, 12);
        let mut local = m.local_us.clone();
        let mut migrated = m.migrated_us.clone();
        assert!(
            migrated.median() >= local.median(),
            "migrated {} vs local {}",
            migrated.median(),
            local.median()
        );
    }

    #[test]
    fn steal_overhead_measurement_is_sane() {
        let m = measure_steal_overhead(Bandwidth::Mhz5, 1, 16, TaskKind::Fft, 12);
        let mut local = m.local_us.clone();
        let mut stolen = m.stolen_us.clone();
        assert_eq!(local.len(), 12);
        assert_eq!(stolen.len(), 12);
        assert!(local.median() > 0.0 && stolen.median() > 0.0);
        // The handoff adds cost, never removes it.
        assert!(
            stolen.median() >= local.median(),
            "stolen {} vs local {}",
            stolen.median(),
            local.median()
        );
    }

    #[test]
    fn subframe_decode_measurement_is_sane() {
        let mut s = measure_subframe_decode(Bandwidth::Mhz1_4, 1, 10, 3);
        assert_eq!(s.len(), 3);
        assert!(s.median() > 0.0);
    }
}
