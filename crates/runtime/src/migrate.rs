//! Migration plumbing: subtask envelopes, result-ready flags, host loops.
//!
//! A migrated subtask travels as a boxed closure through a crossbeam
//! channel to an idle worker; its completion is advertised through a
//! shared *result-ready* flag, exactly the mechanism of §3.2.1 — the
//! owner polls the flag after finishing its local share and recomputes
//! (recovery) anything still pending.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A migrated unit of work. The lifetime parameter lets scoped threads
/// migrate closures that borrow the owner's job state (no `'static`
/// requirement, no allocation of owned copies).
pub struct Envelope<'a> {
    work: Box<dyn FnOnce() + Send + 'a>,
    flag: ResultFlag,
}

impl<'a> Envelope<'a> {
    /// Wraps `work`; the returned [`ResultFlag`] turns ready when the
    /// envelope has been executed.
    pub fn new(work: impl FnOnce() + Send + 'a) -> (Self, ResultFlag) {
        let flag = ResultFlag::new();
        (
            Envelope {
                work: Box::new(work),
                flag: flag.clone(),
            },
            flag,
        )
    }

    /// Executes the work and raises the flag.
    pub fn run(self) {
        (self.work)();
        self.flag.set_ready();
    }
}

/// The per-subtask *result ready* flag of §3.2.1.
#[derive(Clone, Debug)]
pub struct ResultFlag(Arc<AtomicBool>);

impl ResultFlag {
    /// A fresh, not-ready flag.
    pub fn new() -> Self {
        ResultFlag(Arc::new(AtomicBool::new(false)))
    }

    /// Marks the result ready (release ordering pairs with [`Self::is_ready`]).
    pub fn set_ready(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Non-blocking readiness check.
    pub fn is_ready(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Waits until ready or until `timeout` elapses; returns the final
    /// readiness. Spins briefly, then yields — pure spinning would starve
    /// the executing thread on machines with few CPUs.
    pub fn wait(&self, timeout: std::time::Duration) -> bool {
        let start = std::time::Instant::now();
        let mut spins = 0u32;
        while !self.is_ready() {
            if start.elapsed() >= timeout {
                return self.is_ready();
            }
            if spins < 128 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        true
    }
}

impl Default for ResultFlag {
    fn default() -> Self {
        Self::new()
    }
}

/// Creates a host mailbox pair.
pub fn mailbox<'a>() -> (Sender<Envelope<'a>>, Receiver<Envelope<'a>>) {
    unbounded()
}

/// A host's service loop: executes envelopes until the channel closes.
/// Run this on a pinned thread to model one idle core hosting migrations.
pub fn host_loop(rx: Receiver<Envelope<'_>>) {
    while let Ok(envelope) = rx.recv() {
        envelope.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn envelope_runs_and_raises_flag() {
        let counter = AtomicUsize::new(0);
        let (env, flag) = Envelope::new(|| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!flag.is_ready());
        env.run();
        assert!(flag.is_ready());
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn host_loop_processes_until_close() {
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let (tx, rx) = mailbox();
            s.spawn(move || host_loop(rx));
            let mut flags = Vec::new();
            for _ in 0..16 {
                let hits = Arc::clone(&hits);
                let (env, flag) = Envelope::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                tx.send(env).unwrap();
                flags.push(flag);
            }
            for f in &flags {
                assert!(f.wait(std::time::Duration::from_secs(5)));
            }
            drop(tx); // close → host exits, scope joins
        });
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn migrated_closure_borrows_scoped_data() {
        // The 'a lifetime lets an envelope borrow stack data across threads
        // inside a scope — the pattern the node uses for PHY subtasks.
        let data = [1u64, 2, 3, 4];
        let slot = parking_lot::Mutex::new(0u64);
        let mut result = 0u64;
        std::thread::scope(|s| {
            let (tx, rx) = mailbox();
            s.spawn(move || host_loop(rx));
            let (env, flag) = Envelope::new(|| {
                *slot.lock() = data.iter().sum();
            });
            tx.send(env).unwrap();
            assert!(flag.wait(std::time::Duration::from_secs(5)));
            result = *slot.lock();
            drop(tx);
        });
        assert_eq!(result, 10);
    }

    #[test]
    fn wait_times_out_on_never_ready() {
        let flag = ResultFlag::new();
        let start = std::time::Instant::now();
        assert!(!flag.wait(std::time::Duration::from_millis(10)));
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
    }
}
