//! Migration plumbing: subtask envelopes, result-ready flags, host loops.
//!
//! A migrated subtask travels as a boxed closure through a crossbeam
//! channel to an idle worker; its completion is advertised through a
//! shared *result-ready* flag, exactly the mechanism of §3.2.1 — the
//! owner polls the flag after finishing its local share and recomputes
//! (recovery) anything still pending.
//!
//! ## Why this module survives the lock-free runtime
//!
//! The cluster's hot path migrates through `rtopex_core::steal` tickets,
//! which allocate nothing at handoff. The mailbox here is kept on
//! purpose: it **is** the sender-initiated baseline
//! ([`SchedulerMode::RtOpexMutex`](crate::cluster::SchedulerMode)) the
//! steal path is benchmarked against, and it remains the instrument
//! behind [`measure_migration_overhead`](crate::measure_migration_overhead)
//! (Fig. 18's local-vs-migrated δ) and
//! [`measure_stage_parallelism`](crate::measure_stage_parallelism)
//! (Fig. 4) — those harnesses need the generality of an arbitrary
//! closure crossing cores, which a fixed-kind ticket cannot express.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A migrated unit of work. The lifetime parameter lets scoped threads
/// migrate closures that borrow the owner's job state (no `'static`
/// requirement, no allocation of owned copies).
pub struct Envelope<'a> {
    work: Box<dyn FnOnce() + Send + 'a>,
    flag: ResultFlag,
}

impl<'a> Envelope<'a> {
    /// Wraps `work`; the returned [`ResultFlag`] turns ready when the
    /// envelope has been executed.
    pub fn new(work: impl FnOnce() + Send + 'a) -> (Self, ResultFlag) {
        let flag = ResultFlag::new();
        (
            Envelope {
                // analyze: allow(alloc): the boxed closure IS the mailbox handoff cost the steal path is benchmarked against
                work: Box::new(work),
                flag: flag.clone(),
            },
            flag,
        )
    }

    /// Executes the work and raises the flag.
    pub fn run(self) {
        (self.work)();
        self.flag.set_ready();
    }
}

/// The per-subtask *result ready* flag of §3.2.1.
#[derive(Clone, Debug)]
pub struct ResultFlag(Arc<AtomicBool>);

impl ResultFlag {
    /// A fresh, not-ready flag.
    pub fn new() -> Self {
        ResultFlag(Arc::new(AtomicBool::new(false)))
    }

    /// Marks the result ready (release ordering pairs with [`Self::is_ready`]).
    pub fn set_ready(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Non-blocking readiness check.
    pub fn is_ready(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Waits until ready or until `timeout` elapses; returns the final
    /// readiness. Spins briefly, then yields — pure spinning would starve
    /// the executing thread on machines with few CPUs.
    pub fn wait(&self, timeout: std::time::Duration) -> bool {
        let start = std::time::Instant::now();
        let mut spins = 0u32;
        while !self.is_ready() {
            if start.elapsed() >= timeout {
                return self.is_ready();
            }
            if spins < 128 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        true
    }
}

impl Default for ResultFlag {
    fn default() -> Self {
        Self::new()
    }
}

/// Creates a host mailbox pair.
pub fn mailbox<'a>() -> (Sender<Envelope<'a>>, Receiver<Envelope<'a>>) {
    unbounded()
}

/// A host's service loop: executes envelopes until the channel closes.
/// Run this on a pinned thread to model one idle core hosting migrations.
pub fn host_loop(rx: Receiver<Envelope<'_>>) {
    while let Ok(envelope) = rx.recv() {
        // analyze: allow(call:run): dispatches Envelope::run only — name-based resolution would pull every engine's run loop into the mailbox host
        envelope.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn envelope_runs_and_raises_flag() {
        let counter = AtomicUsize::new(0);
        let (env, flag) = Envelope::new(|| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!flag.is_ready());
        env.run();
        assert!(flag.is_ready());
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn host_loop_processes_until_close() {
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let (tx, rx) = mailbox();
            s.spawn(move || host_loop(rx));
            let mut flags = Vec::new();
            for _ in 0..16 {
                let hits = Arc::clone(&hits);
                let (env, flag) = Envelope::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                tx.send(env).unwrap();
                flags.push(flag);
            }
            for f in &flags {
                assert!(f.wait(std::time::Duration::from_secs(5)));
            }
            drop(tx); // close → host exits, scope joins
        });
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn migrated_subtask_borrows_scoped_data_via_steal() {
        // Successor of the old envelope-based test: the steal path ships a
        // plain (epoch, index) ticket, so the thief reads the borrowed
        // stage data directly — no boxed closure, no allocation at
        // handoff. Scoped threads give the same borrow guarantee the
        // envelope lifetime used to.
        use rtopex_core::steal::{decode_ticket, encode_ticket, steal_pair, Steal};
        let data = [1u64, 2, 3, 4];
        let slot = parking_lot::Mutex::new(0u64);
        let done = AtomicBool::new(false);
        let (mut w, s) = steal_pair(8);
        w.push(encode_ticket(1, 0)).unwrap();
        std::thread::scope(|sc| {
            let slot = &slot;
            let data = &data;
            let done = &done;
            sc.spawn(move || loop {
                match s.steal() {
                    Steal::Taken(t) => {
                        let (epoch, idx) = decode_ticket(t);
                        assert_eq!((epoch, idx), (1, 0));
                        *slot.lock() = data.iter().sum();
                        done.store(true, Ordering::Release);
                        break;
                    }
                    Steal::Retry => continue,
                    Steal::Empty => std::thread::yield_now(),
                }
            });
        });
        assert!(done.load(Ordering::Acquire));
        assert!(w.pop().is_none(), "ticket was stolen, not left behind");
        assert_eq!(*slot.lock(), 10);
    }

    #[test]
    fn wait_times_out_on_never_ready() {
        let flag = ResultFlag::new();
        let start = std::time::Instant::now();
        assert!(!flag.wait(std::time::Duration::from_millis(10)));
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
    }
}
