//! CPU pinning — the paper binds every processing thread to a single core
//! and overrides the OS scheduler (§4.1).
//!
//! The only `unsafe` in the repository lives here, wrapping the two libc
//! calls that have no safe std equivalent. Failures (no permission,
//! non-Linux platform, fewer cores than requested) degrade to a no-op:
//! the runtime still functions, just without the isolation guarantee —
//! the return value tells the caller which world it is in.

/// Result of a pinning attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// The calling thread is now bound to the requested core.
    Pinned,
    /// Pinning was not possible; the thread floats (soft fallback).
    Unpinned,
}

/// Number of CPUs available to this process.
pub fn num_cpus() -> usize {
    // SAFETY: sysconf with a valid name constant has no preconditions.
    let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_ONLN) };
    if n < 1 {
        1
    } else {
        n as usize
    }
}

/// Pins the *calling* thread to `core` (modulo the CPU count).
pub fn pin_current_thread(core: usize) -> PinOutcome {
    let cpu = core % num_cpus();
    // SAFETY: CPU_ZERO/CPU_SET operate on a locally owned cpu_set_t of the
    // correct size; sched_setaffinity reads it for the current thread (0).
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(cpu, &mut set);
        if libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0 {
            PinOutcome::Pinned
        } else {
            PinOutcome::Unpinned
        }
    }
}

/// Attempts to raise the calling thread to SCHED_FIFO (the paper's
/// real-time thread class). Almost always requires privileges; returns
/// `false` on refusal, which callers treat as the soft-real-time mode.
pub fn try_set_fifo_priority(priority: i32) -> bool {
    // SAFETY: sched_setscheduler with a valid param struct; no memory
    // handed over to the kernel beyond the call.
    unsafe {
        let param = libc::sched_param {
            sched_priority: priority,
        };
        libc::sched_setscheduler(0, libc::SCHED_FIFO, &param) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_count_positive() {
        assert!(num_cpus() >= 1);
    }

    #[test]
    fn pinning_does_not_crash_and_work_continues() {
        let outcome = pin_current_thread(0);
        // Either world is acceptable; computation must proceed in both.
        let x: u64 = (0..1000).sum();
        assert_eq!(x, 499_500);
        assert!(matches!(outcome, PinOutcome::Pinned | PinOutcome::Unpinned));
    }

    #[test]
    fn pinning_wraps_core_index() {
        // A core index beyond the CPU count must not fail catastrophically.
        let outcome = pin_current_thread(num_cpus() * 7 + 3);
        assert!(matches!(outcome, PinOutcome::Pinned | PinOutcome::Unpinned));
    }

    #[test]
    fn two_threads_pin_to_different_cores() {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    pin_current_thread(i);
                    (0..10_000u64).sum::<u64>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 49_995_000);
        }
    }

    #[test]
    fn fifo_priority_refusal_is_graceful() {
        // In an unprivileged container this returns false; either way the
        // process must keep running.
        let _ = try_set_fifo_priority(10);
    }
}
