//! CPU pinning — the paper binds every processing thread to a single core
//! and overrides the OS scheduler (§4.1).
//!
//! The only `unsafe` in the repository lives here, wrapping the two libc
//! calls that have no safe std equivalent. Failures (no permission,
//! non-Linux platform, fewer cores than requested) degrade to a no-op:
//! the runtime still functions, just without the isolation guarantee —
//! the return value tells the caller which world it is in.

/// Result of a pinning attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// The calling thread is now bound to the requested core.
    Pinned,
    /// Pinning was not possible; the thread floats (soft fallback).
    Unpinned,
}

/// Number of CPUs available to this process.
pub fn num_cpus() -> usize {
    // SAFETY: sysconf with a valid name constant has no preconditions.
    let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_ONLN) };
    if n < 1 {
        1
    } else {
        n as usize
    }
}

/// Pins the *calling* thread to `core` (modulo the CPU count).
pub fn pin_current_thread(core: usize) -> PinOutcome {
    let cpu = core % num_cpus();
    // SAFETY: CPU_ZERO/CPU_SET operate on a locally owned cpu_set_t of the
    // correct size; sched_setaffinity reads it for the current thread (0).
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(cpu, &mut set);
        if libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0 {
            PinOutcome::Pinned
        } else {
            PinOutcome::Unpinned
        }
    }
}

/// NUMA topology of the host: which CPU belongs to which memory domain
/// (socket). The cluster prefers stealing within a domain — a cross-socket
/// steal drags the victim's LLR snapshot and slot arena across the
/// interconnect, so it only happens as a last resort under a stiffer δ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NumaTopology {
    /// `cpu_domain[cpu]` — domain index of each CPU, dense from 0.
    cpu_domain: Vec<usize>,
    /// Number of distinct domains.
    domains: usize,
}

impl NumaTopology {
    /// Probes the host topology.
    ///
    /// Resolution order:
    /// 1. `RTOPEX_NUMA=<n>` — emulate `n` domains by splitting the CPU
    ///    list into `n` contiguous, equal-as-possible groups. This is how
    ///    CI exercises the cross-domain paths on single-socket machines;
    ///    `RTOPEX_NUMA=1` forces the flat topology.
    /// 2. sysfs (`/sys/devices/system/node/node*/cpulist`) on Linux.
    /// 3. A single flat domain.
    ///
    /// # Panics
    /// Panics if `RTOPEX_NUMA` is set but not a positive integer — a typo
    /// silently measuring the wrong topology is worse than a crash.
    pub fn detect() -> Self {
        let ncpu = num_cpus();
        if let Ok(v) = std::env::var("RTOPEX_NUMA") {
            let n: usize = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                // analyze: allow(panic): explicit user override with an unusable value; measuring under a silently wrong topology is worse than a crash
                .unwrap_or_else(|| panic!("RTOPEX_NUMA must be a positive integer, got {v:?}"));
            return Self::emulated(ncpu, n);
        }
        Self::from_sysfs(ncpu).unwrap_or_else(|| Self::emulated(ncpu, 1))
    }

    /// An emulated topology: `ncpu` CPUs split into `n` contiguous groups.
    pub fn emulated(ncpu: usize, n: usize) -> Self {
        let ncpu = ncpu.max(1);
        let n = n.clamp(1, ncpu);
        let cpu_domain = (0..ncpu).map(|c| c * n / ncpu).collect();
        NumaTopology {
            cpu_domain,
            domains: n,
        }
    }

    fn from_sysfs(ncpu: usize) -> Option<Self> {
        let mut cpu_domain = vec![0usize; ncpu];
        let mut domains = 0usize;
        loop {
            let path = format!("/sys/devices/system/node/node{domains}/cpulist");
            let Ok(list) = std::fs::read_to_string(&path) else {
                break;
            };
            for range in list.trim().split(',').filter(|s| !s.is_empty()) {
                let (lo, hi) = match range.split_once('-') {
                    Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
                    None => {
                        let c: usize = range.parse().ok()?;
                        (c, c)
                    }
                };
                let hi = hi.min(ncpu.saturating_sub(1));
                for d in cpu_domain.iter_mut().take(hi + 1).skip(lo) {
                    *d = domains;
                }
            }
            domains += 1;
        }
        (domains > 0).then_some(NumaTopology {
            cpu_domain,
            domains,
        })
    }

    /// Number of memory domains.
    pub fn num_domains(&self) -> usize {
        self.domains
    }

    /// Domain of `cpu` (modulo the CPU count, matching
    /// [`pin_current_thread`]'s wrapping).
    pub fn domain_of(&self, cpu: usize) -> usize {
        self.cpu_domain[cpu % self.cpu_domain.len()]
    }
}

/// Attempts to raise the calling thread to SCHED_FIFO (the paper's
/// real-time thread class). Almost always requires privileges; returns
/// `false` on refusal, which callers treat as the soft-real-time mode.
pub fn try_set_fifo_priority(priority: i32) -> bool {
    // SAFETY: sched_setscheduler with a valid param struct; no memory
    // handed over to the kernel beyond the call.
    unsafe {
        let param = libc::sched_param {
            sched_priority: priority,
        };
        libc::sched_setscheduler(0, libc::SCHED_FIFO, &param) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_count_positive() {
        assert!(num_cpus() >= 1);
    }

    #[test]
    fn pinning_does_not_crash_and_work_continues() {
        let outcome = pin_current_thread(0);
        // Either world is acceptable; computation must proceed in both.
        let x: u64 = (0..1000).sum();
        assert_eq!(x, 499_500);
        assert!(matches!(outcome, PinOutcome::Pinned | PinOutcome::Unpinned));
    }

    #[test]
    fn pinning_wraps_core_index() {
        // A core index beyond the CPU count must not fail catastrophically.
        let outcome = pin_current_thread(num_cpus() * 7 + 3);
        assert!(matches!(outcome, PinOutcome::Pinned | PinOutcome::Unpinned));
    }

    #[test]
    fn two_threads_pin_to_different_cores() {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    pin_current_thread(i);
                    (0..10_000u64).sum::<u64>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 49_995_000);
        }
    }

    #[test]
    fn fifo_priority_refusal_is_graceful() {
        // In an unprivileged container this returns false; either way the
        // process must keep running.
        let _ = try_set_fifo_priority(10);
    }

    #[test]
    fn emulated_topology_splits_contiguously() {
        let t = NumaTopology::emulated(8, 2);
        assert_eq!(t.num_domains(), 2);
        for c in 0..4 {
            assert_eq!(t.domain_of(c), 0);
        }
        for c in 4..8 {
            assert_eq!(t.domain_of(c), 1);
        }
        // Wrapping matches pin_current_thread.
        assert_eq!(t.domain_of(9), t.domain_of(1));
    }

    #[test]
    fn emulated_topology_clamps_degenerate_requests() {
        // More domains than CPUs collapses to one domain per CPU; zero
        // domains means flat.
        let t = NumaTopology::emulated(2, 8);
        assert_eq!(t.num_domains(), 2);
        assert_eq!(NumaTopology::emulated(4, 0).num_domains(), 1);
        let flat = NumaTopology::emulated(6, 1);
        assert!((0..6).all(|c| flat.domain_of(c) == 0));
    }

    #[test]
    fn emulated_split_is_balanced_when_uneven() {
        let t = NumaTopology::emulated(6, 4);
        let mut sizes = vec![0usize; t.num_domains()];
        for c in 0..6 {
            sizes[t.domain_of(c)] += 1;
        }
        assert!(sizes.iter().all(|&s| (1..=2).contains(&s)), "{sizes:?}");
        // Domains are dense: every index below num_domains appears.
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn detect_yields_usable_topology() {
        // Whatever world we run in (sysfs present or not), the result must
        // cover every CPU with a dense domain index.
        let t = NumaTopology::detect();
        assert!(t.num_domains() >= 1);
        for c in 0..num_cpus() {
            assert!(t.domain_of(c) < t.num_domains());
        }
    }
}
