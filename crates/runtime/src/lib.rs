//! # rtopex-runtime — the real pinned-thread C-RAN runtime
//!
//! Where `rtopex-sim` answers "what happens over millions of subframes",
//! this crate answers "does it actually work on real threads with the real
//! PHY". It reproduces the implementation layer of §4.1:
//!
//! * processing threads with a 1:1 kernel mapping, each **pinned to a
//!   dedicated core** (`sched_setaffinity`), with a graceful no-op
//!   fallback when pinning is not permitted;
//! * transport → processing signalling through a one-way condvar
//!   ("processing threads wait for the transport threads, not the other
//!   way around");
//! * **real subtask migration**: a parallelizable stage of the actual
//!   uplink job (`rtopex_phy::uplink::SubframeJob`) is split per
//!   Algorithm 1 and shipped to idle workers as closures; completion is
//!   signalled with per-subtask *result-ready* flags, and stragglers are
//!   recomputed locally (the Fig. 12 recovery path);
//! * a shared CPU-state table the workers update and poll.
//!
//! [`measure`] provides the micro-measurement harnesses behind Fig. 4
//! (task times on 1 vs 2 cores) and Fig. 18 (local vs migrated execution,
//! i.e. the real migration overhead δ on this machine); [`node`] runs a
//! complete closed-loop node — transport cadence, deadline checks,
//! ACK/NACK accounting — at a configurable subframe period.

#![warn(missing_docs)]
// Every unsafe operation (the libc affinity calls) must sit in an explicit
// `unsafe {}` block with its own `// SAFETY:` comment (enforced by
// `cargo xtask lint`) — an `unsafe fn` signature alone licenses nothing.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod cluster;
pub mod measure;
pub mod migrate;
pub mod node;

pub use cluster::{ClusterConfig, ClusterReport, CranCluster, FedReport, SchedulerMode};
pub use measure::{
    measure_migration_overhead, measure_stage_parallelism, measure_steal_overhead,
    StageMeasurement, StealMeasurement,
};
pub use node::{CranNode, NodeConfig, NodeReport};
