//! A complete closed-loop C-RAN compute node on real threads.
//!
//! This is the §4.1 implementation layer, end to end: a transport thread
//! releases pre-encoded subframes on a fixed cadence to per-core queues
//! (partitioned mapping), pinned processing threads decode them with the
//! **real** PHY, and — when RT-OPEX is enabled — parallelizable stages are
//! split per Algorithm 1 and shipped to idle workers as closures, with
//! result-ready flags and local recovery of stragglers.
//!
//! ## Time dilation
//!
//! The Rust PHY is slower than the paper's hand-vectorized OAI build at
//! wide bandwidths, so running a 1 ms cadence at 10 MHz is not meaningful
//! on this substrate. The node instead runs a configurable subframe period
//! (default: 1.4 MHz bandwidth at the true 1 ms LTE period, sustainable
//! since the kernels were SIMD-vectorized) with every deadline scaled
//! identically (`budget = 2·period − rtt_half`). All *ratios* — processing
//! time vs. budget, gap sizes vs. migration cost — stay faithful;
//! `DESIGN.md` records this substitution.

use crate::affinity::pin_current_thread;
use crate::migrate::{Envelope, ResultFlag};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_core::metrics::{DeadlineMetrics, MigrationStats};
use rtopex_core::migration::plan_migration;
use rtopex_core::partitioned::PartitionedSchedule;
use rtopex_core::time::Nanos;
use rtopex_model::stats::Samples;
use rtopex_phy::channel::{AwgnChannel, ChannelModel};
use rtopex_phy::params::Bandwidth;
use rtopex_phy::tasks::TaskKind;
use rtopex_phy::uplink::{BlockOut, FftOut, UplinkConfig, UplinkRx, UplinkTx};
use rtopex_phy::Cf32;
use rtopex_workload::{load_to_mcs, LoadTrace, TraceParams};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Configuration of a node run.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Channel bandwidth of every basestation.
    pub bandwidth: Bandwidth,
    /// Receive antennas per basestation.
    pub num_antennas: usize,
    /// Number of basestations (2 cores each, `⌈T_max⌉ = 2`).
    pub num_bs: usize,
    /// Subframes per basestation.
    pub subframes: usize,
    /// Subframe period (LTE: 1 ms; dilated here — see module docs).
    pub period: Duration,
    /// Emulated one-way transport latency.
    pub rtt_half: Duration,
    /// Enable RT-OPEX migration (false = plain partitioned).
    pub migrate: bool,
    /// Channel SNR for the pre-encoded subframes.
    pub snr_db: f64,
    /// Distinct MCS values to pre-encode; trace loads snap to the nearest.
    pub mcs_pool: Vec<u8>,
    /// Per-subtask migration cost estimate δ fed to Algorithm 1, µs.
    pub delta_us: f64,
    /// RNG seed (traces, payloads, channel noise).
    pub seed: u64,
}

impl NodeConfig {
    /// A demo run: 2 basestations, 1.4 MHz, 2 antennas, 1 ms period (the
    /// real LTE subframe cadence), RT-OPEX enabled. (The period was 2.5 ms
    /// before the PHY hot path went allocation-free and 1.5 ms before the
    /// kernels were vectorized; the SIMD decode sustains the true cadence
    /// with slack at this bandwidth — see `EXPERIMENTS.md`.)
    pub fn demo() -> Self {
        NodeConfig {
            bandwidth: Bandwidth::Mhz1_4,
            num_antennas: 2,
            num_bs: 2,
            subframes: 200,
            period: Duration::from_micros(1_000),
            rtt_half: Duration::from_micros(1_000),
            migrate: true,
            snr_db: 30.0,
            mcs_pool: vec![5, 10, 16, 22, 27],
            delta_us: 60.0,
            seed: 0xC0DE,
        }
    }

    /// Processing budget per subframe: `2·period − rtt_half` (Eq. 3,
    /// dilated).
    pub fn budget(&self) -> Duration {
        2 * self.period - self.rtt_half
    }

    /// Total processing cores (2 per basestation).
    pub fn total_cores(&self) -> usize {
        self.num_bs * 2
    }
}

/// Results of a node run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// Per-basestation deadline outcomes.
    pub deadline: DeadlineMetrics,
    /// Migration accounting (zero when `migrate` is off).
    pub migration: MigrationStats,
    /// Wall-clock processing times of completed subframes, µs.
    pub proc_us: Samples,
    /// Subframes dropped by the slack check.
    pub dropped: u64,
    /// Completed subframes whose transport-block CRC failed (NACKs).
    pub crc_failures: u64,
    /// Whether CPU pinning succeeded on this machine.
    pub pinned: bool,
}

/// A pre-encoded, channel-impaired subframe ready for decoding.
struct Prepared {
    mcs: u8,
    rx: UplinkRx,
    samples: Vec<Vec<Cf32>>,
}

/// Calibrated per-MCS execution estimates (µs), indexed like `mcs_pool`.
#[derive(Clone, Debug, Default)]
struct Calib {
    fft_batch_us: f64,
    demod_us: Vec<f64>,
    decode_block_us: Vec<f64>,
    decode_total_us: Vec<f64>,
}

struct OwnJob<'a> {
    bs: usize,
    prepared: &'a Prepared,
    pool_idx: usize,
    deadline: Instant,
}

enum Work<'a> {
    Own(Box<OwnJob<'a>>),
    Migrated(Envelope<'a>),
    Shutdown,
}

struct InboxState<'a> {
    own: VecDeque<Box<OwnJob<'a>>>,
    migrated: VecDeque<Envelope<'a>>,
    shutdown: bool,
}

struct Inbox<'a> {
    state: Mutex<InboxState<'a>>,
    cv: Condvar,
}

impl<'a> Inbox<'a> {
    fn new() -> Self {
        Inbox {
            state: Mutex::new(InboxState {
                own: VecDeque::new(),
                migrated: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }
}

struct Metrics {
    deadline: DeadlineMetrics,
    migration: MigrationStats,
    proc_us: Samples,
    dropped: u64,
    crc_failures: u64,
}

struct Shared<'a> {
    cfg: &'a NodeConfig,
    inboxes: Vec<Inbox<'a>>,
    /// True while a worker is parked in its waiting state.
    idle: Vec<AtomicBool>,
    metrics: Mutex<Metrics>,
    calib: Calib,
    schedule: PartitionedSchedule,
    /// Over-the-air instant of subframe 0; releases derive from it.
    epoch: Instant,
    pinned: AtomicBool,
}

impl<'a> Shared<'a> {
    /// Ideal release instant of subframe `j` (arrival + transport).
    fn release_instant(&self, j: u64) -> Instant {
        self.epoch + self.cfg.period * j as u32 + self.cfg.rtt_half
    }

    /// The next release that will preempt `core`, strictly after `now`.
    fn next_release(&self, core: usize, now: Instant) -> Instant {
        let phase = (core % 2) as u64;
        let base = self.epoch + self.cfg.rtt_half;
        let elapsed = now.saturating_duration_since(base);
        let mut j = (elapsed.as_nanos() / self.cfg.period.as_nanos()) as u64;
        while j % 2 != phase || self.release_instant(j) <= now {
            j += 1;
        }
        if j >= self.cfg.subframes as u64 {
            // No more releases: a generous horizon.
            return now + self.cfg.period * 64;
        }
        self.release_instant(j)
    }

    /// Idle-core candidates for Algorithm 1 at `now` (free time in ns),
    /// written into the caller's scratch vector so the per-subframe hot
    /// path performs no allocation once the scratch has grown.
    fn idle_cores_into(&self, now: Instant, me: usize, out: &mut Vec<(usize, Nanos)>) {
        out.clear();
        for c in 0..self.inboxes.len() {
            if c == me || !self.idle[c].load(Ordering::Acquire) {
                continue;
            }
            let window = self.next_release(c, now).saturating_duration_since(now);
            let w = Nanos(window.as_nanos() as u64);
            if w > Nanos::ZERO {
                out.push((c, w));
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    fn push_migrated(&self, host: usize, env: Envelope<'a>) {
        let mut st = self.inboxes[host].state.lock();
        st.migrated.push_back(env);
        drop(st);
        self.inboxes[host].cv.notify_one();
    }
}

/// The node itself.
pub struct CranNode {
    cfg: NodeConfig,
}

impl CranNode {
    /// Creates a node.
    ///
    /// # Panics
    /// Panics on an empty MCS pool or zero basestations/subframes.
    pub fn new(cfg: NodeConfig) -> Self {
        assert!(!cfg.mcs_pool.is_empty(), "MCS pool must be non-empty");
        assert!(cfg.num_bs > 0 && cfg.subframes > 0, "empty run");
        CranNode { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Pre-encodes one subframe per pool MCS.
    fn prepare_pool(&self) -> Vec<Prepared> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x9E37);
        self.cfg
            .mcs_pool
            .iter()
            .map(|&mcs| {
                let cfg = UplinkConfig::new(self.cfg.bandwidth, self.cfg.num_antennas, mcs)
                    .expect("config");
                let tx = UplinkTx::new(cfg.clone());
                let payload: Vec<u8> = (0..cfg.transport_block_bytes())
                    .map(|_| rng.gen())
                    .collect();
                let sf = tx.encode_subframe(&payload).expect("encode");
                let mut chan = AwgnChannel::new(self.cfg.snr_db);
                let samples = chan.apply(&sf.samples, self.cfg.num_antennas, &mut rng);
                Prepared {
                    mcs,
                    rx: UplinkRx::new(cfg),
                    samples,
                }
            })
            .collect()
    }

    /// Measures per-stage execution on this machine so Algorithm 1 has
    /// deterministic `tp` estimates. Each pool entry is decoded serially
    /// three times and the per-stage **median** is kept: a single trial is
    /// vulnerable to a cold cache or a scheduler hiccup inflating an
    /// estimate, which would then bias every migration decision of the run.
    fn calibrate(pool: &[Prepared]) -> Calib {
        const TRIALS: usize = 3;
        let mut calib = Calib::default();
        let mut fft_batches = Samples::new();
        for p in pool {
            let mut fft_trials = Samples::new();
            let mut demod_trials = Samples::new();
            let mut dec_trials = Samples::new();
            let mut blocks = 1usize;
            for _ in 0..TRIALS {
                let mut job = p.rx.start_job(&p.samples).expect("job");
                let t0 = Instant::now();
                for i in 0..job.fft_subtask_count() {
                    let out = job.run_fft_subtask(i);
                    job.absorb_fft(out);
                }
                let fft_us = t0.elapsed().as_secs_f64() * 1e6;
                fft_trials.push(fft_us / p.samples.len() as f64);
                job.finish_fft();
                let t1 = Instant::now();
                for i in 0..job.demod_subtask_count() {
                    let out = job.run_demod_subtask(i);
                    job.absorb_demod(out);
                }
                demod_trials.push(t1.elapsed().as_secs_f64() * 1e6);
                let t2 = Instant::now();
                blocks = job.decode_subtask_count();
                for r in 0..blocks {
                    let out = job.run_decode_subtask(r);
                    job.absorb_decode(out);
                }
                dec_trials.push(t2.elapsed().as_secs_f64() * 1e6);
                let _ = job.finish();
            }
            fft_batches.push(fft_trials.median());
            calib.demod_us.push(demod_trials.median());
            let dec_us = dec_trials.median();
            calib.decode_total_us.push(dec_us);
            calib.decode_block_us.push(dec_us / blocks as f64);
        }
        calib.fft_batch_us = fft_batches.mean();
        calib
    }

    /// Per-BS pool-index sequences from the tower traces.
    fn schedule_mcs(&self, pool: &[Prepared]) -> Vec<Vec<usize>> {
        (0..self.cfg.num_bs)
            .map(|bs| {
                let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(bs as u64 * 7919));
                let mut trace = LoadTrace::new(TraceParams::tower(bs % 4));
                (0..self.cfg.subframes)
                    .map(|_| {
                        let mcs = load_to_mcs(trace.next_load(&mut rng)).index();
                        // Snap to the nearest pre-encoded MCS.
                        pool.iter()
                            .enumerate()
                            .min_by_key(|(_, p)| (p.mcs as i32 - mcs as i32).abs())
                            .map(|(i, _)| i)
                            .expect("non-empty pool")
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs the node to completion (blocking) and reports.
    pub fn run(&self) -> NodeReport {
        let pool = self.prepare_pool();
        let calib = Self::calibrate(&pool);
        let mcs_seq = self.schedule_mcs(&pool);
        let cores = self.cfg.total_cores();
        let shared = Shared {
            cfg: &self.cfg,
            inboxes: (0..cores).map(|_| Inbox::new()).collect(),
            idle: (0..cores).map(|_| AtomicBool::new(false)).collect(),
            metrics: Mutex::new(Metrics {
                deadline: DeadlineMetrics::new(self.cfg.num_bs),
                migration: MigrationStats::default(),
                proc_us: Samples::new(),
                dropped: 0,
                crc_failures: 0,
            }),
            calib,
            schedule: PartitionedSchedule::with_cores_per_bs(self.cfg.num_bs, 2),
            epoch: Instant::now() + Duration::from_millis(20),
            pinned: AtomicBool::new(false),
        };

        std::thread::scope(|s| {
            let shared = &shared;
            let pool = &pool;
            for core in 0..cores {
                s.spawn(move || worker_loop(core, shared, pool));
            }
            // Transport: this thread plays the paper's transport component.
            for j in 0..self.cfg.subframes as u64 {
                let target = shared.release_instant(j);
                sleep_until(target);
                for (bs, seq) in mcs_seq.iter().enumerate() {
                    let core = shared.schedule.core_for(bs, j);
                    let pool_idx = seq[j as usize];
                    let job = Box::new(OwnJob {
                        bs,
                        prepared: &pool[pool_idx],
                        pool_idx,
                        deadline: target + self.cfg.budget(),
                    });
                    let mut st = shared.inboxes[core].state.lock();
                    st.own.push_back(job);
                    drop(st);
                    shared.inboxes[core].cv.notify_one();
                }
            }
            // Drain, then shut down.
            std::thread::sleep(self.cfg.budget() + self.cfg.period * 4);
            for inbox in &shared.inboxes {
                inbox.state.lock().shutdown = true;
                inbox.cv.notify_all();
            }
        });

        let m = shared.metrics.into_inner();
        NodeReport {
            deadline: m.deadline,
            migration: m.migration,
            proc_us: m.proc_us,
            dropped: m.dropped,
            crc_failures: m.crc_failures,
            pinned: shared.pinned.load(Ordering::Relaxed),
        }
    }
}

fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let remaining = target - now;
        if remaining > Duration::from_micros(300) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

fn worker_loop<'a>(me: usize, shared: &Shared<'a>, pool: &'a [Prepared]) {
    if matches!(pin_current_thread(me), crate::affinity::PinOutcome::Pinned) && me == 0 {
        shared.pinned.store(true, Ordering::Relaxed);
    }
    // Pre-grow this worker's thread-local PHY workspace for every pool
    // configuration, so no subframe — own or migrated — pays allocation
    // cost inside its deadline window.
    rtopex_phy::workspace::with_thread_workspace(|ws| {
        for p in pool {
            ws.warm(p.rx.config());
        }
    });
    // Reused by every Algorithm 1 invocation on this worker (idle-core
    // candidate list); grows once, never reallocates afterwards.
    let mut idle_scratch: Vec<(usize, Nanos)> = Vec::with_capacity(shared.inboxes.len());
    loop {
        let work = {
            let mut st = shared.inboxes[me].state.lock();
            loop {
                if let Some(j) = st.own.pop_front() {
                    break Work::Own(j);
                }
                if let Some(e) = st.migrated.pop_front() {
                    break Work::Migrated(e);
                }
                if st.shutdown {
                    break Work::Shutdown;
                }
                shared.idle[me].store(true, Ordering::Release);
                shared.inboxes[me].cv.wait(&mut st);
                shared.idle[me].store(false, Ordering::Release);
            }
        };
        match work {
            Work::Own(job) => process_subframe(me, shared, &job, &mut idle_scratch),
            Work::Migrated(env) => env.run(),
            Work::Shutdown => return,
        }
    }
}

/// Executes a parallelizable stage, migrating per Algorithm 1 when
/// enabled. `run_local` executes subtask `i` on the owner; `make_remote`
/// builds the closure a host will run for subtask `i`; `recover`
/// recomputes a straggler locally.
#[allow(clippy::too_many_arguments)]
fn parallel_stage<'a>(
    me: usize,
    shared: &Shared<'a>,
    kind: TaskKind,
    count: usize,
    tp_us: f64,
    deadline: Instant,
    run_local: &mut dyn FnMut(usize),
    make_remote: &dyn Fn(usize) -> (Envelope<'a>, ResultFlag),
    recover: &mut dyn FnMut(usize),
    idle_scratch: &mut Vec<(usize, Nanos)>,
) {
    if !shared.cfg.migrate || count <= 1 {
        for i in 0..count {
            run_local(i);
        }
        if shared.cfg.migrate {
            shared.metrics.lock().migration.record_stage(kind, count, 0);
        }
        return;
    }
    let now = Instant::now();
    shared.idle_cores_into(now, me, idle_scratch);
    let plan = plan_migration(
        count,
        Nanos::from_us_f64(tp_us),
        Nanos::from_us_f64(shared.cfg.delta_us),
        idle_scratch,
    );
    // Owner keeps the first `local` subtasks; batches take the tail.
    let mut next = plan.local;
    let mut outstanding: Vec<(usize, ResultFlag)> = Vec::new();
    for &(host, n) in &plan.assignments {
        for _ in 0..n {
            let (env, flag) = make_remote(next);
            shared.push_migrated(host, env);
            outstanding.push((next, flag));
            next += 1;
        }
    }
    debug_assert_eq!(next, count);
    for i in 0..plan.local {
        run_local(i);
    }
    // Consume migrated results; recover stragglers (Fig. 12 state 6).
    let mut recoveries = 0usize;
    for (i, flag) in outstanding {
        let budget = deadline.saturating_duration_since(Instant::now());
        if !flag.wait(budget.min(Duration::from_millis(50))) {
            recover(i);
            recoveries += 1;
        }
    }
    let mut m = shared.metrics.lock();
    m.migration.record_stage(kind, count, plan.migrated());
    if recoveries > 0 {
        m.migration.record_recovery(recoveries);
    }
}

fn process_subframe<'a>(
    me: usize,
    shared: &Shared<'a>,
    job: &OwnJob<'a>,
    idle_scratch: &mut Vec<(usize, Nanos)>,
) {
    let cfg = shared.cfg;
    let prepared = job.prepared;
    let started = Instant::now();
    let pidx = job.pool_idx;
    let calib = &shared.calib;

    let drop_task = |shared: &Shared<'a>, bs: usize| {
        let mut m = shared.metrics.lock();
        m.deadline.record(bs, true);
        m.dropped += 1;
    };

    // Stage slack checks use the calibrated serial stage estimates.
    let est_fft = Duration::from_secs_f64(calib.fft_batch_us * cfg.num_antennas as f64 / 1e6);
    if Instant::now() + est_fft > job.deadline {
        drop_task(shared, job.bs);
        return;
    }

    let mut phy_job = prepared
        .rx
        .start_job(&prepared.samples)
        .expect("prepared samples are consistent");

    // --- FFT task: subtask = one antenna's 14-symbol batch. ---
    let antennas = cfg.num_antennas;
    let fft_slots: Arc<Vec<Mutex<Option<Vec<FftOut>>>>> =
        Arc::new((0..antennas).map(|_| Mutex::new(None)).collect());
    {
        let rx = &prepared.rx;
        let samples = &prepared.samples;
        let mut absorbed: Vec<Vec<FftOut>> = Vec::new();
        let mut run_local = |b: usize| {
            let outs: Vec<FftOut> = (b * 14..(b + 1) * 14)
                .map(|i| rx.run_fft_subtask_on(samples, i))
                .collect();
            absorbed.push(outs);
        };
        let make_remote = |b: usize| {
            let slots = Arc::clone(&fft_slots);
            Envelope::new(move || {
                let outs: Vec<FftOut> = (b * 14..(b + 1) * 14)
                    .map(|i| rx.run_fft_subtask_on(samples, i))
                    .collect();
                *slots[b].lock() = Some(outs);
            })
        };
        let fft_slots_rec = Arc::clone(&fft_slots);
        let mut recover = move |b: usize| {
            let outs: Vec<FftOut> = (b * 14..(b + 1) * 14)
                .map(|i| rx.run_fft_subtask_on(samples, i))
                .collect();
            *fft_slots_rec[b].lock() = Some(outs);
        };
        parallel_stage(
            me,
            shared,
            TaskKind::Fft,
            antennas,
            calib.fft_batch_us,
            job.deadline,
            &mut run_local,
            &make_remote,
            &mut recover,
            idle_scratch,
        );
        for outs in absorbed {
            for o in outs {
                phy_job.absorb_fft(o);
            }
        }
        for slot in fft_slots.iter() {
            if let Some(outs) = slot.lock().take() {
                for o in outs {
                    phy_job.absorb_fft(o);
                }
            }
        }
    }
    phy_job.finish_fft();

    // --- Demod task: serial on the owner. ---
    let est_demod = Duration::from_secs_f64(calib.demod_us[pidx] / 1e6);
    if Instant::now() + est_demod > job.deadline {
        drop_task(shared, job.bs);
        return;
    }
    for i in 0..phy_job.demod_subtask_count() {
        let out = phy_job.run_demod_subtask(i);
        phy_job.absorb_demod(out);
    }

    // --- Decode task: subtask = one code block. ---
    let est_dec = Duration::from_secs_f64(calib.decode_total_us[pidx] / 1e6);
    // Migration roughly halves the decode critical path; the slack check
    // is plan-aware like the simulator's.
    let est_effective = if cfg.migrate && phy_job.decode_subtask_count() > 1 {
        est_dec / 2 + Duration::from_secs_f64(cfg.delta_us / 1e6)
    } else {
        est_dec
    };
    if Instant::now() + est_effective > job.deadline {
        drop_task(shared, job.bs);
        return;
    }
    let blocks = phy_job.decode_subtask_count();
    let dec_slots: Arc<Vec<Mutex<Option<BlockOut>>>> =
        Arc::new((0..blocks).map(|_| Mutex::new(None)).collect());
    // The shareable LLR snapshot is built lazily, on the first envelope
    // Algorithm 1 actually ships: a subframe that stays local (the common
    // case) never pays the copy.
    let llr_cache: OnceLock<Arc<Vec<f32>>> = OnceLock::new();
    {
        let rx = &prepared.rx;
        let phy_job_ref = &phy_job;
        let mut local_outs: Vec<BlockOut> = Vec::new();
        let mut run_local = |r: usize| {
            local_outs.push(phy_job_ref.run_decode_subtask(r));
        };
        let make_remote = |r: usize| {
            let llrs =
                Arc::clone(llr_cache.get_or_init(|| Arc::new(phy_job_ref.coded_llrs().to_vec())));
            let slots = Arc::clone(&dec_slots);
            Envelope::new(move || {
                let out = rx.run_decode_subtask_on(&llrs, r);
                *slots[r].lock() = Some(out);
            })
        };
        let mut recover = |r: usize| {
            let llrs = llr_cache
                .get()
                .expect("recovery implies a migration happened");
            let out = rx.run_decode_subtask_on(llrs, r);
            *dec_slots[r].lock() = Some(out);
        };
        parallel_stage(
            me,
            shared,
            TaskKind::Decode,
            blocks,
            calib.decode_block_us[pidx],
            job.deadline,
            &mut run_local,
            &make_remote,
            &mut recover,
            idle_scratch,
        );
        for out in local_outs {
            phy_job.absorb_decode(out);
        }
        for slot in dec_slots.iter() {
            if let Some(out) = slot.lock().take() {
                phy_job.absorb_decode(out);
            }
        }
    }

    let output = phy_job.finish().expect("all subtasks absorbed");
    let finished = Instant::now();
    let mut m = shared.metrics.lock();
    m.deadline.record(job.bs, finished > job.deadline);
    if !output.crc_ok {
        m.crc_failures += 1;
    }
    m.proc_us
        .push(finished.saturating_duration_since(started).as_secs_f64() * 1e6);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(migrate: bool) -> NodeConfig {
        // 5 MHz so high-MCS subframes carry multiple code blocks and the
        // FFT batch stays above the migration cost δ — at 1.4 MHz the
        // optimized PHY finishes every stage faster than δ, and
        // Algorithm 1 (correctly) never migrates.
        NodeConfig {
            bandwidth: Bandwidth::Mhz5,
            subframes: 40,
            num_bs: 2,
            period: Duration::from_micros(3_000),
            rtt_half: Duration::from_micros(1_000),
            migrate,
            mcs_pool: vec![5, 16, 27],
            ..NodeConfig::demo()
        }
    }

    #[test]
    fn node_processes_all_subframes() {
        let node = CranNode::new(quick_cfg(true));
        let r = node.run();
        assert_eq!(r.deadline.total_subframes(), 2 * 40);
        // Completions + drops account for everything.
        assert_eq!(r.proc_us.len() as u64 + r.dropped, 2 * 40);
    }

    #[test]
    fn partitioned_node_never_migrates() {
        let node = CranNode::new(quick_cfg(false));
        let r = node.run();
        assert_eq!(r.migration.fft_migrated + r.migration.decode_migrated, 0);
    }

    #[test]
    fn rtopex_node_migrates_and_decodes_correctly() {
        let node = CranNode::new(quick_cfg(true));
        let r = node.run();
        // Real closures crossed threads…
        assert!(
            r.migration.fft_migrated + r.migration.decode_migrated > 0,
            "no migrations happened"
        );
        // …and the PHY results stayed correct: at 30 dB every completed
        // subframe should pass its CRC.
        assert_eq!(r.crc_failures, 0, "migration corrupted decodes");
    }

    #[test]
    fn budget_math() {
        let cfg = NodeConfig::demo();
        assert_eq!(cfg.budget(), Duration::from_micros(1_000));
        assert_eq!(cfg.total_cores(), 4);
    }

    #[test]
    #[should_panic(expected = "MCS pool")]
    fn empty_pool_rejected() {
        CranNode::new(NodeConfig {
            mcs_pool: vec![],
            ..NodeConfig::demo()
        });
    }
}
