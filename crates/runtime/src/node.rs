//! A complete closed-loop C-RAN compute node on real threads.
//!
//! This is the §4.1 implementation layer, end to end: a transport thread
//! releases pre-encoded subframes on a fixed cadence to per-core queues
//! (partitioned mapping), pinned processing threads decode them with the
//! **real** PHY, and — when RT-OPEX is enabled — parallelizable stages are
//! split per Algorithm 1 and shipped to idle workers, with result-ready
//! slots and local recovery of stragglers.
//!
//! Since the cluster runtime landed, [`CranNode`] is a compatibility
//! facade: it drives a [`CranCluster`](crate::cluster::CranCluster) with
//! one cell per basestation, selecting the mutex-mailbox RT-OPEX path
//! (the historical behaviour of this module) when `migrate` is on. New
//! code — the multi-cell experiments, the lock-free steal path — should
//! use [`crate::cluster`] directly.
//!
//! ## Time dilation
//!
//! The Rust PHY is slower than the paper's hand-vectorized OAI build at
//! wide bandwidths, so running a 1 ms cadence at 10 MHz is not meaningful
//! on this substrate. The node instead runs a configurable subframe period
//! (default: 1.4 MHz bandwidth at the true 1 ms LTE period, sustainable
//! since the kernels were SIMD-vectorized) with every deadline scaled
//! identically (`budget = 2·period − rtt_half`). All *ratios* — processing
//! time vs. budget, gap sizes vs. migration cost — stay faithful;
//! `DESIGN.md` records this substitution.

use crate::cluster::{ClusterConfig, CranCluster, SchedulerMode};
use rtopex_core::metrics::{DeadlineMetrics, MigrationStats};
use rtopex_model::stats::Samples;
use rtopex_phy::params::Bandwidth;
use std::time::Duration;

/// Configuration of a node run.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Channel bandwidth of every basestation.
    pub bandwidth: Bandwidth,
    /// Receive antennas per basestation.
    pub num_antennas: usize,
    /// Number of basestations (2 cores each, `⌈T_max⌉ = 2`).
    pub num_bs: usize,
    /// Subframes per basestation.
    pub subframes: usize,
    /// Subframe period (LTE: 1 ms; dilated here — see module docs).
    pub period: Duration,
    /// Emulated one-way transport latency.
    pub rtt_half: Duration,
    /// Enable RT-OPEX migration (false = plain partitioned).
    pub migrate: bool,
    /// Channel SNR for the pre-encoded subframes.
    pub snr_db: f64,
    /// Distinct MCS values to pre-encode; trace loads snap to the nearest.
    pub mcs_pool: Vec<u8>,
    /// Per-subtask migration cost estimate δ fed to Algorithm 1, µs.
    pub delta_us: f64,
    /// RNG seed (traces, payloads, channel noise).
    pub seed: u64,
}

impl NodeConfig {
    /// A demo run: 2 basestations, 1.4 MHz, 2 antennas, 1 ms period (the
    /// real LTE subframe cadence), RT-OPEX enabled. (The period was 2.5 ms
    /// before the PHY hot path went allocation-free and 1.5 ms before the
    /// kernels were vectorized; the SIMD decode sustains the true cadence
    /// with slack at this bandwidth — see `EXPERIMENTS.md`.)
    pub fn demo() -> Self {
        NodeConfig {
            bandwidth: Bandwidth::Mhz1_4,
            num_antennas: 2,
            num_bs: 2,
            subframes: 200,
            period: Duration::from_micros(1_000),
            rtt_half: Duration::from_micros(1_000),
            migrate: true,
            snr_db: 30.0,
            mcs_pool: vec![5, 10, 16, 22, 27],
            delta_us: 60.0,
            seed: 0xC0DE,
        }
    }

    /// Processing budget per subframe: `2·period − rtt_half` (Eq. 3,
    /// dilated).
    pub fn budget(&self) -> Duration {
        2 * self.period - self.rtt_half
    }

    /// Total processing cores (2 per basestation).
    pub fn total_cores(&self) -> usize {
        self.num_bs * 2
    }

    /// The equivalent cluster configuration: one cell per basestation,
    /// with `migrate` selecting the mutex-mailbox RT-OPEX path.
    pub fn to_cluster(&self) -> ClusterConfig {
        ClusterConfig {
            bandwidth: self.bandwidth,
            num_antennas: self.num_antennas,
            num_cells: self.num_bs,
            subframes: self.subframes,
            period: self.period,
            rtt_half: self.rtt_half,
            mode: if self.migrate {
                SchedulerMode::RtOpexMutex
            } else {
                SchedulerMode::Partitioned
            },
            snr_db: self.snr_db,
            mcs_pool: self.mcs_pool.clone(),
            delta_us: self.delta_us,
            seed: self.seed,
            batch_decode: true,
        }
    }
}

/// Results of a node run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// Per-basestation deadline outcomes.
    pub deadline: DeadlineMetrics,
    /// Migration accounting (zero when `migrate` is off).
    pub migration: MigrationStats,
    /// Wall-clock processing times of completed subframes, µs.
    pub proc_us: Samples,
    /// Subframes dropped by the slack check.
    pub dropped: u64,
    /// Completed subframes whose transport-block CRC failed (NACKs).
    pub crc_failures: u64,
    /// Whether CPU pinning succeeded on this machine.
    pub pinned: bool,
}

/// The node itself: a single-tenant facade over the cluster runtime.
pub struct CranNode {
    cfg: NodeConfig,
}

impl CranNode {
    /// Creates a node.
    ///
    /// # Panics
    /// Panics on an empty MCS pool or zero basestations/subframes.
    pub fn new(cfg: NodeConfig) -> Self {
        assert!(!cfg.mcs_pool.is_empty(), "MCS pool must be non-empty");
        assert!(cfg.num_bs > 0 && cfg.subframes > 0, "empty run");
        CranNode { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Runs the node to completion (blocking) and reports.
    pub fn run(&self) -> NodeReport {
        let r = CranCluster::new(self.cfg.to_cluster()).run();
        NodeReport {
            deadline: r.deadline,
            migration: r.migration,
            proc_us: r.proc_us,
            dropped: r.dropped,
            crc_failures: r.crc_failures,
            pinned: r.pinned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(migrate: bool) -> NodeConfig {
        // 5 MHz so high-MCS subframes carry multiple code blocks and the
        // FFT batch stays above the migration cost δ — at 1.4 MHz the
        // optimized PHY finishes every stage faster than δ, and
        // Algorithm 1 (correctly) never migrates.
        NodeConfig {
            bandwidth: Bandwidth::Mhz5,
            subframes: 40,
            num_bs: 2,
            period: Duration::from_micros(3_000),
            rtt_half: Duration::from_micros(1_000),
            migrate,
            mcs_pool: vec![5, 16, 27],
            ..NodeConfig::demo()
        }
    }

    #[test]
    fn node_processes_all_subframes() {
        let node = CranNode::new(quick_cfg(true));
        let r = node.run();
        assert_eq!(r.deadline.total_subframes(), 2 * 40);
        // Completions + drops account for everything.
        assert_eq!(r.proc_us.len() as u64 + r.dropped, 2 * 40);
    }

    #[test]
    fn partitioned_node_never_migrates() {
        let node = CranNode::new(quick_cfg(false));
        let r = node.run();
        assert_eq!(r.migration.fft_migrated + r.migration.decode_migrated, 0);
    }

    #[test]
    fn rtopex_node_migrates_and_decodes_correctly() {
        let node = CranNode::new(quick_cfg(true));
        let r = node.run();
        // Real subtasks crossed threads…
        assert!(
            r.migration.fft_migrated + r.migration.decode_migrated > 0,
            "no migrations happened"
        );
        // …and the PHY results stayed correct: at 30 dB every completed
        // subframe should pass its CRC.
        assert_eq!(r.crc_failures, 0, "migration corrupted decodes");
    }

    #[test]
    fn budget_math() {
        let cfg = NodeConfig::demo();
        assert_eq!(cfg.budget(), Duration::from_micros(1_000));
        assert_eq!(cfg.total_cores(), 4);
        assert_eq!(cfg.to_cluster().mode, SchedulerMode::RtOpexMutex);
    }

    #[test]
    #[should_panic(expected = "MCS pool")]
    fn empty_pool_rejected() {
        CranNode::new(NodeConfig {
            mcs_pool: vec![],
            ..NodeConfig::demo()
        });
    }
}
