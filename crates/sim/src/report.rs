//! Aggregated results of one simulation run.

use rtopex_core::metrics::{DeadlineMetrics, GapTracker, MigrationStats};
use rtopex_model::stats::{Histogram, Samples};

/// Bounds and resolution of the always-on processing-time histogram:
/// 0–8 ms in 256 bins (31.25 µs/bin). 8 ms comfortably covers the
/// worst modeled subframe (MCS 27, recovery path included); anything
/// beyond lands in the overflow counter and still merges exactly.
const PROC_HIST_LO_US: f64 = 0.0;
const PROC_HIST_HI_US: f64 = 8_000.0;
const PROC_HIST_BINS: usize = 256;

/// Everything an experiment needs from one run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-basestation deadline outcomes (Fig. 15/17 material).
    pub deadline: DeadlineMetrics,
    /// Migration accounting (Fig. 16 right; zero under non-RT-OPEX).
    pub migration: MigrationStats,
    /// Idle-gap durations on processing cores (Fig. 16 left). Empty when
    /// `record_samples` is off.
    pub gaps: GapTracker,
    /// Per-subframe processing times, µs (Fig. 19 right), for subframes
    /// that ran to completion (drops excluded). Empty when
    /// `record_samples` is off.
    pub proc_times_us: Samples,
    /// Fixed-memory processing-time histogram (µs), recorded for every
    /// completed subframe regardless of `record_samples` — the
    /// fleet-scale latency distribution with O(1) memory per run, and
    /// the payload the determinism test compares bin for bin.
    pub proc_hist: Histogram,
    /// Subframes dropped by the slack check / queue (subset of misses).
    pub dropped: u64,
    /// Subframes whose (modeled) decode failed its CRC — NACKs that are
    /// *not* deadline misses.
    pub crc_failures: u64,
}

impl SimReport {
    /// Creates an empty report for `num_bs` basestations.
    pub fn new(num_bs: usize) -> Self {
        SimReport {
            deadline: DeadlineMetrics::new(num_bs),
            migration: MigrationStats::default(),
            gaps: GapTracker::new(),
            proc_times_us: Samples::new(),
            proc_hist: Histogram::new(PROC_HIST_LO_US, PROC_HIST_HI_US, PROC_HIST_BINS),
            dropped: 0,
            crc_failures: 0,
        }
    }

    /// Convenience: the aggregate deadline-miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.deadline.overall().rate()
    }

    /// Merges another run's report into this one (per-host reports
    /// combined by the fleet layer). Counter and histogram merges are
    /// associative and commutative; sample merges append in call order —
    /// the fleet merges in ascending host order regardless of shard
    /// count, which is what makes the merged report bit-identical for
    /// any shard/thread configuration.
    ///
    /// # Panics
    /// Panics if the reports cover different basestation counts.
    pub fn merge(&mut self, other: &SimReport) {
        self.deadline.merge(&other.deadline);
        self.migration.merge(&other.migration);
        self.gaps.merge(&other.gaps);
        self.proc_times_us.merge(&other.proc_times_us);
        self.proc_hist.merge(&other.proc_hist);
        self.dropped += other.dropped;
        self.crc_failures += other.crc_failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let r = SimReport::new(4);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.proc_hist.count(), 0);
    }

    #[test]
    fn merge_adds_counters_and_bins() {
        let mut a = SimReport::new(2);
        a.deadline.record(0, true);
        a.proc_hist.record(100.0);
        a.dropped = 1;
        let mut b = SimReport::new(2);
        b.deadline.record(1, false);
        b.proc_hist.record(100.0);
        b.crc_failures = 3;
        a.merge(&b);
        assert_eq!(a.deadline.total_subframes(), 2);
        assert_eq!(a.proc_hist.count(), 2);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.crc_failures, 3);
    }
}
