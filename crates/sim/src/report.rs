//! Aggregated results of one simulation run.

use rtopex_core::metrics::{DeadlineMetrics, GapTracker, MigrationStats};
use rtopex_model::stats::Samples;

/// Everything an experiment needs from one run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-basestation deadline outcomes (Fig. 15/17 material).
    pub deadline: DeadlineMetrics,
    /// Migration accounting (Fig. 16 right; zero under non-RT-OPEX).
    pub migration: MigrationStats,
    /// Idle-gap durations on processing cores (Fig. 16 left).
    pub gaps: GapTracker,
    /// Per-subframe processing times, µs (Fig. 19 right), for subframes
    /// that ran to completion (drops excluded).
    pub proc_times_us: Samples,
    /// Subframes dropped by the slack check / queue (subset of misses).
    pub dropped: u64,
    /// Subframes whose (modeled) decode failed its CRC — NACKs that are
    /// *not* deadline misses.
    pub crc_failures: u64,
}

impl SimReport {
    /// Creates an empty report for `num_bs` basestations.
    pub fn new(num_bs: usize) -> Self {
        SimReport {
            deadline: DeadlineMetrics::new(num_bs),
            migration: MigrationStats::default(),
            gaps: GapTracker::new(),
            proc_times_us: Samples::new(),
            dropped: 0,
            crc_failures: 0,
        }
    }

    /// Convenience: the aggregate deadline-miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.deadline.overall().rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let r = SimReport::new(4);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.dropped, 0);
    }
}
