//! The simulator's event queue: a time-ordered heap with deterministic
//! tie-breaking (kind priority, then insertion sequence).

use rtopex_core::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the engines schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A core finished (or dropped) its current task.
    TaskDone {
        /// Core index.
        core: usize,
    },
    /// A subframe was released by the transport.
    Release {
        /// Basestation index.
        bs: usize,
        /// Subframe index within the basestation.
        index: u64,
    },
    /// A core's in-flight task reaches its next stage boundary.
    StageBoundary {
        /// Core index.
        core: usize,
    },
}

impl EventKind {
    /// Same-timestamp ordering: completions free resources before new
    /// arrivals claim them; stage boundaries run last so they observe the
    /// post-arrival core states.
    pub(crate) fn priority(&self) -> u8 {
        match self {
            EventKind::TaskDone { .. } => 0,
            EventKind::Release { .. } => 1,
            EventKind::StageBoundary { .. } => 2,
        }
    }
}

/// A scheduled event plus its total-order key `(at, prio, seq)`. The
/// timing wheel re-files entries between levels, so it needs the full
/// key — the heap only ever builds them on `push`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Entry {
    pub(crate) at: Nanos,
    pub(crate) prio: u8,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert to pop earliest first.
        other
            .at
            .cmp(&self.at)
            .then(other.prio.cmp(&self.prio))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The engines' scheduling surface: both the seed [`EventQueue`] heap
/// and the [`crate::wheel::TimingWheel`] implement it, so an engine is
/// generic over its timeline and the wheel-vs-heap benchmark compares
/// the *same* engine over two event structures.
///
/// Contract shared by all implementations: events pop in ascending
/// `(time, kind-priority, insertion-order)`, i.e. exactly the seed
/// heap's deterministic tie-breaking.
pub trait Timeline {
    /// Schedules `kind` at time `at`.
    fn push(&mut self, at: Nanos, kind: EventKind);
    /// Pops the earliest event.
    fn pop(&mut self) -> Option<(Nanos, EventKind)>;
    /// Timestamp of the earliest pending event without popping it.
    /// Takes `&mut self` so lazily-advancing implementations (the
    /// timing wheel) may cascade internally.
    fn peek_time(&mut self) -> Option<Nanos>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            prio: kind.priority(),
            seq,
            kind,
        });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl Timeline for EventQueue {
    fn push(&mut self, at: Nanos, kind: EventKind) {
        EventQueue::push(self, at, kind);
    }

    fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        EventQueue::pop(self)
    }

    fn peek_time(&mut self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_us(30), EventKind::TaskDone { core: 0 });
        q.push(Nanos::from_us(10), EventKind::TaskDone { core: 1 });
        q.push(Nanos::from_us(20), EventKind::TaskDone { core: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(order, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn same_time_done_before_release_before_stage() {
        let mut q = EventQueue::new();
        let t = Nanos::from_us(5);
        q.push(t, EventKind::StageBoundary { core: 0 });
        q.push(t, EventKind::Release { bs: 0, index: 0 });
        q.push(t, EventKind::TaskDone { core: 0 });
        assert!(matches!(q.pop().unwrap().1, EventKind::TaskDone { .. }));
        assert!(matches!(q.pop().unwrap().1, EventKind::Release { .. }));
        assert!(matches!(
            q.pop().unwrap().1,
            EventKind::StageBoundary { .. }
        ));
    }

    #[test]
    fn fifo_within_same_time_and_kind() {
        let mut q = EventQueue::new();
        let t = Nanos::from_us(5);
        for bs in 0..4 {
            q.push(t, EventKind::Release { bs, index: 0 });
        }
        for want in 0..4 {
            match q.pop().unwrap().1 {
                EventKind::Release { bs, .. } => assert_eq!(bs, want),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Nanos::ZERO, EventKind::TaskDone { core: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
