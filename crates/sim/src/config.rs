//! Simulation configuration.

use rtopex_core::budget::Budget;
use rtopex_core::global::QueuePolicy;
use rtopex_model::iters::IterationModel;
use rtopex_model::platform::PlatformJitter;
use rtopex_model::tasks::TaskTimeModel;
use rtopex_phy::params::Bandwidth;
use rtopex_workload::{Scenario, TraceParams};

/// Which scheduler the simulated compute node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// §3.1.1 — offline partitioned mapping, `⌈T_max⌉` cores per BS.
    Partitioned,
    /// §3.1.2 — shared queue dispatched to `cores` workers.
    Global {
        /// Worker core count (the paper evaluates 8 and 16).
        cores: usize,
        /// Dispatch priority.
        policy: QueuePolicy,
    },
    /// §3.2 — partitioned base plus runtime subtask migration.
    RtOpex {
        /// Per-subtask migration cost δ in µs (paper measures ≈ 20).
        delta_us: u64,
    },
    /// Semi-partitioned baseline (the paper's [14]): the partitioned
    /// mapping, but a subframe that finds its core busy may move — as a
    /// *whole task* — to another core's idle window. Task granularity,
    /// contrasted with RT-OPEX's subtask granularity (Table 2).
    SemiPartitioned,
}

/// Cache-affinity penalty model for the global scheduler (Fig. 19).
///
/// Partitioned cores always serve the same basestation every other
/// millisecond, so their caches stay warm. A global worker's cache decays:
/// processing basestation `b` on core `c` costs an extra
/// `cold_penalty_us · (1 − e^{−Δt/τ})`, where `Δt` is the time since `c`
/// last served `b` (a never-seen pairing pays the full cold penalty).
///
/// With more workers, a basestation's subframes scatter across more
/// cores, so each (core, BS) pairing recurs more rarely and the penalty
/// saturates toward its cold maximum — which is why doubling the global
/// pool from 8 to 16 cores does not help and even hurts (Fig. 19: ≈ 80 µs
/// longer processing for a sizable fraction of MCS-27 subframes under
/// global-16).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheModel {
    /// Maximum (fully cold) cache-refill penalty, µs.
    pub cold_penalty_us: f64,
    /// Cache-residency decay constant, ms.
    pub reuse_tau_ms: f64,
    /// Fixed dispatcher/locking overhead per global dispatch, µs.
    pub dispatch_overhead_us: f64,
}

impl CacheModel {
    /// Calibration matching Fig. 19's ≈ 80 µs processing-time inflation
    /// for a sizable fraction of subframes under global-16.
    pub const fn paper_gpp() -> Self {
        CacheModel {
            cold_penalty_us: 120.0,
            reuse_tau_ms: 8.0,
            dispatch_overhead_us: 8.0,
        }
    }

    /// No cache effects (for ablations).
    pub const fn free() -> Self {
        CacheModel {
            cold_penalty_us: 0.0,
            reuse_tau_ms: 5.0,
            dispatch_overhead_us: 0.0,
        }
    }
}

impl Default for CacheModel {
    fn default() -> Self {
        Self::paper_gpp()
    }
}

/// Complete configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of basestations.
    pub num_bs: usize,
    /// Subframes per basestation.
    pub subframes: usize,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Receive antennas per basestation.
    pub num_antennas: usize,
    /// Channel SNR (dB) — drives the iteration model.
    pub snr_db: f64,
    /// One-way transport latency RTT/2 in µs.
    pub rtt_half_us: u64,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Load-trace parameters, one per basestation (cycled if shorter).
    pub traces: Vec<TraceParams>,
    /// Fixed MCS override for every basestation (Fig. 19's right panel);
    /// `None` = trace-driven.
    pub fixed_mcs: Option<u8>,
    /// Fixed MCS override for basestation 0 only (Fig. 17's load sweep:
    /// one swept basestation against a trace-driven background).
    pub bs0_mcs: Option<u8>,
    /// Task time split model.
    pub time_model: TaskTimeModel,
    /// Turbo-iteration statistics.
    pub iter_model: IterationModel,
    /// Platform error `E` sampler.
    pub jitter: PlatformJitter,
    /// Cache penalties (global scheduler only).
    pub cache: CacheModel,
    /// Probability that a migrated batch overruns its estimate
    /// (exercises RT-OPEX's recovery path).
    pub overrun_prob: f64,
    /// Slowdown factor of an overrunning batch.
    pub overrun_factor: f64,
    /// Global-queue ring-buffer capacity.
    pub queue_capacity: usize,
    /// Extra cores beyond the partitioned schedule's allocation (§5-B
    /// "flexibility to resources"). A partitioned schedule cannot use
    /// them; RT-OPEX migrates subtasks into them; the global scheduler's
    /// pool is set explicitly via its `cores` field instead.
    pub spare_cores: usize,
    /// Simulated core failure: `(core index, time in µs)` after which the
    /// core stops processing — its subframes are lost and it hosts no
    /// migrations (§5-B: commodity hardware fails).
    pub failed_core: Option<(usize, u64)>,
    /// Per-subframe PRB utilization range `(lo, hi)` in `(0, 1]`; `None` =
    /// the paper's conservative 100 % single-user allocation. Varying
    /// utilization shrinks some subframes' transport blocks, producing the
    /// extra idle gaps the §4.2 footnote says a realistic multi-user
    /// workload would give RT-OPEX.
    pub prb_util_range: Option<(f64, f64)>,
    /// Override the partitioned schedule's cores-per-basestation
    /// allocation (`None` = the Eq. 3 `⌈T_max⌉` default). The pooling
    /// experiment uses this to hold a host's core budget fixed while the
    /// aggregated cell count grows.
    pub cores_per_bs: Option<usize>,
    /// Record per-sample data (gap durations, per-subframe processing
    /// times in `proc_times_us`). The paper figures need the raw
    /// samples; fleet-scale pooling sweeps turn this off so a run's
    /// memory stays constant — counters and the processing-time
    /// histogram are always kept.
    pub record_samples: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// Builds a configuration from a workload scenario and transport
    /// latency, defaulting to the RT-OPEX scheduler with the paper's
    /// measured 20 µs migration cost.
    pub fn from_scenario(s: &Scenario, rtt_half_us: u64) -> Self {
        SimConfig {
            num_bs: s.num_bs,
            subframes: s.subframes,
            bandwidth: s.bandwidth,
            num_antennas: s.num_antennas,
            snr_db: s.snr_db,
            rtt_half_us,
            scheduler: SchedulerKind::RtOpex { delta_us: 20 },
            traces: s.traces.clone(),
            fixed_mcs: None,
            bs0_mcs: None,
            time_model: TaskTimeModel::paper_gpp(),
            iter_model: IterationModel {
                l_max: s.max_turbo_iters,
                ..IterationModel::paper_gpp()
            },
            jitter: PlatformJitter::paper_gpp(),
            cache: CacheModel::paper_gpp(),
            overrun_prob: 0.01,
            overrun_factor: 1.5,
            queue_capacity: 64,
            spare_cores: 0,
            failed_core: None,
            prb_util_range: None,
            cores_per_bs: None,
            record_samples: true,
            seed: s.seed,
        }
    }

    /// The deadline budget implied by the transport latency.
    pub fn budget(&self) -> Budget {
        Budget::from_rtt_half_us(self.rtt_half_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scenario_copies_shape() {
        let s = Scenario::paper_default();
        let c = SimConfig::from_scenario(&s, 500);
        assert_eq!(c.num_bs, 4);
        assert_eq!(c.subframes, 30_000);
        assert_eq!(c.iter_model.l_max, 4);
        assert_eq!(c.budget().tmax().as_us_f64(), 1500.0);
    }

    #[test]
    fn scheduler_kinds_compare() {
        assert_ne!(
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 }
        );
    }
}
