//! A hierarchical timing wheel tuned to the 1 ms subframe cadence.
//!
//! The seed engine's `BinaryHeap` pays `O(log n)` per operation with a
//! comparison-heavy inner loop; at fleet scale (64 hosts × dozens of
//! cells) the queue holds thousands of events and the heap becomes the
//! simulator's bottleneck. Nearly all events, however, land within a few
//! milliseconds of *now* — releases repeat every 1 ms and stage
//! boundaries sit a few hundred µs out — so a classic
//! hashed-hierarchical timing wheel (Varghese & Lauck) gives amortized
//! `O(1)` push/pop:
//!
//! * **slot** — 2¹² ns ≈ 4.1 µs of simulated time;
//! * **level 0** — 512 slots ≈ 2.1 ms: the working set (releases, stage
//!   boundaries, task completions);
//! * **level 1** — 512 buckets of 512 slots each ≈ 1.07 s: rare
//!   far-future events (e.g. a spare core's "never" release sentinel
//!   stays out of the way here);
//! * **overflow** — an unsorted `Vec` beyond ≈ 1.07 s, scanned only in
//!   the (practically never hit) case that everything nearer is empty.
//!
//! Events within the *current* slot sit in a tiny [`BinaryHeap`] carrying
//! the exact `(time, kind-priority, sequence)` order of the seed
//! [`EventQueue`](crate::event::EventQueue), so pop order — including
//! FIFO tie-breaking — is bit-identical to the heap engine's. The
//! determinism tests rely on that: wheel vs. heap is a pure performance
//! choice, never a behavioural one.
//!
//! Two invariants make the equivalence argument go through:
//!
//! 1. every pending event with `slot ≤ cur_slot` lives in the active
//!    heap; level-0/1/overflow only ever hold strictly-later slots, so
//!    the active heap's minimum is the global minimum;
//! 2. level-1 buckets and the overflow are re-filed whenever the wheel
//!    advances to a new granule (bucket span), so a far-future event can
//!    never be overtaken by a nearer one that was filed later.
//!
//! All steady-state operations are allocation-free: slot vectors, the
//! active heap, and the cascade scratch buffer are reused; `mem::swap`
//! (never `mem::take` on the buckets) preserves their capacity.

use crate::event::{Entry, EventKind, Timeline};
use rtopex_core::time::Nanos;
use std::collections::BinaryHeap;

/// log₂ of the slot width in ns (2¹² ns ≈ 4.1 µs).
const SLOT_SHIFT: u32 = 12;
/// log₂ of the slots per level (512).
const GRANULE_SHIFT: u32 = 9;
/// Slots (and buckets) per level.
const SLOTS: usize = 1 << GRANULE_SHIFT;
/// Mask for an index within a level.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// Occupancy bitmap over one 512-entry level.
type Occupancy = [u64; SLOTS / 64];

fn set_bit(map: &mut Occupancy, i: usize) {
    map[i >> 6] |= 1 << (i & 63);
}

fn clear_bit(map: &mut Occupancy, i: usize) {
    map[i >> 6] &= !(1 << (i & 63));
}

/// First set bit at index ≥ `start`, if any.
fn next_set_from(map: &Occupancy, start: usize) -> Option<usize> {
    if start >= SLOTS {
        return None;
    }
    let mut w = start >> 6;
    let mut bits = map[w] & (!0u64 << (start & 63));
    loop {
        if bits != 0 {
            return Some((w << 6) + bits.trailing_zeros() as usize);
        }
        w += 1;
        if w == map.len() {
            return None;
        }
        bits = map[w];
    }
}

/// First set bit in circular order starting at `start` (mod 512).
fn next_set_circular(map: &Occupancy, start: usize) -> Option<usize> {
    let start = start % SLOTS;
    next_set_from(map, start).or_else(|| next_set_from(map, 0))
}

/// Hierarchical timing wheel with the seed heap's exact pop order.
#[derive(Debug)]
pub struct TimingWheel {
    /// The slot currently being drained (absolute slot index).
    cur_slot: u64,
    /// Monotone insertion sequence for FIFO tie-breaking.
    seq: u64,
    /// Pending events across all levels.
    count: usize,
    /// Events in slots ≤ `cur_slot`, ordered exactly like the seed heap.
    cur: BinaryHeap<Entry>,
    /// Level 0: one vector per slot of the current granule.
    l0: Vec<Vec<Entry>>,
    l0_occ: Occupancy,
    /// Level 1: one bucket per granule within the ≈ 1.07 s horizon.
    l1: Vec<Vec<Entry>>,
    l1_occ: Occupancy,
    /// Events beyond the level-1 horizon.
    overflow: Vec<Entry>,
    /// Reusable cascade buffer (capacity survives across cascades).
    scratch: Vec<Entry>,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// Creates an empty wheel positioned at time zero, with slot and
    /// cascade buffers prewarmed so the steady-state loop never
    /// allocates.
    pub fn new() -> Self {
        TimingWheel {
            cur_slot: 0,
            seq: 0,
            count: 0,
            cur: BinaryHeap::with_capacity(256),
            l0: (0..SLOTS).map(|_| Vec::with_capacity(16)).collect(),
            l0_occ: [0; SLOTS / 64],
            l1: (0..SLOTS).map(|_| Vec::with_capacity(8)).collect(),
            l1_occ: [0; SLOTS / 64],
            overflow: Vec::new(),
            scratch: Vec::with_capacity(64),
        }
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.count += 1;
        self.place(Entry {
            at,
            prio: kind.priority(),
            seq,
            kind,
        });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        if !self.refill() {
            return None;
        }
        self.count -= 1;
        self.cur.pop().map(|e| (e.at, e.kind))
    }

    /// Timestamp of the earliest pending event (advances the wheel's
    /// position lazily; pop order is unaffected).
    pub fn peek_time(&mut self) -> Option<Nanos> {
        if !self.refill() {
            return None;
        }
        self.cur.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Files an entry into the level its slot falls in. Re-filing on
    /// cascade reuses the entry's original `seq`, so FIFO order among
    /// same-key events survives any number of moves between levels.
    fn place(&mut self, e: Entry) {
        let slot = e.at.0 >> SLOT_SHIFT;
        if slot <= self.cur_slot {
            // Current (or, defensively, past) slot: straight into the
            // active heap, which orders by the full (at, prio, seq) key.
            self.cur.push(e);
            return;
        }
        let g = slot >> GRANULE_SHIFT;
        let gc = self.cur_slot >> GRANULE_SHIFT;
        if g == gc {
            let idx = (slot & SLOT_MASK) as usize;
            self.l0[idx].push(e);
            set_bit(&mut self.l0_occ, idx);
        } else if g - gc <= SLOT_MASK {
            // Within the level-1 horizon. Bucket indices are granule
            // mod 512; the window (gc, gc+511] maps injectively, so a
            // bucket never mixes granules (see the push-time argument
            // in DESIGN.md).
            let idx = (g & SLOT_MASK) as usize;
            self.l1[idx].push(e);
            set_bit(&mut self.l1_occ, idx);
        } else {
            self.overflow.push(e);
        }
    }

    /// Ensures the active heap holds the global minimum; returns false
    /// when the wheel is empty.
    fn refill(&mut self) -> bool {
        while self.cur.is_empty() {
            if !self.advance_once() {
                return false;
            }
        }
        true
    }

    /// Advances the wheel position one step: next occupied level-0
    /// slot, else cascade the next level-1 bucket, else drain the
    /// overflow. Returns false when nothing is pending anywhere.
    fn advance_once(&mut self) -> bool {
        // Level 0: jump to the next occupied slot in this granule.
        let cur_idx = (self.cur_slot & SLOT_MASK) as usize;
        if let Some(idx) = next_set_from(&self.l0_occ, cur_idx + 1) {
            clear_bit(&mut self.l0_occ, idx);
            self.cur_slot = (self.cur_slot & !SLOT_MASK) | idx as u64;
            // Disjoint-field borrows: drain the slot buffer (capacity
            // kept) while feeding the active heap.
            for e in self.l0[idx].drain(..) {
                self.cur.push(e);
            }
            return true;
        }

        // Level 1: cascade the bucket holding the nearest granule. The
        // circular scan from gc+1 finds the minimum granule because
        // pending level-1 granules all lie in (gc, gc+511].
        let gc = self.cur_slot >> GRANULE_SHIFT;
        let start = (gc as usize & SLOT_MASK as usize) + 1;
        if let Some(idx) = next_set_circular(&self.l1_occ, start) {
            clear_bit(&mut self.l1_occ, idx);
            let d = (idx as u64).wrapping_sub(gc + 1) & SLOT_MASK;
            let g_new = gc + 1 + d;
            self.cur_slot = g_new << GRANULE_SHIFT;
            let mut batch = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut batch, &mut self.l1[idx]);
            for e in batch.drain(..) {
                self.place(e);
            }
            self.scratch = batch;
            // Invariant 2: the granule advanced, so overflow entries may
            // now fall inside the level-1 window — re-file them before
            // anything pops, or a nearer overflow event could be
            // overtaken.
            if !self.overflow.is_empty() {
                self.refile_overflow();
            }
            return true;
        }

        // Overflow: jump straight to the earliest far-future event and
        // re-file everything relative to the new position.
        if let Some(min_at) = self.overflow.iter().map(|e| e.at).min() {
            self.cur_slot = min_at.0 >> SLOT_SHIFT;
            self.refile_overflow();
            return true;
        }
        false
    }

    /// Re-files every overflow entry against the current position;
    /// still-too-far entries land back in the overflow.
    fn refile_overflow(&mut self) {
        let mut batch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut batch, &mut self.overflow);
        for e in batch.drain(..) {
            self.place(e);
        }
        self.scratch = batch;
    }
}

impl Timeline for TimingWheel {
    fn push(&mut self, at: Nanos, kind: EventKind) {
        TimingWheel::push(self, at, kind);
    }

    fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        TimingWheel::pop(self)
    }

    fn peek_time(&mut self) -> Option<Nanos> {
        TimingWheel::peek_time(self)
    }

    fn len(&self) -> usize {
        TimingWheel::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn granule_time(g: u64, extra_ns: u64) -> Nanos {
        Nanos((g << (SLOT_SHIFT + GRANULE_SHIFT)) + extra_ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimingWheel::new();
        w.push(Nanos::from_us(30), EventKind::TaskDone { core: 0 });
        w.push(Nanos::from_us(10), EventKind::TaskDone { core: 1 });
        w.push(Nanos::from_us(20), EventKind::TaskDone { core: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(order, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn same_time_done_before_release_before_stage() {
        let mut w = TimingWheel::new();
        let t = Nanos::from_us(5);
        w.push(t, EventKind::StageBoundary { core: 0 });
        w.push(t, EventKind::Release { bs: 0, index: 0 });
        w.push(t, EventKind::TaskDone { core: 0 });
        assert!(matches!(w.pop().unwrap().1, EventKind::TaskDone { .. }));
        assert!(matches!(w.pop().unwrap().1, EventKind::Release { .. }));
        assert!(matches!(
            w.pop().unwrap().1,
            EventKind::StageBoundary { .. }
        ));
    }

    #[test]
    fn fifo_within_same_time_and_kind() {
        let mut w = TimingWheel::new();
        let t = Nanos::from_us(5);
        for bs in 0..4 {
            w.push(t, EventKind::Release { bs, index: 0 });
        }
        for want in 0..4 {
            match w.pop().unwrap().1 {
                EventKind::Release { bs, .. } => assert_eq!(bs, want),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn len_and_empty() {
        let mut w = TimingWheel::new();
        assert!(w.is_empty());
        w.push(Nanos::ZERO, EventKind::TaskDone { core: 0 });
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimingWheel::new();
        for us in [900u64, 5, 4_000, 37] {
            w.push(Nanos::from_us(us), EventKind::TaskDone { core: 0 });
        }
        while let Some(t) = w.peek_time() {
            let (popped, _) = w.pop().unwrap();
            assert_eq!(popped, t);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn crosses_slots_granules_and_overflow() {
        let mut w = TimingWheel::new();
        // Current slot, later level-0 slot, level-1 granule, overflow.
        let times = [
            Nanos(100),           // slot 0
            Nanos::from_us(500),  // level 0
            Nanos::from_ms(3),    // level 1 (granule 1)
            granule_time(600, 7), // overflow (granule > 511)
            Nanos::from_ms(900),  // level 1, far granule
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, EventKind::TaskDone { core: i });
        }
        let mut sorted: Vec<Nanos> = times.to_vec();
        sorted.sort();
        let popped: Vec<Nanos> = std::iter::from_fn(|| w.pop().map(|(t, _)| t)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn overflow_is_refiled_when_the_wheel_advances() {
        // The nasty interleaving: a far event X (overflow at push time)
        // must still pop *after* a nearer event W pushed much later,
        // once the wheel has advanced far enough that X fits level 1.
        let mut w = TimingWheel::new();
        let x = granule_time(600, 0); // overflow while gc = 0
        let z = granule_time(400, 0); // level 1
        w.push(x, EventKind::TaskDone { core: 0 });
        w.push(z, EventKind::TaskDone { core: 1 });
        // Pop Z: the wheel advances to granule 400 and must re-file X
        // (600 − 400 = 200 ≤ 511 → level 1).
        assert_eq!(w.pop().unwrap().0, z);
        // Now push W between Z and X.
        let wt = granule_time(450, 0);
        w.push(wt, EventKind::TaskDone { core: 2 });
        assert_eq!(w.pop().unwrap().0, wt);
        assert_eq!(w.pop().unwrap().0, x);
        assert!(w.is_empty());
    }

    /// The load-bearing property: for any interleaving of pushes and
    /// pops with non-time-travelling pushes, the wheel's pop sequence —
    /// times, kinds, and tie-break order — is bit-identical to the seed
    /// heap's.
    #[test]
    fn randomized_equivalence_with_event_queue() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
            let mut wheel = TimingWheel::new();
            let mut heap = EventQueue::new();
            let mut now = Nanos::ZERO;
            for step in 0..2_000 {
                if rng.gen_bool(0.6) || wheel.is_empty() {
                    // Mostly near-future (the engine's regime), with
                    // occasional granule-crossing and overflow pushes.
                    let off: u64 = match rng.gen_range(0..10) {
                        0..=6 => rng.gen_range(0..3_000_000),    // ≤ 3 ms
                        7 | 8 => rng.gen_range(0..(1u64 << 26)), // ≤ 67 ms
                        _ => rng.gen_range(0..(1u64 << 34)),     // ≤ 17 s
                    };
                    // Coin-flip exact ties to exercise FIFO order.
                    let at = if rng.gen_bool(0.2) {
                        now
                    } else {
                        Nanos(now.0 + off)
                    };
                    let kind = match rng.gen_range(0..3) {
                        0 => EventKind::TaskDone { core: step },
                        1 => EventKind::Release {
                            bs: step,
                            index: seed,
                        },
                        _ => EventKind::StageBoundary { core: step },
                    };
                    wheel.push(at, kind);
                    heap.push(at, kind);
                } else {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "seed {seed} step {step}");
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "drain, seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
