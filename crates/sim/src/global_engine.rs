//! The global-scheduler engine (§3.1.2, evaluated in Figs. 15 and 19).
//!
//! A dispatcher thread holds the shared ring-buffer queue; any free worker
//! core takes the next subframe (EDF or FIFO) and processes it serially.
//! What keeps this scheduler from matching partitioned performance — the
//! paper's "surprising behavior" — is modeled explicitly:
//!
//! * a fixed dispatch overhead per assignment (locking, wake-up);
//! * a **cache-affinity penalty**: a worker that last served a different
//!   basestation pays to refill its cache, and a basestation whose context
//!   last lived on a different core pays coherence traffic to move it.
//!   More workers ⇒ a basestation's subframes scatter more ⇒ both
//!   penalties fire more often — why 16 cores is no better than 8
//!   (Fig. 19);
//! * a task still running at its deadline is terminated on the spot
//!   ("the processing thread terminates the ongoing task and goes to an
//!   idle state").
//!
//! Like [`PartitionedEngine`](crate::engine::PartitionedEngine), the
//! engine is generic over its [`Timeline`] and streams its workload by
//! default; [`GlobalEngine::new_seed_baseline`] keeps the heap +
//! materialized-schedule configuration for benchmarking. The dispatch
//! loop is allocation-free: the uniform free-worker choice counts free
//! workers and walks to the `k`-th instead of collecting them — the same
//! RNG draw sequence and the same selection as the seed's
//! `Vec`-collecting version.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue, Timeline};
use crate::gen::{generate_tasks, TaskStream};
use crate::report::SimReport;
use crate::wheel::TimingWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_core::global::GlobalQueue;
use rtopex_core::task::SubframeTask;
use rtopex_core::time::Nanos;

#[derive(Clone, Copy, Debug, Default)]
struct Worker {
    busy: bool,
    /// Whether the in-flight task will complete (vs. be cut at deadline).
    completes: bool,
    current_bs: usize,
    crc_ok: bool,
    /// Full execution time (penalties included, not deadline-truncated).
    exec_us: f64,
}

/// The global-scheduler simulation engine, generic over its event
/// timeline.
pub struct GlobalEngine<'a, Q: Timeline = TimingWheel> {
    cfg: &'a SimConfig,
    workers: Vec<Worker>,
    /// When each (core, basestation) pairing last executed — the cache
    /// recency the penalty model decays over.
    last_served: Vec<Vec<Option<Nanos>>>,
    /// Dispatch nondeterminism: a real "next available core" choice
    /// depends on wake-up races, so the engine picks uniformly among the
    /// free workers. (A deterministic round-robin resonates with the
    /// 4-basestation release cycle whenever the pool size is a multiple
    /// of 4, accidentally giving every core a fixed basestation.)
    pick: StdRng,
    queue: GlobalQueue,
    events: Q,
    rtt: Nanos,
    /// Streaming per-cell generators (empty in seed-baseline mode).
    streams: Vec<TaskStream<'a>>,
    /// Materialized schedule (seed-baseline mode only).
    tasks: Option<Vec<Vec<SubframeTask>>>,
    report: SimReport,
}

impl<'a> GlobalEngine<'a, TimingWheel> {
    /// Builds the production engine (timing wheel + streaming workload).
    ///
    /// # Panics
    /// Panics if the configured scheduler is not [`crate::config::SchedulerKind::Global`].
    pub fn new(cfg: &'a SimConfig) -> Self {
        Self::with_timeline(cfg, TimingWheel::new(), false)
    }
}

impl<'a> GlobalEngine<'a, EventQueue> {
    /// Builds the seed-equivalent baseline (heap + materialized
    /// schedule), for the wheel-vs-heap benchmark and equivalence tests.
    ///
    /// # Panics
    /// Panics if the configured scheduler is not [`crate::config::SchedulerKind::Global`].
    pub fn new_seed_baseline(cfg: &'a SimConfig) -> Self {
        Self::with_timeline(cfg, EventQueue::new(), true)
    }
}

impl<'a, Q: Timeline> GlobalEngine<'a, Q> {
    /// Builds an engine over an explicit timeline; `materialize` selects
    /// the seed-baseline workload path. Releases are primed here.
    ///
    /// # Panics
    /// Panics if the configured scheduler is not [`crate::config::SchedulerKind::Global`].
    pub fn with_timeline(cfg: &'a SimConfig, events: Q, materialize: bool) -> Self {
        let (cores, policy) = match cfg.scheduler {
            crate::config::SchedulerKind::Global { cores, policy } => (cores, policy),
            other => panic!("GlobalEngine needs a global scheduler, got {other:?}"),
        };
        assert!(cores > 0, "at least one worker core");
        let (streams, tasks) = if materialize {
            (Vec::new(), Some(generate_tasks(cfg)))
        } else {
            (
                (0..cfg.num_bs).map(|bs| TaskStream::new(cfg, bs)).collect(),
                None,
            )
        };
        let mut engine = GlobalEngine {
            workers: vec![Worker::default(); cores],
            last_served: vec![vec![None; cfg.num_bs]; cores],
            pick: StdRng::seed_from_u64(cfg.seed ^ 0x61_0BA1),
            queue: GlobalQueue::new(policy, cfg.queue_capacity),
            events,
            rtt: Nanos::from_us(cfg.rtt_half_us),
            streams,
            tasks,
            report: SimReport::new(cfg.num_bs),
            cfg,
        };
        engine.prime();
        engine
    }

    /// Schedules the initial release events (see
    /// `PartitionedEngine::prime` for the ordering argument).
    fn prime(&mut self) {
        if self.cfg.subframes == 0 {
            return;
        }
        match &self.tasks {
            Some(tasks) => {
                for (bs, row) in tasks.iter().enumerate() {
                    for (j, task) in row.iter().enumerate() {
                        self.events.push(
                            task.release,
                            EventKind::Release {
                                bs,
                                index: j as u64,
                            },
                        );
                    }
                }
            }
            None => {
                for bs in 0..self.cfg.num_bs {
                    self.events
                        .push(self.rtt, EventKind::Release { bs, index: 0 });
                }
            }
        }
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        while let Some((t, kind)) = self.events.pop() {
            self.on_event(t, kind);
        }
        self.report
    }

    /// Processes every event with timestamp ≤ `until`, then stops.
    pub fn run_until(&mut self, until: Nanos) {
        while let Some(tn) = self.events.peek_time() {
            if tn > until {
                return;
            }
            let (t, kind) = self.events.pop().expect("event peeked above");
            self.on_event(t, kind);
        }
    }

    /// Finishes an incrementally-driven run (see [`Self::run_until`]).
    pub fn into_report(self) -> SimReport {
        let mut engine = self;
        while let Some((t, kind)) = engine.events.pop() {
            engine.on_event(t, kind);
        }
        engine.report
    }

    /// Dispatches one event — the global engine's hot loop; allocation-,
    /// lock-, and clock-free like the partitioned engine's.
    fn on_event(&mut self, t: Nanos, kind: EventKind) {
        match kind {
            EventKind::Release { bs, index } => {
                let task = match self.tasks.as_ref() {
                    Some(tasks) => tasks[bs][index as usize],
                    None => {
                        let task = self.streams[bs]
                            .next_task()
                            .expect("release events never outrun the task stream");
                        debug_assert_eq!(task.subframe_index, index);
                        task
                    }
                };
                if self.tasks.is_none() && index + 1 < self.cfg.subframes as u64 {
                    self.events.push(
                        Nanos::from_ms(index + 1) + self.rtt,
                        EventKind::Release {
                            bs,
                            index: index + 1,
                        },
                    );
                }
                if let Some(evicted) = self.queue.push(task) {
                    self.report.deadline.record(evicted.bs_id, true);
                    self.report.dropped += 1;
                }
                self.dispatch(t);
            }
            EventKind::TaskDone { core } => {
                let w = self.workers[core];
                self.workers[core].busy = false;
                self.report.deadline.record(w.current_bs, !w.completes);
                if w.completes && !w.crc_ok {
                    self.report.crc_failures += 1;
                }
                // Fig. 19 (right) plots the *execution-time*
                // distribution, so deadline-cut tasks report their
                // full would-be time rather than vanishing.
                self.report.proc_hist.record(w.exec_us);
                if self.cfg.record_samples {
                    self.report.proc_times_us.push(w.exec_us);
                }
                self.dispatch(t);
            }
            EventKind::StageBoundary { .. } => {
                unreachable!("global engine runs tasks atomically")
            }
        }
    }

    fn dispatch(&mut self, t: Nanos) {
        // No pre-dispatch feasibility filtering: per §3.1.2 a hopeless
        // task still occupies its core until the deadline terminates it —
        // one of the reasons global lags partitioned in Fig. 15.
        loop {
            // Uniform choice among free workers without collecting them:
            // same count ⇒ same gen_range draw ⇒ same worker as the
            // seed's Vec-based selection, with zero allocation.
            let free_count = self.workers.iter().filter(|w| !w.busy).count();
            if free_count == 0 {
                return;
            }
            let k = self.pick.gen_range(0..free_count);
            let core = (0..self.workers.len())
                .filter(|&c| !self.workers[c].busy)
                .nth(k)
                .expect("k drawn below the free-worker count");
            let Some(task) = self.queue.pop() else {
                return;
            };
            self.exec(t, core, task);
        }
    }

    fn exec(&mut self, t: Nanos, core: usize, task: SubframeTask) {
        let cache = &self.cfg.cache;
        // Cache-recency penalty: decays toward the cold maximum with the
        // time since this core last processed this basestation.
        let warmth = match self.last_served[core][task.bs_id] {
            Some(last) => {
                let dt_ms = (t - last).as_ms_f64();
                (-dt_ms / cache.reuse_tau_ms).exp()
            }
            None => 0.0,
        };
        let penalty_us = cache.dispatch_overhead_us + cache.cold_penalty_us * (1.0 - warmth);
        self.last_served[core][task.bs_id] = Some(t);

        let exec = task.profile.total() + Nanos::from_us_f64(penalty_us);
        let exec_end = t + exec;
        let completes = exec_end <= task.deadline;
        // A task hitting its deadline is terminated there (§3.1.2); a
        // task dispatched after its deadline is terminated immediately.
        let occupied_until = exec_end.min(task.deadline).max(t);
        self.workers[core].busy = true;
        self.workers[core].completes = completes;
        self.workers[core].current_bs = task.bs_id;
        self.workers[core].crc_ok = task.crc_ok;
        self.workers[core].exec_us = exec.as_us_f64();
        self.events
            .push(occupied_until, EventKind::TaskDone { core });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use rtopex_core::global::QueuePolicy;
    use rtopex_workload::Scenario;

    fn cfg(rtt: u64, cores: usize) -> SimConfig {
        let mut c = SimConfig::from_scenario(&Scenario::smoke_test(), rtt);
        c.scheduler = SchedulerKind::Global {
            cores,
            policy: QueuePolicy::Edf,
        };
        c
    }

    #[test]
    fn processes_every_subframe() {
        let c = cfg(500, 8);
        let r = GlobalEngine::new(&c).run();
        assert_eq!(r.deadline.total_subframes(), 2 * 2000);
    }

    #[test]
    fn seed_baseline_is_bit_identical_to_streaming_wheel() {
        for cores in [1usize, 8] {
            let c = cfg(500, cores);
            let base = GlobalEngine::new_seed_baseline(&c).run();
            let wheel = GlobalEngine::new(&c).run();
            assert_eq!(
                base.deadline.per_bs(),
                wheel.deadline.per_bs(),
                "{cores} cores"
            );
            assert_eq!(base.proc_hist, wheel.proc_hist, "{cores} cores");
            assert_eq!(base.dropped, wheel.dropped, "{cores} cores");
            assert_eq!(base.crc_failures, wheel.crc_failures, "{cores} cores");
        }
    }

    #[test]
    fn single_core_overloads_and_misses() {
        // Two basestations at ~1 ms average processing per 1 ms arrival
        // cannot fit on one core: massive misses expected.
        let c = cfg(500, 1);
        let r = GlobalEngine::new(&c).run();
        assert!(
            r.deadline.overall().rate() > 0.3,
            "rate {}",
            r.deadline.overall().rate()
        );
    }

    #[test]
    fn global_has_nonzero_floor_even_at_low_latency() {
        // Fig. 15: global "does not exhibit a zero deadline-miss rate even
        // at the lowest RTT value".
        let c = cfg(400, 8);
        let r = GlobalEngine::new(&c).run();
        assert!(r.deadline.overall().missed > 0);
    }

    #[test]
    fn more_cores_do_not_fix_global() {
        // Fig. 19: beyond 8 cores the miss rate saturates/worsens.
        let c8 = cfg(500, 8);
        let c16 = cfg(500, 16);
        let r8 = GlobalEngine::new(&c8).run();
        let r16 = GlobalEngine::new(&c16).run();
        let m8 = r8.deadline.overall().rate();
        let m16 = r16.deadline.overall().rate();
        assert!(
            m16 >= m8 * 0.7,
            "16 cores should not beat 8 by much: {m8} vs {m16}"
        );
    }

    #[test]
    fn cache_penalties_inflate_processing_times() {
        let mut quiet = cfg(500, 8);
        quiet.cache = crate::config::CacheModel::free();
        let noisy = cfg(500, 8);
        let rq = GlobalEngine::new(&quiet).run();
        let rn = GlobalEngine::new(&noisy).run();
        assert!(rn.proc_times_us.mean() > rq.proc_times_us.mean());
    }

    #[test]
    #[should_panic(expected = "global scheduler")]
    fn wrong_scheduler_kind_panics() {
        let mut c = cfg(500, 8);
        c.scheduler = SchedulerKind::Partitioned;
        GlobalEngine::new(&c);
    }
}
