//! # rtopex-sim — discrete-event simulation of a C-RAN compute node
//!
//! The paper's testbed collects 30 000 subframes per basestation per
//! configuration; resolving deadline-miss rates down to 10⁻⁴ and sweeping
//! transport latency, load, and core counts requires millions of simulated
//! subframes. This crate provides a deterministic, seedable discrete-event
//! simulator of the compute node:
//!
//! * subframes are released every 1 ms per basestation, shifted by the
//!   transport latency `RTT/2` (Eq. 2);
//! * execution times come from the calibrated Eq. (1) task model
//!   (`rtopex-model`), with the platform-error tail of Fig. 3(d) and the
//!   iteration statistics of the turbo decoder;
//! * the three schedulers of §3 run on simulated cores: **partitioned**
//!   (Fig. 9), **global** FIFO/EDF with cache-affinity penalties
//!   (Fig. 10/19), and **RT-OPEX** — the partitioned engine with runtime
//!   subtask migration per Algorithm 1, including host preemption and the
//!   recovery path (Fig. 11/12).
//!
//! The entry point is [`run`], which consumes a [`SimConfig`] and produces
//! a [`SimReport`] with deadline, gap, migration, and processing-time
//! accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod event;
pub mod fleet;
pub mod gen;
pub mod global_engine;
pub mod report;
pub mod wheel;

pub use config::{CacheModel, SchedulerKind, SimConfig};
pub use fleet::{host_config, run_fleet, FleetConfig, FleetReport};
pub use report::SimReport;

/// Runs one simulation to completion on the production engine: a
/// hierarchical timing wheel for the event timeline and a streaming
/// workload generator (constant memory in the subframe count).
pub fn run(config: &SimConfig) -> SimReport {
    match config.scheduler {
        SchedulerKind::Partitioned | SchedulerKind::SemiPartitioned => {
            engine::PartitionedEngine::new(config, false).run()
        }
        SchedulerKind::RtOpex { .. } => engine::PartitionedEngine::new(config, true).run(),
        SchedulerKind::Global { .. } => global_engine::GlobalEngine::new(config).run(),
    }
}

/// Runs one simulation on the *seed-baseline* configuration: a binary
/// heap holding every release event up front and a fully materialized
/// task schedule — O(subframes) memory and a much bigger working set.
/// Kept for the wheel-vs-heap benchmark and the equivalence tests; the
/// report is bit-identical to [`run`]'s.
pub fn run_baseline(config: &SimConfig) -> SimReport {
    match config.scheduler {
        SchedulerKind::Partitioned | SchedulerKind::SemiPartitioned => {
            engine::PartitionedEngine::new_seed_baseline(config, false).run()
        }
        SchedulerKind::RtOpex { .. } => {
            engine::PartitionedEngine::new_seed_baseline(config, true).run()
        }
        SchedulerKind::Global { .. } => {
            global_engine::GlobalEngine::new_seed_baseline(config).run()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtopex_core::global::QueuePolicy;
    use rtopex_workload::Scenario;

    fn base_config(rtt_half_us: u64) -> SimConfig {
        SimConfig::from_scenario(&Scenario::smoke_test(), rtt_half_us)
    }

    #[test]
    fn all_schedulers_process_every_subframe() {
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
        ] {
            let mut cfg = base_config(500);
            cfg.scheduler = sched;
            let report = run(&cfg);
            assert_eq!(
                report.deadline.total_subframes(),
                (cfg.num_bs * cfg.subframes) as u64,
                "{sched:?}"
            );
        }
    }

    #[test]
    fn rtopex_never_worse_than_partitioned() {
        for rtt in [400u64, 500, 600, 700] {
            let mut part = base_config(rtt);
            part.scheduler = SchedulerKind::Partitioned;
            let mut rto = base_config(rtt);
            rto.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
            let pm = run(&part).deadline.overall().rate();
            let rm = run(&rto).deadline.overall().rate();
            assert!(
                rm <= pm + 1e-9,
                "RTT/2={rtt}: RT-OPEX {rm} vs partitioned {pm}"
            );
        }
    }

    #[test]
    fn miss_rate_grows_with_transport_latency() {
        let mut low = base_config(400);
        low.scheduler = SchedulerKind::Partitioned;
        let mut high = base_config(700);
        high.scheduler = SchedulerKind::Partitioned;
        let r_low = run(&low).deadline.overall().rate();
        let r_high = run(&high).deadline.overall().rate();
        assert!(r_high >= r_low, "low {r_low}, high {r_high}");
        assert!(r_high > 0.0, "700µs transport must cause misses");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = base_config(500);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.deadline.overall().missed, b.deadline.overall().missed);
        assert_eq!(a.migration.decode_migrated, b.migration.decode_migrated);
    }

    #[test]
    fn rtopex_actually_migrates() {
        let mut cfg = base_config(500);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        let report = run(&cfg);
        assert!(report.migration.decode_migrated > 0 || report.migration.fft_migrated > 0);
    }

    #[test]
    fn partitioned_never_migrates() {
        let mut cfg = base_config(500);
        cfg.scheduler = SchedulerKind::Partitioned;
        let report = run(&cfg);
        assert_eq!(report.migration.decode_migrated, 0);
        assert_eq!(report.migration.fft_migrated, 0);
    }
}
