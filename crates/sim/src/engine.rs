//! The partitioned / RT-OPEX engine.
//!
//! Both schedulers share the same offline core mapping (§3.1.1); RT-OPEX
//! is the partitioned engine with runtime migration enabled (§3.2). The
//! engine is event-driven: subframe releases and per-task stage boundaries
//! are the events, so every migration decision observes the core states
//! exactly as of its stage-start instant.
//!
//! Faithful details:
//!
//! * slack check before each task stage ("we check on the slack time
//!   before we execute each task; … else we drop the task and the
//!   subframe", §4.1) — a dropped subframe is a deadline miss;
//! * gaps left by drops are **not** offered for migration ("the resulting
//!   gaps are, however, not used for migration");
//! * hosts are preempted by their own next subframe release — which is
//!   deterministic under the partitioned base schedule, so Algorithm 1
//!   knows every idle core's free-time budget `fck`;
//! * migrated batches may overrun their estimate (background/kernel
//!   noise); subtasks whose results are not ready when the owner finishes
//!   its local share are recomputed locally — the recovery state (Fig. 12),
//!   guaranteeing RT-OPEX is never worse than no migration.
//!
//! ## Engine mechanics (this crate's fleet-scale rework)
//!
//! The engine is generic over its [`Timeline`]: the production
//! configuration is the hierarchical [`TimingWheel`]; the seed-equivalent
//! `BinaryHeap` [`EventQueue`] stays available through
//! [`PartitionedEngine::new_seed_baseline`] so the wheel-vs-heap
//! benchmark and the equivalence tests compare the same engine over two
//! event structures. Two modes exist:
//!
//! * **streaming** (default): one release event per basestation is in
//!   flight at a time; handling `Release{bs, j}` draws subframe `j` from
//!   the basestation's [`TaskStream`] and schedules `Release{bs, j+1}`.
//!   Memory is O(cells + cores), independent of run length. Release
//!   times are deterministic (`j·1 ms + RTT/2`) and same-time releases
//!   chain in basestation order, so the event sequence is bit-identical
//!   to materializing everything up front;
//! * **seed baseline**: materializes the full schedule and pushes every
//!   release at t = 0 — exactly the seed engine's O(total-subframes)
//!   behavior, kept for honest benchmarking.
//!
//! The steady-state loop is allocation-free: the idle-core survey, the
//! Algorithm 1 assignment list, and host reservations live in reusable
//! scratch buffers, and per-sample recording (`Samples` growth) can be
//! switched off via [`SimConfig::record_samples`] while the fixed-size
//! processing-time histogram keeps recording.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue, Timeline};
use crate::gen::{generate_tasks, TaskStream};
use crate::report::SimReport;
use crate::wheel::TimingWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_core::migration::plan_migration_into;
use rtopex_core::partitioned::PartitionedSchedule;
use rtopex_core::task::{StageProfile, SubframeTask};
use rtopex_core::time::Nanos;
use rtopex_phy::tasks::TaskKind;
use std::collections::VecDeque;

/// Which stage an in-flight task executes next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Fft,
    Demod,
    Decode,
    Finish,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    task: SubframeTask,
    next: Stage,
    start: Nanos,
}

/// A planned (not yet committed) parallelizable stage execution. The
/// host-core reservations it implies live in the engine's reusable
/// `host_updates` buffer, so the plan itself is a plain value.
#[derive(Clone, Copy, Debug)]
struct StagePlan {
    /// When the stage (including any recovery) completes.
    end: Nanos,
    kind: TaskKind,
    subtasks: usize,
    migrated: usize,
    recover: usize,
}

#[derive(Clone, Debug)]
struct CoreSim {
    queue: VecDeque<SubframeTask>,
    current: Option<InFlight>,
    /// Busy hosting a migrated batch until this instant.
    host_busy_until: Nanos,
    /// Post-drop gap: hosting disabled until the core's next own release.
    no_host_until: Nanos,
    /// When the previous own task ended (for gap accounting).
    last_end: Option<Nanos>,
}

impl CoreSim {
    fn new() -> Self {
        CoreSim {
            // Prewarmed: backlog depth is small (a core clears its queue
            // within a few subframe periods or starts dropping).
            queue: VecDeque::with_capacity(16),
            current: None,
            host_busy_until: Nanos::ZERO,
            no_host_until: Nanos::ZERO,
            last_end: None,
        }
    }
}

/// The partitioned/RT-OPEX simulation engine, generic over its event
/// timeline (`TimingWheel` in production, `EventQueue` for the seed
/// baseline).
pub struct PartitionedEngine<'a, Q: Timeline = TimingWheel> {
    cfg: &'a SimConfig,
    migrate: bool,
    delta: Nanos,
    rtt: Nanos,
    schedule: PartitionedSchedule,
    /// Streaming per-cell generators (empty in seed-baseline mode).
    streams: Vec<TaskStream<'a>>,
    /// Materialized schedule (seed-baseline mode only).
    tasks: Option<Vec<Vec<SubframeTask>>>,
    cores: Vec<CoreSim>,
    events: Q,
    report: SimReport,
    rng: StdRng,
    /// Scratch: idle cores and their free windows, for Algorithm 1.
    idle_scratch: Vec<(usize, Nanos)>,
    /// Scratch: Algorithm 1's `(core, batch)` assignments.
    mig_scratch: Vec<(usize, usize)>,
    /// Scratch: host reservations of the stage plan under consideration.
    host_updates: Vec<(usize, Nanos)>,
}

impl<'a> PartitionedEngine<'a, TimingWheel> {
    /// Builds the production engine (timing wheel + streaming workload);
    /// `migrate` selects RT-OPEX vs plain partitioned.
    pub fn new(cfg: &'a SimConfig, migrate: bool) -> Self {
        Self::with_timeline(cfg, migrate, TimingWheel::new(), false)
    }
}

impl<'a> PartitionedEngine<'a, EventQueue> {
    /// Builds the seed-equivalent baseline: `BinaryHeap` event queue and
    /// the full task schedule materialized with every release pushed up
    /// front. Exists so the wheel-vs-heap benchmark and the equivalence
    /// tests compare identical engine logic over both event structures.
    pub fn new_seed_baseline(cfg: &'a SimConfig, migrate: bool) -> Self {
        Self::with_timeline(cfg, migrate, EventQueue::new(), true)
    }
}

impl<'a, Q: Timeline> PartitionedEngine<'a, Q> {
    /// Builds an engine over an explicit timeline. `materialize` selects
    /// the seed-baseline workload path (full schedule up front) over the
    /// constant-memory streaming path. Releases are primed here, so the
    /// engine is ready for [`Self::run`] or incremental
    /// [`Self::run_until`] calls.
    pub fn with_timeline(cfg: &'a SimConfig, migrate: bool, events: Q, materialize: bool) -> Self {
        let schedule = match cfg.cores_per_bs {
            Some(n) => PartitionedSchedule::with_cores_per_bs(cfg.num_bs, n),
            None => PartitionedSchedule::new(cfg.num_bs, &cfg.budget()),
        };
        let num_cores = schedule.total_cores() + cfg.spare_cores;
        let delta = match cfg.scheduler {
            crate::config::SchedulerKind::RtOpex { delta_us } => Nanos::from_us(delta_us),
            _ => Nanos::from_us(20),
        };
        let (streams, tasks) = if materialize {
            (Vec::new(), Some(generate_tasks(cfg)))
        } else {
            (
                (0..cfg.num_bs).map(|bs| TaskStream::new(cfg, bs)).collect(),
                None,
            )
        };
        let mut engine = PartitionedEngine {
            migrate,
            delta,
            rtt: Nanos::from_us(cfg.rtt_half_us),
            streams,
            tasks,
            // Scheduled cores plus any spare cores (§5-B): spares never
            // receive releases, so they are permanently idle hosts that
            // only RT-OPEX's migration can exploit.
            cores: (0..num_cores).map(|_| CoreSim::new()).collect(),
            schedule,
            events,
            report: SimReport::new(cfg.num_bs),
            rng: StdRng::seed_from_u64(cfg.seed ^ HOST_NOISE_SEED_MIX),
            idle_scratch: Vec::with_capacity(num_cores),
            mig_scratch: Vec::with_capacity(num_cores),
            host_updates: Vec::with_capacity(num_cores),
            cfg,
        };
        engine.prime();
        engine
    }

    /// Schedules the initial release events. Streaming mode keeps one
    /// release per basestation in flight; the chained pushes preserve
    /// basestation order at every release instant, so pop order matches
    /// the baseline's push-everything-up-front ordering exactly.
    fn prime(&mut self) {
        if self.cfg.subframes == 0 {
            return;
        }
        match &self.tasks {
            Some(tasks) => {
                for (bs, row) in tasks.iter().enumerate() {
                    for (j, task) in row.iter().enumerate() {
                        self.events.push(
                            task.release,
                            EventKind::Release {
                                bs,
                                index: j as u64,
                            },
                        );
                    }
                }
            }
            None => {
                for bs in 0..self.cfg.num_bs {
                    self.events
                        .push(self.rtt, EventKind::Release { bs, index: 0 });
                }
            }
        }
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        while let Some((t, kind)) = self.events.pop() {
            self.on_event(t, kind);
        }
        self.report
    }

    /// Processes every event with timestamp ≤ `until`, then stops. The
    /// allocation-regression harness uses this to split a run into a
    /// warm-up phase and a counted steady-state phase.
    pub fn run_until(&mut self, until: Nanos) {
        while let Some(tn) = self.events.peek_time() {
            if tn > until {
                return;
            }
            let (t, kind) = self.events.pop().expect("event peeked above");
            self.on_event(t, kind);
        }
    }

    /// Finishes an incrementally-driven run (see [`Self::run_until`]).
    pub fn into_report(self) -> SimReport {
        let mut engine = self;
        while let Some((t, kind)) = engine.events.pop() {
            engine.on_event(t, kind);
        }
        engine.report
    }

    /// Dispatches one event — the simulator's hot loop. Allocation-,
    /// lock-, and clock-free (enforced by the static purity pass and the
    /// counting-allocator regression test).
    fn on_event(&mut self, t: Nanos, kind: EventKind) {
        match kind {
            EventKind::Release { bs, index } => self.on_release(t, bs, index),
            EventKind::StageBoundary { core } => self.on_stage(t, core),
            EventKind::TaskDone { .. } => unreachable!("engine uses StageBoundary"),
        }
    }

    /// The subframe for `Release{bs, index}` — streamed on demand, or
    /// looked up in the materialized schedule (seed baseline).
    fn take_task(&mut self, bs: usize, index: u64) -> SubframeTask {
        match self.tasks.as_ref() {
            Some(tasks) => tasks[bs][index as usize],
            None => {
                let task = self.streams[bs]
                    .next_task()
                    .expect("release events never outrun the task stream");
                debug_assert_eq!(task.subframe_index, index);
                task
            }
        }
    }

    /// True once `core` has failed at time `t`.
    fn core_failed(&self, core: usize, t: Nanos) -> bool {
        matches!(self.cfg.failed_core, Some((c, at)) if c == core && t >= Nanos::from_us(at))
    }

    /// Semi-partitioned whole-task placement: when the home core is busy,
    /// move the *entire* task into another core's idle window (task
    /// granularity — the paper's [14] baseline). Returns true if placed.
    fn try_whole_task_migration(&mut self, t: Nanos, task: SubframeTask) -> bool {
        let total = task.profile.total();
        let target = (0..self.cores.len()).find(|&c| {
            let core = &self.cores[c];
            core.current.is_none()
                && core.host_busy_until <= t
                && !self.core_failed(c, t)
                && self.next_release(c, t).saturating_sub(t) >= total
        });
        let Some(c) = target else {
            return false;
        };
        let end = t + total;
        self.cores[c].host_busy_until = end;
        self.report.deadline.record(task.bs_id, end > task.deadline);
        if !task.crc_ok {
            self.report.crc_failures += 1;
        }
        self.record_proc_time(total.as_us_f64());
        self.report.migration.record_whole_task();
        true
    }

    fn on_release(&mut self, t: Nanos, bs: usize, index: u64) {
        let task = self.take_task(bs, index);
        // Streaming mode: chain the basestation's next release. Same-time
        // releases are handled in basestation order, so the chained
        // pushes for release j+1 happen in basestation order too — the
        // FIFO tie-break is identical to pushing everything up front.
        if self.tasks.is_none() && index + 1 < self.cfg.subframes as u64 {
            self.events.push(
                Nanos::from_ms(index + 1) + self.rtt,
                EventKind::Release {
                    bs,
                    index: index + 1,
                },
            );
        }
        let core = self.schedule.core_for(bs, index);
        if self.core_failed(core, t) {
            // The partitioned mapping is static: a dead core's subframes
            // are simply lost (§5-B's "significant performance
            // degradation" under resource changes).
            self.report.deadline.record(task.bs_id, true);
            self.report.dropped += 1;
            return;
        }
        let semi = matches!(
            self.cfg.scheduler,
            crate::config::SchedulerKind::SemiPartitioned
        );
        if semi && self.cores[core].current.is_some() && self.try_whole_task_migration(t, task) {
            return;
        }
        self.cores[core].queue.push_back(task);
        // A release preempts any hosted batch on this core (the batch's
        // useful-results accounting already capped at this instant).
        self.cores[core].host_busy_until = self.cores[core].host_busy_until.min(t);
        self.try_start(t, core);
    }

    fn try_start(&mut self, t: Nanos, core: usize) {
        if self.cores[core].current.is_some() {
            return;
        }
        let Some(task) = self.cores[core].queue.pop_front() else {
            return;
        };
        if let Some(prev_end) = self.cores[core].last_end {
            if self.cfg.record_samples {
                self.report.gaps.record(t.saturating_sub(prev_end));
            }
        }
        self.cores[core].current = Some(InFlight {
            task,
            next: Stage::Fft,
            start: t,
        });
        self.events.push(t, EventKind::StageBoundary { core });
    }

    /// The core's next own subframe release strictly after `t` —
    /// deterministic under the partitioned schedule. Spare cores have no
    /// releases at all.
    fn next_release(&self, core: usize, t: Nanos) -> Nanos {
        if core >= self.schedule.total_cores() {
            return Nanos(u64::MAX / 2);
        }
        let bs = self.schedule.bs_for_core(core);
        let phase = core % self.schedule.cores_per_bs;
        let period = self.schedule.cores_per_bs as u64;
        let rtt = self.rtt;
        // Smallest j ≡ phase (mod period) with j·1ms + rtt > t.
        let mut j = if t < rtt {
            0
        } else {
            (t - rtt).0 / Nanos::MS.0
        };
        // Align to the core's phase, then advance past t.
        while j % period != phase as u64 || Nanos::from_ms(j) + rtt <= t {
            j += 1;
        }
        if j >= self.cfg.subframes as u64 {
            // No more releases for this core: effectively unbounded window.
            return Nanos(u64::MAX / 2);
        }
        debug_assert_eq!(self.schedule.core_for(bs, j), core);
        Nanos::from_ms(j) + rtt
    }

    /// Surveys idle cores and their free-time budgets at `t` into
    /// `idle_scratch`, sorted widest-window-first (core index breaks
    /// ties, so the unstable sort is deterministic).
    fn fill_idle_cores(&mut self, t: Nanos, requester: usize) {
        self.idle_scratch.clear();
        for c in 0..self.cores.len() {
            if c == requester || self.core_failed(c, t) {
                continue;
            }
            let core = &self.cores[c];
            if core.current.is_some() || core.host_busy_until > t || core.no_host_until > t {
                continue;
            }
            let window = self.next_release(c, t).saturating_sub(t);
            if window > Nanos::ZERO {
                self.idle_scratch.push((c, window));
            }
        }
        self.idle_scratch
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    fn drop_task(&mut self, t: Nanos, core: usize) {
        let inf = self.cores[core].current.take().expect("task in flight");
        self.report.deadline.record(inf.task.bs_id, true);
        self.report.dropped += 1;
        // The gap a drop leaves is not offered to migration (§4.1).
        self.cores[core].no_host_until = self.next_release(core, t);
        self.cores[core].last_end = Some(t);
        self.try_start(t, core);
    }

    fn record_proc_time(&mut self, us: f64) {
        self.report.proc_hist.record(us);
        if self.cfg.record_samples {
            self.report.proc_times_us.push(us);
        }
    }

    /// Plans a parallelizable stage starting at `t` **without** mutating
    /// core state, so the slack check can veto it first. Returns the
    /// stage end time; host reservations to apply on commit are left in
    /// `host_updates`.
    fn plan_parallel_stage(
        &mut self,
        t: Nanos,
        core: usize,
        kind: TaskKind,
        stage: StageProfile,
    ) -> StagePlan {
        let p = stage.subtasks;
        let tp = stage.subtask;
        let serial_end = t + stage.total();
        self.host_updates.clear();
        let mut plan_out = StagePlan {
            end: serial_end,
            kind,
            subtasks: p,
            migrated: 0,
            recover: 0,
        };
        if !self.migrate || p <= 1 {
            return plan_out;
        }
        self.fill_idle_cores(t, core);
        let stats =
            plan_migration_into(p, tp, self.delta, &self.idle_scratch, &mut self.mig_scratch);
        if stats.local == p {
            return plan_out;
        }
        let local_end = t + Nanos(tp.0 * stats.local as u64);
        let mut recover = 0usize;
        let mut results_ready_at = local_end;
        let mut migrated = 0usize;
        for i in 0..self.mig_scratch.len() {
            let (host, n) = self.mig_scratch[i];
            migrated += n;
            // Host-side noise: a batch occasionally overruns its estimate.
            let tp_actual = if self.rng.gen_bool(self.cfg.overrun_prob) {
                Nanos((tp.0 as f64 * self.cfg.overrun_factor) as u64)
            } else {
                tp
            };
            let per = tp_actual + self.delta;
            // The host runs the batch until done or until its own next
            // subframe preempts it (result-not-ready flag, Fig. 12).
            let preempt = self.next_release(host, t);
            let mut completed = 0usize;
            for i in 1..=n {
                if t + Nanos(per.0 * i as u64) <= preempt {
                    completed = i;
                } else {
                    break;
                }
            }
            recover += n - completed;
            let effective_end = (t + Nanos(per.0 * n as u64)).min(preempt);
            self.host_updates.push((host, effective_end));
            if completed > 0 {
                // The owner waits for results still being computed.
                results_ready_at = results_ready_at.max(t + Nanos(per.0 * completed as u64));
            }
        }
        plan_out.migrated = migrated;
        plan_out.recover = recover;
        // Owner: local share, wait for in-flight results, then serially
        // recover the subtasks cut off by host preemption. If a badly
        // overrunning batch would make waiting slower than the serial
        // baseline, the owner recomputes instead (recovery), so the stage
        // can never end later than serial execution — the paper's "equal
        // to or strictly better" guarantee.
        let end = results_ready_at.max(local_end) + Nanos(tp.0 * recover as u64);
        plan_out.end = end.min(serial_end);
        plan_out
    }

    /// Applies a stage plan's side effects (host reservations from
    /// `host_updates`, migration accounting).
    fn commit_stage(&mut self, plan: &StagePlan) {
        for i in 0..self.host_updates.len() {
            let (host, until) = self.host_updates[i];
            self.cores[host].host_busy_until = until;
        }
        if self.migrate {
            self.report
                .migration
                .record_stage(plan.kind, plan.subtasks, plan.migrated);
            if plan.recover > 0 {
                self.report.migration.record_recovery(plan.recover);
            }
        }
    }

    fn on_stage(&mut self, t: Nanos, core: usize) {
        let Some(inf) = self.cores[core].current else {
            return;
        };
        let task = inf.task;
        let deadline = task.deadline;
        match inf.next {
            Stage::Fft => {
                // Slack check against the stage's *achievable* end: under
                // RT-OPEX the migration plan is drawn up first, so a task
                // that only fits thanks to migration is not dropped.
                let plan = self.plan_parallel_stage(t, core, TaskKind::Fft, task.profile.fft);
                if plan.end > deadline {
                    self.drop_task(t, core);
                    return;
                }
                self.commit_stage(&plan);
                self.advance(core, Stage::Demod, plan.end);
            }
            Stage::Demod => {
                if t + task.profile.demod > deadline {
                    self.drop_task(t, core);
                    return;
                }
                self.advance(core, Stage::Decode, t + task.profile.demod);
            }
            Stage::Decode => {
                let plan = self.plan_parallel_stage(t, core, TaskKind::Decode, task.profile.decode);
                let end = plan.end + task.profile.platform_extra;
                if end > deadline {
                    self.drop_task(t, core);
                    return;
                }
                self.commit_stage(&plan);
                self.advance(core, Stage::Finish, end);
            }
            Stage::Finish => {
                let missed = t > deadline;
                self.report.deadline.record(task.bs_id, missed);
                if !task.crc_ok {
                    self.report.crc_failures += 1;
                }
                self.record_proc_time((t - inf.start).as_us_f64());
                self.cores[core].current = None;
                self.cores[core].last_end = Some(t);
                self.try_start(t, core);
            }
        }
    }

    fn advance(&mut self, core: usize, next: Stage, at: Nanos) {
        if let Some(inf) = self.cores[core].current.as_mut() {
            inf.next = next;
        }
        self.events.push(at, EventKind::StageBoundary { core });
    }
}

/// Seed-mixing constant separating the host-noise RNG stream from the
/// task-generation streams.
const HOST_NOISE_SEED_MIX: u64 = 0x0517_09E8_7709_0EC5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use rtopex_workload::Scenario;

    fn cfg(rtt: u64, sched: SchedulerKind) -> SimConfig {
        let mut c = SimConfig::from_scenario(&Scenario::smoke_test(), rtt);
        c.scheduler = sched;
        c
    }

    #[test]
    fn partitioned_counts_every_subframe() {
        let c = cfg(500, SchedulerKind::Partitioned);
        let r = PartitionedEngine::new(&c, false).run();
        assert_eq!(r.deadline.total_subframes(), 2 * 2000);
        // Completed + dropped = total.
        assert_eq!(
            r.proc_times_us.len() as u64 + r.dropped,
            2 * 2000,
            "drops {} + completions {}",
            r.dropped,
            r.proc_times_us.len()
        );
        // The histogram mirrors the sample stream.
        assert_eq!(r.proc_hist.count(), r.proc_times_us.len() as u64);
    }

    #[test]
    fn no_completion_after_deadline() {
        // The stage-granular slack check makes every miss a drop.
        let c = cfg(700, SchedulerKind::Partitioned);
        let r = PartitionedEngine::new(&c, false).run();
        assert_eq!(r.deadline.overall().missed, r.dropped);
    }

    #[test]
    fn rtopex_reduces_misses_at_moderate_latency() {
        let cp = cfg(550, SchedulerKind::Partitioned);
        let cr = cfg(550, SchedulerKind::RtOpex { delta_us: 20 });
        let part = PartitionedEngine::new(&cp, false).run();
        let rto = PartitionedEngine::new(&cr, true).run();
        assert!(
            rto.deadline.overall().missed <= part.deadline.overall().missed,
            "rtopex {} vs partitioned {}",
            rto.deadline.overall().missed,
            part.deadline.overall().missed
        );
    }

    #[test]
    fn gaps_are_recorded() {
        let c = cfg(500, SchedulerKind::Partitioned);
        let r = PartitionedEngine::new(&c, false).run();
        assert!(r.gaps.count() > 1000, "gaps {}", r.gaps.count());
    }

    #[test]
    fn record_samples_off_keeps_counters_only() {
        let mut c = cfg(500, SchedulerKind::Partitioned);
        c.record_samples = false;
        let r = PartitionedEngine::new(&c, false).run();
        assert_eq!(r.gaps.count(), 0);
        assert!(r.proc_times_us.is_empty());
        // Counters and the histogram still cover every subframe.
        assert_eq!(r.deadline.total_subframes(), 2 * 2000);
        assert_eq!(r.proc_hist.count() + r.dropped, 2 * 2000);
    }

    #[test]
    fn seed_baseline_is_bit_identical_to_streaming_wheel() {
        // The tentpole's equivalence claim, at engine level: same seed ⇒
        // identical per-BS miss counters, histogram, and migration stats
        // across (heap + materialized) vs (wheel + streaming).
        for (rtt, sched) in [
            (500, SchedulerKind::Partitioned),
            (550, SchedulerKind::RtOpex { delta_us: 20 }),
            (650, SchedulerKind::SemiPartitioned),
        ] {
            let c = cfg(rtt, sched);
            let base = PartitionedEngine::new_seed_baseline(
                &c,
                matches!(sched, SchedulerKind::RtOpex { .. }),
            )
            .run();
            let wheel =
                PartitionedEngine::new(&c, matches!(sched, SchedulerKind::RtOpex { .. })).run();
            assert_eq!(base.deadline.per_bs(), wheel.deadline.per_bs(), "{sched:?}");
            assert_eq!(base.proc_hist, wheel.proc_hist, "{sched:?}");
            assert_eq!(base.dropped, wheel.dropped, "{sched:?}");
            assert_eq!(base.crc_failures, wheel.crc_failures, "{sched:?}");
            assert_eq!(
                base.migration.decode_migrated, wheel.migration.decode_migrated,
                "{sched:?}"
            );
            assert_eq!(base.gaps.count(), wheel.gaps.count(), "{sched:?}");
        }
    }

    #[test]
    fn run_until_splits_a_run_without_changing_it() {
        let c = cfg(500, SchedulerKind::RtOpex { delta_us: 20 });
        let whole = PartitionedEngine::new(&c, true).run();
        let mut engine = PartitionedEngine::new(&c, true);
        engine.run_until(Nanos::from_ms(700));
        let split = engine.into_report();
        assert_eq!(whole.deadline.per_bs(), split.deadline.per_bs());
        assert_eq!(whole.proc_hist, split.proc_hist);
    }

    #[test]
    fn fig16_many_gaps_exceed_500us() {
        // Fig. 16: at low transport latency, ≥ 60 % of gaps exceed 500 µs
        // (the partitioned schedule leaves large idle windows).
        let c = cfg(400, SchedulerKind::Partitioned);
        let mut r = PartitionedEngine::new(&c, false).run();
        let frac = r.gaps.fraction_at_least(Nanos::from_us(500));
        assert!(frac > 0.5, "fraction of gaps ≥ 500µs: {frac}");
    }

    #[test]
    fn overruns_trigger_recovery() {
        let mut c = cfg(500, SchedulerKind::RtOpex { delta_us: 20 });
        c.overrun_prob = 0.5;
        c.overrun_factor = 4.0;
        let r = PartitionedEngine::new(&c, true).run();
        assert!(r.migration.recoveries > 0, "no recoveries observed");
    }

    #[test]
    fn zero_overrun_zero_recovery_mostly() {
        let mut c = cfg(500, SchedulerKind::RtOpex { delta_us: 20 });
        c.overrun_prob = 0.0;
        let r = PartitionedEngine::new(&c, true).run();
        // Without host noise, recoveries only from genuine window misfits,
        // which Algorithm 1's R1 rules out.
        assert_eq!(r.migration.recoveries, 0);
    }

    #[test]
    fn huge_delta_suppresses_migration() {
        let c = cfg(500, SchedulerKind::RtOpex { delta_us: 5000 });
        let r = PartitionedEngine::new(&c, true).run();
        assert_eq!(r.migration.decode_migrated + r.migration.fft_migrated, 0);
    }

    #[test]
    fn cores_per_bs_override_shrinks_the_schedule() {
        let mut c = cfg(500, SchedulerKind::Partitioned);
        c.cores_per_bs = Some(1);
        let r = PartitionedEngine::new(&c, false).run();
        let full = cfg(500, SchedulerKind::Partitioned);
        let rf = PartitionedEngine::new(&full, false).run();
        // One core per BS (vs. the Eq. 3 allocation) leaves no pipeline
        // slack, so misses rise; every subframe stays accounted for.
        assert_eq!(r.deadline.total_subframes(), 2 * 2000);
        assert!(
            r.miss_rate() > rf.miss_rate(),
            "{} vs {}",
            r.miss_rate(),
            rf.miss_rate()
        );
        assert!(r.miss_rate() > 0.01, "rate {}", r.miss_rate());
    }
}
