//! Shard-parallel fleet simulation: many simulated hosts, one merged
//! report.
//!
//! A C-RAN deployment pools cells onto a fleet of compute hosts
//! (§1, §6); the pooling experiment asks how many cells a fixed core
//! budget sustains as the fleet grows. Hosts are *independent* — each
//! runs its own engine, event wheel, RNG streams, and metrics — so the
//! fleet is embarrassingly parallel. This module shards the host list
//! across worker threads and merges the per-host [`SimReport`]s into one
//! fleet report.
//!
//! **Determinism.** The merged report is bit-identical for *any*
//! shard/thread count because
//!
//! 1. host `i`'s configuration (and therefore its entire event history)
//!    depends only on the base config and `i` — never on which shard or
//!    thread ran it, or in what order;
//! 2. every host's report is written into slot `i` of a result vector,
//!    and the merge folds slots in ascending host order after all
//!    workers join. [`SimReport::merge`]'s counter/histogram components
//!    are associative and commutative anyway; the ascending fold also
//!    fixes the concatenation order of the sample vectors.
//!
//! Host RNG streams are split from the base seed with a multiplicative
//! mix (the 64-bit golden ratio), so host 0 reproduces the single-node
//! simulation exactly and hosts are statistically independent.

use crate::config::SimConfig;
use crate::report::SimReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Seed mix distinguishing the hosts' RNG streams: the 64-bit golden
/// ratio, multiplied by the host index. Host 0 keeps the base seed, so a
/// 1-host fleet is bit-identical to [`crate::run`] on the base config.
const HOST_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fleet of identical hosts running the base configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Per-host simulation configuration (host 0 runs it verbatim).
    pub base: SimConfig,
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Number of worker threads to shard the hosts across. Clamped to
    /// `[1, hosts]`. Purely a throughput knob: the merged report is
    /// identical for every value.
    pub threads: usize,
}

/// The merged outcome of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// All hosts' metrics merged in ascending host order.
    pub merged: SimReport,
    /// Number of hosts simulated.
    pub hosts: usize,
}

impl FleetReport {
    /// Convenience: the fleet-wide deadline-miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.merged.miss_rate()
    }
}

/// The configuration host `i` runs: the base config with a split seed
/// and the trace list rotated by `i`, so a heterogeneous cell mix lands
/// differently on every host (no fleet-wide phase alignment).
pub fn host_config(base: &SimConfig, host: usize) -> SimConfig {
    let mut cfg = base.clone();
    cfg.seed = base.seed ^ (host as u64).wrapping_mul(HOST_SEED_MIX);
    if host > 0 && base.traces.len() > 1 {
        let k = host % base.traces.len();
        cfg.traces.rotate_left(k);
    }
    cfg
}

/// Runs the fleet, sharding hosts across `cfg.threads` scoped worker
/// threads, and merges the per-host reports. Work is claimed from a
/// shared atomic counter so a straggler host cannot idle the other
/// workers.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    assert!(cfg.hosts > 0, "a fleet needs at least one host");
    let threads = cfg.threads.clamp(1, cfg.hosts);
    let slots: Mutex<Vec<Option<SimReport>>> = Mutex::new(vec![None; cfg.hosts]);
    // ORDERING: Relaxed — the counter only hands out distinct host
    // indices; the results themselves synchronize through the mutex and
    // the scope join.
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // ORDERING: Relaxed — see above; fetch_add uniqueness is
                // all the claim needs.
                let host = next.fetch_add(1, Ordering::Relaxed);
                if host >= cfg.hosts {
                    return;
                }
                let host_cfg = host_config(&cfg.base, host);
                let report = crate::run(&host_cfg);
                slots.lock().expect("fleet worker panicked")[host] = Some(report);
            });
        }
    });

    let slots = slots.into_inner().expect("fleet worker panicked");
    let mut iter = slots.into_iter().map(|r| r.expect("every host simulated"));
    let mut merged = iter.next().expect("at least one host");
    for report in iter {
        merged.merge(&report);
    }
    FleetReport {
        merged,
        hosts: cfg.hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtopex_workload::Scenario;

    fn base() -> SimConfig {
        let mut c = SimConfig::from_scenario(&Scenario::smoke_test(), 500);
        c.subframes = 500;
        c
    }

    #[test]
    fn one_host_fleet_matches_single_run() {
        let b = base();
        let fleet = run_fleet(&FleetConfig {
            base: b.clone(),
            hosts: 1,
            threads: 1,
        });
        let single = crate::run(&b);
        assert_eq!(fleet.merged.deadline.per_bs(), single.deadline.per_bs());
        assert_eq!(fleet.merged.proc_hist, single.proc_hist);
    }

    #[test]
    fn thread_count_does_not_change_the_merge() {
        let b = base();
        let r1 = run_fleet(&FleetConfig {
            base: b.clone(),
            hosts: 5,
            threads: 1,
        });
        let r4 = run_fleet(&FleetConfig {
            base: b.clone(),
            hosts: 5,
            threads: 4,
        });
        let r9 = run_fleet(&FleetConfig {
            base: b,
            hosts: 5,
            threads: 9, // clamped to 5
        });
        assert_eq!(r1.merged.deadline.per_bs(), r4.merged.deadline.per_bs());
        assert_eq!(r1.merged.proc_hist, r4.merged.proc_hist);
        assert_eq!(
            r1.merged.proc_times_us.as_slice(),
            r4.merged.proc_times_us.as_slice()
        );
        assert_eq!(r1.merged.deadline.per_bs(), r9.merged.deadline.per_bs());
    }

    #[test]
    fn hosts_have_distinct_streams() {
        let b = base();
        let h0 = crate::run(&host_config(&b, 0));
        let h1 = crate::run(&host_config(&b, 1));
        // Different seeds ⇒ different sampled execution times.
        assert_ne!(h0.proc_hist, h1.proc_hist);
        // Host 0 is the base config verbatim.
        assert_eq!(host_config(&b, 0).seed, b.seed);
    }

    #[test]
    fn fleet_totals_scale_with_hosts() {
        let b = base();
        let total = (b.num_bs * b.subframes) as u64;
        let fleet = run_fleet(&FleetConfig {
            base: b,
            hosts: 3,
            threads: 2,
        });
        assert_eq!(fleet.merged.deadline.total_subframes(), 3 * total);
        assert_eq!(fleet.hosts, 3);
    }
}
