//! Task generation: turns the workload scenario into concrete
//! [`SubframeTask`]s with sampled execution profiles.
//!
//! Generation is independent of the scheduler under test and fully
//! determined by the seed, so different schedulers can be compared on the
//! *identical* sequence of subframes — a paired comparison, as the paper's
//! trace-replay methodology provides.
//!
//! The generator is a *stream*: [`TaskStream`] derives subframe `j`'s
//! parameters from `(cell, j, seed)` on demand, holding only two RNG
//! states, the load-trace state, and a 29-entry code-block table. A
//! 10⁷-subframe run therefore needs constant memory — the seed version
//! materialized the entire `Vec<Vec<SubframeTask>>` up front, which at
//! fleet scale (64 hosts × dozens of cells × 10⁵ subframes) is gigabytes.
//! [`generate_tasks`] survives as a thin collecting wrapper; the
//! determinism tests pin the stream to it draw for draw.

use crate::config::SimConfig;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rtopex_core::task::{SubframeTask, TaskProfile};
use rtopex_core::time::Nanos;
use rtopex_phy::mcs::Mcs;
use rtopex_phy::segmentation::Segmentation;
use rtopex_workload::{load_to_mcs, LoadTrace};

/// Number of code blocks per MCS at the configured bandwidth.
fn code_block_table(cfg: &SimConfig) -> Vec<usize> {
    Mcs::all()
        .map(|m| {
            let tbs = m.transport_block_bits(cfg.bandwidth.num_prbs());
            Segmentation::compute(tbs + 24)
                .expect("all standard TBS values segment")
                .num_blocks
        })
        .collect()
}

/// Code-block count for an arbitrary (MCS, PRB) pair. Pure arithmetic —
/// safe in the allocation-free hot loop.
fn blocks_for(mcs: Mcs, nprb: usize) -> usize {
    Segmentation::compute(mcs.transport_block_bits(nprb) + 24)
        .expect("all scaled TBS values segment")
        .num_blocks
}

/// A lazy, constant-memory generator of one basestation's subframes.
///
/// Subframe `j`'s parameters depend only on `(bs, j, cfg.seed)` and are
/// produced in ascending `j` — exactly the order the engines consume
/// releases in. The RNG streams are per-cell (`trace` and `outcome`
/// streams seeded independently), so cells are statistically independent
/// and a fleet shard can run any subset of hosts without perturbing the
/// others' draws.
#[derive(Debug)]
pub struct TaskStream<'a> {
    cfg: &'a SimConfig,
    bs: usize,
    next_j: u64,
    rtt: Nanos,
    tmax: Nanos,
    trace_rng: StdRng,
    outcome_rng: StdRng,
    trace: LoadTrace,
    /// Per-MCS code-block counts at full PRB allocation.
    blocks: Vec<usize>,
}

impl<'a> TaskStream<'a> {
    /// Creates the stream for basestation `bs`, positioned at subframe 0.
    pub fn new(cfg: &'a SimConfig, bs: usize) -> Self {
        let budget = cfg.budget();
        // The trace RNG stream matches Scenario::load_traces so the
        // simulator replays exactly the workload the scenario defines.
        let trace_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(bs as u64 * 7919));
        let outcome_rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_0000 ^ (bs as u64) << 32);
        let params = cfg.traces[bs % cfg.traces.len()];
        TaskStream {
            cfg,
            bs,
            next_j: 0,
            rtt: Nanos::from_us(cfg.rtt_half_us),
            tmax: budget.tmax(),
            trace_rng,
            outcome_rng,
            trace: LoadTrace::new(params),
            blocks: code_block_table(cfg),
        }
    }

    /// The basestation this stream generates for.
    pub fn bs(&self) -> usize {
        self.bs
    }

    /// Generates the next subframe, or `None` past `cfg.subframes`.
    /// Allocation-free: every draw lands in plain scalars and the
    /// profile is a fixed-size value.
    pub fn next_task(&mut self) -> Option<SubframeTask> {
        if self.next_j >= self.cfg.subframes as u64 {
            return None;
        }
        let j = self.next_j;
        self.next_j += 1;
        let cfg = self.cfg;
        let bs = self.bs;

        let trace_mcs = load_to_mcs(self.trace.next_load(&mut self.trace_rng));
        let mcs = match (cfg.fixed_mcs, cfg.bs0_mcs) {
            (Some(idx), _) => Mcs::new(idx).expect("fixed MCS valid"),
            (None, Some(idx)) if bs == 0 => Mcs::new(idx).expect("fixed MCS valid"),
            _ => trace_mcs,
        };
        // Varying PRB utilization shrinks the transport block (and its
        // code-block count) while the antenna-level FFT cost stays
        // full-bandwidth.
        let total_prbs = cfg.bandwidth.num_prbs();
        let (d, c) = match cfg.prb_util_range {
            Some((lo, hi)) => {
                let util = self.outcome_rng.gen_range(lo..=hi);
                let nprb = ((total_prbs as f64 * util).ceil() as usize).clamp(1, total_prbs);
                let d = mcs.transport_block_bits(nprb) as f64 / cfg.bandwidth.total_res() as f64;
                (d, blocks_for(mcs, nprb))
            }
            None => (
                mcs.subcarrier_load(cfg.bandwidth),
                self.blocks[mcs.index() as usize],
            ),
        };
        let qm = mcs.modulation_order();
        let outcome = cfg
            .iter_model
            .sample(mcs.index(), d, cfg.snr_db, &mut self.outcome_rng);
        let extra = cfg.jitter.sample(&mut self.outcome_rng);
        let release = Nanos::from_ms(j) + self.rtt;
        Some(SubframeTask {
            bs_id: bs,
            subframe_index: j,
            release,
            deadline: release + self.tmax,
            mcs: mcs.index(),
            crc_ok: outcome.crc_ok,
            profile: TaskProfile::from_model(
                &cfg.time_model,
                cfg.num_antennas,
                qm,
                d,
                outcome.iterations as f64,
                c,
                extra,
            ),
        })
    }
}

impl Iterator for TaskStream<'_> {
    type Item = SubframeTask;

    fn next(&mut self) -> Option<SubframeTask> {
        self.next_task()
    }
}

/// Generates every basestation's task stream: `result[bs][j]`.
///
/// Materializing wrapper around [`TaskStream`] — use only where the full
/// schedule genuinely must be held (the seed-baseline benchmark engine
/// and small tests); the engines proper consume the streams lazily.
pub fn generate_tasks(cfg: &SimConfig) -> Vec<Vec<SubframeTask>> {
    (0..cfg.num_bs)
        .map(|bs| TaskStream::new(cfg, bs).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtopex_workload::Scenario;

    fn cfg() -> SimConfig {
        SimConfig::from_scenario(&Scenario::smoke_test(), 500)
    }

    #[test]
    fn shape_and_timing() {
        let c = cfg();
        let tasks = generate_tasks(&c);
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].len(), 2000);
        let t = &tasks[1][3];
        assert_eq!(t.bs_id, 1);
        assert_eq!(t.subframe_index, 3);
        assert_eq!(t.release, Nanos::from_ms(3) + Nanos::from_us(500));
        // Deadline = over-the-air arrival + 2 ms, regardless of transport.
        assert_eq!(t.deadline, Nanos::from_ms(3) + Nanos::from_ms(2));
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        assert_eq!(generate_tasks(&c), generate_tasks(&c));
    }

    #[test]
    fn stream_is_lazy_and_constant_memory() {
        // 10⁷ subframes would be gigabytes if materialized; taking the
        // first few from the stream must be instant.
        let mut c = cfg();
        c.subframes = 10_000_000;
        let head: Vec<SubframeTask> = TaskStream::new(&c, 0).take(5).collect();
        assert_eq!(head.len(), 5);
        assert_eq!(head[4].subframe_index, 4);
    }

    #[test]
    fn stream_matches_materialized_schedule() {
        // The collecting wrapper and a manually-driven stream agree
        // task for task — including under the PRB-utilization path,
        // which draws from the outcome RNG before the iteration model.
        let mut c = cfg();
        c.prb_util_range = Some((0.3, 1.0));
        let tasks = generate_tasks(&c);
        for (bs, cell_tasks) in tasks.iter().enumerate() {
            let mut s = TaskStream::new(&c, bs);
            for want in cell_tasks {
                assert_eq!(s.next_task().as_ref(), Some(want));
            }
            assert!(s.next_task().is_none());
        }
    }

    #[test]
    fn code_blocks_match_mcs() {
        let c = cfg();
        let blocks = code_block_table(&c);
        assert_eq!(blocks[0], 1); // MCS 0: single block
        assert_eq!(blocks[27], 6); // MCS 27: six blocks (paper §2.2)
        let tasks = generate_tasks(&c);
        for t in tasks.iter().flatten() {
            assert_eq!(t.profile.decode.subtasks, blocks[t.mcs as usize]);
        }
    }

    #[test]
    fn fixed_mcs_override() {
        let mut c = cfg();
        c.fixed_mcs = Some(27);
        let tasks = generate_tasks(&c);
        assert!(tasks.iter().flatten().all(|t| t.mcs == 27));
        // MCS 27 at 30 dB: heavy subframes, mostly 3-4 iterations, so the
        // serial total is well above 1.5 ms on average.
        let mean_us: f64 = tasks
            .iter()
            .flatten()
            .map(|t| t.profile.total().as_us_f64())
            .sum::<f64>()
            / (2.0 * 2000.0);
        assert!(mean_us > 1500.0, "mean MCS-27 time {mean_us} µs");
    }

    #[test]
    fn trace_driven_has_mcs_diversity() {
        let tasks = generate_tasks(&cfg());
        let distinct: std::collections::HashSet<u8> =
            tasks.iter().flatten().map(|t| t.mcs).collect();
        assert!(distinct.len() > 10, "only {} MCS values", distinct.len());
    }

    #[test]
    fn profiles_scale_with_antennas() {
        let mut c2 = cfg();
        c2.num_antennas = 2;
        let mut c4 = cfg();
        c4.num_antennas = 4;
        let t2 = generate_tasks(&c2);
        let t4 = generate_tasks(&c4);
        assert_eq!(t4[0][0].profile.fft.subtasks, 4);
        assert!(t4[0][0].profile.fft.total() > t2[0][0].profile.fft.total());
    }
}
