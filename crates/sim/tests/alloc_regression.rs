//! Counting-allocator regression: the steady-state event loop allocates
//! nothing.
//!
//! The tentpole claims an allocation-free per-event hot path: after the
//! wheel slots, core queues, and metrics have grown to their working
//! size, simulating further subframes must not touch the heap at all.
//! This is the dynamic witness behind the `on_event` purity seed in
//! `rtopex-analyze` — the static pass proves no alloc *call* is
//! reachable from the hot loop, this test proves the runtime actually
//! performs zero.
//!
//! A single `#[test]` drives every engine through `run_until` so the
//! global allocation counter is never polluted by a concurrent test
//! thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rtopex_core::global::QueuePolicy;
use rtopex_core::time::Nanos;
use rtopex_sim::engine::PartitionedEngine;
use rtopex_sim::global_engine::GlobalEngine;
use rtopex_sim::{SchedulerKind, SimConfig};
use rtopex_workload::Scenario;

/// Wraps the system allocator and counts every allocation and
/// reallocation (frees are irrelevant to the regression).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn cfg(sched: SchedulerKind) -> SimConfig {
    let mut s = Scenario::smoke_test();
    // 1 ms cadence: 600 subframes per cell spans the 200 ms warm-up plus
    // the 300 ms measured window with margin.
    s.subframes = 600;
    let mut c = SimConfig::from_scenario(&s, 500);
    c.scheduler = sched;
    // Sample recording is the one legitimately allocating metric
    // (unbounded Vec push); the hot-loop guarantee is scoped to the
    // fleet/bench configuration, which always runs with it off.
    c.record_samples = false;
    c
}

const WARM_UP: Nanos = Nanos::from_ms(200);
const MEASURE_END: Nanos = Nanos::from_ms(500);

/// Runs `step` after warm-up and returns the allocations it performed.
fn measure(name: &str, mut step: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    step();
    let n = ALLOCS.load(Ordering::Relaxed) - before;
    eprintln!("{name}: {n} allocations over the steady-state window");
    n
}

#[test]
fn steady_state_event_loop_never_allocates() {
    // Partitioned and RT-OPEX share the partitioned engine; exercise
    // both because migration is the busiest event path.
    for (name, migrate, sched) in [
        ("partitioned", false, SchedulerKind::Partitioned),
        ("rtopex", true, SchedulerKind::RtOpex { delta_us: 20 }),
    ] {
        let c = cfg(sched);
        let mut engine = PartitionedEngine::new(&c, migrate);
        engine.run_until(WARM_UP);
        let n = measure(name, || engine.run_until(MEASURE_END));
        assert_eq!(n, 0, "{name}: steady-state event loop allocated");
        // The run must still complete and account for every subframe.
        let report = engine.into_report();
        assert_eq!(
            report.deadline.total_subframes(),
            (c.num_bs * c.subframes) as u64,
            "{name}"
        );
    }

    let c = cfg(SchedulerKind::Global {
        cores: 8,
        policy: QueuePolicy::Edf,
    });
    let mut engine = GlobalEngine::new(&c);
    engine.run_until(WARM_UP);
    let n = measure("global-edf", || engine.run_until(MEASURE_END));
    assert_eq!(n, 0, "global: steady-state event loop allocated");
    let report = engine.into_report();
    assert_eq!(
        report.deadline.total_subframes(),
        (c.num_bs * c.subframes) as u64
    );
}
