//! Shard-count- and seed-reproducibility guarantees of the fleet engine.
//!
//! The pooling experiment and the `BENCH_sim.json` baseline are only
//! trustworthy if the merged fleet report is a pure function of
//! (config, seed): independent of how many worker threads sharded the
//! hosts, and identical between the production timing-wheel engine and
//! the seed binary-heap baseline. These tests pin all three properties,
//! plus a proptest sweeping seeds so the guarantee is not an artifact of
//! one lucky seed.

use proptest::prelude::*;
use rtopex_core::global::QueuePolicy;
use rtopex_sim::{run, run_baseline, run_fleet, FleetConfig, SchedulerKind, SimConfig, SimReport};
use rtopex_workload::Scenario;

fn base(seed: u64) -> SimConfig {
    let mut s = Scenario::smoke_test();
    s.subframes = 400;
    let mut cfg = SimConfig::from_scenario(&s, 500);
    cfg.seed = seed;
    cfg.record_samples = false;
    cfg
}

/// Field-by-field bit equality of two reports (SimReport carries
/// sample vectors and histograms, so it does not derive PartialEq).
fn assert_reports_identical(a: &SimReport, b: &SimReport, ctx: &str) {
    assert_eq!(a.deadline.per_bs(), b.deadline.per_bs(), "deadline: {ctx}");
    assert_eq!(a.proc_hist, b.proc_hist, "proc_hist: {ctx}");
    assert_eq!(a.dropped, b.dropped, "dropped: {ctx}");
    assert_eq!(a.crc_failures, b.crc_failures, "crc_failures: {ctx}");
    assert_eq!(
        a.migration.decode_migrated, b.migration.decode_migrated,
        "decode_migrated: {ctx}"
    );
    assert_eq!(
        a.migration.fft_migrated, b.migration.fft_migrated,
        "fft_migrated: {ctx}"
    );
    assert_eq!(
        a.migration.recoveries, b.migration.recoveries,
        "recoveries: {ctx}"
    );
}

fn all_modes() -> [SchedulerKind; 3] {
    [
        SchedulerKind::Partitioned,
        SchedulerKind::RtOpex { delta_us: 20 },
        SchedulerKind::Global {
            cores: 8,
            policy: QueuePolicy::Edf,
        },
    ]
}

/// The merged fleet report is bit-identical whether the 8 hosts are run
/// on 1, 2, or 8 worker threads — the shard layout is a pure throughput
/// knob (ISSUE 6 tentpole: "deterministic merge of SimReports so results
/// are bit-identical for any shard count").
#[test]
fn merged_report_is_identical_across_shard_counts() {
    for sched in all_modes() {
        let mut b = base(7);
        b.scheduler = sched;
        let fleet = |threads| {
            run_fleet(&FleetConfig {
                base: b.clone(),
                hosts: 8,
                threads,
            })
        };
        let r1 = fleet(1);
        for threads in [2usize, 8] {
            let rn = fleet(threads);
            assert_reports_identical(
                &r1.merged,
                &rn.merged,
                &format!("{sched:?}, {threads} threads"),
            );
        }
    }
}

/// The timing-wheel engine and the seed heap baseline are two event
/// queues over one simulation: every scheduler mode must produce the
/// same report from both, so the benchmarked speedup is never bought
/// with a behavior change.
#[test]
fn wheel_and_heap_baseline_agree_for_every_scheduler() {
    for sched in all_modes() {
        let mut cfg = base(11);
        cfg.scheduler = sched;
        assert_reports_identical(
            &run(&cfg),
            &run_baseline(&cfg),
            &format!("wheel vs heap, {sched:?}"),
        );
    }
}

/// Same seed, same report — twice through the production engine.
#[test]
fn rerun_with_same_seed_is_bit_identical() {
    for sched in all_modes() {
        let mut cfg = base(13);
        cfg.scheduler = sched;
        assert_reports_identical(&run(&cfg), &run(&cfg), &format!("rerun, {sched:?}"));
    }
}

proptest! {
    // Integration proptests rerun whole simulations, so keep the case
    // count modest; 16 seeds across the full u64 range is plenty to
    // rule out seed-dependent divergence.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seed-parametric version of the two core guarantees, under the
    /// migrating scheduler (the mode with the most event interleaving):
    /// wheel == heap, and the 1-thread fleet == the 4-thread fleet.
    #[test]
    fn determinism_holds_for_arbitrary_seeds(seed in any::<u64>()) {
        let mut cfg = base(seed);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        cfg.subframes = 150;

        let wheel = run(&cfg);
        let heap = run_baseline(&cfg);
        prop_assert_eq!(wheel.deadline.per_bs(), heap.deadline.per_bs());
        prop_assert_eq!(&wheel.proc_hist, &heap.proc_hist);
        prop_assert_eq!(wheel.dropped, heap.dropped);

        let fleet = |threads| run_fleet(&FleetConfig { base: cfg.clone(), hosts: 4, threads });
        let r1 = fleet(1);
        let r4 = fleet(4);
        prop_assert_eq!(r1.merged.deadline.per_bs(), r4.merged.deadline.per_bs());
        prop_assert_eq!(&r1.merged.proc_hist, &r4.merged.proc_hist);
        prop_assert_eq!(r1.merged.dropped, r4.merged.dropped);
    }
}
