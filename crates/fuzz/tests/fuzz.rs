//! Fuzzer gate and self-tests.
//!
//! * The committed corpus must replay clean on every target — this is
//!   the same check `cargo xtask fuzz --smoke` runs in CI.
//! * The engine must be seed-deterministic, must actually observe
//!   probe coverage (anti-vacuity), and must *catch* a seeded panic —
//!   the mutation test proving the harness can fail.
//!
//! The probe map and panic hook are process-global, so every test
//! takes `GATE`.

use std::sync::Mutex;

use rtopex_fuzz::{corpus, targets, Fuzzer};
use rtopex_transport::probe;

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn committed_corpus_replays_clean_on_every_target() {
    let _g = gate();
    for t in targets::TARGETS {
        let entries = corpus::load_dir(&corpus::dir_for(t.name));
        assert!(
            !entries.is_empty(),
            "{}: committed corpus is empty — run `rtopex-fuzz seed {}`",
            t.name,
            t.name
        );
        let mut fz = Fuzzer::new(t);
        let crashed = fz.replay(entries.iter().map(|(_, d)| d.as_slice()));
        assert_eq!(crashed, 0, "{}: corpus crashes: {:?}", t.name, fz.crashes);
        assert!(fz.slow.is_empty(), "{}: slow inputs in corpus", t.name);
        // Anti-vacuity: a corpus that lights up no probe edges means
        // the instrumentation got disconnected from the target.
        assert!(
            fz.stats().edges > 0,
            "{}: corpus reached zero probe edges",
            t.name
        );
    }
}

#[test]
fn fuzzing_is_seed_deterministic() {
    let _g = gate();
    let target = targets::find("hello").unwrap();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut fz = Fuzzer::new(target);
        for s in targets::seeds("hello") {
            fz.add_input(&s);
        }
        let stats = fz.run(3, 2000, None);
        runs.push((stats.edges, stats.corpus, fz.corpus.clone()));
    }
    assert_eq!(runs[0], runs[1], "same seed must reproduce the same run");
}

#[test]
fn probes_light_up_under_a_valid_hello() {
    let _g = gate();
    let target = targets::find("hello").unwrap();
    let mut fz = Fuzzer::new(target);
    let full = targets::seeds("hello").remove(0);
    let exec = fz.execute(&full);
    assert!(exec.crash.is_none());
    assert!(
        exec.map.iter().any(|&b| b != 0),
        "valid hello exercised no probe edges"
    );
}

// --- mutation tests: the harness itself must be able to fail ---------

/// A target with a two-stage magic value: stage one gives the engine a
/// coverage breadcrumb, stage two panics.
fn boom(data: &[u8]) {
    if data.first() == Some(&0xB0) {
        probe::reach(0x7001);
        if data.get(1) == Some(&0x0B) {
            panic!("boom magic reached");
        }
    }
}

static BOOM: targets::Target = targets::Target {
    name: "boom",
    max_len: 8,
    run: boom,
};

#[test]
fn harness_catches_and_reports_a_panicking_target() {
    let _g = gate();
    let mut fz = Fuzzer::new(&BOOM);
    fz.add_input(&[0xB0, 0x0B]);
    assert_eq!(fz.crashes.len(), 1, "panic not captured");
    assert!(fz.crashes[0].1.contains("boom magic"), "{:?}", fz.crashes);
    // The crashing input must also replay as a crash.
    let mut fz2 = Fuzzer::new(&BOOM);
    assert_eq!(fz2.replay([&[0xB0u8, 0x0B][..]]), 1);
}

#[test]
fn coverage_guidance_finds_the_staged_magic() {
    let _g = gate();
    let mut fz = Fuzzer::new(&BOOM);
    fz.add_input(&[0u8, 0]);
    let stats = fz.run(11, 60_000, None);
    assert!(
        stats.crashes > 0,
        "fuzzer never found the staged panic in {} execs",
        stats.execs
    );
    // The breadcrumb input (0xB0 prefix) must have joined the corpus
    // before the crash was possible — that is the coverage guidance.
    assert!(fz
        .corpus
        .iter()
        .any(|c| c.first() == Some(&0xB0) && c.get(1) != Some(&0x0B)));
}
