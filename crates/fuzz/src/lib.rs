//! # rtopex-fuzz — coverage-guided fuzzing for the fronthaul parsers
//!
//! A zero-dependency, deterministic mutation fuzzer over the
//! attacker-facing transport entry points (`targets`). Coverage comes
//! from the hand-placed branch-edge probes in
//! [`rtopex_transport::probe`]: the engine arms the probe map around
//! each input, buckets the edge counters AFL-style, and keeps any
//! input that lights up a new (edge, bucket) pair, minimizing it
//! before it joins the corpus.
//!
//! Two operating modes:
//! * **replay** — run the committed corpus under `corpus/<target>/`;
//!   any panic, assertion, or slow input fails. This is the gating CI
//!   job (`cargo xtask fuzz --smoke`).
//! * **run** — open-ended fuzzing from a seed; new findings are
//!   written out for the nightly advisory job. Same seed + same
//!   iteration count ⇒ same corpus, bit for bit.
//!
//! Tooling-only by design: no runtime crate may depend on this one
//! (`cargo xtask layering` pins it), and the crate is deliberately
//! outside the analyzer's roots — the fuzzer may allocate and index
//! freely; the code it *drives* may not.

#![warn(missing_docs)]

pub mod corpus;
pub mod mutate;
pub mod rng;
pub mod targets;

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use rtopex_transport::probe;

use rng::Rng;
use targets::Target;

/// Inputs slower than this are findings in their own right (the rx
/// thread budget is ~1 ms per subframe; 50 ms means an input found a
/// quadratic corner).
pub const SLOW_INPUT: Duration = Duration::from_millis(50);

/// Per-input execution cap the minimizer spends (it re-executes the
/// target once per candidate trim).
const MINIMIZE_EXECS: usize = 256;

/// AFL-style count bucketing: collapse an edge counter into one of
/// eight coarse classes so loop-count jitter does not read as new
/// coverage.
fn bucket(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

/// Outcome of one target execution.
pub struct Exec {
    /// Panic payload, if the input crashed the target.
    pub crash: Option<String>,
    /// Wall time the input took.
    pub elapsed: Duration,
    /// Bucketed edge map.
    pub map: Box<[u8; probe::MAP_SIZE]>,
}

/// Aggregate statistics for a fuzzing run.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Total target executions.
    pub execs: u64,
    /// Distinct (edge, bucket) pairs discovered.
    pub edges: usize,
    /// Corpus entries kept.
    pub corpus: usize,
    /// Distinct crash messages found.
    pub crashes: usize,
    /// Slow inputs found.
    pub slow: usize,
}

/// The coverage-guided engine for one target.
pub struct Fuzzer {
    target: &'static Target,
    /// OR of every bucketed map seen — the global coverage frontier.
    seen: Box<[u8; probe::MAP_SIZE]>,
    /// Kept inputs (each contributed coverage when added).
    pub corpus: Vec<Vec<u8>>,
    /// First input per distinct crash message.
    pub crashes: Vec<(Vec<u8>, String)>,
    /// Inputs that exceeded [`SLOW_INPUT`].
    pub slow: Vec<(Vec<u8>, Duration)>,
    execs: u64,
}

impl Fuzzer {
    /// An engine with empty coverage for `target`.
    pub fn new(target: &'static Target) -> Self {
        Fuzzer {
            target,
            seen: Box::new([0u8; probe::MAP_SIZE]),
            corpus: Vec::new(),
            crashes: Vec::new(),
            slow: Vec::new(),
            execs: 0,
        }
    }

    /// Runs the target once under the probe map, swallowing panics.
    pub fn execute(&mut self, input: &[u8]) -> Exec {
        self.execs += 1;
        let run = self.target.run;
        // Silence the default "thread panicked" stderr spam while the
        // harness observes the panic as data.
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        probe::arm();
        let start = Instant::now();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| run(input)));
        let elapsed = start.elapsed();
        probe::disarm();
        panic::set_hook(prev_hook);
        let crash = caught.err().map(|e| {
            if let Some(s) = e.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = e.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        });
        let mut map = Box::new([0u8; probe::MAP_SIZE]);
        probe::snapshot(&mut map);
        for b in map.iter_mut() {
            *b = bucket(*b);
        }
        Exec {
            crash,
            elapsed,
            map,
        }
    }

    /// Folds a bucketed map into the frontier; true if anything new.
    fn merge(&mut self, map: &[u8; probe::MAP_SIZE]) -> bool {
        let mut new = false;
        for (s, &m) in self.seen.iter_mut().zip(map.iter()) {
            if m & !*s != 0 {
                new = true;
            }
            *s |= m;
        }
        new
    }

    /// Executes `input`, records crashes/slow findings, and keeps it
    /// (minimized) in the corpus when it contributed new coverage.
    /// Returns true on new coverage.
    pub fn add_input(&mut self, input: &[u8]) -> bool {
        let exec = self.execute(input);
        if let Some(msg) = &exec.crash {
            if !self.crashes.iter().any(|(_, m)| m == msg) {
                self.crashes.push((input.to_vec(), msg.clone()));
            }
        }
        if exec.elapsed > SLOW_INPUT {
            self.slow.push((input.to_vec(), exec.elapsed));
        }
        let new = self.merge(&exec.map);
        if new {
            let min = self.minimize(input, &exec);
            self.corpus.push(min);
        }
        new
    }

    /// Greedy trim preserving the input's exact bucketed map (and its
    /// crash message, if any): repeatedly drop aligned chunks, halving
    /// the chunk size, until nothing removable remains or the exec
    /// budget runs out.
    pub fn minimize(&mut self, input: &[u8], base: &Exec) -> Vec<u8> {
        let mut cur = input.to_vec();
        let mut budget = MINIMIZE_EXECS;
        let mut chunk = (cur.len() / 2).max(1);
        while chunk >= 1 && budget > 0 {
            let mut offset = 0;
            let mut removed_any = false;
            while offset < cur.len() && budget > 0 {
                let end = (offset + chunk).min(cur.len());
                let mut cand = Vec::with_capacity(cur.len());
                cand.extend_from_slice(&cur[..offset]);
                cand.extend_from_slice(&cur[end..]);
                budget -= 1;
                let e = self.execute(&cand);
                if *e.map == *base.map && e.crash == base.crash {
                    cur = cand;
                    removed_any = true;
                } else {
                    offset = end;
                }
            }
            if chunk == 1 && !removed_any {
                break;
            }
            chunk /= 2;
        }
        cur
    }

    /// Replays `inputs` without mutating; returns the number that
    /// crashed. Coverage still accumulates (the anti-vacuity check in
    /// CI asserts the committed corpus lights up a minimum frontier).
    pub fn replay<'a>(&mut self, inputs: impl IntoIterator<Item = &'a [u8]>) -> usize {
        let mut crashed = 0;
        for input in inputs {
            let exec = self.execute(input);
            if let Some(msg) = &exec.crash {
                crashed += 1;
                if !self.crashes.iter().any(|(_, m)| m == msg) {
                    self.crashes.push((input.to_vec(), msg.clone()));
                }
            }
            if exec.elapsed > SLOW_INPUT {
                self.slow.push((input.to_vec(), exec.elapsed));
            }
            let map = exec.map;
            self.merge(&map);
        }
        crashed
    }

    /// The coverage-guided loop: pick a corpus entry, mutate, keep on
    /// new coverage. Deterministic for a fixed `(seed, iters)` when
    /// `budget` is `None`; a budget makes the stop point wall-clock
    /// dependent (advisory/nightly mode).
    pub fn run(&mut self, seed: u64, iters: u64, budget: Option<Duration>) -> Stats {
        if self.corpus.is_empty() {
            self.add_input(&[]);
            if self.corpus.is_empty() {
                // Even the empty input found nothing new (pre-seeded
                // frontier); keep it anyway as mutation stock.
                self.corpus.push(Vec::new());
            }
        }
        let mut rng = Rng::new(seed);
        let start = Instant::now();
        for _ in 0..iters {
            if let Some(b) = budget {
                if start.elapsed() > b {
                    break;
                }
            }
            let mut input = self.corpus[rng.below(self.corpus.len())].clone();
            let other = self.corpus[rng.below(self.corpus.len())].clone();
            mutate::mutate(&mut input, &mut rng, self.target.max_len, &other);
            self.add_input(&input);
        }
        self.stats()
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> Stats {
        Stats {
            execs: self.execs,
            edges: self.seen.iter().filter(|&&b| b != 0).count(),
            corpus: self.corpus.len(),
            crashes: self.crashes.len(),
            slow: self.slow.len(),
        }
    }
}
