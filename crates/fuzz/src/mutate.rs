//! Byte-level mutation stack, AFL-flavored.
//!
//! Each call applies 1–4 stacked operations drawn from the classic
//! repertoire: bit flips, byte sets, interesting-value overwrites
//! (boundary integers the parsers compare lengths and sequence numbers
//! against), range deletes/duplicates, truncation, extension, and
//! splicing with another corpus entry. All randomness comes from the
//! caller's [`Rng`], so mutation is deterministic per seed.

use crate::rng::Rng;

/// Boundary values the wire format's length/seq/count fields care
/// about: zero, small counts, the caps, and the unsigned maxima that
/// trip naive arithmetic.
const INTERESTING_U32: &[u32] = &[
    0,
    1,
    2,
    64,
    65,
    128,
    360,
    1440,
    4096,
    30_720,
    30_721,
    u16::MAX as u32,
    u16::MAX as u32 + 1,
    u32::MAX / 2,
    u32::MAX / 2 + 1,
    u32::MAX - 1,
    u32::MAX,
];

/// Mutates `data` in place, keeping `data.len() <= max_len`.
/// `other` (another corpus entry, possibly empty) feeds the splice op.
pub fn mutate(data: &mut Vec<u8>, rng: &mut Rng, max_len: usize, other: &[u8]) {
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        match rng.below(9) {
            0 => bit_flip(data, rng),
            1 => byte_set(data, rng),
            2 => interesting(data, rng),
            3 => delete_range(data, rng),
            4 => dup_range(data, rng, max_len),
            5 => truncate(data, rng),
            6 => extend(data, rng, max_len),
            7 => splice(data, rng, max_len, other),
            _ => byte_add(data, rng),
        }
    }
    data.truncate(max_len);
}

fn bit_flip(data: &mut [u8], rng: &mut Rng) {
    if data.is_empty() {
        return;
    }
    let i = rng.below(data.len());
    let bit = rng.below(8) as u8;
    if let Some(b) = data.get_mut(i) {
        *b ^= 1 << bit;
    }
}

fn byte_set(data: &mut [u8], rng: &mut Rng) {
    if data.is_empty() {
        return;
    }
    let i = rng.below(data.len());
    let v = rng.byte();
    if let Some(b) = data.get_mut(i) {
        *b = v;
    }
}

fn byte_add(data: &mut [u8], rng: &mut Rng) {
    if data.is_empty() {
        return;
    }
    let i = rng.below(data.len());
    let v = rng.byte();
    if let Some(b) = data.get_mut(i) {
        *b = b.wrapping_add(v | 1);
    }
}

fn interesting(data: &mut [u8], rng: &mut Rng) {
    if data.is_empty() {
        return;
    }
    let v = INTERESTING_U32[rng.below(INTERESTING_U32.len())];
    let width = [1usize, 2, 4][rng.below(3)];
    let i = rng.below(data.len());
    let bytes = v.to_be_bytes();
    // Write the low `width` bytes of the BE encoding at offset i.
    for (k, &b) in bytes[4 - width..].iter().enumerate() {
        if let Some(d) = data.get_mut(i + k) {
            *d = b;
        }
    }
}

fn delete_range(data: &mut Vec<u8>, rng: &mut Rng) {
    if data.len() < 2 {
        return;
    }
    let start = rng.below(data.len());
    let len = 1 + rng.below((data.len() - start).min(16));
    data.drain(start..start + len);
}

fn dup_range(data: &mut Vec<u8>, rng: &mut Rng, max_len: usize) {
    if data.is_empty() || data.len() >= max_len {
        return;
    }
    let start = rng.below(data.len());
    let len = 1 + rng.below((data.len() - start).min(16));
    let chunk: Vec<u8> = data[start..start + len].to_vec();
    let at = rng.below(data.len() + 1);
    for (k, b) in chunk.into_iter().enumerate() {
        data.insert((at + k).min(data.len()), b);
    }
}

fn truncate(data: &mut Vec<u8>, rng: &mut Rng) {
    if data.len() > 1 {
        let keep = 1 + rng.below(data.len() - 1);
        data.truncate(keep);
    }
}

fn extend(data: &mut Vec<u8>, rng: &mut Rng, max_len: usize) {
    let room = max_len.saturating_sub(data.len());
    if room == 0 {
        return;
    }
    let n = 1 + rng.below(room.min(32));
    for _ in 0..n {
        data.push(rng.byte());
    }
}

fn splice(data: &mut Vec<u8>, rng: &mut Rng, max_len: usize, other: &[u8]) {
    if other.is_empty() {
        return;
    }
    let cut = rng.below(data.len() + 1);
    let from = rng.below(other.len());
    data.truncate(cut);
    data.extend_from_slice(&other[from..]);
    data.truncate(max_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let seed = b"\x01\x02\x03\x04\x05\x06\x07\x08".to_vec();
        let mut a = seed.clone();
        let mut b = seed.clone();
        let mut ra = Rng::new(99);
        let mut rb = Rng::new(99);
        for _ in 0..200 {
            mutate(&mut a, &mut ra, 64, &seed);
            mutate(&mut b, &mut rb, 64, &seed);
            assert!(a.len() <= 64);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_eventually_changes_input() {
        let seed = vec![0u8; 16];
        let mut x = seed.clone();
        let mut rng = Rng::new(1);
        mutate(&mut x, &mut rng, 64, &[]);
        // One stacked round may no-op (e.g. splice with empty other),
        // but a handful cannot leave 16 zero bytes untouched.
        for _ in 0..10 {
            mutate(&mut x, &mut rng, 64, &[]);
        }
        assert_ne!(x, seed);
    }
}
