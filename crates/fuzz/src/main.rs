//! CLI for the fronthaul fuzzer.
//!
//! ```text
//! rtopex-fuzz list
//! rtopex-fuzz seed  [target]                      # write canonical seeds
//! rtopex-fuzz replay [target]                     # gating: corpus must not crash
//! rtopex-fuzz run <target> [--seed N] [--iters N] [--budget-ms N]
//!                 [--out DIR] [--save-corpus]     # open-ended fuzzing
//! ```
//!
//! Exit codes: 0 clean, 1 usage error, 2 findings (crash or slow
//! input) — the nightly job treats 2 as "upload artifacts", the gating
//! job treats it as failure.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rtopex_fuzz::{corpus, targets, Fuzzer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("list") => {
            for t in targets::TARGETS {
                println!("{} (max input {} bytes)", t.name, t.max_len);
            }
            ExitCode::SUCCESS
        }
        Some("seed") => seed(it.next()),
        Some("replay") => replay(it.next()),
        Some("run") => run(&args[1..]),
        _ => {
            eprintln!(
                "usage: rtopex-fuzz <list|seed [target]|replay [target]|run <target> \
                 [--seed N] [--iters N] [--budget-ms N] [--out DIR] [--save-corpus]>"
            );
            ExitCode::from(1)
        }
    }
}

fn target_names(only: Option<&str>) -> Vec<&'static str> {
    match only {
        Some(name) => targets::find(name)
            .map(|t| vec![t.name])
            .unwrap_or_default(),
        None => targets::TARGETS.iter().map(|t| t.name).collect(),
    }
}

fn seed(only: Option<&str>) -> ExitCode {
    let names = target_names(only);
    if names.is_empty() {
        eprintln!("unknown target {only:?}");
        return ExitCode::from(1);
    }
    for name in names {
        let dir = corpus::dir_for(name);
        for s in targets::seeds(name) {
            match corpus::save(&dir, &s) {
                Ok(file) => println!("{name}: seeded {file} ({} bytes)", s.len()),
                Err(e) => {
                    eprintln!("{name}: cannot write corpus: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn replay(only: Option<&str>) -> ExitCode {
    let names = target_names(only);
    if names.is_empty() {
        eprintln!("unknown target {only:?}");
        return ExitCode::from(1);
    }
    let mut findings = 0;
    for name in names {
        let target = targets::find(name).expect("shipped name");
        let mut fz = Fuzzer::new(target);
        let entries = corpus::load_dir(&corpus::dir_for(name));
        if entries.is_empty() {
            eprintln!("{name}: empty corpus — run `rtopex-fuzz seed {name}` first");
            findings += 1;
            continue;
        }
        let crashed = fz.replay(entries.iter().map(|(_, d)| d.as_slice()));
        let st = fz.stats();
        println!(
            "{name}: replayed {} inputs, {} edges, {crashed} crashes, {} slow",
            entries.len(),
            st.edges,
            st.slow
        );
        for (input, msg) in &fz.crashes {
            eprintln!("{name}: CRASH [{}] {msg}", corpus::input_name(input));
        }
        for (input, t) in &fz.slow {
            eprintln!("{name}: SLOW [{}] {t:?}", corpus::input_name(input));
        }
        findings += crashed + fz.slow.len();
        if st.edges == 0 {
            eprintln!("{name}: corpus hit zero probe edges — instrumentation is vacuous");
            findings += 1;
        }
    }
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn run(rest: &[String]) -> ExitCode {
    let mut name = None;
    let mut seed = 1u64;
    let mut iters = 50_000u64;
    let mut budget_ms: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut save_corpus = false;
    let mut it = rest.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--seed" => seed = parse_or_die(it.next()),
            "--iters" => iters = parse_or_die(it.next()),
            "--budget-ms" => budget_ms = Some(parse_or_die(it.next())),
            "--out" => out = it.next().map(PathBuf::from),
            "--save-corpus" => save_corpus = true,
            other if name.is_none() => name = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(target) = name.as_deref().and_then(targets::find) else {
        eprintln!("unknown or missing target {name:?}");
        return ExitCode::from(1);
    };
    let mut fz = Fuzzer::new(target);
    // Start from the committed corpus plus the canonical seeds.
    let committed = corpus::load_dir(&corpus::dir_for(target.name));
    for (_, data) in &committed {
        fz.add_input(data);
    }
    for s in targets::seeds(target.name) {
        fz.add_input(&s);
    }
    let stats = fz.run(seed, iters, budget_ms.map(Duration::from_millis));
    println!(
        "{}: seed {seed}: {} execs, {} edges, {} corpus, {} crashes, {} slow",
        target.name, stats.execs, stats.edges, stats.corpus, stats.crashes, stats.slow
    );
    let out = out.unwrap_or_else(|| PathBuf::from("target/fuzz-findings").join(target.name));
    for (input, msg) in &fz.crashes {
        if let Ok(file) = corpus::save(&out, input) {
            eprintln!("{}: CRASH {file}: {msg}", target.name);
        }
    }
    for (input, t) in &fz.slow {
        if let Ok(file) = corpus::save(&out, input) {
            eprintln!("{}: SLOW {file}: {t:?}", target.name);
        }
    }
    if save_corpus {
        let dir = corpus::dir_for(target.name);
        for input in &fz.corpus {
            if !input.is_empty() {
                let _ = corpus::save(&dir, input);
            }
        }
        println!("{}: corpus saved to {}", target.name, dir.display());
    }
    if fz.crashes.is_empty() && fz.slow.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn parse_or_die(v: Option<&str>) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("flag needs a numeric value");
        std::process::exit(1);
    })
}
