//! SplitMix64 — the whole PRNG the fuzzer needs.
//!
//! Not `vendor/rand`: determinism across sessions is a hard requirement
//! (a seed printed in a CI log must reproduce the run forever), so the
//! generator is pinned here where no shim update can change it.

/// Deterministic 64-bit generator (SplitMix64).
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// One uniform byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// True once in `one_in` draws on average.
    pub fn chance(&mut self, one_in: usize) -> bool {
        self.below(one_in.max(1)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(1), 0);
    }
}
