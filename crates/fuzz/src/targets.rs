//! Fuzz targets — the attacker-facing entry points of the fronthaul.
//!
//! Each target consumes one byte string and must return without
//! panicking for *any* input; where a cheap semantic oracle exists
//! (hello re-encode/re-decode) the target asserts it, so the fuzzer
//! hunts logic divergence as well as crashes. Structured targets
//! (`session`, `seq`) interpret the input as a bounded op script, which
//! reaches reassembly states that raw byte mutation alone almost never
//! hits (matching seq numbers across fragments, resync interleavings).

use std::io::Cursor;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use rtopex_phy::Cf32;
use rtopex_transport::iface::StreamParams;
use rtopex_transport::packet::SeqTracker;
use rtopex_transport_net::framing::{self, ReadEnd};
use rtopex_transport_net::ring::SwapQueue;
use rtopex_transport_net::session::RxSession;
use rtopex_transport_net::wire;

/// One fuzzable entry point.
pub struct Target {
    /// Corpus/CLI name.
    pub name: &'static str,
    /// Inputs are clamped to this length by the mutator.
    pub max_len: usize,
    /// The harness: must tolerate arbitrary bytes.
    pub run: fn(&[u8]),
}

/// Every shipped target, in replay order.
pub const TARGETS: &[Target] = &[
    Target {
        name: "hello",
        max_len: 256,
        run: hello_target,
    },
    Target {
        name: "iq",
        max_len: wire::MAX_IQ_FRAME,
        run: iq_target,
    },
    Target {
        name: "tcp",
        max_len: 2048,
        run: tcp_target,
    },
    Target {
        name: "session",
        max_len: 640,
        run: session_target,
    },
    Target {
        name: "seq",
        max_len: 1280,
        run: seq_target,
    },
];

/// Looks a target up by name.
pub fn find(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

/// Hello negotiation parser, with a re-encode oracle: any hello that
/// decodes must survive encode → decode unchanged.
fn hello_target(data: &[u8]) {
    if let Ok((v, p)) = wire::decode_hello(data) {
        let mut out = Vec::new();
        wire::encode_hello(&mut out, &p, v);
        let (v2, p2) = wire::decode_hello(&out).expect("re-encoded hello failed to decode");
        assert!(v2 == v && p2 == p, "hello roundtrip diverged");
    }
}

/// IQ frame parser plus dequantization into right- and wrong-sized
/// destinations (the latter must be refused, never panic).
fn iq_target(data: &[u8]) {
    if let Some(view) = wire::parse_iq(data) {
        let n = view.payload.len() / 4;
        let mut dst = vec![Cf32::new(0.0, 0.0); n];
        assert!(wire::dequantize_payload(view.payload, &mut dst));
        let mut short = vec![Cf32::new(0.0, 0.0); n.saturating_sub(1)];
        assert!(!wire::dequantize_payload(view.payload, &mut short) || n == 0);
    }
}

/// TCP length-framed reassembly over an in-memory stream: the exact
/// `read_frame` loop the socket thread runs, dispatching each frame to
/// the matching parser.
fn tcp_target(data: &[u8]) {
    let stop = AtomicBool::new(false);
    let mut cur = Cursor::new(data);
    let mut scratch = vec![0u8; wire::MAX_FRAME];
    for _ in 0..64 {
        match framing::read_frame(&mut cur, &mut scratch, &stop) {
            Ok(n) => {
                let frame = scratch.get(..n).unwrap_or(&[]);
                match frame.first() {
                    Some(&wire::FT_HELLO) => {
                        let _ = wire::decode_hello(frame);
                    }
                    Some(&wire::FT_HELLO_ACK) => {
                        let _ = wire::decode_hello_ack(frame);
                    }
                    _ => {
                        let _ = wire::parse_iq(frame);
                    }
                }
            }
            Err(ReadEnd::Eof | ReadEnd::Failed | ReadEnd::Stopped) => break,
        }
    }
}

/// The session target's fixed two-cell geometry (800 samples → 3
/// fragments per antenna, the smallest shape with a partial tail
/// fragment).
fn session_params() -> StreamParams {
    StreamParams {
        samples_per_subframe: 800,
        antennas: 2,
        cells: vec![5, 9],
        period_us: 1000,
        budget_us: 1000,
        mcs_pool: vec![27],
        subframes: 0,
    }
}

/// Reassembly session driven by an op script: each 10-byte chunk emits
/// a well-formed, half-lied, or geometry-lying IQ frame (or a resync),
/// and trailing bytes are ingested raw. Op scripts let mutation search
/// the *state machine* — slot eviction, duplicate bitmaps, stale
/// cursors — instead of merely re-discovering the header parser.
fn session_target(data: &[u8]) {
    let params = session_params();
    let queue = Arc::new(SwapQueue::new(&params, 8, 4));
    let mut session = RxSession::new(params, queue);
    let mut chunks = data.chunks_exact(10);
    for c in chunks.by_ref().take(64) {
        let &[op, cell, ant, frag, s0, s1, s2, s3, t0, t1] = c else {
            break;
        };
        if op % 4 == 3 {
            session.on_resync();
            continue;
        }
        let frag = frag % 4;
        let lie16 = u16::from_be_bytes([t0, t1]);
        // Mode 0 emits a valid frame; mode 1 lies about the payload
        // length; mode 2 lies about total_fragments.
        let count = match op % 4 {
            1 => lie16 as usize % 400,
            _ if frag == 2 => 80,
            _ => 360,
        };
        let total = if op % 4 == 2 { lie16 } else { 3 };
        let bs_id = [5u16, 9, 77][(cell % 3) as usize];
        let mut f = Vec::with_capacity(wire::IQ_PAYLOAD_OFF + count * 4);
        f.push(wire::FT_IQ);
        f.push(27);
        f.extend_from_slice(&bs_id.to_be_bytes());
        f.push(ant % 3);
        f.push(frag);
        f.extend_from_slice(&total.to_be_bytes());
        f.extend_from_slice(&[s0, s1, s2, s3]);
        f.extend_from_slice(&((count * 4) as u16).to_be_bytes());
        f.resize(f.len() + count * 4, t0 ^ frag);
        session.ingest_frame(&f);
    }
    session.ingest_frame(chunks.remainder());
}

/// Sequence tracker driven by an op script over attacker-chosen
/// 32-bit sequence numbers (observe/prime/is_stale/resync).
fn seq_target(data: &[u8]) {
    let mut t = SeqTracker::new();
    for c in data.chunks_exact(5).take(256) {
        let &[op, a, b, c2, d] = c else {
            break;
        };
        let v = u32::from_be_bytes([a, b, c2, d]);
        match op % 4 {
            0 => {
                t.observe(v);
            }
            1 => t.prime(v),
            2 => {
                t.is_stale(v);
            }
            _ => t.resync(),
        }
    }
}

/// Canonical valid inputs per target — the committed corpus starts
/// from these, so the mutator begins at the deep end of each parser.
pub fn seeds(name: &str) -> Vec<Vec<u8>> {
    match name {
        "hello" => {
            let mut hello = Vec::new();
            wire::encode_hello(
                &mut hello,
                &session_params(),
                rtopex_transport::iface::PROTOCOL_VERSION,
            );
            vec![hello, vec![wire::FT_HELLO], Vec::new()]
        }
        "iq" => {
            let samples = [Cf32::new(0.25, -0.5); 80];
            let mut frame = vec![0u8; wire::MAX_IQ_FRAME];
            let len = wire::write_iq_frame(&mut frame, 27, 5, 0, 2, 3, 7, &samples);
            frame.truncate(len);
            let full = [Cf32::new(-0.125, 0.0625); wire::SAMPLES_PER_FRAG];
            let mut f2 = vec![0u8; wire::MAX_IQ_FRAME];
            let l2 = wire::write_iq_frame(&mut f2, 16, 9, 1, 0, 3, 0, &full);
            f2.truncate(l2);
            vec![frame, f2, vec![wire::FT_IQ]]
        }
        "tcp" => {
            let mut hello = Vec::new();
            wire::encode_hello(
                &mut hello,
                &session_params(),
                rtopex_transport::iface::PROTOCOL_VERSION,
            );
            let mut stream = Vec::new();
            let _ = framing::write_framed(&mut stream, &hello);
            let samples = [Cf32::new(0.25, -0.5); 80];
            let mut frame = vec![0u8; wire::MAX_IQ_FRAME];
            let len = wire::write_iq_frame(&mut frame, 27, 5, 0, 2, 3, 7, &samples);
            frame.truncate(len);
            let _ = framing::write_framed(&mut stream, &frame);
            vec![stream, vec![0, 0, 0, 1, wire::FT_BYE]]
        }
        "session" => {
            // Two full subframes in order, a resync, then one more.
            let mut script = Vec::new();
            for seq in 0u32..2 {
                for ant in 0u8..2 {
                    for frag in 0u8..3 {
                        script.push(0);
                        script.push(0); // cell 5
                        script.push(ant);
                        script.push(frag);
                        script.extend_from_slice(&seq.to_be_bytes());
                        script.extend_from_slice(&[0, 0]);
                    }
                }
            }
            script.extend_from_slice(&[3, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
            vec![script, vec![0; 10]]
        }
        "seq" => {
            let mut script = Vec::new();
            for (op, v) in [
                (1u8, 10u32),
                (0, 10),
                (0, 11),
                (0, 9),
                (2, 5),
                (3, 0),
                (0, u32::MAX),
                (0, 0),
            ] {
                script.push(op);
                script.extend_from_slice(&v.to_be_bytes());
            }
            vec![script, Vec::new()]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_has_seeds_and_survives_them() {
        for t in TARGETS {
            let seeds = seeds(t.name);
            assert!(!seeds.is_empty(), "{} has no seeds", t.name);
            for s in &seeds {
                assert!(s.len() <= t.max_len, "{} seed exceeds max_len", t.name);
                (t.run)(s);
            }
        }
    }

    #[test]
    fn find_resolves_shipped_names_only() {
        assert!(find("hello").is_some());
        assert!(find("nope").is_none());
    }
}
