//! On-disk corpus format: one hex-encoded input per file.
//!
//! Hex keeps arbitrary bytes diff-able and merge-safe in git (the
//! corpus is committed and replayed as a gating test). File names are
//! an FNV-1a content hash, so re-seeding is idempotent and two
//! machines minimizing the same corpus converge on the same names.

use std::fs;
use std::path::{Path, PathBuf};

/// Hex-encodes `b` (lowercase, no separators).
pub fn to_hex(b: &[u8]) -> String {
    let mut s = String::with_capacity(b.len() * 2);
    for &x in b {
        s.push_str(&format!("{x:02x}"));
    }
    s
}

/// Decodes [`to_hex`] output; `None` on odd length or non-hex chars.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (*pair.first()? as char).to_digit(16)?;
        let lo = (*pair.get(1)? as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// Stable content-hash name for an input (FNV-1a 64).
pub fn input_name(data: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The committed corpus directory for `target`.
pub fn dir_for(target: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(target)
}

/// Loads every input under `dir`, sorted by file name so replay and
/// cross-seeding order is deterministic. Unparseable files are skipped.
pub fn load_dir(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".hex") {
            continue;
        }
        if let Ok(text) = fs::read_to_string(e.path()) {
            if let Some(data) = from_hex(&text) {
                out.push((name, data));
            }
        }
    }
    out.sort();
    out
}

/// Writes `data` into `dir` under its content-hash name; returns the
/// file name.
pub fn save(dir: &Path, data: &[u8]) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    let name = format!("{}.hex", input_name(data));
    fs::write(dir.join(&name), to_hex(data))?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert_eq!(from_hex(""), Some(vec![]));
        assert_eq!(from_hex("0"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        assert_eq!(input_name(b"abc"), input_name(b"abc"));
        assert_ne!(input_name(b"abc"), input_name(b"abd"));
    }
}
