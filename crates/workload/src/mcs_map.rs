//! Normalized load → MCS mapping.
//!
//! The paper could not obtain decodable multi-user traces, so it emulated
//! the uplink traffic load "through MCS variations" of a single full-band
//! user (§4.2): the heavier the tower's load at a given millisecond, the
//! higher the MCS of the emulated subframe. We use a linear quantizer onto
//! MCS 0..=27 (the paper's range — Fig. 3 sweeps MCS 0–27).

use rtopex_phy::mcs::Mcs;

/// Highest MCS the mapping produces (the paper sweeps 0–27).
pub const MAX_MAPPED_MCS: u8 = 27;

/// Maps a normalized load in `[0, 1]` to an MCS.
///
/// Values outside `[0, 1]` are clamped.
pub fn load_to_mcs(load: f64) -> Mcs {
    let l = load.clamp(0.0, 1.0);
    let idx = (l * (MAX_MAPPED_MCS as f64 + 1.0)).floor() as u8;
    Mcs::new(idx.min(MAX_MAPPED_MCS)).expect("clamped index is valid")
}

/// The minimum load that maps to the given MCS index (inverse of the
/// quantizer's lower edge); useful for calibrating trace tails.
pub fn mcs_load_threshold(mcs: u8) -> f64 {
    mcs as f64 / (MAX_MAPPED_MCS as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn endpoints() {
        assert_eq!(load_to_mcs(0.0).index(), 0);
        assert_eq!(load_to_mcs(1.0).index(), 27);
        assert_eq!(load_to_mcs(0.999).index(), 27);
    }

    #[test]
    fn clamping() {
        assert_eq!(load_to_mcs(-3.0).index(), 0);
        assert_eq!(load_to_mcs(42.0).index(), 27);
    }

    #[test]
    fn monotone() {
        let mut prev = 0u8;
        for i in 0..=100 {
            let m = load_to_mcs(i as f64 / 100.0).index();
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    fn threshold_is_consistent_with_mapping() {
        for mcs in 0..=27u8 {
            let t = mcs_load_threshold(mcs);
            assert_eq!(load_to_mcs(t).index(), mcs, "at threshold of {mcs}");
            if mcs > 0 {
                assert_eq!(load_to_mcs(t - 1e-9).index(), mcs - 1);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_in_range(load in -1.0f64..2.0) {
            let m = load_to_mcs(load);
            prop_assert!(m.index() <= MAX_MAPPED_MCS);
        }
    }
}
