//! The paper's experimental setup (§4.2) as a reusable scenario preset.

use crate::mcs_map::load_to_mcs;
use crate::trace::{LoadTrace, TraceParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtopex_phy::mcs::Mcs;
use rtopex_phy::params::Bandwidth;

/// A complete experiment scenario: who transmits what, for how long.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of basestations processed on the compute node.
    pub num_bs: usize,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Receive antennas per basestation (`N`).
    pub num_antennas: usize,
    /// Channel SNR in dB (paper: fixed 30 dB AWGN, load via MCS).
    pub snr_db: f64,
    /// Turbo iteration cap `Lm`.
    pub max_turbo_iters: usize,
    /// Subframes per basestation.
    pub subframes: usize,
    /// Per-basestation trace parameters.
    pub traces: Vec<TraceParams>,
    /// RNG seed for trace generation.
    pub seed: u64,
}

impl Scenario {
    /// The paper's §4.2 configuration: 4 basestations × 2 antennas at
    /// 10 MHz, AWGN at 30 dB, `Lm = 4`, 30 000 subframes each, tower
    /// presets 0–3.
    pub fn paper_default() -> Self {
        Scenario {
            num_bs: 4,
            bandwidth: Bandwidth::Mhz10,
            num_antennas: 2,
            snr_db: 30.0,
            max_turbo_iters: 4,
            subframes: 30_000,
            traces: (0..4).map(TraceParams::tower).collect(),
            seed: 0xC0DE,
        }
    }

    /// A smaller scenario for quick tests (2 basestations, 2 000 subframes).
    pub fn smoke_test() -> Self {
        Scenario {
            num_bs: 2,
            subframes: 2_000,
            traces: (0..2).map(TraceParams::tower).collect(),
            ..Self::paper_default()
        }
    }

    /// Generates each basestation's load trace, `num_bs × subframes`.
    pub fn load_traces(&self) -> Vec<Vec<f64>> {
        (0..self.num_bs)
            .map(|bs| {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(bs as u64 * 7919));
                let params = self.traces[bs % self.traces.len()];
                LoadTrace::new(params).generate(self.subframes, &mut rng)
            })
            .collect()
    }

    /// Generates each basestation's per-subframe MCS sequence.
    pub fn mcs_sequences(&self) -> Vec<Vec<Mcs>> {
        self.load_traces()
            .into_iter()
            .map(|trace| trace.into_iter().map(load_to_mcs).collect())
            .collect()
    }

    /// Scenario with every subframe pinned to one MCS (the Fig. 17 load
    /// sweep uses fixed offered loads).
    pub fn fixed_mcs_sequences(&self, mcs: Mcs) -> Vec<Vec<Mcs>> {
        vec![vec![mcs; self.subframes]; self.num_bs]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4_2() {
        let s = Scenario::paper_default();
        assert_eq!(s.num_bs, 4);
        assert_eq!(s.num_antennas, 2);
        assert_eq!(s.bandwidth, Bandwidth::Mhz10);
        assert_eq!(s.snr_db, 30.0);
        assert_eq!(s.max_turbo_iters, 4);
        assert_eq!(s.subframes, 30_000);
    }

    #[test]
    fn traces_have_right_shape() {
        let s = Scenario::smoke_test();
        let traces = s.load_traces();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.len() == 2_000));
    }

    #[test]
    fn traces_are_reproducible_and_distinct_across_bs() {
        let s = Scenario::smoke_test();
        let a = s.load_traces();
        let b = s.load_traces();
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a[0], a[1], "different towers must differ");
    }

    #[test]
    fn mcs_sequences_span_a_wide_range() {
        let s = Scenario::paper_default();
        let seqs = s.mcs_sequences();
        let all: Vec<u8> = seqs.iter().flatten().map(|m| m.index()).collect();
        let min = *all.iter().min().unwrap();
        let max = *all.iter().max().unwrap();
        assert!(min < 8, "min MCS {min}");
        assert!(max >= 25, "max MCS {max}");
    }

    #[test]
    fn fixed_mcs_is_constant() {
        let s = Scenario::smoke_test();
        let seqs = s.fixed_mcs_sequences(Mcs::new(20).unwrap());
        assert!(seqs.iter().flatten().all(|m| m.index() == 20));
    }

    #[test]
    fn high_mcs_tail_calibration() {
        // The Fig. 15 floors need MCS ≥ 25 to be rare but present
        // (≈ 0.02–0.6 % of subframes across the pool), and a moderate
        // MCS 20–24 band (≈ 1–8 %) that drives the partitioned curve's
        // rise with transport latency.
        let s = Scenario::paper_default();
        let seqs = s.mcs_sequences();
        let total: usize = seqs.iter().map(Vec::len).sum();
        let top: usize = seqs.iter().flatten().filter(|m| m.index() >= 25).count();
        let mid: usize = seqs
            .iter()
            .flatten()
            .filter(|m| (20..25).contains(&m.index()))
            .count();
        let frac_top = top as f64 / total as f64;
        let frac_mid = mid as f64 / total as f64;
        assert!(
            (0.0002..0.006).contains(&frac_top),
            "P(MCS ≥ 25) = {frac_top}"
        );
        assert!(
            (0.01..0.08).contains(&frac_mid),
            "P(20 ≤ MCS < 25) = {frac_mid}"
        );
    }
}
