//! # rtopex-workload — cellular load traces and experiment scenarios
//!
//! The paper drives its evaluation with RF load traces logged off the air
//! from four live LTE towers (Band 13 / Band 17) at 1 ms granularity
//! (Fig. 1 shows the ms-scale variability; Fig. 14 the per-tower load
//! CDFs), then maps the normalized load of each subframe to an MCS.
//!
//! Those traces are not publicly available, so this crate generates
//! statistically matched synthetic ones (substitution documented in
//! DESIGN.md): an AR(1) body — loads are strongly correlated at 1 ms lag
//! but visibly fluctuating — plus a burst regime that produces the
//! high-load excursions responsible for deadline misses.
//!
//! * [`trace`] — the per-basestation trace generator and Band-13/17 presets;
//! * [`mcs_map`] — normalized load → MCS quantizer (the paper's emulation
//!   of BS traffic "through MCS variations");
//! * [`scenario`] — the paper's experimental setup (§4.2) as a reusable
//!   preset: 4 basestations, 2 antennas, 10 MHz, SNR 30 dB, Lm = 4,
//!   30 000 subframes per basestation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mcs_map;
pub mod scenario;
pub mod trace;

pub use mcs_map::load_to_mcs;
pub use scenario::Scenario;
pub use trace::{LoadTrace, TraceParams};
