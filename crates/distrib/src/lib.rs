//! # rtopex-distrib — the multi-host C-RAN deployment
//!
//! Two binaries turn the single-host cluster into a distributed C-RAN:
//!
//! * **`rtopex-node`** — a compute worker. Listens on a UDP or TCP
//!   fronthaul endpoint, negotiates the stream geometry from the
//!   aggregator's hello, builds a [`rtopex_runtime::CranCluster`] to
//!   match, and drives it with [`CranCluster::run_fed`]. Emits a JSON
//!   report on stdout when the stream closes.
//! * **`rtopex-fronthaul`** — the aggregator (the RAP side of Fig. 1).
//!   Pre-encodes the same deterministic workload an emulated run would
//!   generate ([`CranCluster::encode_pool`] + [`CranCluster::mcs_plan`]),
//!   splits the cells across one or more nodes, and streams IQ subframes
//!   on the configured cadence with the per-cell ingest stagger of the
//!   shared 10 GbE port. `--spawn` launches the nodes itself (sibling
//!   `rtopex-node` binary) for the single-command localhost demo.
//!
//! This crate is the only place the workspace touches real sockets for
//! scheduling work: `rtopex-runtime` sees nothing but the
//! [`rtopex_transport::FronthaulRx`] trait (`cargo xtask layering`
//! enforces that the runtime and core crates stay network-free).
//!
//! [`CranCluster`]: rtopex_runtime::CranCluster
//! [`CranCluster::run_fed`]: rtopex_runtime::CranCluster::run_fed

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rtopex_phy::params::Bandwidth;
use rtopex_runtime::cluster::{ClusterConfig, FedReport, SchedulerMode};
use rtopex_transport::StreamParams;
use std::time::Duration;

/// Receive ring depth a node hands the transport: deep enough to absorb
/// the node's warm-up (pool prepare + calibration) at the dilated demo
/// cadence before drop-oldest kicks in.
pub const NODE_QUEUE_DEPTH: usize = 128;

/// Demo deadline-miss acceptance threshold (matches the Fig. 17 sweep's
/// 0.5 % bar).
pub const MISS_OK: f64 = 0.005;

/// All `Bandwidth` variants, for name and sample-count lookups.
pub const BANDWIDTHS: [Bandwidth; 6] = [
    Bandwidth::Mhz1_4,
    Bandwidth::Mhz3,
    Bandwidth::Mhz5,
    Bandwidth::Mhz10,
    Bandwidth::Mhz15,
    Bandwidth::Mhz20,
];

/// Parses a bandwidth argument ("1.4", "3", "5", "10", "15", "20").
pub fn parse_bandwidth(s: &str) -> Option<Bandwidth> {
    match s {
        "1.4" => Some(Bandwidth::Mhz1_4),
        "3" => Some(Bandwidth::Mhz3),
        "5" => Some(Bandwidth::Mhz5),
        "10" => Some(Bandwidth::Mhz10),
        "15" => Some(Bandwidth::Mhz15),
        "20" => Some(Bandwidth::Mhz20),
        _ => None,
    }
}

/// Recovers the bandwidth from a negotiated samples-per-subframe count.
pub fn bandwidth_for_samples(n: u32) -> Option<Bandwidth> {
    BANDWIDTHS
        .into_iter()
        .find(|b| b.samples_per_subframe() as u32 == n)
}

/// Parses a scheduler-mode argument.
pub fn parse_mode(s: &str) -> Option<SchedulerMode> {
    match s {
        "steal" | "rtopex_steal" => Some(SchedulerMode::RtOpexSteal),
        "mutex" | "rtopex_mutex" => Some(SchedulerMode::RtOpexMutex),
        "global" => Some(SchedulerMode::Global),
        "part" | "partitioned" => Some(SchedulerMode::Partitioned),
        _ => None,
    }
}

/// Parses a transport argument.
pub fn parse_transport(s: &str) -> Option<&'static str> {
    match s {
        "udp" => Some("udp"),
        "tcp" => Some("tcp"),
        _ => None,
    }
}

/// Minimal `--flag value` / `--flag` argument scanner (no CLI dep
/// in-tree). Positional arguments are rejected.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments (after the binary name).
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// The value following `--name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Whether the bare flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value of `--name` parsed as `T`, or `default`. Exits with a
    /// usage error on an unparseable value rather than silently falling
    /// back.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: bad value for {name}: {v}");
                std::process::exit(2);
            }),
        }
    }
}

/// The geometry both binaries agree on: everything needed to construct
/// matching [`StreamParams`] and [`ClusterConfig`] values on either end
/// of the wire.
#[derive(Clone, Debug)]
pub struct Geometry {
    /// Channel bandwidth of every cell.
    pub bandwidth: Bandwidth,
    /// Receive antennas per cell.
    pub antennas: usize,
    /// Subframe period.
    pub period: Duration,
    /// Emulated one-way fronthaul latency (sets the Eq. 3 budget).
    pub rtt_half: Duration,
    /// Distinct MCS values in the pre-encoded pool.
    pub mcs_pool: Vec<u8>,
    /// Subframes per cell.
    pub subframes: usize,
}

impl Geometry {
    /// The dilated 5 MHz demo geometry: 6 ms period, 7 ms one-way
    /// latency, so the Eq. 3 budget is `2·6000 − 7000 = 5000 µs` — the
    /// same dilation trick the node benchmark uses to keep real-machine
    /// scheduling representative without 10 MHz-class silicon.
    pub fn demo(subframes: usize) -> Self {
        Geometry {
            bandwidth: Bandwidth::Mhz5,
            antennas: 2,
            period: Duration::from_micros(6_000),
            rtt_half: Duration::from_micros(7_000),
            mcs_pool: vec![5, 10, 16, 22, 27],
            subframes,
        }
    }

    /// Eq. 3 processing budget: `2·period − rtt_half`.
    pub fn budget(&self) -> Duration {
        2 * self.period - self.rtt_half
    }

    /// Stream parameters advertising `cells` (wire ids) of this geometry.
    pub fn stream_params(&self, cells: Vec<u16>) -> StreamParams {
        StreamParams {
            samples_per_subframe: self.bandwidth.samples_per_subframe() as u32,
            antennas: self.antennas as u8,
            cells,
            period_us: self.period.as_micros() as u32,
            budget_us: self.budget().as_micros() as u32,
            mcs_pool: self.mcs_pool.clone(),
            subframes: self.subframes as u32,
        }
    }

    /// A cluster config for `num_cells` of this geometry.
    pub fn cluster_config(&self, num_cells: usize, mode: SchedulerMode) -> ClusterConfig {
        ClusterConfig {
            bandwidth: self.bandwidth,
            num_antennas: self.antennas,
            num_cells,
            subframes: self.subframes,
            period: self.period,
            rtt_half: self.rtt_half,
            mode,
            snr_db: 30.0,
            mcs_pool: self.mcs_pool.clone(),
            delta_us: 60.0,
            seed: 0xC0DE,
            batch_decode: true,
        }
    }

    /// Reconstructs the geometry a hello's [`StreamParams`] describe.
    /// Returns `None` for a samples-per-subframe count matching no
    /// bandwidth or a budget exceeding `2·period` (negative `rtt_half`).
    pub fn from_params(p: &StreamParams) -> Option<Self> {
        let bandwidth = bandwidth_for_samples(p.samples_per_subframe)?;
        let period = Duration::from_micros(p.period_us as u64);
        let rtt_half = (2 * period).checked_sub(Duration::from_micros(p.budget_us as u64))?;
        Some(Geometry {
            bandwidth,
            antennas: p.antennas as usize,
            period,
            rtt_half,
            mcs_pool: p.mcs_pool.clone(),
            subframes: p.subframes as usize,
        })
    }
}

/// Escapes a string for embedding in JSON output.
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Extracts `"key": <number>` from a flat JSON report with a plain
/// string scan (no JSON dep in-tree; both binaries emit flat objects).
pub fn json_num(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let tail = text[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Renders a node's fed-run report as the flat JSON object the
/// aggregator (and the bench harness) scan with [`json_num`].
pub fn node_report_json(
    transport: &str,
    mode: SchedulerMode,
    geo: &Geometry,
    cells: usize,
    fed: &FedReport,
) -> String {
    let overall = fed.cluster.deadline.overall();
    let total = overall.total().max(1);
    let ok = fed.cluster.miss_rate() <= MISS_OK && fed.cluster.crc_failures == 0;
    format!(
        "{{\n  \"role\": \"node\",\n  \"transport\": \"{}\",\n  \"mode\": \"{}\",\n  \
         \"cells\": {},\n  \"subframes_per_cell\": {},\n  \"period_us\": {},\n  \
         \"budget_us\": {},\n  \"delivered\": {},\n  \"processed\": {},\n  \
         \"dropped\": {},\n  \"shed\": {},\n  \"missed\": {},\n  \"miss_rate\": {:.6},\n  \
         \"gaps\": {},\n  \"stale\": {},\n  \"rx_overruns\": {},\n  \"resyncs\": {},\n  \
         \"bad_frames\": {},\n  \"crc_failures\": {},\n  \"steals\": {},\n  \
         \"pinned\": {},\n  \"elapsed_ms\": {},\n  \"ok\": {}\n}}",
        json_escape(transport),
        mode.name(),
        cells,
        geo.subframes,
        geo.period.as_micros(),
        geo.budget().as_micros(),
        fed.rx.delivered,
        fed.cluster.proc_us.len(),
        fed.cluster.dropped,
        fed.shed,
        overall.missed,
        overall.missed as f64 / total as f64,
        fed.rx.gaps,
        fed.rx.stale,
        fed.rx.drops,
        fed.rx.resyncs,
        fed.rx.bad_frames,
        fed.cluster.crc_failures,
        fed.cluster.steals,
        fed.cluster.pinned,
        fed.cluster.elapsed.as_millis(),
        ok
    )
}

/// Splits `cells` wire ids into `hosts` contiguous chunks (first chunks
/// take the remainder), returning each host's cell-id list.
pub fn partition_cells(cells: usize, hosts: usize) -> Vec<Vec<u16>> {
    let hosts = hosts.max(1);
    let base = cells / hosts;
    let extra = cells % hosts;
    let mut out = Vec::with_capacity(hosts);
    let mut next = 0u16;
    for h in 0..hosts {
        let n = base + usize::from(h < extra);
        out.push((next..next + n as u16).collect());
        next += n as u16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_roundtrips_through_params() {
        let g = Geometry::demo(120);
        let p = g.stream_params(vec![0, 1, 2]);
        let back = Geometry::from_params(&p).unwrap();
        assert_eq!(back.bandwidth, g.bandwidth);
        assert_eq!(back.period, g.period);
        assert_eq!(back.rtt_half, g.rtt_half);
        assert_eq!(back.budget(), g.budget());
        assert_eq!(back.mcs_pool, g.mcs_pool);
        assert_eq!(back.subframes, 120);
    }

    #[test]
    fn cell_partition_covers_all_cells_contiguously() {
        assert_eq!(partition_cells(4, 2), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(partition_cells(5, 2), vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(partition_cells(2, 3), vec![vec![0], vec![1], vec![]]);
    }

    #[test]
    fn json_num_scans_flat_reports() {
        let text = "{ \"miss_rate\": 0.0025,\n \"gaps\": 3, \"neg\": -1.5e2 }";
        assert_eq!(json_num(text, "miss_rate"), Some(0.0025));
        assert_eq!(json_num(text, "gaps"), Some(3.0));
        assert_eq!(json_num(text, "neg"), Some(-150.0));
        assert_eq!(json_num(text, "absent"), None);
    }

    #[test]
    fn bandwidth_lookup_by_samples() {
        for b in BANDWIDTHS {
            assert_eq!(
                bandwidth_for_samples(b.samples_per_subframe() as u32),
                Some(b)
            );
        }
        assert_eq!(bandwidth_for_samples(7), None);
    }
}
