//! `rtopex-fronthaul` — the RAP-side aggregator of the distributed
//! C-RAN: streams the deterministic emulated workload to one or more
//! `rtopex-node` workers over UDP or TCP.
//!
//! ```text
//! # against already-running nodes:
//! rtopex-fronthaul --cells 4 --hosts "10.0.0.2:9000,10.0.0.3:9000"
//!
//! # single-command localhost demo (spawns the workers itself):
//! rtopex-fronthaul --cells 4 --spawn 2 [--transport udp|tcp] [--quick]
//! ```
//!
//! Cells are split contiguously across hosts; every subframe is released
//! on the global cadence with the per-cell ingest stagger of the shared
//! 10 GbE port ([`MulticellIngest`]), so the multi-host timeline is the
//! same one the single-host emulation schedules. With `--spawn`, worker
//! reports are collected and aggregated, and the process exits non-zero
//! if any worker misses the 0.5 % deadline bar.

use rtopex_distrib::{
    json_num, parse_bandwidth, parse_mode, parse_transport, partition_cells, Args, Geometry,
    MISS_OK,
};
use rtopex_runtime::cluster::CranCluster;
use rtopex_transport::{FronthaulTx, MulticellIngest, TestbedLink};
use rtopex_transport_net::{TcpFronthaulTx, UdpFronthaulTx};
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("rtopex-fronthaul: {msg}");
    std::process::exit(1);
}

/// A spawned worker: the child process plus its buffered stdout (the
/// `listening on` line has already been consumed).
struct Worker {
    child: Child,
    stdout: BufReader<ChildStdout>,
}

/// Launches a sibling `rtopex-node`, reads back its bound address.
fn spawn_node(transport: &str, mode: &str) -> (Worker, String) {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("rtopex-node")))
        .unwrap_or_else(|| "rtopex-node".into());
    let mut child = match Command::new(&exe)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--transport",
            transport,
            "--mode",
            mode,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => fail(&format!("spawn {}: {e}", exe.display())),
    };
    let Some(out) = child.stdout.take() else {
        fail("child stdout not captured");
    };
    let mut reader = BufReader::new(out);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || !line.starts_with("listening on ") {
        fail(&format!("worker did not announce its address: {line:?}"));
    }
    let addr = line["listening on ".len()..].trim().to_string();
    (
        Worker {
            child,
            stdout: reader,
        },
        addr,
    )
}

fn connect(
    transport: &str,
    addr: &str,
    params: rtopex_transport::StreamParams,
) -> Box<dyn FronthaulTx> {
    match transport {
        "udp" => match UdpFronthaulTx::connect(addr, params) {
            Ok(tx) => Box::new(tx),
            Err(e) => fail(&format!("connect udp {addr}: {e}")),
        },
        _ => match TcpFronthaulTx::connect(addr, params) {
            Ok(tx) => Box::new(tx),
            Err(e) => fail(&format!("connect tcp {addr}: {e}")),
        },
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.flag("--quick");
    let cells: usize = args.parsed_or("--cells", 4);
    let subframes: usize = args.parsed_or("--subframes", if quick { 120 } else { 400 });
    let warmup = Duration::from_millis(args.parsed_or("--warmup-ms", 2_000u64));
    let Some(transport) = parse_transport(args.value("--transport").unwrap_or("udp")) else {
        fail("--transport must be udp or tcp");
    };
    let mode_arg = args.value("--mode").unwrap_or("steal");
    let Some(mode) = parse_mode(mode_arg) else {
        fail("--mode must be steal, mutex, global or part");
    };
    if cells == 0 || subframes == 0 {
        fail("--cells and --subframes must be positive");
    }

    let mut geo = Geometry::demo(subframes);
    if let Some(bw) = args.value("--bandwidth") {
        match parse_bandwidth(bw) {
            Some(b) => geo.bandwidth = b,
            None => fail("--bandwidth must be one of 1.4, 3, 5, 10, 15, 20"),
        }
    }
    geo.period = Duration::from_micros(args.parsed_or("--period-us", 6_000u64));
    geo.rtt_half = Duration::from_micros(args.parsed_or("--rtt-half-us", 7_000u64));
    if geo.rtt_half > 2 * geo.period {
        fail("--rtt-half-us exceeds 2x period: no processing budget left");
    }

    // Workers: either spawned siblings on loopback or remote addresses.
    let mut spawned: Vec<Worker> = Vec::new();
    let hosts: Vec<String> = if let Some(list) = args.value("--hosts") {
        list.split(',').map(|s| s.trim().to_string()).collect()
    } else {
        let n: usize = args.parsed_or("--spawn", 2);
        if n == 0 {
            fail("--spawn needs at least one worker");
        }
        eprintln!("rtopex-fronthaul: spawning {n} local rtopex-node worker(s)…");
        (0..n)
            .map(|_| {
                let (w, addr) = spawn_node(transport, mode_arg);
                spawned.push(w);
                addr
            })
            .collect()
    };
    let partitions = partition_cells(cells, hosts.len());

    // The deterministic workload: the exact pool + per-cell MCS plan an
    // emulated run of this config would schedule, and the per-cell
    // delivery stagger of the shared fronthaul port.
    eprintln!(
        "rtopex-fronthaul: encoding pool ({} MCS) for {cells} cell(s), {subframes} subframes…",
        geo.mcs_pool.len()
    );
    let cfg = geo.cluster_config(cells, mode);
    let pool = CranCluster::encode_pool(&cfg);
    let plan = CranCluster::mcs_plan(&cfg);
    let ingest = MulticellIngest::homogeneous(
        TestbedLink::paper_testbed(),
        cells,
        geo.bandwidth,
        geo.antennas,
    );
    let d0 = ingest.deterministic_delivery_us(0).unwrap_or(0.0);
    let stagger: Vec<Duration> = (0..cells)
        .map(|c| {
            let d = ingest.deterministic_delivery_us(c).unwrap_or(d0);
            Duration::from_secs_f64(((d - d0).max(0.0)) / 1e6)
        })
        .collect();

    // Connect every host (hello negotiates geometry), then give the
    // nodes one warm-up window to calibrate before the cadence starts.
    let mut txs: Vec<(Box<dyn FronthaulTx>, Vec<u16>)> = hosts
        .iter()
        .zip(&partitions)
        .filter(|(_, cells)| !cells.is_empty())
        .map(|(addr, cells)| {
            (
                connect(transport, addr, geo.stream_params(cells.clone())),
                cells.clone(),
            )
        })
        .collect();
    eprintln!(
        "rtopex-fronthaul: connected {} host(s) over {transport}; warming {} ms…",
        txs.len(),
        warmup.as_millis()
    );
    std::thread::sleep(warmup);

    // Stream: one pacing thread per host, all sharing the same epoch so
    // the cross-host timeline matches the single-host schedule.
    let epoch = Instant::now() + Duration::from_millis(50);
    let sent: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = txs
            .iter_mut()
            .map(|(tx, host_cells)| {
                let pool = &pool;
                let plan = &plan;
                let stagger = &stagger;
                let geo = &geo;
                s.spawn(move || {
                    let mut sent = 0u64;
                    // `j` is the subframe index: it drives the cadence
                    // timestamp and the wire seq, not just `plan[cell][j]`.
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..geo.subframes {
                        for &cell in host_cells.iter() {
                            let at = epoch + geo.period * j as u32 + stagger[cell as usize];
                            std::thread::sleep(at.saturating_duration_since(Instant::now()));
                            let pidx = plan[cell as usize][j];
                            let (mcs, samples) = &pool[pidx];
                            match tx.send(cell, j as u32, *mcs, samples) {
                                Ok(()) => sent += 1,
                                Err(e) => {
                                    eprintln!("rtopex-fronthaul: send cell {cell}: {e}");
                                    return sent;
                                }
                            }
                        }
                        // One coalesced write per period per host (TCP);
                        // no-op for UDP.
                        if let Err(e) = tx.flush() {
                            eprintln!("rtopex-fronthaul: flush: {e}");
                            return sent;
                        }
                    }
                    if let Err(e) = tx.finish() {
                        eprintln!("rtopex-fronthaul: finish: {e}");
                    }
                    sent
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let expected = (cells * subframes) as u64;
    eprintln!("rtopex-fronthaul: streamed {sent}/{expected} subframes");

    // Collect worker reports (spawned mode only: remote nodes report on
    // their own stdout).
    let mut reports: Vec<String> = Vec::new();
    let mut workers_ok = true;
    for (i, mut w) in spawned.into_iter().enumerate() {
        let mut rest = String::new();
        let _ = w.stdout.read_to_string(&mut rest);
        let status = w.child.wait();
        let exited_ok = matches!(&status, Ok(st) if st.success());
        if !exited_ok {
            eprintln!("rtopex-fronthaul: worker {i} exited with {status:?}");
            workers_ok = false;
        }
        reports.push(rest);
    }
    let agg = |key: &str| -> f64 { reports.iter().filter_map(|r| json_num(r, key)).sum() };
    let (delivered, missed, gaps, shed, crc) = (
        agg("delivered"),
        agg("missed"),
        agg("gaps"),
        agg("shed"),
        agg("crc_failures"),
    );
    let accounted = reports
        .iter()
        .filter_map(|r| json_num(r, "delivered"))
        .count();
    let miss_rate = if delivered > 0.0 {
        missed / delivered
    } else {
        0.0
    };
    let ok = if accounted > 0 {
        workers_ok && sent == expected && miss_rate <= MISS_OK && crc == 0.0
    } else {
        // Remote-hosts mode: only the send side is visible here.
        sent == expected
    };

    let cpw: Vec<String> = partitions.iter().map(|p| p.len().to_string()).collect();
    println!("{{");
    println!("  \"role\": \"fronthaul\",");
    println!("  \"transport\": \"{transport}\",");
    println!("  \"mode\": \"{}\",", mode.name());
    println!("  \"workers\": {},", hosts.len());
    println!("  \"cells\": {cells},");
    println!("  \"cells_per_worker\": [{}],", cpw.join(", "));
    println!("  \"subframes_per_cell\": {subframes},");
    println!("  \"period_us\": {},", geo.period.as_micros());
    println!("  \"budget_us\": {},", geo.budget().as_micros());
    println!("  \"sent\": {sent},");
    println!("  \"expected\": {expected},");
    if accounted > 0 {
        println!("  \"delivered\": {},", delivered as u64);
        println!("  \"missed\": {},", missed as u64);
        println!("  \"miss_rate\": {miss_rate:.6},");
        println!("  \"gaps\": {},", gaps as u64);
        println!("  \"shed\": {},", shed as u64);
        println!("  \"crc_failures\": {},", crc as u64);
    }
    println!("  \"ok\": {ok}");
    println!("}}");
    if !ok {
        std::process::exit(1);
    }
}
