//! `rtopex-node` — a distributed C-RAN compute worker.
//!
//! Listens for one fronthaul aggregator, adopts the stream geometry from
//! its hello, runs the negotiated cells through
//! [`CranCluster::run_fed`], and emits a flat JSON report on stdout when
//! the stream closes.
//!
//! ```text
//! rtopex-node --listen 127.0.0.1:0 [--transport udp|tcp] [--mode steal]
//!             [--accept-timeout-s 60] [--out report.json]
//! ```
//!
//! The first stdout line is `listening on <addr>` (flushed before the
//! accept), so a parent aggregator using `--spawn` with port 0 can read
//! the bound endpoint back.

use rtopex_distrib::{
    node_report_json, parse_mode, parse_transport, Args, Geometry, NODE_QUEUE_DEPTH,
};
use rtopex_runtime::cluster::CranCluster;
use rtopex_transport::FronthaulRx;
use rtopex_transport_net::{TcpRxPending, UdpRxPending};
use std::io::Write as _;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("rtopex-node: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = Args::from_env();
    let Some(listen) = args.value("--listen") else {
        fail("usage: rtopex-node --listen <addr> [--transport udp|tcp] [--mode steal]");
    };
    let Some(transport) = parse_transport(args.value("--transport").unwrap_or("udp")) else {
        fail("--transport must be udp or tcp");
    };
    let Some(mode) = parse_mode(args.value("--mode").unwrap_or("steal")) else {
        fail("--mode must be steal, mutex, global or part");
    };
    let accept_timeout = Duration::from_secs(args.parsed_or("--accept-timeout-s", 60u64));
    let out = args.value("--out").map(str::to_string);

    // Bind, announce the bound address (port 0 resolves here), accept.
    let mut rx: Box<dyn FronthaulRx> = match transport {
        "udp" => {
            let pending = match UdpRxPending::bind(listen) {
                Ok(p) => p,
                Err(e) => fail(&format!("bind {listen}: {e}")),
            };
            match pending.local_addr() {
                Ok(a) => {
                    println!("listening on {a}");
                    let _ = std::io::stdout().flush();
                }
                Err(e) => fail(&format!("local addr: {e}")),
            }
            match pending.accept(accept_timeout, NODE_QUEUE_DEPTH) {
                Ok(rx) => Box::new(rx),
                Err(e) => fail(&format!("accept: {e}")),
            }
        }
        _ => {
            let pending = match TcpRxPending::bind(listen) {
                Ok(p) => p,
                Err(e) => fail(&format!("bind {listen}: {e}")),
            };
            match pending.local_addr() {
                Ok(a) => {
                    println!("listening on {a}");
                    let _ = std::io::stdout().flush();
                }
                Err(e) => fail(&format!("local addr: {e}")),
            }
            match pending.accept(accept_timeout, NODE_QUEUE_DEPTH) {
                Ok(rx) => Box::new(rx),
                Err(e) => fail(&format!("accept: {e}")),
            }
        }
    };

    let params = rx.params().clone();
    let Some(geo) = Geometry::from_params(&params) else {
        fail(&format!(
            "peer geometry unsupported: {} samples/subframe, budget {} µs at period {} µs",
            params.samples_per_subframe, params.budget_us, params.period_us
        ));
    };
    eprintln!(
        "rtopex-node: {} cell(s) over {transport}, {:?} @ {} µs period, budget {} µs, {} subframes/cell",
        params.cells.len(),
        geo.bandwidth,
        geo.period.as_micros(),
        geo.budget().as_micros(),
        geo.subframes,
    );

    let cluster = CranCluster::new(geo.cluster_config(params.cells.len(), mode));
    let fed = cluster.run_fed(&mut *rx);

    let report = node_report_json(transport, mode, &geo, params.cells.len(), &fed);
    println!("{report}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &report) {
            fail(&format!("write {path}: {e}"));
        }
    }
}
