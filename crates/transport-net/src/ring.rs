//! Preallocated subframe ring between the rx I/O thread and the
//! consumer.
//!
//! All [`SubframeBuf`]s are allocated up front; afterwards they cycle
//! `free → assembly slot → ready → consumer swap → free` with no
//! allocation. When the consumer falls behind, the **oldest** ready
//! subframe is recycled (drop-oldest backpressure) so a slow worker
//! degrades by shedding stale subframes instead of queueing without
//! bound — exactly the failure mode a deadline scheduler wants, since
//! a subframe past its Eq. 3 budget is worthless anyway.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rtopex_transport::iface::{StreamParams, SubframeBuf};

struct QState {
    ready: VecDeque<SubframeBuf>,
    free: Vec<SubframeBuf>,
    closed: bool,
    drops: u64,
}

/// Outcome of [`SwapQueue::pop_swap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pop {
    /// A subframe was swapped into the caller's buffer.
    Got,
    /// Timed out with the queue open and empty.
    TimedOut,
    /// Queue closed and drained.
    Closed,
}

/// Bounded swap-queue ring of preallocated subframe buffers.
pub struct SwapQueue {
    state: Mutex<QState>,
    cv: Condvar,
    depth: usize,
}

impl SwapQueue {
    /// A ring holding `pool` preallocated buffers, of which at most
    /// `depth` may sit in the ready queue (the drop-oldest horizon);
    /// the rest cover in-flight assembly slots and the consumer's swap
    /// buffer.
    pub fn new(params: &StreamParams, pool: usize, depth: usize) -> Self {
        // analyze: allow(taint-panic): pool/depth are locally computed
        // sizes (depth + cells·slots + 1), never peer bytes — the
        // assert guards caller bugs, not network input
        assert!(pool >= depth && depth >= 1);
        SwapQueue {
            state: Mutex::new(QState {
                ready: VecDeque::with_capacity(pool),
                free: (0..pool).map(|_| SubframeBuf::for_stream(params)).collect(),
                closed: false,
                drops: 0,
            }),
            cv: Condvar::new(),
            depth,
        }
    }

    /// Takes a buffer for assembly: from the freelist, else by
    /// recycling the oldest ready subframe (counted as a drop). `None`
    /// only when every buffer is held by assembly slots or the
    /// consumer — a sizing bug, not a runtime condition.
    pub fn acquire(&self) -> Option<SubframeBuf> {
        let mut st = self.state.lock();
        if let Some(b) = st.free.pop() {
            return Some(b);
        }
        if let Some(b) = st.ready.pop_front() {
            st.drops += 1;
            return Some(b);
        }
        None
    }

    /// Publishes a completed subframe, recycling the oldest ready one
    /// first if the queue is at depth.
    pub fn publish(&self, buf: SubframeBuf) {
        let mut st = self.state.lock();
        if st.ready.len() >= self.depth {
            if let Some(old) = st.ready.pop_front() {
                st.free.push(old);
                st.drops += 1;
            }
        }
        st.ready.push_back(buf);
        drop(st);
        self.cv.notify_one();
    }

    /// Returns an assembly buffer unused (abandoned reassembly).
    pub fn recycle(&self, buf: SubframeBuf) {
        self.state.lock().free.push(buf);
    }

    /// Swaps the next ready subframe into `buf`, waiting up to
    /// `timeout`. The previous contents of `buf` go back to the
    /// freelist.
    pub fn pop_swap(&self, buf: &mut SubframeBuf, timeout: Duration) -> Pop {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(mut next) = st.ready.pop_front() {
                std::mem::swap(buf, &mut next);
                st.free.push(next);
                return Pop::Got;
            }
            if st.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if (now >= deadline || self.cv.wait_for(&mut st, deadline - now)) && st.ready.is_empty()
            {
                return if st.closed {
                    Pop::Closed
                } else {
                    Pop::TimedOut
                };
            }
        }
    }

    /// Marks end-of-stream; queued subframes remain poppable.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    /// Subframes recycled unread because the consumer fell behind.
    pub fn drops(&self) -> u64 {
        self.state.lock().drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StreamParams {
        StreamParams {
            samples_per_subframe: 16,
            antennas: 1,
            cells: vec![0],
            period_us: 1000,
            budget_us: 1000,
            mcs_pool: vec![27],
            subframes: 0,
        }
    }

    #[test]
    fn cycle_and_drop_oldest() {
        let p = params();
        let q = SwapQueue::new(&p, 4, 2);
        for seq in 0..4u32 {
            let mut b = q.acquire().unwrap();
            b.seq = seq;
            q.publish(b);
        }
        // Depth 2: seqs 0 and 1 were recycled.
        assert_eq!(q.drops(), 2);
        let mut buf = SubframeBuf::for_stream(&p);
        assert_eq!(q.pop_swap(&mut buf, Duration::from_millis(50)), Pop::Got);
        assert_eq!(buf.seq, 2);
        assert_eq!(q.pop_swap(&mut buf, Duration::from_millis(50)), Pop::Got);
        assert_eq!(buf.seq, 3);
        assert_eq!(
            q.pop_swap(&mut buf, Duration::from_millis(10)),
            Pop::TimedOut
        );
        q.close();
        assert_eq!(q.pop_swap(&mut buf, Duration::from_millis(10)), Pop::Closed);
    }

    #[test]
    fn acquire_falls_back_to_oldest_ready() {
        let p = params();
        let q = SwapQueue::new(&p, 2, 2);
        let a = q.acquire().unwrap();
        let b = q.acquire().unwrap();
        q.publish(a);
        q.publish(b);
        assert!(q.acquire().is_some(), "steals the oldest ready buffer");
        assert_eq!(q.drops(), 1);
    }
}
