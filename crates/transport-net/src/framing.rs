//! Length-framed stream I/O shared by the TCP transport and the
//! fuzzer.
//!
//! Frames are `[len: u32 BE][frame]`. The readers are generic over
//! [`std::io::Read`] so `rtopex-fuzz` drives the exact reassembly code
//! the socket path runs, from in-memory byte streams — the length
//! prefix is attacker bytes, which is why [`read_frame`] treats a zero
//! or oversized length as a connection-fatal framing violation instead
//! of trusting it.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

use rtopex_transport::iface::TransportError;
use rtopex_transport::probe;

pub(crate) fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Why an interruptible read stopped short.
#[derive(Debug)]
pub enum ReadEnd {
    /// Clean end of stream.
    Eof,
    /// The stop flag was raised between reads.
    Stopped,
    /// I/O error or framing violation; drop the connection.
    Failed,
}

/// `read_exact` that survives read timeouts without losing partial
/// progress and honors the stop flag between reads.
pub fn read_full<R: Read>(s: &mut R, buf: &mut [u8], stop: &AtomicBool) -> Result<(), ReadEnd> {
    let mut got = 0;
    // analyze: allow(taint-loop): every iteration either consumes stream
    // bytes toward buf.len(), returns on error/EOF, or retries a timeout
    // under the stop flag — the peer cannot make it spin unobservably
    while got < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err(ReadEnd::Stopped);
        }
        let Some(dst) = buf.get_mut(got..) else {
            return Err(ReadEnd::Failed);
        };
        match s.read(dst) {
            Ok(0) => return Err(ReadEnd::Eof),
            Ok(n) => got = got.saturating_add(n),
            Err(e) if is_timeout(&e) || e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ReadEnd::Failed),
        }
    }
    Ok(())
}

/// Reads one `[len][frame]` into `scratch`; returns the frame length.
/// A zero or `> scratch.len()` length is a framing violation — the
/// length word is untrusted, so it bounds nothing but this check.
pub fn read_frame<R: Read>(
    s: &mut R,
    scratch: &mut [u8],
    stop: &AtomicBool,
) -> Result<usize, ReadEnd> {
    let mut len4 = [0u8; 4];
    read_full(s, &mut len4, stop)?;
    let len = u32::from_be_bytes(len4) as usize;
    if len == 0 {
        probe::reach(0x41);
        return Err(ReadEnd::Failed);
    }
    let Some(dst) = scratch.get_mut(..len) else {
        probe::reach(0x42);
        return Err(ReadEnd::Failed);
    };
    read_full(s, dst, stop)?;
    probe::reach(0x40);
    Ok(len)
}

/// Writes one `[len][frame]`.
pub fn write_framed<W: Write>(s: &mut W, frame: &[u8]) -> Result<(), TransportError> {
    s.write_all(&(frame.len() as u32).to_be_bytes())
        .and_then(|_| s.write_all(frame))
        .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn no_stop() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn roundtrip_in_memory() {
        let mut wire = Vec::new();
        write_framed(&mut wire, b"hello").unwrap();
        write_framed(&mut wire, b"x").unwrap();
        let mut cur = Cursor::new(wire);
        let mut scratch = [0u8; 16];
        let n = read_frame(&mut cur, &mut scratch, &no_stop()).unwrap();
        assert_eq!(&scratch[..n], b"hello");
        let n = read_frame(&mut cur, &mut scratch, &no_stop()).unwrap();
        assert_eq!(&scratch[..n], b"x");
        assert!(matches!(
            read_frame(&mut cur, &mut scratch, &no_stop()),
            Err(ReadEnd::Eof)
        ));
    }

    #[test]
    fn zero_and_oversized_lengths_are_framing_violations() {
        let mut cur = Cursor::new(vec![0, 0, 0, 0]);
        let mut scratch = [0u8; 16];
        assert!(matches!(
            read_frame(&mut cur, &mut scratch, &no_stop()),
            Err(ReadEnd::Failed)
        ));
        let mut big = Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3]);
        assert!(matches!(
            read_frame(&mut big, &mut scratch, &no_stop()),
            Err(ReadEnd::Failed)
        ));
    }

    #[test]
    fn truncated_stream_is_eof() {
        // Length says 8, only 3 payload bytes follow.
        let mut cur = Cursor::new(vec![0, 0, 0, 8, 1, 2, 3]);
        let mut scratch = [0u8; 16];
        assert!(matches!(
            read_frame(&mut cur, &mut scratch, &no_stop()),
            Err(ReadEnd::Eof)
        ));
    }

    #[test]
    fn stop_flag_interrupts() {
        let stop = AtomicBool::new(true);
        let mut cur = Cursor::new(vec![0, 0, 0, 4, 1, 2, 3, 4]);
        let mut scratch = [0u8; 16];
        assert!(matches!(
            read_frame(&mut cur, &mut scratch, &stop),
            Err(ReadEnd::Stopped)
        ));
    }
}
