//! Length-framed TCP fronthaul with coalesced writes and reconnect.
//!
//! Frames are `[len: u32 BE][frame]` on a nodelay stream. The sender
//! appends frames to one write buffer and pushes a whole cell-batch
//! with a single `write_all` syscall on [`FronthaulTx::flush`] — the
//! "batched socket I/O" arm of the transport (UDP cannot coalesce
//! without `sendmmsg`, which the vendored libc shim does not carry).
//!
//! The receiver's I/O thread keeps the listener after the first
//! session: when a sender dies mid-stream it re-accepts, validates the
//! replayed hello against the negotiated parameters, and resyncs the
//! session (bounded O(cells) work) — subframes lost across the outage
//! surface as sequence gaps, not as a stuck stream.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rtopex_phy::Cf32;
use rtopex_transport::iface::{
    FronthaulRx, FronthaulTx, Recv, RxStats, StreamParams, SubframeBuf, TransportError,
    PROTOCOL_VERSION,
};

use crate::framing::{io_err, is_timeout, read_frame, write_framed, ReadEnd};
use crate::ring::{Pop, SwapQueue};
use crate::session::{RxSession, ASM_SLOTS};
use crate::wire;

/// Auto-flush watermark for the sender's coalescing buffer.
const FLUSH_WATERMARK: usize = 512 * 1024;

/// Aggregator side of a TCP fronthaul stream.
pub struct TcpFronthaulTx {
    params: StreamParams,
    stream: TcpStream,
    wbuf: Vec<u8>,
    scratch: Vec<u8>,
}

impl TcpFronthaulTx {
    /// Connects and negotiates the session.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        params: StreamParams,
    ) -> Result<Self, TransportError> {
        Self::connect_with_version(addr, params, PROTOCOL_VERSION)
    }

    /// [`Self::connect`] announcing an explicit protocol version — the
    /// conformance suite's hook for exercising version refusal.
    pub fn connect_with_version<A: ToSocketAddrs>(
        addr: A,
        params: StreamParams,
        version: u16,
    ) -> Result<Self, TransportError> {
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .map_err(io_err)?;
        let mut hello = Vec::new();
        wire::encode_hello(&mut hello, &params, version);
        write_framed(&mut stream, &hello)?;
        let mut scratch = vec![0u8; wire::MAX_FRAME];
        let never = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_secs(5);
        let n = loop {
            match read_frame(&mut stream, &mut scratch, &never) {
                Ok(n) => break n,
                Err(ReadEnd::Eof) => {
                    return Err(TransportError::Io("receiver closed during hello".into()))
                }
                Err(_) if Instant::now() < deadline => continue,
                Err(_) => return Err(TransportError::Io("no hello ack".into())),
            }
        };
        match wire::decode_hello_ack(&scratch[..n]) {
            Some(v) if v == version => {}
            Some(v) => {
                return Err(TransportError::Version {
                    got: v,
                    want: version,
                })
            }
            None => return Err(TransportError::Protocol("bad hello ack".into())),
        }
        Ok(TcpFronthaulTx {
            params,
            stream,
            wbuf: Vec::with_capacity(FLUSH_WATERMARK + wire::MAX_IQ_FRAME + 4),
            scratch: vec![0u8; wire::MAX_IQ_FRAME],
        })
    }
}

impl FronthaulTx for TcpFronthaulTx {
    fn params(&self) -> &StreamParams {
        &self.params
    }

    fn send(
        &mut self,
        cell: u16,
        seq: u32,
        mcs: u8,
        samples: &[Vec<Cf32>],
    ) -> Result<(), TransportError> {
        let total = wire::fragments_for(self.params.samples_per_subframe as usize) as u16;
        for (ant, s) in samples.iter().enumerate() {
            if s.len() != self.params.samples_per_subframe as usize {
                return Err(TransportError::Protocol("subframe length mismatch".into()));
            }
            for (frag, chunk) in s.chunks(wire::SAMPLES_PER_FRAG).enumerate() {
                let len = wire::write_iq_frame(
                    &mut self.scratch,
                    mcs,
                    cell,
                    ant as u8,
                    frag as u8,
                    total,
                    seq,
                    chunk,
                );
                self.wbuf.extend_from_slice(&(len as u32).to_be_bytes());
                self.wbuf.extend_from_slice(&self.scratch[..len]);
            }
        }
        if self.wbuf.len() >= FLUSH_WATERMARK {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        if !self.wbuf.is_empty() {
            // The whole coalesced cell-batch in one syscall.
            self.stream.write_all(&self.wbuf).map_err(io_err)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TransportError> {
        self.wbuf.extend_from_slice(&1u32.to_be_bytes());
        self.wbuf.push(wire::FT_BYE);
        self.flush()?;
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        Ok(())
    }
}

/// A bound-but-unnegotiated TCP receiver.
pub struct TcpRxPending {
    listener: TcpListener,
}

impl TcpRxPending {
    /// Binds the listener (non-blocking accept loop under the hood).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        Ok(TcpRxPending { listener })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener.local_addr().map_err(io_err)
    }

    /// Waits up to `timeout` for a connection with a valid hello, acks
    /// it, and returns the negotiated receiver. Version-mismatched
    /// peers are acked with our version and dropped.
    pub fn accept(
        self,
        timeout: Duration,
        queue_depth: usize,
    ) -> Result<TcpFronthaulRx, TransportError> {
        let deadline = Instant::now() + timeout;
        let never = AtomicBool::new(false);
        loop {
            if Instant::now() >= deadline {
                return Err(TransportError::Io("no connection within timeout".into()));
            }
            let (mut stream, _) = match self.listener.accept() {
                Ok(x) => x,
                Err(e) if is_timeout(&e) => {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => return Err(io_err(e)),
            };
            match negotiate(&mut stream, None, &never) {
                Ok(params) => {
                    return Ok(TcpFronthaulRx::start(
                        self.listener,
                        stream,
                        params,
                        queue_depth,
                    ))
                }
                Err(_) => continue, // refused or malformed; keep listening
            }
        }
    }
}

/// Reads and validates a hello on a fresh connection, acks it, and
/// returns the stream params. When `expect` is set (re-accept after a
/// sender reconnect), the replayed hello must carry identical params.
fn negotiate(
    stream: &mut TcpStream,
    expect: Option<&StreamParams>,
    stop: &AtomicBool,
) -> Result<StreamParams, TransportError> {
    stream.set_nodelay(true).map_err(io_err)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(io_err)?;
    let mut scratch = vec![0u8; wire::MAX_FRAME];
    let n = match read_frame(stream, &mut scratch, stop) {
        Ok(n) => n,
        Err(_) => return Err(TransportError::Protocol("no hello on connection".into())),
    };
    // read_frame guarantees n ≤ scratch.len(), so the lookup never fails.
    let frame = scratch.get(..n).unwrap_or(&[]);
    let (version, params) = wire::decode_hello(frame)?;
    let mut ack = Vec::new();
    wire::encode_hello_ack(&mut ack, PROTOCOL_VERSION);
    write_framed(stream, &ack)?;
    wire::check_version(version)?;
    if let Some(e) = expect {
        if *e != params {
            return Err(TransportError::Protocol(
                "reconnect hello changed stream params".into(),
            ));
        }
    }
    Ok(params)
}

/// Worker side of a TCP fronthaul stream (negotiated).
pub struct TcpFronthaulRx {
    params: StreamParams,
    queue: Arc<SwapQueue>,
    session: Arc<Mutex<RxSession>>,
    stop: Arc<AtomicBool>,
    io: Option<JoinHandle<()>>,
}

impl TcpFronthaulRx {
    fn start(
        listener: TcpListener,
        first: TcpStream,
        params: StreamParams,
        queue_depth: usize,
    ) -> Self {
        // analyze: allow(taint-arith): cells.len() ≤ 64 after
        // validate_geometry and queue_depth is a local config value
        let pool = queue_depth + params.cells.len() * ASM_SLOTS + 1;
        let queue = Arc::new(SwapQueue::new(&params, pool, queue_depth));
        let session = Arc::new(Mutex::new(RxSession::new(
            params.clone(),
            Arc::clone(&queue),
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let io = {
            let session = Arc::clone(&session);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let params = params.clone();
            std::thread::spawn(move || {
                let mut scratch = vec![0u8; wire::MAX_FRAME];
                let mut conn = Some(first);
                'io: while !stop.load(Ordering::Relaxed) {
                    let Some(stream) = conn.as_mut() else {
                        // Sender gone: wait for a reconnect and resync.
                        match listener.accept() {
                            Ok((mut s, _)) => {
                                if negotiate(&mut s, Some(&params), &stop).is_ok() {
                                    session.lock().on_resync();
                                    conn = Some(s);
                                }
                            }
                            Err(e) if is_timeout(&e) => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => break 'io,
                        }
                        continue;
                    };
                    match read_frame(stream, &mut scratch, &stop) {
                        Ok(n) => match scratch.first() {
                            Some(&wire::FT_BYE) => {
                                queue.close();
                                break 'io;
                            }
                            // read_frame guarantees n ≤ scratch.len().
                            _ => session.lock().ingest_frame(scratch.get(..n).unwrap_or(&[])),
                        },
                        Err(ReadEnd::Stopped) => break 'io,
                        Err(_) => conn = None, // EOF or framing violation
                    }
                }
                queue.close();
            })
        };
        TcpFronthaulRx {
            params,
            queue,
            session,
            stop,
            io: Some(io),
        }
    }
}

impl FronthaulRx for TcpFronthaulRx {
    fn params(&self) -> &StreamParams {
        &self.params
    }

    fn recv_into(
        &mut self,
        buf: &mut SubframeBuf,
        timeout: Duration,
    ) -> Result<Recv, TransportError> {
        Ok(match self.queue.pop_swap(buf, timeout) {
            Pop::Got => Recv::Subframe,
            Pop::TimedOut => Recv::TimedOut,
            Pop::Closed => Recv::Closed,
        })
    }

    fn stats(&self) -> RxStats {
        self.session.lock().stats()
    }
}

impl Drop for TcpFronthaulRx {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
    }
}
