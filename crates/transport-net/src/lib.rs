//! # rtopex-transport-net — real-network fronthaul transports
//!
//! Byte-transport implementations of the [`rtopex_transport::iface`]
//! trait pair, carrying quantized IQ subframes between an aggregator
//! process and worker hosts over localhost or a real network:
//!
//! * [`udp`] — one wire frame per datagram, tolerant of loss and
//!   reordering (per-cell sequence tracking with wraparound-safe gap
//!   detection).
//! * [`tcp`] — length-framed stream with coalesced writes (one syscall
//!   per cell-batch) and sender reconnect with bounded resync.
//!
//! Both share [`wire`] (frame encoding over the `packet.rs` IQ format),
//! [`session`] (the allocation-free rx reassembly hot path) and
//! [`ring`] (preallocated swap-queue ring feeding the cluster's slot
//! arenas with drop-oldest overrun backpressure).
//!
//! **Std-only by design.** This environment cannot reach crates.io, so
//! there is no tokio/mio: sockets are `std::net` with read timeouts,
//! and each receiver runs one dedicated I/O thread. That is also the
//! honest shape for this workload — a fronthaul receiver is a single
//! hot socket per worker, not a connection swarm.
//!
//! This crate is deliberately separate from `rtopex-transport` (the
//! models and the trait) so the core runtime keeps **zero**
//! network-transport dependencies — `cargo xtask layering` enforces
//! the invariant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod framing;
pub mod ring;
pub mod session;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use ring::SwapQueue;
pub use session::RxSession;
pub use tcp::{TcpFronthaulRx, TcpFronthaulTx, TcpRxPending};
pub use udp::{UdpFronthaulRx, UdpFronthaulTx, UdpRxPending};
