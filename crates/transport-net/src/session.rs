//! Receive-side reassembly session — the rx hot path.
//!
//! One session per stream, driven by the transport's I/O thread: every
//! IQ frame lands in [`RxSession::ingest_frame`], which validates it,
//! dequantizes the payload **directly into a preallocated subframe
//! buffer** (no intermediate copy), and publishes completed subframes
//! to the [`SwapQueue`] ring. After construction the path performs no
//! allocation — `tests/alloc_regression.rs` proves it with a counting
//! allocator and the workspace analyzer carries a purity seed for it.
//!
//! Loss, reordering and duplication are absorbed per cell: a
//! wraparound-safe [`SeqTracker`] rejects stale stragglers and counts
//! gaps, and each cell owns a small set of assembly slots so fragments
//! of consecutive subframes may interleave. When every slot is busy the
//! *oldest* assembly is abandoned in place (its loss surfaces as a gap)
//! — bounded state, never unbounded queueing.

use std::sync::Arc;

use rtopex_transport::iface::{RxStats, StreamParams, SubframeBuf};
use rtopex_transport::packet::{seq_delta, SeqTracker};
use rtopex_transport::probe;

use crate::ring::SwapQueue;
use crate::wire;

/// In-flight assemblies per cell: fragments of at most this many
/// consecutive subframes may interleave on the wire.
pub const ASM_SLOTS: usize = 2;

struct AsmSlot {
    busy: bool,
    seq: u32,
    mcs: u8,
    /// Fragments still missing (all antennas).
    remaining: u32,
    /// Per-antenna fragment bitmap.
    seen: Vec<u128>,
    buf: Option<SubframeBuf>,
}

/// Stream reassembly state machine shared by the UDP and TCP receivers.
pub struct RxSession {
    params: StreamParams,
    queue: Arc<SwapQueue>,
    slots: Vec<AsmSlot>,
    trackers: Vec<SeqTracker>,
    samples_per_frag: usize,
    frags_per_antenna: u16,
    delivered: u64,
    stale: u64,
    bad_frames: u64,
    resyncs: u64,
}

impl RxSession {
    /// Builds the session and preallocates all assembly state. The
    /// queue's pool must hold at least `cells × ASM_SLOTS` buffers on
    /// top of its ready depth.
    pub fn new(params: StreamParams, queue: Arc<SwapQueue>) -> Self {
        let frags = wire::fragments_for(params.samples_per_subframe as usize);
        // analyze: allow(taint-panic): unreachable from the wire — every
        // negotiated geometry passes wire::validate_geometry (samples
        // capped at 30720 → ≤ 86 fragments) before a session is built;
        // this guards local misconfiguration only
        assert!(frags <= 128, "subframe exceeds the 128-fragment bitmap");
        // analyze: allow(taint-arith): cells.len() ≤ MAX_CELLS_PER_STREAM
        // (64) after validate_geometry and ASM_SLOTS = 2
        let slots = (0..params.cells.len() * ASM_SLOTS)
            .map(|_| AsmSlot {
                busy: false,
                seq: 0,
                mcs: 0,
                remaining: 0,
                seen: vec![0u128; params.antennas as usize],
                buf: None,
            })
            .collect();
        let trackers = vec![SeqTracker::new(); params.cells.len()];
        RxSession {
            samples_per_frag: wire::SAMPLES_PER_FRAG,
            frags_per_antenna: frags as u16,
            slots,
            trackers,
            params,
            queue,
            delivered: 0,
            stale: 0,
            bad_frames: 0,
            resyncs: 0,
        }
    }

    /// Negotiated stream parameters.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    /// Ingests one IQ frame (the hot path — allocation- and
    /// panic-free; malformed input increments a counter and returns).
    pub fn ingest_frame(&mut self, frame: &[u8]) {
        probe::reach(0x20);
        let Some(view) = wire::parse_iq(frame) else {
            self.bad_frames += 1;
            return;
        };
        let h = view.header;
        let Some(local) = self.params.local_cell(h.bs_id) else {
            probe::reach(0x21);
            self.bad_frames += 1;
            return;
        };
        let ant = h.antenna as usize;
        let count = (h.payload_len / 4) as usize;
        // analyze: allow(taint-arith): fragment ≤ 255 and samples_per_frag
        // = 360, so the product is ≤ 91 800 — nowhere near usize overflow
        let off = h.fragment as usize * self.samples_per_frag;
        let full = self.params.samples_per_subframe as usize;
        if ant >= self.params.antennas as usize
            || h.total_fragments != self.frags_per_antenna
            || (h.fragment as u16) >= self.frags_per_antenna
            || off + count > full // analyze: allow(taint-arith): off ≤ 86·360 and count ≤ u16::MAX/4 — cannot overflow
            // analyze: allow(taint-arith): fragment ≤ 255, so +1 fits u16
            || ((h.fragment as u16) + 1 < self.frags_per_antenna && count != self.samples_per_frag)
        {
            probe::reach(0x22);
            self.bad_frames += 1;
            return;
        }
        // One tracker per cell by construction (`local` comes from
        // `local_cell`, a position in `cells`, and `trackers` mirrors
        // `cells`), so the lookups can only fail on internal corruption
        // — which reads as a bad frame, not a panic.
        let Some(tracker) = self.trackers.get(local) else {
            self.bad_frames += 1;
            return;
        };
        if tracker.is_stale(h.subframe) {
            probe::reach(0x23);
            self.stale += 1;
            return;
        }

        // Locate (or claim) the assembly slot for (cell, seq) among this
        // cell's ASM_SLOTS-element window.
        let base = local * ASM_SLOTS;
        let Some(cell_slots) = self.slots.get_mut(base..base + ASM_SLOTS) else {
            self.bad_frames += 1;
            return;
        };
        let mut idx = usize::MAX;
        for (i, s) in cell_slots.iter().enumerate() {
            if s.busy && s.seq == h.subframe {
                idx = i;
                break;
            }
        }
        if idx == usize::MAX {
            for (i, s) in cell_slots.iter().enumerate() {
                if !s.busy {
                    idx = i;
                    break;
                }
            }
            if idx == usize::MAX {
                // Every slot busy: abandon the oldest assembly in place.
                // Its subframe is lost and will surface as a gap.
                probe::reach(0x25);
                idx = 0;
                let mut oldest_seq = 0u32;
                for (i, s) in cell_slots.iter().enumerate() {
                    if i == 0 || seq_delta(oldest_seq, s.seq) < 0 {
                        idx = i;
                        oldest_seq = s.seq;
                    }
                }
            }
            let Some(slot) = cell_slots.get_mut(idx) else {
                self.bad_frames += 1;
                return;
            };
            if slot.buf.is_none() {
                match self.queue.acquire() {
                    Some(b) => slot.buf = Some(b),
                    // Pool exhausted (consumer plus slots hold every
                    // buffer): shed the frame; the ring's drop
                    // accounting already reflects the overrun.
                    None => return,
                }
            }
            probe::reach(0x24);
            slot.busy = true;
            slot.seq = h.subframe;
            slot.mcs = view.mcs;
            // analyze: allow(taint-arith): antennas ≤ 8 and fragments ≤ 86
            // after validate_geometry — the product fits u32 trivially
            slot.remaining = self.params.antennas as u32 * self.frags_per_antenna as u32;
            for w in &mut slot.seen {
                *w = 0;
            }
            // Lock the cursor at the first fragment seen, so even a
            // first subframe that never completes registers as a gap.
            if let Some(t) = self.trackers.get_mut(local) {
                t.prime(h.subframe);
            }
        }

        let Some(slot) = self.slots.get_mut(base + idx) else {
            self.bad_frames += 1;
            return;
        };
        // analyze: allow(taint-arith): fragment < frags_per_antenna ≤ 86
        // (checked above), so the shift is in range for u128
        let bit = 1u128 << h.fragment;
        let Some(seen) = slot.seen.get_mut(ant) else {
            self.bad_frames += 1;
            return;
        };
        if *seen & bit != 0 {
            probe::reach(0x26);
            self.stale += 1; // duplicate fragment
            return;
        }
        probe::reach(0x27);
        *seen |= bit;
        let Some(buf) = slot.buf.as_mut() else {
            self.bad_frames += 1;
            return;
        };
        let dst = buf
            .samples
            .get_mut(ant)
            // analyze: allow(taint-arith): off + count ≤ samples_per_subframe checked above
            .and_then(|s| s.get_mut(off..off + count));
        let Some(dst) = dst else {
            self.bad_frames += 1;
            return;
        };
        wire::dequantize_payload(view.payload, dst);
        // analyze: allow(taint-arith): the seen bitmap admits each
        // (antenna, fragment) pair once, so decrements ≤ antennas×frags
        slot.remaining -= 1;
        if slot.remaining == 0 {
            probe::reach(0x28);
            buf.cell = h.bs_id;
            buf.seq = h.subframe;
            buf.mcs = slot.mcs;
            slot.busy = false;
            if let Some(done) = slot.buf.take() {
                if let Some(t) = self.trackers.get_mut(local) {
                    t.observe(h.subframe);
                }
                self.queue.publish(done);
                self.delivered += 1;
            }
        }
    }

    /// Absorbs a sender resync (TCP reconnect / replayed UDP hello):
    /// in-flight assemblies are abandoned (their buffers stay parked in
    /// the slots for reuse) and every sequence cursor re-locks on the
    /// next subframe it sees. O(cells) work — bounded by construction.
    pub fn on_resync(&mut self) {
        probe::reach(0x29);
        for s in &mut self.slots {
            s.busy = false;
        }
        for t in &mut self.trackers {
            t.resync();
        }
        self.resyncs += 1;
    }

    /// Marks the stream closed (bye frame / permanent peer loss).
    pub fn close(&self) {
        self.queue.close();
    }

    /// Session counters, aggregated across cells.
    pub fn stats(&self) -> RxStats {
        let mut gaps = 0;
        let mut stale = self.stale;
        for t in &self.trackers {
            gaps += t.gaps;
            stale += t.stale;
        }
        RxStats {
            delivered: self.delivered,
            gaps,
            stale,
            drops: self.queue.drops(),
            bad_frames: self.bad_frames,
            resyncs: self.resyncs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtopex_phy::Cf32;
    use rtopex_transport::packet::{dequantize, quantize};

    fn params() -> StreamParams {
        StreamParams {
            samples_per_subframe: 800, // 3 fragments: 360 + 360 + 80
            antennas: 2,
            cells: vec![5, 9],
            period_us: 1000,
            budget_us: 1000,
            mcs_pool: vec![27],
            subframes: 0,
        }
    }

    fn session() -> (RxSession, Arc<SwapQueue>) {
        let p = params();
        let q = Arc::new(SwapQueue::new(&p, 8, 4));
        (RxSession::new(p, Arc::clone(&q)), q)
    }

    fn subframe(v: f32, n: usize, ants: usize) -> Vec<Vec<Cf32>> {
        (0..ants)
            .map(|a| {
                (0..n)
                    .map(|i| Cf32::new(v + i as f32 / 10_000.0, -(a as f32) / 7.0))
                    .collect()
            })
            .collect()
    }

    /// All wire frames of one subframe, in order.
    fn frames(cell: u16, seq: u32, mcs: u8, samples: &[Vec<Cf32>]) -> Vec<Vec<u8>> {
        let n = samples[0].len();
        let total = wire::fragments_for(n) as u16;
        let mut out = Vec::new();
        for (ant, s) in samples.iter().enumerate() {
            for (frag, chunk) in s.chunks(wire::SAMPLES_PER_FRAG).enumerate() {
                let mut f = vec![0u8; wire::MAX_IQ_FRAME];
                let len = wire::write_iq_frame(
                    &mut f, mcs, cell, ant as u8, frag as u8, total, seq, chunk,
                );
                f.truncate(len);
                out.push(f);
            }
        }
        out
    }

    fn expect_exact(got: &SubframeBuf, sent: &[Vec<Cf32>]) {
        for (g, s) in got.samples.iter().zip(sent) {
            for (a, b) in g.iter().zip(s) {
                assert_eq!(a.re, dequantize(quantize(b.re)));
                assert_eq!(a.im, dequantize(quantize(b.im)));
            }
        }
    }

    #[test]
    fn reassembles_in_order() {
        let (mut s, q) = session();
        let sent = subframe(0.3, 800, 2);
        for f in frames(5, 0, 27, &sent) {
            s.ingest_frame(&f);
        }
        let mut buf = SubframeBuf::for_stream(s.params());
        assert_eq!(
            q.pop_swap(&mut buf, std::time::Duration::from_millis(10)),
            crate::ring::Pop::Got
        );
        assert_eq!((buf.cell, buf.seq, buf.mcs), (5, 0, 27));
        expect_exact(&buf, &sent);
        assert_eq!(s.stats().delivered, 1);
    }

    #[test]
    fn reassembles_reversed_and_interleaved() {
        let (mut s, q) = session();
        let a = subframe(0.1, 800, 2);
        let b = subframe(0.5, 800, 2);
        let fa = frames(5, 0, 27, &a);
        let fb = frames(9, 0, 16, &b);
        // Reverse one stream and interleave the two cells.
        for (x, y) in fa.iter().rev().zip(&fb) {
            s.ingest_frame(x);
            s.ingest_frame(y);
        }
        let mut buf = SubframeBuf::for_stream(s.params());
        let d = std::time::Duration::from_millis(10);
        let mut got = Vec::new();
        while q.pop_swap(&mut buf, d) == crate::ring::Pop::Got {
            got.push(buf.clone());
        }
        assert_eq!(got.len(), 2);
        let ga = got.iter().find(|g| g.cell == 5).unwrap();
        let gb = got.iter().find(|g| g.cell == 9).unwrap();
        expect_exact(ga, &a);
        expect_exact(gb, &b);
    }

    #[test]
    fn duplicates_and_stale_fragments_counted_not_delivered() {
        let (mut s, q) = session();
        let sent = subframe(0.2, 800, 2);
        let fs = frames(5, 1, 27, &sent);
        for f in &fs {
            s.ingest_frame(f);
        }
        s.ingest_frame(&fs[0]); // stale: subframe 1 already delivered
        let next = frames(5, 2, 27, &sent);
        s.ingest_frame(&next[0]);
        s.ingest_frame(&next[0]); // duplicate fragment of in-flight subframe
        let st = s.stats();
        assert_eq!(st.delivered, 1);
        assert_eq!(st.stale, 2);
        let mut buf = SubframeBuf::for_stream(s.params());
        assert_eq!(
            q.pop_swap(&mut buf, std::time::Duration::from_millis(10)),
            crate::ring::Pop::Got
        );
        assert_eq!(buf.seq, 1);
    }

    #[test]
    fn lost_fragment_surfaces_as_gap_and_slots_recycle() {
        let (mut s, q) = session();
        let sent = subframe(0.2, 800, 2);
        // Subframe 0 loses one fragment; 1..=3 arrive whole. With two
        // assembly slots, 0's slot is evicted by 2, and 0 is counted as
        // a gap when 1 completes.
        let mut f0 = frames(5, 0, 27, &sent);
        f0.remove(3);
        for f in &f0 {
            s.ingest_frame(f);
        }
        for seq in 1..4u32 {
            for f in frames(5, seq, 27, &sent) {
                s.ingest_frame(&f);
            }
        }
        let st = s.stats();
        assert_eq!(st.delivered, 3);
        assert_eq!(st.gaps, 1, "incomplete subframe 0 reads as one gap");
        let mut buf = SubframeBuf::for_stream(s.params());
        let d = std::time::Duration::from_millis(10);
        for seq in 1..4u32 {
            assert_eq!(q.pop_swap(&mut buf, d), crate::ring::Pop::Got);
            assert_eq!(buf.seq, seq);
            expect_exact(&buf, &sent);
        }
    }

    #[test]
    fn malformed_frames_counted() {
        let (mut s, _q) = session();
        s.ingest_frame(&[wire::FT_IQ]); // truncated
        s.ingest_frame(&[]);
        let sent = subframe(0.2, 800, 2);
        let fs = frames(77, 0, 27, &sent); // unknown cell id
        s.ingest_frame(&fs[0]);
        let mut wrong_geom = frames(5, 0, 27, &subframe(0.2, 800, 2))[0].clone();
        wrong_geom[4..6].copy_from_slice(&9u16.to_be_bytes()); // total_fragments = 9
        s.ingest_frame(&wrong_geom);
        assert_eq!(s.stats().bad_frames, 4);
        assert_eq!(s.stats().delivered, 0);
    }

    #[test]
    fn resync_relocks_and_abandons_assemblies() {
        let (mut s, q) = session();
        let sent = subframe(0.2, 800, 2);
        for f in frames(5, 1000, 27, &sent) {
            s.ingest_frame(&f);
        }
        let partial = frames(5, 1001, 27, &sent);
        s.ingest_frame(&partial[0]);
        s.on_resync();
        // Sender restarted from 0: without resync these would be stale.
        for f in frames(5, 0, 27, &sent) {
            s.ingest_frame(&f);
        }
        let st = s.stats();
        assert_eq!(st.delivered, 2);
        assert_eq!(st.resyncs, 1);
        assert_eq!(st.stale, 0);
        let mut buf = SubframeBuf::for_stream(s.params());
        let d = std::time::Duration::from_millis(10);
        assert_eq!(q.pop_swap(&mut buf, d), crate::ring::Pop::Got);
        assert_eq!(buf.seq, 1000);
        assert_eq!(q.pop_swap(&mut buf, d), crate::ring::Pop::Got);
        assert_eq!(buf.seq, 0);
    }
}
