//! Wire framing shared by the UDP and TCP transports.
//!
//! Every frame starts with a one-byte type tag. IQ frames reuse the
//! 12-byte [`PacketHeader`] fragment format from `rtopex-transport`'s
//! packetizer (bs_id / antenna / fragment / subframe sequence), prefixed
//! with the MCS the subframe was encoded at:
//!
//! ```text
//! [FT_IQ][mcs:u8][PacketHeader:12][payload: payload_len bytes of BE i16 I/Q]
//! ```
//!
//! Hello/ack frames carry the [`StreamParams`] negotiation. Over UDP a
//! frame is one datagram; over TCP each frame is preceded by a
//! big-endian `u32` length.

use rtopex_phy::Cf32;
use rtopex_transport::iface::{StreamParams, TransportError, PROTOCOL_VERSION};
use rtopex_transport::packet::{dequantize, quantize, PacketHeader, HEADER_LEN, MAX_PAYLOAD};
use rtopex_transport::probe;

/// Session negotiation: version + stream geometry.
pub const FT_HELLO: u8 = 1;
/// Hello acknowledgement carrying the receiver's version.
pub const FT_HELLO_ACK: u8 = 2;
/// One IQ fragment.
pub const FT_IQ: u8 = 3;
/// Clean end of stream.
pub const FT_BYE: u8 = 4;

/// IQ samples per full fragment payload.
pub const SAMPLES_PER_FRAG: usize = MAX_PAYLOAD / 4;

/// Byte offset of the IQ payload inside an IQ frame.
pub const IQ_PAYLOAD_OFF: usize = 2 + HEADER_LEN;

/// Largest IQ frame (type + mcs + header + full payload).
pub const MAX_IQ_FRAME: usize = IQ_PAYLOAD_OFF + MAX_PAYLOAD;

/// Upper bound on any frame this protocol emits (hello grows with the
/// cell list; 4 KiB accommodates >1500 cells per stream).
pub const MAX_FRAME: usize = 4096;

/// Most receive antennas per cell a stream may negotiate.
pub const MAX_ANTENNAS: u8 = 8;
/// Most cells one stream may carry.
pub const MAX_CELLS_PER_STREAM: usize = 64;
/// Largest per-antenna subframe a stream may negotiate (20 MHz LTE:
/// 30.72 Msps × 1 ms). Keeps `fragments_for` ≤ 86, comfortably inside
/// the session's 128-fragment assembly bitmap.
pub const MAX_SAMPLES_PER_SUBFRAME: u32 = 30_720;
/// Largest MCS pool a hello may announce.
pub const MAX_MCS_POOL: usize = 32;

/// Fragments needed per antenna for `samples` IQ samples.
pub fn fragments_for(samples: usize) -> usize {
    // analyze: allow(taint-arith): samples ≤ MAX_SAMPLES_PER_SUBFRAME
    // (validate_geometry), so samples * 4 fits usize with room to spare
    (samples * 4).div_ceil(MAX_PAYLOAD).max(1)
}

/// Validates negotiated stream geometry against the protocol's hard
/// caps. Every session constructor goes through this before sizing
/// buffers, so a hostile hello can neither panic the receiver (the
/// 128-fragment assembly bitmap in `RxSession::new`) nor make it
/// allocate unbounded memory (`SubframeBuf::for_stream` is
/// `cells × antennas × samples_per_subframe` — attacker-sized before
/// this check existed).
pub fn validate_geometry(p: &StreamParams) -> Result<(), TransportError> {
    let bad = |m: String| TransportError::Protocol(m);
    if p.antennas == 0 || p.samples_per_subframe == 0 || p.cells.is_empty() {
        probe::reach(0x1A);
        return Err(bad("degenerate geometry".into()));
    }
    if p.antennas > MAX_ANTENNAS {
        return Err(bad(format!(
            "antennas {} exceeds cap {MAX_ANTENNAS}",
            p.antennas
        )));
    }
    if p.samples_per_subframe > MAX_SAMPLES_PER_SUBFRAME {
        return Err(bad(format!(
            "samples_per_subframe {} exceeds cap {MAX_SAMPLES_PER_SUBFRAME}",
            p.samples_per_subframe
        )));
    }
    if p.cells.len() > MAX_CELLS_PER_STREAM {
        return Err(bad(format!(
            "{} cells exceeds cap {MAX_CELLS_PER_STREAM}",
            p.cells.len()
        )));
    }
    if p.mcs_pool.len() > MAX_MCS_POOL {
        return Err(bad(format!(
            "mcs pool of {} exceeds cap {MAX_MCS_POOL}",
            p.mcs_pool.len()
        )));
    }
    for (i, c) in p.cells.iter().enumerate() {
        if p.cells.iter().take(i).any(|o| o == c) {
            probe::reach(0x1B);
            return Err(bad(format!("duplicate cell id {c}")));
        }
    }
    probe::reach(0x1C);
    Ok(())
}

/// Checked byte cursor over an untrusted frame. Every read is bounds-
/// checked exactly once, so the parsers below contain no indexing or
/// slicing that could panic — pass 4 of `rtopex-analyze` verifies this
/// transitively.
struct Rd<'a> {
    b: &'a [u8],
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b }
    }

    fn u8(&mut self) -> Option<u8> {
        let (&v, rest) = self.b.split_first()?;
        self.b = rest;
        Some(v)
    }

    fn chunk<const N: usize>(&mut self) -> Option<&'a [u8; N]> {
        let (head, rest) = self.b.split_first_chunk::<N>()?;
        self.b = rest;
        Some(head)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(*self.chunk::<2>()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(*self.chunk::<4>()?))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.b.len() {
            return None;
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Some(head)
    }

    fn rest(self) -> &'a [u8] {
        self.b
    }
}

/// Encodes a hello frame for `p` into `out` (cleared first).
pub fn encode_hello(out: &mut Vec<u8>, p: &StreamParams, version: u16) {
    out.clear();
    out.push(FT_HELLO);
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&p.samples_per_subframe.to_be_bytes());
    out.push(p.antennas);
    out.extend_from_slice(&p.period_us.to_be_bytes());
    out.extend_from_slice(&p.budget_us.to_be_bytes());
    out.extend_from_slice(&p.subframes.to_be_bytes());
    out.extend_from_slice(&(p.cells.len() as u16).to_be_bytes());
    for c in &p.cells {
        out.extend_from_slice(&c.to_be_bytes());
    }
    out.push(p.mcs_pool.len() as u8);
    out.extend_from_slice(&p.mcs_pool);
}

/// Decodes a hello frame (including the type byte). Returns the peer's
/// version alongside the params so the caller can refuse a mismatch
/// with a precise error.
pub fn decode_hello(frame: &[u8]) -> Result<(u16, StreamParams), TransportError> {
    let bad = |m: &str| TransportError::Protocol(format!("malformed hello: {m}"));
    probe::reach(0x10);
    let mut rd = Rd::new(frame);
    if rd.u8() != Some(FT_HELLO) {
        return Err(bad("wrong frame type"));
    }
    probe::reach(0x11);
    let version = rd.u16().ok_or_else(|| bad("truncated fixed part"))?;
    let samples_per_subframe = rd.u32().ok_or_else(|| bad("truncated fixed part"))?;
    let antennas = rd.u8().ok_or_else(|| bad("truncated fixed part"))?;
    let period_us = rd.u32().ok_or_else(|| bad("truncated fixed part"))?;
    let budget_us = rd.u32().ok_or_else(|| bad("truncated fixed part"))?;
    let subframes = rd.u32().ok_or_else(|| bad("truncated fixed part"))?;
    let n_cells = rd.u16().ok_or_else(|| bad("truncated fixed part"))? as usize;
    // Cap before allocating: the count is attacker bytes until here.
    if n_cells > MAX_CELLS_PER_STREAM {
        probe::reach(0x12);
        return Err(bad("cell list exceeds MAX_CELLS_PER_STREAM"));
    }
    let mut cells = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        cells.push(rd.u16().ok_or_else(|| bad("truncated cell list"))?);
    }
    probe::reach(0x13);
    let n_mcs = rd.u8().ok_or_else(|| bad("truncated mcs pool"))? as usize;
    if n_mcs > MAX_MCS_POOL {
        probe::reach(0x14);
        return Err(bad("mcs pool exceeds MAX_MCS_POOL"));
    }
    let mcs_pool = rd
        .take(n_mcs)
        .ok_or_else(|| bad("truncated mcs pool"))?
        .to_vec();
    let p = StreamParams {
        samples_per_subframe,
        antennas,
        cells,
        period_us,
        budget_us,
        mcs_pool,
        subframes,
    };
    validate_geometry(&p)?;
    probe::reach(0x15);
    Ok((version, p))
}

/// Encodes a hello-ack carrying `version` into `out` (cleared first).
pub fn encode_hello_ack(out: &mut Vec<u8>, version: u16) {
    out.clear();
    out.push(FT_HELLO_ACK);
    out.extend_from_slice(&version.to_be_bytes());
}

/// Decodes a hello-ack; `None` if malformed.
pub fn decode_hello_ack(frame: &[u8]) -> Option<u16> {
    match frame {
        &[t, hi, lo] if t == FT_HELLO_ACK => Some(u16::from_be_bytes([hi, lo])),
        _ => None,
    }
}

/// Checks a peer's announced version against ours.
pub fn check_version(got: u16) -> Result<(), TransportError> {
    if got == PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(TransportError::Version {
            got,
            want: PROTOCOL_VERSION,
        })
    }
}

/// Serialized length of an IQ frame carrying `n` samples.
pub fn iq_frame_len(n: usize) -> usize {
    IQ_PAYLOAD_OFF + n * 4
}

/// Writes one IQ fragment frame into the front of `out`, quantizing
/// `samples` to the wire's 16-bit fixed point. Returns the frame
/// length. `out` must hold at least [`iq_frame_len`]`(samples.len())`
/// bytes and `samples.len()` must fit one fragment.
// The argument list IS the wire header, field for field; a builder
// struct would just restate `PacketHeader` with extra copies.
#[allow(clippy::too_many_arguments)]
pub fn write_iq_frame(
    out: &mut [u8],
    mcs: u8,
    bs_id: u16,
    antenna: u8,
    fragment: u8,
    total_fragments: u16,
    seq: u32,
    samples: &[Cf32],
) -> usize {
    let n = samples.len();
    debug_assert!(n <= SAMPLES_PER_FRAG);
    let frame_len = iq_frame_len(n);
    // Sender side: `out` is sized by the caller per the documented
    // contract, so the splits below panic only on a caller bug (like
    // `fill_quantized`); no peer controls these lengths.
    let (head, tail) = out.split_at_mut(2);
    if let [t, m] = head {
        *t = FT_IQ;
        *m = mcs;
    }
    let (hdr, payload_all) = tail.split_at_mut(HEADER_LEN);
    let plen = (n * 4) as u16;
    PacketHeader {
        bs_id,
        antenna,
        fragment,
        total_fragments,
        subframe: seq,
        payload_len: plen,
    }
    .write_to(hdr);
    for (b, s) in payload_all
        .get_mut(..plen as usize)
        .unwrap_or(&mut [])
        .chunks_exact_mut(4)
        .zip(samples)
    {
        let [r0, r1] = quantize(s.re).to_be_bytes();
        let [i0, i1] = quantize(s.im).to_be_bytes();
        b.copy_from_slice(&[r0, r1, i0, i1]);
    }
    frame_len
}

/// A parsed IQ frame borrowing the receive buffer (the allocation-free
/// hot-path view).
#[derive(Clone, Copy, Debug)]
pub struct IqView<'a> {
    /// MCS the subframe was encoded at.
    pub mcs: u8,
    /// Fragment header (cell id, antenna, fragment index, sequence).
    pub header: PacketHeader,
    /// Raw BE i16 I/Q payload.
    pub payload: &'a [u8],
}

/// Parses an IQ frame in place; `None` if malformed or truncated.
pub fn parse_iq(frame: &[u8]) -> Option<IqView<'_>> {
    probe::reach(0x16);
    let mut rd = Rd::new(frame);
    if rd.u8()? != FT_IQ {
        return None;
    }
    let mcs = rd.u8()?;
    let header = PacketHeader::read_from(rd.take(HEADER_LEN)?)?;
    probe::reach(0x17);
    let payload = rd.rest();
    if payload.len() != header.payload_len as usize || header.payload_len % 4 != 0 {
        return None;
    }
    probe::reach(0x18);
    Some(IqView {
        mcs,
        header,
        payload,
    })
}

/// Dequantizes an IQ payload into `dst` (exactly `payload.len()/4`
/// samples). Returns `false` on length mismatch.
pub fn dequantize_payload(payload: &[u8], dst: &mut [Cf32]) -> bool {
    if !payload.len().is_multiple_of(4) || payload.len() / 4 != dst.len() {
        return false;
    }
    probe::reach(0x19);
    for (b, d) in payload.chunks_exact(4).zip(dst.iter_mut()) {
        let &[r0, r1, i0, i1] = b else {
            return false;
        };
        *d = Cf32::new(
            dequantize(i16::from_be_bytes([r0, r1])),
            dequantize(i16::from_be_bytes([i0, i1])),
        );
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StreamParams {
        StreamParams {
            samples_per_subframe: 7680,
            antennas: 2,
            cells: vec![3, 1, 4],
            period_us: 6000,
            budget_us: 5000,
            mcs_pool: vec![5, 10, 16, 22, 27],
            subframes: 300,
        }
    }

    #[test]
    fn hello_roundtrip() {
        let p = params();
        let mut buf = Vec::new();
        encode_hello(&mut buf, &p, PROTOCOL_VERSION);
        let (v, back) = decode_hello(&buf).unwrap();
        assert_eq!(v, PROTOCOL_VERSION);
        assert_eq!(back, p);
        assert!(buf.len() < MAX_FRAME);
    }

    #[test]
    fn hello_truncation_rejected() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, &params(), PROTOCOL_VERSION);
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(decode_hello(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn ack_roundtrip_and_version_gate() {
        let mut buf = Vec::new();
        encode_hello_ack(&mut buf, 7);
        assert_eq!(decode_hello_ack(&buf), Some(7));
        assert!(matches!(
            check_version(7),
            Err(TransportError::Version { got: 7, .. })
        ));
        assert!(check_version(PROTOCOL_VERSION).is_ok());
    }

    #[test]
    fn iq_frame_roundtrip_is_quantize_exact() {
        let samples: Vec<Cf32> = (0..360)
            .map(|i| Cf32::new(i as f32 / 400.0 - 0.45, -(i as f32) / 800.0))
            .collect();
        let mut frame = vec![0u8; MAX_IQ_FRAME];
        let len = write_iq_frame(&mut frame, 27, 42, 1, 3, 22, 0xFFFF_FFFE, &samples);
        assert_eq!(len, iq_frame_len(360));
        let view = parse_iq(&frame[..len]).unwrap();
        assert_eq!(view.mcs, 27);
        assert_eq!(view.header.bs_id, 42);
        assert_eq!(view.header.subframe, 0xFFFF_FFFE);
        let mut out = vec![Cf32::new(0.0, 0.0); 360];
        assert!(dequantize_payload(view.payload, &mut out));
        for (s, o) in samples.iter().zip(&out) {
            assert_eq!(o.re, dequantize(quantize(s.re)));
            assert_eq!(o.im, dequantize(quantize(s.im)));
        }
    }

    #[test]
    fn malformed_iq_rejected() {
        let samples = vec![Cf32::new(0.1, 0.2); 8];
        let mut frame = vec![0u8; MAX_IQ_FRAME];
        let len = write_iq_frame(&mut frame, 5, 1, 0, 0, 1, 9, &samples);
        assert!(parse_iq(&frame[..len]).is_some());
        assert!(parse_iq(&frame[..len - 1]).is_none(), "truncated payload");
        let mut wrong = frame.clone();
        wrong[0] = FT_BYE;
        assert!(parse_iq(&wrong[..len]).is_none(), "wrong type");
    }

    #[test]
    fn fragment_geometry_matches_packetizer() {
        // 5 MHz subframe: 7680 samples = 30720 bytes → 22 fragments.
        assert_eq!(fragments_for(7680), 22);
        assert_eq!(fragments_for(SAMPLES_PER_FRAG), 1);
        assert_eq!(fragments_for(SAMPLES_PER_FRAG + 1), 2);
        assert_eq!(fragments_for(1), 1);
    }
}
