//! Wire framing shared by the UDP and TCP transports.
//!
//! Every frame starts with a one-byte type tag. IQ frames reuse the
//! 12-byte [`PacketHeader`] fragment format from `rtopex-transport`'s
//! packetizer (bs_id / antenna / fragment / subframe sequence), prefixed
//! with the MCS the subframe was encoded at:
//!
//! ```text
//! [FT_IQ][mcs:u8][PacketHeader:12][payload: payload_len bytes of BE i16 I/Q]
//! ```
//!
//! Hello/ack frames carry the [`StreamParams`] negotiation. Over UDP a
//! frame is one datagram; over TCP each frame is preceded by a
//! big-endian `u32` length.

use rtopex_phy::Cf32;
use rtopex_transport::iface::{StreamParams, TransportError, PROTOCOL_VERSION};
use rtopex_transport::packet::{dequantize, quantize, PacketHeader, HEADER_LEN, MAX_PAYLOAD};

/// Session negotiation: version + stream geometry.
pub const FT_HELLO: u8 = 1;
/// Hello acknowledgement carrying the receiver's version.
pub const FT_HELLO_ACK: u8 = 2;
/// One IQ fragment.
pub const FT_IQ: u8 = 3;
/// Clean end of stream.
pub const FT_BYE: u8 = 4;

/// IQ samples per full fragment payload.
pub const SAMPLES_PER_FRAG: usize = MAX_PAYLOAD / 4;

/// Byte offset of the IQ payload inside an IQ frame.
pub const IQ_PAYLOAD_OFF: usize = 2 + HEADER_LEN;

/// Largest IQ frame (type + mcs + header + full payload).
pub const MAX_IQ_FRAME: usize = IQ_PAYLOAD_OFF + MAX_PAYLOAD;

/// Upper bound on any frame this protocol emits (hello grows with the
/// cell list; 4 KiB accommodates >1500 cells per stream).
pub const MAX_FRAME: usize = 4096;

/// Fragments needed per antenna for `samples` IQ samples.
pub fn fragments_for(samples: usize) -> usize {
    (samples * 4).div_ceil(MAX_PAYLOAD).max(1)
}

/// Encodes a hello frame for `p` into `out` (cleared first).
pub fn encode_hello(out: &mut Vec<u8>, p: &StreamParams, version: u16) {
    out.clear();
    out.push(FT_HELLO);
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&p.samples_per_subframe.to_be_bytes());
    out.push(p.antennas);
    out.extend_from_slice(&p.period_us.to_be_bytes());
    out.extend_from_slice(&p.budget_us.to_be_bytes());
    out.extend_from_slice(&p.subframes.to_be_bytes());
    out.extend_from_slice(&(p.cells.len() as u16).to_be_bytes());
    for c in &p.cells {
        out.extend_from_slice(&c.to_be_bytes());
    }
    out.push(p.mcs_pool.len() as u8);
    out.extend_from_slice(&p.mcs_pool);
}

/// Decodes a hello frame (including the type byte). Returns the peer's
/// version alongside the params so the caller can refuse a mismatch
/// with a precise error.
pub fn decode_hello(frame: &[u8]) -> Result<(u16, StreamParams), TransportError> {
    let bad = |m: &str| TransportError::Protocol(format!("malformed hello: {m}"));
    if frame.first() != Some(&FT_HELLO) {
        return Err(bad("wrong frame type"));
    }
    let b = &frame[1..];
    if b.len() < 21 {
        return Err(bad("truncated fixed part"));
    }
    let version = u16::from_be_bytes([b[0], b[1]]);
    let samples_per_subframe = u32::from_be_bytes([b[2], b[3], b[4], b[5]]);
    let antennas = b[6];
    let period_us = u32::from_be_bytes([b[7], b[8], b[9], b[10]]);
    let budget_us = u32::from_be_bytes([b[11], b[12], b[13], b[14]]);
    let subframes = u32::from_be_bytes([b[15], b[16], b[17], b[18]]);
    let n_cells = u16::from_be_bytes([b[19], b[20]]) as usize;
    let rest = &b[21..];
    if rest.len() < n_cells * 2 + 1 {
        return Err(bad("truncated cell list"));
    }
    let cells: Vec<u16> = (0..n_cells)
        .map(|i| u16::from_be_bytes([rest[i * 2], rest[i * 2 + 1]]))
        .collect();
    let rest = &rest[n_cells * 2..];
    let n_mcs = rest[0] as usize;
    if rest.len() < 1 + n_mcs {
        return Err(bad("truncated mcs pool"));
    }
    let mcs_pool = rest[1..1 + n_mcs].to_vec();
    if antennas == 0 || samples_per_subframe == 0 || cells.is_empty() {
        return Err(bad("degenerate geometry"));
    }
    Ok((
        version,
        StreamParams {
            samples_per_subframe,
            antennas,
            cells,
            period_us,
            budget_us,
            mcs_pool,
            subframes,
        },
    ))
}

/// Encodes a hello-ack carrying `version` into `out` (cleared first).
pub fn encode_hello_ack(out: &mut Vec<u8>, version: u16) {
    out.clear();
    out.push(FT_HELLO_ACK);
    out.extend_from_slice(&version.to_be_bytes());
}

/// Decodes a hello-ack; `None` if malformed.
pub fn decode_hello_ack(frame: &[u8]) -> Option<u16> {
    if frame.len() == 3 && frame[0] == FT_HELLO_ACK {
        Some(u16::from_be_bytes([frame[1], frame[2]]))
    } else {
        None
    }
}

/// Checks a peer's announced version against ours.
pub fn check_version(got: u16) -> Result<(), TransportError> {
    if got == PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(TransportError::Version {
            got,
            want: PROTOCOL_VERSION,
        })
    }
}

/// Serialized length of an IQ frame carrying `n` samples.
pub fn iq_frame_len(n: usize) -> usize {
    IQ_PAYLOAD_OFF + n * 4
}

/// Writes one IQ fragment frame into the front of `out`, quantizing
/// `samples` to the wire's 16-bit fixed point. Returns the frame
/// length. `out` must hold at least [`iq_frame_len`]`(samples.len())`
/// bytes and `samples.len()` must fit one fragment.
// The argument list IS the wire header, field for field; a builder
// struct would just restate `PacketHeader` with extra copies.
#[allow(clippy::too_many_arguments)]
pub fn write_iq_frame(
    out: &mut [u8],
    mcs: u8,
    bs_id: u16,
    antenna: u8,
    fragment: u8,
    total_fragments: u16,
    seq: u32,
    samples: &[Cf32],
) -> usize {
    let n = samples.len();
    debug_assert!(n <= SAMPLES_PER_FRAG);
    out[0] = FT_IQ;
    out[1] = mcs;
    PacketHeader {
        bs_id,
        antenna,
        fragment,
        total_fragments,
        subframe: seq,
        payload_len: (n * 4) as u16,
    }
    .write_to(&mut out[2..]);
    let payload = &mut out[IQ_PAYLOAD_OFF..IQ_PAYLOAD_OFF + n * 4];
    for (i, s) in samples.iter().enumerate() {
        payload[i * 4..i * 4 + 2].copy_from_slice(&quantize(s.re).to_be_bytes());
        payload[i * 4 + 2..i * 4 + 4].copy_from_slice(&quantize(s.im).to_be_bytes());
    }
    iq_frame_len(n)
}

/// A parsed IQ frame borrowing the receive buffer (the allocation-free
/// hot-path view).
#[derive(Clone, Copy, Debug)]
pub struct IqView<'a> {
    /// MCS the subframe was encoded at.
    pub mcs: u8,
    /// Fragment header (cell id, antenna, fragment index, sequence).
    pub header: PacketHeader,
    /// Raw BE i16 I/Q payload.
    pub payload: &'a [u8],
}

/// Parses an IQ frame in place; `None` if malformed or truncated.
pub fn parse_iq(frame: &[u8]) -> Option<IqView<'_>> {
    if frame.len() < IQ_PAYLOAD_OFF || frame[0] != FT_IQ {
        return None;
    }
    let header = PacketHeader::read_from(&frame[2..])?;
    let payload = &frame[IQ_PAYLOAD_OFF..];
    if payload.len() != header.payload_len as usize || header.payload_len % 4 != 0 {
        return None;
    }
    Some(IqView {
        mcs: frame[1],
        header,
        payload,
    })
}

/// Dequantizes an IQ payload into `dst` (exactly `payload.len()/4`
/// samples). Returns `false` on length mismatch.
pub fn dequantize_payload(payload: &[u8], dst: &mut [Cf32]) -> bool {
    if payload.len() != dst.len() * 4 {
        return false;
    }
    for (i, d) in dst.iter_mut().enumerate() {
        let b = &payload[i * 4..i * 4 + 4];
        *d = Cf32::new(
            dequantize(i16::from_be_bytes([b[0], b[1]])),
            dequantize(i16::from_be_bytes([b[2], b[3]])),
        );
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StreamParams {
        StreamParams {
            samples_per_subframe: 7680,
            antennas: 2,
            cells: vec![3, 1, 4],
            period_us: 6000,
            budget_us: 5000,
            mcs_pool: vec![5, 10, 16, 22, 27],
            subframes: 300,
        }
    }

    #[test]
    fn hello_roundtrip() {
        let p = params();
        let mut buf = Vec::new();
        encode_hello(&mut buf, &p, PROTOCOL_VERSION);
        let (v, back) = decode_hello(&buf).unwrap();
        assert_eq!(v, PROTOCOL_VERSION);
        assert_eq!(back, p);
        assert!(buf.len() < MAX_FRAME);
    }

    #[test]
    fn hello_truncation_rejected() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, &params(), PROTOCOL_VERSION);
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(decode_hello(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn ack_roundtrip_and_version_gate() {
        let mut buf = Vec::new();
        encode_hello_ack(&mut buf, 7);
        assert_eq!(decode_hello_ack(&buf), Some(7));
        assert!(matches!(
            check_version(7),
            Err(TransportError::Version { got: 7, .. })
        ));
        assert!(check_version(PROTOCOL_VERSION).is_ok());
    }

    #[test]
    fn iq_frame_roundtrip_is_quantize_exact() {
        let samples: Vec<Cf32> = (0..360)
            .map(|i| Cf32::new(i as f32 / 400.0 - 0.45, -(i as f32) / 800.0))
            .collect();
        let mut frame = vec![0u8; MAX_IQ_FRAME];
        let len = write_iq_frame(&mut frame, 27, 42, 1, 3, 22, 0xFFFF_FFFE, &samples);
        assert_eq!(len, iq_frame_len(360));
        let view = parse_iq(&frame[..len]).unwrap();
        assert_eq!(view.mcs, 27);
        assert_eq!(view.header.bs_id, 42);
        assert_eq!(view.header.subframe, 0xFFFF_FFFE);
        let mut out = vec![Cf32::new(0.0, 0.0); 360];
        assert!(dequantize_payload(view.payload, &mut out));
        for (s, o) in samples.iter().zip(&out) {
            assert_eq!(o.re, dequantize(quantize(s.re)));
            assert_eq!(o.im, dequantize(quantize(s.im)));
        }
    }

    #[test]
    fn malformed_iq_rejected() {
        let samples = vec![Cf32::new(0.1, 0.2); 8];
        let mut frame = vec![0u8; MAX_IQ_FRAME];
        let len = write_iq_frame(&mut frame, 5, 1, 0, 0, 1, 9, &samples);
        assert!(parse_iq(&frame[..len]).is_some());
        assert!(parse_iq(&frame[..len - 1]).is_none(), "truncated payload");
        let mut wrong = frame.clone();
        wrong[0] = FT_BYE;
        assert!(parse_iq(&wrong[..len]).is_none(), "wrong type");
    }

    #[test]
    fn fragment_geometry_matches_packetizer() {
        // 5 MHz subframe: 7680 samples = 30720 bytes → 22 fragments.
        assert_eq!(fragments_for(7680), 22);
        assert_eq!(fragments_for(SAMPLES_PER_FRAG), 1);
        assert_eq!(fragments_for(SAMPLES_PER_FRAG + 1), 2);
        assert_eq!(fragments_for(1), 1);
    }
}
