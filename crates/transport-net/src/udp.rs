//! UDP datagram fronthaul: one wire frame per datagram.
//!
//! The natural transport for fronthaul IQ — loss shows up as sequence
//! gaps instead of head-of-line blocking, matching how the paper's
//! testbed treated late samples (drop, don't wait). The receiver runs
//! one dedicated I/O thread that feeds the shared [`RxSession`]; the
//! sender packetizes into a single reusable scratch buffer, so neither
//! side allocates per packet in steady state.
//!
//! Session setup is a hello/ack exchange with version negotiation: the
//! sender retries its hello until acked; a receiver that speaks a
//! different protocol version acks with *its* version, which the
//! sender surfaces as [`TransportError::Version`].

use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rtopex_phy::Cf32;
use rtopex_transport::iface::{
    FronthaulRx, FronthaulTx, Recv, RxStats, StreamParams, SubframeBuf, TransportError,
    PROTOCOL_VERSION,
};

use crate::framing::{io_err, is_timeout};
use crate::ring::{Pop, SwapQueue};
use crate::session::{RxSession, ASM_SLOTS};
use crate::wire;

/// Aggregator side of a UDP fronthaul stream.
pub struct UdpFronthaulTx {
    params: StreamParams,
    sock: UdpSocket,
    scratch: Vec<u8>,
    bye: [u8; 1],
}

impl UdpFronthaulTx {
    /// Connects to a worker's listen address and negotiates the
    /// session (hello retried until acked, 5 s overall).
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        params: StreamParams,
    ) -> Result<Self, TransportError> {
        Self::connect_with_version(addr, params, PROTOCOL_VERSION)
    }

    /// [`Self::connect`] announcing an explicit protocol version — the
    /// conformance suite's hook for exercising version refusal.
    pub fn connect_with_version<A: ToSocketAddrs>(
        addr: A,
        params: StreamParams,
        version: u16,
    ) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind("0.0.0.0:0").map_err(io_err)?;
        sock.connect(addr).map_err(io_err)?;
        sock.set_read_timeout(Some(Duration::from_millis(200)))
            .map_err(io_err)?;
        let mut hello = Vec::new();
        wire::encode_hello(&mut hello, &params, version);
        let mut ack = [0u8; 16];
        let mut negotiated = false;
        for _ in 0..25 {
            sock.send(&hello).map_err(io_err)?;
            match sock.recv(&mut ack) {
                Ok(n) => {
                    if let Some(v) = wire::decode_hello_ack(&ack[..n]) {
                        if v != version {
                            return Err(TransportError::Version {
                                got: v,
                                want: version,
                            });
                        }
                        negotiated = true;
                        break;
                    }
                }
                Err(e) if is_timeout(&e) => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
        if !negotiated {
            return Err(TransportError::Io("no hello ack from receiver".into()));
        }
        Ok(UdpFronthaulTx {
            params,
            sock,
            scratch: vec![0u8; wire::MAX_IQ_FRAME],
            bye: [wire::FT_BYE],
        })
    }
}

impl FronthaulTx for UdpFronthaulTx {
    fn params(&self) -> &StreamParams {
        &self.params
    }

    fn send(
        &mut self,
        cell: u16,
        seq: u32,
        mcs: u8,
        samples: &[Vec<Cf32>],
    ) -> Result<(), TransportError> {
        let total = wire::fragments_for(self.params.samples_per_subframe as usize) as u16;
        for (ant, s) in samples.iter().enumerate() {
            if s.len() != self.params.samples_per_subframe as usize {
                return Err(TransportError::Protocol("subframe length mismatch".into()));
            }
            for (frag, chunk) in s.chunks(wire::SAMPLES_PER_FRAG).enumerate() {
                let len = wire::write_iq_frame(
                    &mut self.scratch,
                    mcs,
                    cell,
                    ant as u8,
                    frag as u8,
                    total,
                    seq,
                    chunk,
                );
                self.sock.send(&self.scratch[..len]).map_err(io_err)?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(()) // datagrams leave on send(); nothing to coalesce
    }

    fn finish(&mut self) -> Result<(), TransportError> {
        // Best-effort bye, replicated against loss; the receiver also
        // ends on idle timeout.
        for _ in 0..3 {
            let _ = self.sock.send(&self.bye);
        }
        Ok(())
    }
}

/// A bound-but-unnegotiated UDP receiver; lets the caller learn the
/// listen port (for `bind(":0")`) before the aggregator connects.
pub struct UdpRxPending {
    sock: UdpSocket,
}

impl UdpRxPending {
    /// Binds the listen socket.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind(addr).map_err(io_err)?;
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(io_err)?;
        Ok(UdpRxPending { sock })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.sock.local_addr().map_err(io_err)
    }

    /// Waits up to `timeout` for a valid hello, acks it, and returns
    /// the negotiated receiver. Hellos with a foreign protocol version
    /// are acked with *our* version (so the sender errors precisely)
    /// and refused. `queue_depth` bounds the ready queue before
    /// drop-oldest engages.
    pub fn accept(
        self,
        timeout: Duration,
        queue_depth: usize,
    ) -> Result<UdpFronthaulRx, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut buf = vec![0u8; wire::MAX_FRAME];
        let mut ack = Vec::new();
        loop {
            if Instant::now() >= deadline {
                return Err(TransportError::Io("no hello within timeout".into()));
            }
            let (n, src) = match self.sock.recv_from(&mut buf) {
                Ok(x) => x,
                Err(e) if is_timeout(&e) => continue,
                Err(e) => return Err(io_err(e)),
            };
            if buf.first() != Some(&wire::FT_HELLO) {
                continue;
            }
            // recv_from guarantees n ≤ buf.len(), so the lookup never fails.
            let dgram = buf.get(..n).unwrap_or(&[]);
            let (version, params) = match wire::decode_hello(dgram) {
                Ok(x) => x,
                Err(_) => continue,
            };
            wire::encode_hello_ack(&mut ack, PROTOCOL_VERSION);
            self.sock.send_to(&ack, src).map_err(io_err)?;
            if version != PROTOCOL_VERSION {
                continue; // refused; keep listening for a compatible peer
            }
            self.sock.connect(src).map_err(io_err)?;
            return Ok(UdpFronthaulRx::start(self.sock, params, queue_depth));
        }
    }
}

/// Worker side of a UDP fronthaul stream (negotiated).
pub struct UdpFronthaulRx {
    params: StreamParams,
    queue: Arc<SwapQueue>,
    session: Arc<Mutex<RxSession>>,
    stop: Arc<AtomicBool>,
    io: Option<JoinHandle<()>>,
}

impl UdpFronthaulRx {
    fn start(sock: UdpSocket, params: StreamParams, queue_depth: usize) -> Self {
        // analyze: allow(taint-arith): cells.len() ≤ 64 after
        // validate_geometry and queue_depth is a local config value
        let pool = queue_depth + params.cells.len() * ASM_SLOTS + 1;
        let queue = Arc::new(SwapQueue::new(&params, pool, queue_depth));
        let session = Arc::new(Mutex::new(RxSession::new(
            params.clone(),
            Arc::clone(&queue),
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let io = {
            let session = Arc::clone(&session);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = vec![0u8; wire::MAX_FRAME];
                let mut ack = Vec::new();
                wire::encode_hello_ack(&mut ack, PROTOCOL_VERSION);
                let mut saw_iq_since_hello = false;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let n = match sock.recv(&mut buf) {
                        Ok(n) => n,
                        Err(e) if is_timeout(&e) => continue,
                        Err(_) => {
                            // Transient (e.g. ECONNREFUSED bounce from a
                            // departed peer); back off and keep serving.
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                    };
                    match buf.first() {
                        Some(&wire::FT_IQ) => {
                            saw_iq_since_hello = true;
                            // recv guarantees n ≤ buf.len().
                            session.lock().ingest_frame(buf.get(..n).unwrap_or(&[]));
                        }
                        Some(&wire::FT_HELLO) => {
                            // Retransmitted hello (lost ack) or a sender
                            // restart: re-ack, and resync only if traffic
                            // already flowed — a pure retry is not a
                            // session restart.
                            // analyze: allow(call:send): UdpSocket::send on the
                            // io thread's own socket — the conservative graph
                            // collides this with FronthaulTx::send impls
                            let _ = sock.send(&ack);
                            if saw_iq_since_hello {
                                session.lock().on_resync();
                                saw_iq_since_hello = false;
                            }
                        }
                        Some(&wire::FT_BYE) => {
                            queue.close();
                            break;
                        }
                        // recv guarantees n ≤ buf.len(); junk is counted bad.
                        _ => session.lock().ingest_frame(buf.get(..n).unwrap_or(&[])),
                    }
                }
                queue.close();
            })
        };
        UdpFronthaulRx {
            params,
            queue,
            session,
            stop,
            io: Some(io),
        }
    }
}

impl FronthaulRx for UdpFronthaulRx {
    fn params(&self) -> &StreamParams {
        &self.params
    }

    fn recv_into(
        &mut self,
        buf: &mut SubframeBuf,
        timeout: Duration,
    ) -> Result<Recv, TransportError> {
        Ok(match self.queue.pop_swap(buf, timeout) {
            Pop::Got => Recv::Subframe,
            Pop::TimedOut => Recv::TimedOut,
            Pop::Closed => Recv::Closed,
        })
    }

    fn stats(&self) -> RxStats {
        self.session.lock().stats()
    }
}

impl Drop for UdpFronthaulRx {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
    }
}
