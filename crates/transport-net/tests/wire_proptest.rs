//! Property tests for the wire codec: every frame type round-trips
//! through encode → decode, and every decoder survives arbitrary bytes
//! without panicking (the same guarantee pass 4 of `rtopex-analyze`
//! proves statically and the fuzzer probes dynamically — this is the
//! quick, always-on sampling of that surface).

use std::io::Cursor;
use std::sync::atomic::AtomicBool;

use proptest::prelude::*;
use rtopex_phy::Cf32;
use rtopex_transport::iface::StreamParams;
use rtopex_transport::packet::{dequantize, quantize};
use rtopex_transport_net::{framing, wire};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_roundtrips_for_every_valid_geometry(
        version in any::<u16>(),
        samples in 1u32..=wire::MAX_SAMPLES_PER_SUBFRAME,
        antennas in 1u8..=wire::MAX_ANTENNAS,
        raw_cells in prop::collection::vec(any::<u16>(), 1..=wire::MAX_CELLS_PER_STREAM),
        mcs_pool in prop::collection::vec(any::<u8>(), 0..=wire::MAX_MCS_POOL),
        period_us in any::<u32>(),
        budget_us in any::<u32>(),
        subframes in any::<u32>(),
    ) {
        let mut cells = raw_cells;
        cells.sort_unstable();
        cells.dedup();
        let p = StreamParams {
            samples_per_subframe: samples,
            antennas,
            cells,
            period_us,
            budget_us,
            mcs_pool,
            subframes,
        };
        prop_assert!(wire::validate_geometry(&p).is_ok());
        let mut buf = Vec::new();
        wire::encode_hello(&mut buf, &p, version);
        let (v, back) = wire::decode_hello(&buf).expect("valid hello must decode");
        prop_assert_eq!(v, version);
        prop_assert_eq!(back, p);
    }

    #[test]
    fn hello_ack_roundtrips(version in any::<u16>()) {
        let mut buf = Vec::new();
        wire::encode_hello_ack(&mut buf, version);
        prop_assert_eq!(wire::decode_hello_ack(&buf), Some(version));
    }

    #[test]
    fn iq_frame_roundtrips(
        n in 1usize..=wire::SAMPLES_PER_FRAG,
        mcs in any::<u8>(),
        bs_id in any::<u16>(),
        antenna in any::<u8>(),
        fragment in any::<u8>(),
        total in any::<u16>(),
        seq in any::<u32>(),
        phase_step in 0.0f32..0.4,
    ) {
        let samples: Vec<Cf32> = (0..n)
            .map(|i| Cf32::from_phase(i as f32 * phase_step))
            .collect();
        let mut buf = vec![0u8; wire::iq_frame_len(n)];
        let len = wire::write_iq_frame(
            &mut buf, mcs, bs_id, antenna, fragment, total, seq, &samples,
        );
        prop_assert_eq!(len, buf.len());
        let view = wire::parse_iq(&buf).expect("well-formed IQ frame must parse");
        prop_assert_eq!(view.mcs, mcs);
        prop_assert_eq!(view.header.bs_id, bs_id);
        prop_assert_eq!(view.header.antenna, antenna);
        prop_assert_eq!(view.header.fragment, fragment);
        prop_assert_eq!(view.header.total_fragments, total);
        prop_assert_eq!(view.header.subframe, seq);
        let mut back = vec![Cf32::ZERO; n];
        prop_assert!(wire::dequantize_payload(view.payload, &mut back));
        for (b, s) in back.iter().zip(&samples) {
            // Quantization is the only lossy step in the round trip.
            prop_assert_eq!(b.re, dequantize(quantize(s.re)));
            prop_assert_eq!(b.im, dequantize(quantize(s.im)));
        }
    }

    #[test]
    fn bye_frames_are_unmistakable(tail in prop::collection::vec(any::<u8>(), 0..16)) {
        // BYE is the one-byte frame [FT_BYE]; whatever trails it, no
        // other decoder may claim the frame.
        let mut frame = vec![wire::FT_BYE];
        frame.extend_from_slice(&tail);
        prop_assert_eq!(frame.first(), Some(&wire::FT_BYE));
        prop_assert!(wire::decode_hello(&frame).is_err());
        prop_assert!(wire::decode_hello_ack(&frame).is_none());
        prop_assert!(wire::parse_iq(&frame).is_none());
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..=wire::MAX_FRAME + 8),
    ) {
        let _ = wire::decode_hello(&bytes);
        let _ = wire::decode_hello_ack(&bytes);
        let _ = wire::parse_iq(&bytes);
        let mut dst = vec![Cf32::ZERO; bytes.len() / 4];
        let _ = wire::dequantize_payload(&bytes, &mut dst);
        // The TCP reassembly layer gets the same raw bytes as a stream:
        // walk frames out of it until it runs dry or rejects.
        let stop = AtomicBool::new(false);
        let mut cursor = Cursor::new(bytes);
        let mut scratch = vec![0u8; wire::MAX_FRAME];
        for _ in 0..8 {
            if framing::read_frame(&mut cursor, &mut scratch, &stop).is_err() {
                break;
            }
        }
    }
}
