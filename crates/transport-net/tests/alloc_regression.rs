//! Rx hot-path allocation guarantee: after session setup and warm-up,
//! ingesting IQ frames and swapping completed subframes to the consumer
//! performs **zero** heap allocation, measured by a counting global
//! allocator — the dynamic twin of the analyzer's `ingest_frame` purity
//! seed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use rtopex_phy::Cf32;
use rtopex_transport::iface::{StreamParams, SubframeBuf};
use rtopex_transport_net::ring::{Pop, SwapQueue};
use rtopex_transport_net::session::ASM_SLOTS;
use rtopex_transport_net::{wire, RxSession};

struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<Option<u64>> = const { Cell::new(None) };
}

fn note_alloc() {
    let _ = ALLOC_COUNT.try_with(|c| {
        if let Some(n) = c.get() {
            c.set(Some(n + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOC_COUNT.with(|c| c.set(Some(0)));
    let r = f();
    let n = ALLOC_COUNT.with(|c| c.replace(None)).unwrap_or(0);
    (r, n)
}

fn params() -> StreamParams {
    StreamParams {
        samples_per_subframe: 800, // 3 fragments per antenna
        antennas: 2,
        cells: vec![1, 2],
        period_us: 1000,
        budget_us: 1000,
        mcs_pool: vec![27],
        subframes: 0,
    }
}

/// Pre-encoded wire frames for one subframe.
fn frames(p: &StreamParams, cell: u16, seq: u32) -> Vec<Vec<u8>> {
    let n = p.samples_per_subframe as usize;
    let total = wire::fragments_for(n) as u16;
    let mut out = Vec::new();
    for ant in 0..p.antennas {
        let samples: Vec<Cf32> = (0..n)
            .map(|i| Cf32::new((i as f32 + seq as f32).sin() * 0.3, (ant as f32) / 9.0))
            .collect();
        for (frag, chunk) in samples.chunks(wire::SAMPLES_PER_FRAG).enumerate() {
            let mut f = vec![0u8; wire::MAX_IQ_FRAME];
            let len = wire::write_iq_frame(&mut f, 27, cell, ant, frag as u8, total, seq, chunk);
            f.truncate(len);
            out.push(f);
        }
    }
    out
}

#[test]
fn rx_hot_path_makes_zero_allocations_after_warmup() {
    let p = params();
    let depth = 8;
    let queue = Arc::new(SwapQueue::new(
        &p,
        depth + p.cells.len() * ASM_SLOTS + 1,
        depth,
    ));
    let mut session = RxSession::new(p.clone(), Arc::clone(&queue));
    let mut buf = SubframeBuf::for_stream(&p);

    // Everything the steady state touches, pre-encoded outside the
    // measured region — the I/O thread likewise reuses one recv buffer.
    let mut wire_stream: Vec<Vec<u8>> = Vec::new();
    for seq in 0..12u32 {
        for &cell in &p.cells {
            wire_stream.extend(frames(&p, cell, seq));
        }
    }
    // Include an out-of-order tail, a duplicate, and a stale straggler
    // so the non-trivial branches are exercised under the counter too.
    let mut reordered = frames(&p, 1, 12);
    reordered.reverse();
    wire_stream.extend(reordered);
    wire_stream.push(frames(&p, 2, 3)[0].clone()); // stale
    let warm_count = frames(&p, 1, 100).len() * 2;

    // Warm-up: two subframes per cell through ingest + swap.
    for seq in 100..102u32 {
        for &cell in &p.cells {
            for f in frames(&p, cell, seq) {
                session.ingest_frame(&f);
            }
            assert_eq!(
                queue.pop_swap(&mut buf, Duration::from_millis(10)),
                Pop::Got
            );
        }
    }
    session.on_resync(); // also warms the resync path and relocks at seq 0
    let _ = warm_count;

    let (delivered, allocs) = count_allocs(|| {
        let mut delivered = 0u64;
        for f in &wire_stream {
            session.ingest_frame(f);
            // Drain as the cluster's delivery thread would.
            while queue.pop_swap(&mut buf, Duration::ZERO) == Pop::Got {
                delivered += 1;
            }
        }
        delivered
    });
    assert_eq!(
        delivered, 25,
        "12 seqs x 2 cells + reordered tail + nothing stale"
    );
    assert_eq!(
        allocs, 0,
        "rx hot path (ingest + ring swap) must not touch the heap after warm-up"
    );
    let st = session.stats();
    assert_eq!(st.gaps, 0);
    assert!(st.stale >= 1);
}
