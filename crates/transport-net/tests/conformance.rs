//! Transport trait conformance: one shared suite run against all three
//! implementations (in-process, UDP loopback, TCP loopback).
//!
//! The invariant under test: every subframe the receiver delivers is
//! **byte-identical** (f32 bit equality) to the sent subframe after the
//! wire's i16 quantization — under plain delivery, under fragment
//! reordering (UDP), and across a sender reconnect (TCP).

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use rtopex_phy::Cf32;
use rtopex_transport::iface::{
    FronthaulRx, FronthaulTx, Recv, StreamParams, SubframeBuf, TransportError,
};
use rtopex_transport::inproc::inproc_pair;
use rtopex_transport::packet::{dequantize, quantize};
use rtopex_transport_net::wire;
use rtopex_transport_net::{TcpFronthaulTx, TcpRxPending, UdpFronthaulTx, UdpRxPending};

const ACCEPT_TIMEOUT: Duration = Duration::from_secs(5);
const RECV_TIMEOUT: Duration = Duration::from_secs(2);
const QUEUE_DEPTH: usize = 64;

fn params() -> StreamParams {
    StreamParams {
        samples_per_subframe: 800, // 3 fragments per antenna
        antennas: 2,
        cells: vec![3, 8],
        period_us: 1000,
        budget_us: 1000,
        mcs_pool: vec![5, 27],
        subframes: 6,
    }
}

/// Deterministic per-(cell, seq) subframe payload.
fn subframe(p: &StreamParams, cell: u16, seq: u32) -> Vec<Vec<Cf32>> {
    (0..p.antennas as usize)
        .map(|a| {
            (0..p.samples_per_subframe as usize)
                .map(|i| {
                    let x = (cell as f32 + 1.0) * 0.11 + (seq as f32) * 0.013 + (a as f32) * 0.7;
                    Cf32::new(
                        (x + i as f32 / 997.0).sin() * 0.4,
                        (x - i as f32 / 499.0).cos() * 0.4,
                    )
                })
                .collect()
        })
        .collect()
}

fn assert_wire_exact(got: &SubframeBuf, p: &StreamParams) {
    let sent = subframe(p, got.cell, got.seq);
    for (g, s) in got.samples.iter().zip(&sent) {
        for (a, b) in g.iter().zip(s) {
            assert_eq!(a.re.to_bits(), dequantize(quantize(b.re)).to_bits());
            assert_eq!(a.im.to_bits(), dequantize(quantize(b.im)).to_bits());
        }
    }
}

/// Sends `(cell, seq)` pairs through `tx` and collects everything `rx`
/// delivers until close, asserting byte-identity on each subframe.
fn stream_and_verify(
    mut tx: Box<dyn FronthaulTx>,
    rx: &mut dyn FronthaulRx,
    sched: &[(u16, u32)],
) -> Vec<(u16, u32)> {
    let p = rx.params().clone();
    for &(cell, seq) in sched {
        let s = subframe(&p, cell, seq);
        tx.send(cell, seq, 27, &s).unwrap();
        tx.flush().unwrap();
    }
    tx.finish().unwrap();
    drop(tx);
    let mut got = Vec::new();
    let mut buf = SubframeBuf::for_stream(&p);
    loop {
        match rx.recv_into(&mut buf, RECV_TIMEOUT).unwrap() {
            Recv::Subframe => {
                assert_wire_exact(&buf, &p);
                got.push((buf.cell, buf.seq));
            }
            Recv::Closed => break,
            Recv::TimedOut => panic!("stream stalled with {} delivered", got.len()),
        }
    }
    got
}

fn full_schedule(p: &StreamParams) -> Vec<(u16, u32)> {
    let mut sched = Vec::new();
    for seq in 0..p.subframes {
        for &cell in &p.cells {
            sched.push((cell, seq));
        }
    }
    sched
}

// --- transport constructors -------------------------------------------------

type Pair = (Box<dyn FronthaulTx>, Box<dyn FronthaulRx>);

fn udp_pair(p: &StreamParams) -> Pair {
    let pending = UdpRxPending::bind("127.0.0.1:0").unwrap();
    let addr = pending.local_addr().unwrap();
    let (rtx, rrx) = mpsc::channel();
    let h = thread::spawn(move || {
        rtx.send(pending.accept(ACCEPT_TIMEOUT, QUEUE_DEPTH))
            .unwrap()
    });
    let tx = UdpFronthaulTx::connect(addr, p.clone()).unwrap();
    h.join().unwrap();
    (Box::new(tx), Box::new(rrx.recv().unwrap().unwrap()))
}

fn tcp_pair(p: &StreamParams) -> Pair {
    let pending = TcpRxPending::bind("127.0.0.1:0").unwrap();
    let addr = pending.local_addr().unwrap();
    let (rtx, rrx) = mpsc::channel();
    let h = thread::spawn(move || {
        rtx.send(pending.accept(ACCEPT_TIMEOUT, QUEUE_DEPTH))
            .unwrap()
    });
    let tx = TcpFronthaulTx::connect(addr, p.clone()).unwrap();
    h.join().unwrap();
    (Box::new(tx), Box::new(rrx.recv().unwrap().unwrap()))
}

fn inproc_boxed(p: &StreamParams) -> Pair {
    let (tx, rx) = inproc_pair(p.clone(), QUEUE_DEPTH);
    (Box::new(tx), Box::new(rx))
}

// --- the shared suite -------------------------------------------------------

fn conformance_plain(make: fn(&StreamParams) -> Pair) {
    let p = params();
    let (tx, mut rx) = make(&p);
    let sched = full_schedule(&p);
    let got = stream_and_verify(tx, rx.as_mut(), &sched);
    assert_eq!(got, sched, "all subframes delivered in order");
    let st = rx.stats();
    assert_eq!(st.delivered, sched.len() as u64);
    assert_eq!((st.gaps, st.stale, st.bad_frames), (0, 0, 0), "{st:?}");
}

#[test]
fn inproc_delivers_byte_identical() {
    conformance_plain(inproc_boxed);
}

#[test]
fn udp_delivers_byte_identical() {
    conformance_plain(udp_pair);
}

#[test]
fn tcp_delivers_byte_identical() {
    conformance_plain(tcp_pair);
}

/// UDP under reordering: fragments of each subframe sent in reversed
/// order, plus a duplicated datagram — delivery must stay byte-exact.
/// Loopback never reorders on its own, so the test crafts the datagram
/// stream by hand through a raw socket speaking the same wire format.
#[test]
fn udp_reordered_fragments_delivered_byte_identical() {
    let p = params();
    let pending = UdpRxPending::bind("127.0.0.1:0").unwrap();
    let addr = pending.local_addr().unwrap();
    let (rtx, rrx) = mpsc::channel();
    let h = thread::spawn(move || {
        rtx.send(pending.accept(ACCEPT_TIMEOUT, QUEUE_DEPTH))
            .unwrap()
    });

    let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    sock.connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut hello = Vec::new();
    wire::encode_hello(&mut hello, &p, rtopex_transport::PROTOCOL_VERSION);
    let mut ack = [0u8; 16];
    loop {
        sock.send(&hello).unwrap();
        if let Ok(n) = sock.recv(&mut ack) {
            if wire::decode_hello_ack(&ack[..n]).is_some() {
                break;
            }
        }
    }
    h.join().unwrap();
    let mut rx = rrx.recv().unwrap().unwrap();

    let total = wire::fragments_for(p.samples_per_subframe as usize) as u16;
    let sched = full_schedule(&p);
    for &(cell, seq) in &sched {
        let s = subframe(&p, cell, seq);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for (ant, samples) in s.iter().enumerate() {
            for (frag, chunk) in samples.chunks(wire::SAMPLES_PER_FRAG).enumerate() {
                let mut f = vec![0u8; wire::MAX_IQ_FRAME];
                let len = wire::write_iq_frame(
                    &mut f, 27, cell, ant as u8, frag as u8, total, seq, chunk,
                );
                f.truncate(len);
                frames.push(f);
            }
        }
        frames.reverse(); // worst-case reordering within the subframe
        frames.push(frames[0].clone()); // and a duplicated datagram
        for f in &frames {
            sock.send(f).unwrap();
        }
    }
    sock.send(&[wire::FT_BYE]).unwrap();

    let mut got = Vec::new();
    let mut buf = SubframeBuf::for_stream(&p);
    loop {
        match rx.recv_into(&mut buf, RECV_TIMEOUT).unwrap() {
            Recv::Subframe => {
                assert_wire_exact(&buf, &p);
                got.push((buf.cell, buf.seq));
            }
            Recv::Closed => break,
            Recv::TimedOut => panic!("stalled after {} subframes", got.len()),
        }
    }
    let mut want = sched.clone();
    let mut sorted = got.clone();
    want.sort_unstable();
    sorted.sort_unstable();
    assert_eq!(
        sorted, want,
        "every subframe reassembled despite reordering"
    );
    let st = rx.stats();
    assert_eq!(st.delivered, sched.len() as u64);
    assert_eq!(st.gaps, 0);
    assert_eq!(st.stale, sched.len() as u64, "one duplicate per subframe");
}

/// TCP across a sender reconnect: the first sender dies mid-stream, a
/// second one reconnects and continues the sequence. Everything
/// delivered stays byte-identical and the resync is counted.
#[test]
fn tcp_reconnect_resyncs_and_stays_byte_identical() {
    let p = params();
    let pending = TcpRxPending::bind("127.0.0.1:0").unwrap();
    let addr = pending.local_addr().unwrap();
    let (rtx, rrx) = mpsc::channel();
    let h = thread::spawn(move || {
        rtx.send(pending.accept(ACCEPT_TIMEOUT, QUEUE_DEPTH))
            .unwrap()
    });
    let mut tx = TcpFronthaulTx::connect(addr, p.clone()).unwrap();
    h.join().unwrap();
    let mut rx = rrx.recv().unwrap().unwrap();

    let first: Vec<(u16, u32)> = full_schedule(&p).into_iter().take(6).collect();
    for &(cell, seq) in &first {
        tx.send(cell, seq, 27, &subframe(&p, cell, seq)).unwrap();
    }
    tx.flush().unwrap();
    drop(tx); // sender dies without a bye

    // Drain what the first connection delivered.
    let mut got = Vec::new();
    let mut buf = SubframeBuf::for_stream(&p);
    while got.len() < first.len() {
        match rx.recv_into(&mut buf, RECV_TIMEOUT).unwrap() {
            Recv::Subframe => {
                assert_wire_exact(&buf, &p);
                got.push((buf.cell, buf.seq));
            }
            other => panic!("unexpected {other:?} after {} subframes", got.len()),
        }
    }

    // Second sender reconnects and continues the stream.
    let mut tx2 = TcpFronthaulTx::connect(addr, p.clone()).unwrap();
    let second: Vec<(u16, u32)> = full_schedule(&p).into_iter().skip(6).collect();
    for &(cell, seq) in &second {
        tx2.send(cell, seq, 27, &subframe(&p, cell, seq)).unwrap();
    }
    tx2.finish().unwrap();
    loop {
        match rx.recv_into(&mut buf, RECV_TIMEOUT).unwrap() {
            Recv::Subframe => {
                assert_wire_exact(&buf, &p);
                got.push((buf.cell, buf.seq));
            }
            Recv::Closed => break,
            Recv::TimedOut => panic!("stalled after reconnect at {} subframes", got.len()),
        }
    }
    assert_eq!(got, full_schedule(&p));
    let st = rx.stats();
    assert_eq!(st.resyncs, 1, "{st:?}");
    assert_eq!(st.delivered, got.len() as u64);
}

/// Version negotiation: a peer announcing a foreign protocol version is
/// refused with a precise error, and the receiver keeps listening for a
/// compatible sender.
#[test]
fn version_mismatch_refused_then_good_peer_accepted() {
    let p = params();

    // UDP
    let pending = UdpRxPending::bind("127.0.0.1:0").unwrap();
    let addr = pending.local_addr().unwrap();
    let (rtx, rrx) = mpsc::channel();
    let h = thread::spawn(move || {
        rtx.send(pending.accept(ACCEPT_TIMEOUT, QUEUE_DEPTH))
            .unwrap()
    });
    let bad = UdpFronthaulTx::connect_with_version(addr, p.clone(), 0x7777);
    assert!(
        matches!(&bad, Err(TransportError::Version { got, .. }) if *got == rtopex_transport::PROTOCOL_VERSION),
        "{:?}",
        bad.err()
    );
    let good = UdpFronthaulTx::connect(addr, p.clone());
    assert!(good.is_ok(), "{:?}", good.err());
    h.join().unwrap();
    drop(rrx);

    // TCP
    let pending = TcpRxPending::bind("127.0.0.1:0").unwrap();
    let addr = pending.local_addr().unwrap();
    let (rtx, rrx) = mpsc::channel();
    let h = thread::spawn(move || {
        rtx.send(pending.accept(ACCEPT_TIMEOUT, QUEUE_DEPTH))
            .unwrap()
    });
    let bad = TcpFronthaulTx::connect_with_version(addr, p.clone(), 0x7777);
    assert!(
        matches!(&bad, Err(TransportError::Version { got, .. }) if *got == rtopex_transport::PROTOCOL_VERSION),
        "{:?}",
        bad.err()
    );
    let good = TcpFronthaulTx::connect(addr, p.clone());
    assert!(good.is_ok(), "{:?}", good.err());
    h.join().unwrap();
    drop(rrx);
}
