//! Zadoff-Chu reference sequences for the uplink DMRS (36.211 §5.5).
//!
//! The PUSCH demodulation reference signal is a constant-amplitude
//! zero-autocorrelation (CAZAC) sequence: a Zadoff-Chu sequence of the
//! largest prime length below the allocation width, cyclically extended to
//! fill the allocated subcarriers. Constant amplitude is what makes the
//! least-squares channel estimate in the equalizer well-conditioned on
//! every subcarrier.

use crate::complex::Cf32;

/// Returns `true` if `n` is prime (trial division; inputs are ≤ a few thousand).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Largest prime `≤ n`, or `None` for `n < 2`.
pub fn largest_prime_leq(n: usize) -> Option<usize> {
    (2..=n).rev().find(|&p| is_prime(p))
}

/// Generates a length-`nzc` Zadoff-Chu sequence with root `u`:
/// `x(n) = e^{-jπ·u·n·(n+1)/Nzc}` (odd prime `nzc`).
///
/// # Panics
/// Panics if `nzc` is not an odd prime or `u` is not in `1..nzc`.
pub fn zadoff_chu(u: usize, nzc: usize) -> Vec<Cf32> {
    assert!(is_prime(nzc) && nzc >= 3, "Nzc must be an odd prime");
    assert!(u >= 1 && u < nzc, "root must be in 1..Nzc");
    (0..nzc)
        .map(|n| {
            // n(n+1) fits easily in u64 for LTE sizes; reduce mod 2·Nzc to
            // keep the phase argument small and exact.
            let phase_num = (u as u64 * n as u64 * (n as u64 + 1)) % (2 * nzc as u64);
            Cf32::from_phase(-std::f32::consts::PI * phase_num as f32 / nzc as f32)
        })
        .collect()
}

/// DMRS base sequence of length `len` (= allocated subcarriers): the
/// largest-prime ZC sequence cyclically extended, per 36.211 §5.5.1.1.
///
/// # Panics
/// Panics if `len < 3`.
pub fn dmrs_sequence(root: usize, len: usize) -> Vec<Cf32> {
    assert!(len >= 3, "DMRS length must be at least 3 subcarriers");
    let nzc = largest_prime_leq(len).expect("a prime below any len ≥ 3 exists");
    let u = 1 + (root % (nzc - 1));
    let base = zadoff_chu(u, nzc);
    (0..len).map(|n| base[n % nzc]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_basics() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(599));
        assert!(!is_prime(600));
        assert!(!is_prime(1));
        assert_eq!(largest_prime_leq(600), Some(599));
        assert_eq!(largest_prime_leq(72), Some(71));
        assert_eq!(largest_prime_leq(1), None);
    }

    #[test]
    fn zc_is_constant_amplitude() {
        let z = zadoff_chu(25, 599);
        for v in &z {
            assert!((v.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn zc_has_zero_autocorrelation() {
        // CAZAC property: cyclic autocorrelation is an impulse.
        let z = zadoff_chu(7, 139);
        let n = z.len();
        for shift in 1..10 {
            let mut acc = Cf32::ZERO;
            for i in 0..n {
                acc += z[i] * z[(i + shift) % n].conj();
            }
            assert!(
                acc.abs() < 1e-3 * n as f32,
                "autocorrelation at shift {shift}: {}",
                acc.abs()
            );
        }
    }

    #[test]
    fn different_roots_have_low_cross_correlation() {
        let nzc = 139;
        let a = zadoff_chu(3, nzc);
        let b = zadoff_chu(5, nzc);
        let mut acc = Cf32::ZERO;
        for i in 0..nzc {
            acc += a[i] * b[i].conj();
        }
        // Cross-correlation magnitude of distinct-root ZC is √Nzc.
        assert!(acc.abs() < 1.5 * (nzc as f32).sqrt());
    }

    #[test]
    fn dmrs_fills_allocation() {
        let d = dmrs_sequence(0, 600);
        assert_eq!(d.len(), 600);
        // Cyclic extension repeats the head.
        assert_eq!(d[599], d[0]);
        for v in &d {
            assert!((v.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn dmrs_roots_differ() {
        let a = dmrs_sequence(0, 300);
        let b = dmrs_sequence(1, 300);
        assert_ne!(a[1], b[1]);
    }

    #[test]
    #[should_panic(expected = "odd prime")]
    fn non_prime_length_panics() {
        zadoff_chu(1, 600);
    }
}
