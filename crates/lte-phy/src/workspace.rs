//! Reusable per-thread workspace for the uplink decode hot path.
//!
//! A [`PhyWorkspace`] owns every buffer a full subframe decode needs —
//! per-antenna grids, FFT scratch, MRC/demapper staging, de-rate-matched
//! streams, the turbo trellis, and transport-block reassembly. All buffers
//! follow a grow-only discipline (`clear()` + `resize()`/`extend` against
//! retained capacity), so after one warm-up subframe a steady-state
//! [`crate::uplink::UplinkRx::decode_subframe_with`] call performs **zero
//! heap allocations** — even when consecutive subframes use different
//! configurations, as long as none exceeds the largest already seen.
//!
//! [`with_thread_workspace`] provides a thread-local instance, which is how
//! runtime worker threads (and the serial
//! [`crate::uplink::UplinkRx::decode_subframe`] wrapper) get reuse without
//! threading a workspace through every call site.

use crate::complex::Cf32;
use crate::equalizer::ChannelEstimate;
use crate::resource_grid::Grid;
use crate::turbo::TurboWorkspace;
use crate::uplink::UplinkConfig;
use std::cell::RefCell;

/// All scratch state for decoding subframes, reusable across calls.
#[derive(Clone, Debug)]
pub struct PhyWorkspace {
    /// Per-antenna demodulated grids.
    pub(crate) grids: Vec<Grid>,
    /// Channel estimate (per-antenna gain vectors reused).
    pub(crate) est: ChannelEstimate,
    /// Full coded-LLR stream for the subframe (`G` entries).
    pub(crate) llrs: Vec<f32>,
    /// CP-stripped time-domain samples of one OFDM symbol.
    pub(crate) time: Vec<Cf32>,
    /// FFT/IDFT ping-pong scratch.
    pub(crate) fft_scratch: Vec<Cf32>,
    /// MRC-combined subcarriers of one data symbol.
    pub(crate) combined: Vec<Cf32>,
    /// Per-subcarrier post-combining noise variance.
    pub(crate) post_var: Vec<f32>,
    /// Flat noise-variance vector handed to the demapper.
    pub(crate) nv: Vec<f32>,
    /// LLRs of one data symbol (`M × Qm`).
    pub(crate) sym_llrs: Vec<f32>,
    /// Descrambled slice of the coded stream for one code block.
    pub(crate) block_llrs: Vec<f32>,
    /// De-rate-matched stream `d0` (systematic).
    pub(crate) d0: Vec<f32>,
    /// De-rate-matched stream `d1` (parity 1).
    pub(crate) d1: Vec<f32>,
    /// De-rate-matched stream `d2` (parity 2).
    pub(crate) d2: Vec<f32>,
    /// Turbo-decoder trellis and exchange buffers.
    pub(crate) turbo: TurboWorkspace,
    /// Hard-decision bits per code block (inner vectors reused).
    pub(crate) block_bits: Vec<Vec<u8>>,
    /// Per-block CRC outcomes.
    pub(crate) block_crc_ok: Vec<bool>,
    /// Per-block turbo iteration counts.
    pub(crate) block_iters: Vec<usize>,
    /// Reassembled transport-block bits (incl. CRC24A).
    pub(crate) tb: Vec<u8>,
    /// Per-block CRC results from desegmentation (unused duplicate).
    pub(crate) tb_oks: Vec<bool>,
    /// Recovered payload bytes.
    pub(crate) payload: Vec<u8>,
}

impl Default for PhyWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl PhyWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        PhyWorkspace {
            grids: Vec::new(),
            est: ChannelEstimate {
                h: Vec::new(),
                noise_var: 0.0,
            },
            llrs: Vec::new(),
            time: Vec::new(),
            fft_scratch: Vec::new(),
            combined: Vec::new(),
            post_var: Vec::new(),
            nv: Vec::new(),
            sym_llrs: Vec::new(),
            block_llrs: Vec::new(),
            d0: Vec::new(),
            d1: Vec::new(),
            d2: Vec::new(),
            turbo: TurboWorkspace::new(),
            block_bits: Vec::new(),
            block_crc_ok: Vec::new(),
            block_iters: Vec::new(),
            tb: Vec::new(),
            tb_oks: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Ensures the grid arena matches the configuration (rebuilt only on a
    /// bandwidth or antenna-count change). Called at the start of every
    /// workspace-based decode.
    pub(crate) fn prepare(&mut self, cfg: &UplinkConfig) {
        let rebuild = self.grids.len() != cfg.num_antennas
            || self
                .grids
                .first()
                .is_some_and(|g| g.bandwidth() != cfg.bandwidth);
        if rebuild {
            self.grids = vec![Grid::new(cfg.bandwidth); cfg.num_antennas];
        }
        // Grow-only: never shrink the per-block vectors, only add slots.
        while self.block_bits.len() < cfg.segmentation().num_blocks {
            self.block_bits.push(Vec::new());
        }
    }

    /// Pre-grows every buffer to the steady-state size of `cfg`, so the
    /// next [`crate::uplink::UplinkRx::decode_subframe_with`] call with this
    /// configuration (or any smaller one) performs no heap allocation.
    pub fn warm(&mut self, cfg: &UplinkConfig) {
        self.prepare(cfg);
        let n = cfg.bandwidth.fft_size();
        let m = cfg.alloc_subcarriers();
        let qm = cfg.mcs.modulation_order();
        let seg = cfg.segmentation();
        let c = seg.num_blocks;
        reserve_to(&mut self.llrs, cfg.coded_bits());
        reserve_to(&mut self.time, n);
        reserve_to(&mut self.fft_scratch, n);
        reserve_to(&mut self.combined, m);
        reserve_to(&mut self.post_var, m);
        reserve_to(&mut self.nv, m);
        reserve_to(&mut self.sym_llrs, m * qm);
        let max_e = cfg.e_splits().iter().copied().max().unwrap_or(0);
        reserve_to(&mut self.block_llrs, max_e);
        let max_k = seg.k_plus;
        for v in [&mut self.d0, &mut self.d1, &mut self.d2] {
            reserve_to(v, max_k + 4);
        }
        self.turbo.warm(max_k);
        for (r, bits) in self.block_bits.iter_mut().enumerate().take(c) {
            reserve_to(bits, seg.block_size(r));
        }
        reserve_to(&mut self.block_crc_ok, c);
        reserve_to(&mut self.block_iters, c);
        reserve_to(&mut self.tb, seg.input_bits);
        reserve_to(&mut self.tb_oks, c);
        reserve_to(&mut self.payload, cfg.transport_block_bytes());
        // The channel estimator grows est.h itself; pre-grow it here too.
        while self.est.h.len() < cfg.num_antennas {
            self.est.h.push(Vec::new());
        }
        for ha in self.est.h.iter_mut().take(cfg.num_antennas) {
            reserve_to(ha, m);
        }
    }
}

fn reserve_to<T>(v: &mut Vec<T>, n: usize) {
    v.reserve(n.saturating_sub(v.len()));
}

thread_local! {
    static WORKSPACE: RefCell<PhyWorkspace> = RefCell::new(PhyWorkspace::new());
}

/// Runs `f` with this thread's persistent [`PhyWorkspace`].
///
/// The workspace lives for the thread's lifetime, so buffers warmed by one
/// subframe are reused by every later subframe decoded on the same thread —
/// this is what makes the plain [`crate::uplink::UplinkRx::decode_subframe`]
/// and the migratable `run_*_subtask_on` entry points allocation-light
/// without any API change.
///
/// # Panics
/// Panics if called re-entrantly from within `f` (the workspace is a
/// single exclusive borrow).
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut PhyWorkspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Bandwidth;

    #[test]
    fn prepare_rebuilds_grids_only_on_config_change() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 5).unwrap();
        let mut ws = PhyWorkspace::new();
        ws.prepare(&cfg);
        assert_eq!(ws.grids.len(), 2);
        let ptr = ws.grids.as_ptr();
        ws.prepare(&cfg);
        assert_eq!(ws.grids.as_ptr(), ptr, "same config must not rebuild");
        let cfg4 = UplinkConfig::new(Bandwidth::Mhz1_4, 4, 5).unwrap();
        ws.prepare(&cfg4);
        assert_eq!(ws.grids.len(), 4);
    }

    #[test]
    fn warm_reserves_for_the_config() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).unwrap();
        let mut ws = PhyWorkspace::new();
        ws.warm(&cfg);
        assert!(ws.llrs.capacity() >= cfg.coded_bits());
        assert!(ws.fft_scratch.capacity() >= cfg.bandwidth.fft_size());
        assert_eq!(ws.block_bits.len(), cfg.segmentation().num_blocks);
    }

    #[test]
    fn thread_workspace_is_reused() {
        let first = with_thread_workspace(|ws| {
            ws.llrs.reserve(1024);
            ws.llrs.as_ptr() as usize
        });
        let second = with_thread_workspace(|ws| ws.llrs.as_ptr() as usize);
        assert_eq!(first, second);
    }
}
