//! QAM mapping and max-log soft demapping (3GPP TS 36.211 §7.1).
//!
//! Square Gray-mapped constellations — QPSK, 16-QAM, 64-QAM — with the
//! standard LTE bit-to-level formulas. The demapper produces max-log LLRs
//! (`L = ln P(0)/P(1)`) exploiting the I/Q separability of square QAM: each
//! axis is an independent PAM constellation, so demapping is `O(levels)`
//! per axis instead of `O(points)` per symbol.

use crate::complex::Cf32;
use crate::simd::{self, SimdTier};

/// Supported modulation schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// QPSK, 2 bits/symbol.
    Qpsk,
    /// 16-QAM, 4 bits/symbol.
    Qam16,
    /// 64-QAM, 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Maps a modulation order `Qm ∈ {2, 4, 6}` to the scheme.
    pub const fn from_order(qm: usize) -> Option<Self> {
        match qm {
            2 => Some(Modulation::Qpsk),
            4 => Some(Modulation::Qam16),
            6 => Some(Modulation::Qam64),
            _ => None,
        }
    }

    /// Bits per symbol (`Qm`).
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Bits per axis (half of `Qm`).
    const fn bits_per_axis(self) -> usize {
        self.bits_per_symbol() / 2
    }

    /// Normalization factor so average symbol energy is 1.
    fn norm(self) -> f32 {
        match self {
            Modulation::Qpsk => 1.0 / 2f32.sqrt(),
            Modulation::Qam16 => 1.0 / 10f32.sqrt(),
            Modulation::Qam64 => 1.0 / 42f32.sqrt(),
        }
    }

    /// PAM level (unnormalized, odd integer) for the axis bits, MSB first.
    ///
    /// LTE formulas (36.211 Table 7.1.x):
    /// * QPSK:  `(1−2b)`
    /// * 16-QAM: `(1−2b₀)·(2−(1−2b₁))` → ±1, ±3
    /// * 64-QAM: `(1−2b₀)·(4−(1−2b₁)·(2−(1−2b₂)))` → ±1…±7
    fn axis_level(self, bits: &[u8]) -> f32 {
        let s = |b: u8| 1.0 - 2.0 * b as f32;
        match self {
            Modulation::Qpsk => s(bits[0]),
            Modulation::Qam16 => s(bits[0]) * (2.0 - s(bits[1])),
            Modulation::Qam64 => s(bits[0]) * (4.0 - s(bits[1]) * (2.0 - s(bits[2]))),
        }
    }

    /// All (level, axis-bit-pattern) pairs of the per-axis PAM
    /// constellation, as a fixed-size array plus its used length — the
    /// demapper runs per data symbol and must not allocate.
    fn axis_table(self) -> ([(f32, [u8; 3]); 8], usize) {
        let nb = self.bits_per_axis();
        let mut table = [(0.0f32, [0u8; 3]); 8];
        for (v, entry) in table.iter_mut().enumerate().take(1 << nb) {
            let mut bits = [0u8; 3];
            for i in 0..nb {
                bits[i] = ((v >> (nb - 1 - i)) & 1) as u8;
            }
            *entry = (self.axis_level(&bits[..nb]) * self.norm(), bits);
        }
        (table, 1 << nb)
    }

    /// Maps a bit slice to constellation symbols.
    ///
    /// LTE interleaves axis bits: even-indexed bits of each symbol drive the
    /// I axis, odd-indexed the Q axis (b0,b2,… → I; b1,b3,… → Q).
    ///
    /// # Panics
    /// Panics if `bits.len()` is not a multiple of `Qm`.
    pub fn map(self, bits: &[u8]) -> Vec<Cf32> {
        let qm = self.bits_per_symbol();
        assert_eq!(bits.len() % qm, 0, "bit count must be a multiple of Qm");
        let nb = self.bits_per_axis();
        bits.chunks_exact(qm)
            .map(|chunk| {
                let mut ib = [0u8; 3];
                let mut qb = [0u8; 3];
                for i in 0..nb {
                    ib[i] = chunk[2 * i];
                    qb[i] = chunk[2 * i + 1];
                }
                Cf32::new(
                    self.axis_level(&ib[..nb]) * self.norm(),
                    self.axis_level(&qb[..nb]) * self.norm(),
                )
            })
            // analyze: allow(alloc): TX-side mapper; the RX hot path is demap_maxlog_into
            .collect()
    }

    /// Max-log soft demapping of equalized symbols into LLRs
    /// (`ln P(0)/P(1)` convention), appended to `out`.
    ///
    /// `noise_var[i]` is the post-equalization noise variance of symbol `i`
    /// (complex, total across both axes).
    ///
    /// Blocked lane-form kernel with a runtime-dispatched AVX2 tier: four
    /// symbols (eight PAM axis values) are demapped at a time against the
    /// hoisted per-axis level array, emitting eight LLRs per bit position.
    /// All tiers are bit-exact with each other and with the historical
    /// per-symbol scalar loop (same squared distances, same `min` chains
    /// in the same level order, same `(d1 − d0)·inv` scaling).
    ///
    /// # Panics
    /// Panics if `noise_var.len() != symbols.len()`.
    pub fn demap_maxlog(self, symbols: &[Cf32], noise_var: &[f32], out: &mut Vec<f32>) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(symbols.len(), noise_var.len(), "per-symbol noise required");
        let start = out.len();
        out.resize(start + symbols.len() * self.bits_per_symbol(), 0.0);
        let dst = &mut out[start..];
        // Hoist the axis table into a padded level array: entry `v` carries
        // axis-bit pattern `v` (MSB first); unused slots are +∞ so their
        // distances never win a `min`.
        let (table, used) = self.axis_table();
        let mut levels = [f32::INFINITY; 8];
        for (slot, entry) in levels.iter_mut().zip(&table[..used]) {
            *slot = entry.0;
        }
        let tier = simd::active_tier();
        match self {
            Modulation::Qpsk => demap_blocks::<1>(&levels, symbols, noise_var, dst, tier),
            Modulation::Qam16 => demap_blocks::<2>(&levels, symbols, noise_var, dst, tier),
            Modulation::Qam64 => demap_blocks::<3>(&levels, symbols, noise_var, dst, tier),
        }
    }
}

/// Blocked demapper driver for `NB` bits per axis: packs four symbols into
/// an 8-lane axis-value block (`[I₀ Q₀ I₁ Q₁ …]`), runs the per-block
/// kernel for the active tier, and scatters LLRs into the LTE bit order
/// (I-axis bit `t` → symbol bit `2t`, Q-axis → `2t + 1`).
fn demap_blocks<const NB: usize>(
    levels: &[f32; 8],
    symbols: &[Cf32],
    noise_var: &[f32],
    dst: &mut [f32],
    tier: SimdTier,
) {
    let qm = 2 * NB;
    let mut s0 = 0;
    // AVX-512 wide blocks: eight symbols (16 axis values) per iteration.
    // Identical per-lane distance/min chains as the 8-lane forms, so the
    // wide tier stays bit-exact; the tail (< 8 symbols) falls through to
    // the blocked loop below.
    #[cfg(target_arch = "x86_64")]
    if NB >= 2 && tier >= SimdTier::Avx512 {
        while symbols.len() - s0 >= 8 {
            let mut vals = [0.0f32; 16];
            let mut invs = [0.0f32; 16];
            for j in 0..8 {
                let y = symbols[s0 + j];
                vals[2 * j] = y.re;
                vals[2 * j + 1] = y.im;
                let inv = 1.0 / (noise_var[s0 + j].max(1e-12) * 0.5);
                invs[2 * j] = inv;
                invs[2 * j + 1] = inv;
            }
            let mut llrs = [[0.0f32; 16]; NB];
            // SAFETY: the Avx512 tier is only reported after runtime
            // detection succeeded (see crate::simd).
            #[allow(unsafe_code)]
            unsafe {
                avx512::demap_block16::<NB>(levels, &vals, &invs, &mut llrs)
            };
            for j in 0..8 {
                let base = (s0 + j) * qm;
                for (t, row) in llrs.iter().enumerate() {
                    dst[base + 2 * t] = row[2 * j];
                    dst[base + 2 * t + 1] = row[2 * j + 1];
                }
            }
            s0 += 8;
        }
    }
    while s0 < symbols.len() {
        let nsym = (symbols.len() - s0).min(4);
        let mut vals = [0.0f32; 8];
        let mut invs = [0.0f32; 8];
        for j in 0..nsym {
            let y = symbols[s0 + j];
            vals[2 * j] = y.re;
            vals[2 * j + 1] = y.im;
            // Per-axis noise variance is half the complex variance.
            let inv = 1.0 / (noise_var[s0 + j].max(1e-12) * 0.5);
            invs[2 * j] = inv;
            invs[2 * j + 1] = inv;
        }
        let mut llrs = [[0.0f32; 8]; NB];
        // QPSK (NB = 1) has only 2 live levels in the padded 8-level table,
        // and its lane form autovectorizes tightly; the intrinsic tier only
        // wins from 16-QAM up (measured in the `demap_simd` bench group).
        #[cfg(target_arch = "x86_64")]
        let done = if NB >= 2 && tier >= SimdTier::Avx2 {
            // SAFETY: the Avx2 tier is only reported after runtime
            // detection succeeded (see crate::simd).
            #[allow(unsafe_code)]
            unsafe {
                avx2::demap_block::<NB>(levels, &vals, &invs, &mut llrs)
            };
            true
        } else {
            false
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = tier;
            false
        };
        if !done {
            demap_block_lanes::<NB>(levels, &vals, &invs, &mut llrs);
        }
        for j in 0..nsym {
            let base = (s0 + j) * qm;
            for (t, row) in llrs.iter().enumerate() {
                dst[base + 2 * t] = row[2 * j];
                dst[base + 2 * t + 1] = row[2 * j + 1];
            }
        }
        s0 += nsym;
    }
}

/// Portable lane-form demap kernel: for each of the `2^NB` PAM levels,
/// compute eight squared distances at once and fold them into the per-bit
/// `d0`/`d1` minima selected by that level's bit pattern (a compile-time
/// property, so the inner loops are branchless).
fn demap_block_lanes<const NB: usize>(
    levels: &[f32; 8],
    vals: &[f32; 8],
    invs: &[f32; 8],
    llrs: &mut [[f32; 8]; NB],
) {
    let mut d0 = [[f32::MAX; 8]; NB];
    let mut d1 = [[f32::MAX; 8]; NB];
    for v in 0..(1usize << NB) {
        let lv = levels[v];
        let mut d = [0.0f32; 8];
        for j in 0..8 {
            let e = vals[j] - lv;
            d[j] = e * e;
        }
        for t in 0..NB {
            let sel = if (v >> (NB - 1 - t)) & 1 == 0 {
                &mut d0[t]
            } else {
                &mut d1[t]
            };
            for j in 0..8 {
                sel[j] = sel[j].min(d[j]);
            }
        }
    }
    for t in 0..NB {
        for j in 0..8 {
            llrs[t][j] = (d1[t][j] - d0[t][j]) * invs[j];
        }
    }
}

/// Explicit AVX2 tier of the block demap kernel — the same level loop and
/// `min` chains as [`demap_block_lanes`], eight lanes per instruction.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn demap_block<const NB: usize>(
        levels: &[f32; 8],
        vals: &[f32; 8],
        invs: &[f32; 8],
        llrs: &mut [[f32; 8]; NB],
    ) {
        // SAFETY: all loads/stores cover exactly 8 contiguous f32s.
        unsafe {
            let v = _mm256_loadu_ps(vals.as_ptr());
            let inv = _mm256_loadu_ps(invs.as_ptr());
            let mut d0 = [_mm256_set1_ps(f32::MAX); NB];
            let mut d1 = [_mm256_set1_ps(f32::MAX); NB];
            for lvl in 0..(1usize << NB) {
                let e = _mm256_sub_ps(v, _mm256_set1_ps(levels[lvl]));
                let d = _mm256_mul_ps(e, e);
                for t in 0..NB {
                    if (lvl >> (NB - 1 - t)) & 1 == 0 {
                        d0[t] = _mm256_min_ps(d0[t], d);
                    } else {
                        d1[t] = _mm256_min_ps(d1[t], d);
                    }
                }
            }
            for t in 0..NB {
                let llr = _mm256_mul_ps(_mm256_sub_ps(d1[t], d0[t]), inv);
                _mm256_storeu_ps(llrs[t].as_mut_ptr(), llr);
            }
        }
    }
}

/// Explicit AVX-512 tier: eight symbols' axis values per register. Same
/// level loop and per-lane `min` chains as the 8-lane forms.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// # Safety
    /// The CPU must support AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn demap_block16<const NB: usize>(
        levels: &[f32; 8],
        vals: &[f32; 16],
        invs: &[f32; 16],
        llrs: &mut [[f32; 16]; NB],
    ) {
        // SAFETY: all loads/stores cover exactly 16 contiguous f32s.
        unsafe {
            let v = _mm512_loadu_ps(vals.as_ptr());
            let inv = _mm512_loadu_ps(invs.as_ptr());
            let mut d0 = [_mm512_set1_ps(f32::MAX); NB];
            let mut d1 = [_mm512_set1_ps(f32::MAX); NB];
            for lvl in 0..(1usize << NB) {
                let e = _mm512_sub_ps(v, _mm512_set1_ps(levels[lvl]));
                let d = _mm512_mul_ps(e, e);
                for t in 0..NB {
                    if (lvl >> (NB - 1 - t)) & 1 == 0 {
                        d0[t] = _mm512_min_ps(d0[t], d);
                    } else {
                        d1[t] = _mm512_min_ps(d1[t], d);
                    }
                }
            }
            for t in 0..NB {
                let llr = _mm512_mul_ps(_mm512_sub_ps(d1[t], d0[t]), inv);
                _mm512_storeu_ps(llrs[t].as_mut_ptr(), llr);
            }
        }
    }
}

/// One soft-demap request inside a [`demap_batch`] call.
pub struct DemapJob<'a> {
    /// Constellation of this job's symbols.
    pub modulation: Modulation,
    /// Equalized symbols to demap.
    pub symbols: &'a [Cf32],
    /// Per-symbol post-equalization noise variance.
    pub noise_var: &'a [f32],
    /// LLR destination (appended, like [`Modulation::demap_maxlog`]).
    pub out: &'a mut Vec<f32>,
}

/// Batched soft demapping: runs every job under one tier resolution so a
/// worker draining same-stage tasks from several cells amortizes dispatch.
/// Output is bit-for-bit identical to per-job [`Modulation::demap_maxlog`]
/// calls (each symbol's lane math is independent of its blockmates).
pub fn demap_batch(jobs: &mut [DemapJob<'_>]) {
    for job in jobs {
        job.modulation
            .demap_maxlog(job.symbols, job.noise_var, job.out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hard(llrs: &[f32]) -> Vec<u8> {
        llrs.iter().map(|&l| (l < 0.0) as u8).collect()
    }

    fn roundtrip(m: Modulation, bits: &[u8]) -> Vec<u8> {
        let syms = m.map(bits);
        let nv = vec![0.01f32; syms.len()];
        let mut llrs = Vec::new();
        m.demap_maxlog(&syms, &nv, &mut llrs);
        hard(&llrs)
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 7 + i / 3) % 2) as u8).collect()
    }

    #[test]
    fn qpsk_constellation_points() {
        let s = Modulation::Qpsk.map(&[0, 0, 0, 1, 1, 0, 1, 1]);
        let a = 1.0 / 2f32.sqrt();
        assert!((s[0].re - a).abs() < 1e-6 && (s[0].im - a).abs() < 1e-6);
        assert!((s[1].re - a).abs() < 1e-6 && (s[1].im + a).abs() < 1e-6);
        assert!((s[2].re + a).abs() < 1e-6 && (s[2].im - a).abs() < 1e-6);
        assert!((s[3].re + a).abs() < 1e-6 && (s[3].im + a).abs() < 1e-6);
    }

    #[test]
    fn unit_average_energy() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let qm = m.bits_per_symbol();
            // All bit patterns of one symbol, uniformly.
            let mut energy = 0.0f32;
            let count = 1usize << qm;
            for v in 0..count {
                let bits: Vec<u8> = (0..qm).map(|i| ((v >> i) & 1) as u8).collect();
                let s = m.map(&bits);
                energy += s[0].norm_sq();
            }
            let avg = energy / count as f32;
            assert!((avg - 1.0).abs() < 1e-4, "{m:?}: {avg}");
        }
    }

    #[test]
    fn qam64_levels_are_odd_integers() {
        let m = Modulation::Qam64;
        let (table, used) = m.axis_table();
        let mut levels: Vec<i32> = table[..used]
            .iter()
            .map(|(l, _)| (l / m.norm()).round() as i32)
            .collect();
        levels.sort_unstable();
        assert_eq!(levels, vec![-7, -5, -3, -1, 1, 3, 5, 7]);
    }

    #[test]
    fn clean_roundtrip_all_modulations() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let bits = pattern(m.bits_per_symbol() * 50);
            assert_eq!(roundtrip(m, &bits), bits, "{m:?}");
        }
    }

    #[test]
    fn llr_magnitude_scales_with_noise() {
        let m = Modulation::Qam16;
        let bits = pattern(4 * 10);
        let syms = m.map(&bits);
        let mut llr_low = Vec::new();
        let mut llr_high = Vec::new();
        m.demap_maxlog(&syms, &vec![0.01; syms.len()], &mut llr_low);
        m.demap_maxlog(&syms, &vec![1.0; syms.len()], &mut llr_high);
        for (a, b) in llr_low.iter().zip(&llr_high) {
            assert!(a.abs() > b.abs(), "confidence must drop with noise");
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn from_order_mapping() {
        assert_eq!(Modulation::from_order(2), Some(Modulation::Qpsk));
        assert_eq!(Modulation::from_order(4), Some(Modulation::Qam16));
        assert_eq!(Modulation::from_order(6), Some(Modulation::Qam64));
        assert_eq!(Modulation::from_order(3), None);
    }

    #[test]
    fn gray_mapping_near_decision_boundary() {
        // A symbol right at a decision boundary should give a near-zero LLR
        // for the boundary bit and confident LLRs for the others.
        let m = Modulation::Qam16;
        let norm = 1.0 / 10f32.sqrt();
        // Between levels 1 and 3 on the I axis (boundary at 2·norm).
        let y = [Cf32::new(2.0 * norm, 3.0 * norm)];
        let mut llrs = Vec::new();
        m.demap_maxlog(&y, &[0.1], &mut llrs);
        // Bit 2 (I-axis inner/outer bit) is ambiguous.
        assert!(llrs[2].abs() < 1e-4, "boundary LLR {}", llrs[2]);
        // Bit 0 (I-axis sign bit) is confidently 0 (positive axis).
        assert!(llrs[0] > 1.0);
    }

    /// The pre-vectorization per-symbol scalar demapper, kept verbatim as
    /// the reference the blocked tiers are verified against.
    fn demap_maxlog_reference(
        m: Modulation,
        symbols: &[Cf32],
        noise_var: &[f32],
        out: &mut Vec<f32>,
    ) {
        let (table, used) = m.axis_table();
        let table = &table[..used];
        let nb = m.bits_per_axis();
        let mut axis_llr = [0.0f32; 3];
        for (y, &nv) in symbols.iter().zip(noise_var) {
            let inv = 1.0 / (nv.max(1e-12) * 0.5);
            for (axis, val) in [(0, y.re), (1, y.im)] {
                for (t, slot) in axis_llr.iter_mut().enumerate().take(nb) {
                    let mut d0 = f32::MAX;
                    let mut d1 = f32::MAX;
                    for &(level, bits) in table {
                        let d = (val - level) * (val - level);
                        if bits[t] == 0 {
                            if d < d0 {
                                d0 = d;
                            }
                        } else if d < d1 {
                            d1 = d;
                        }
                    }
                    *slot = (d1 - d0) * inv;
                }
                if axis == 0 {
                    for t in 0..nb {
                        out.push(axis_llr[t]);
                        out.push(0.0);
                    }
                } else {
                    let base = out.len() - 2 * nb;
                    for t in 0..nb {
                        out[base + 2 * t + 1] = axis_llr[t];
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_demap_is_bit_exact_vs_reference() {
        use crate::simd::{force_tier, supported_tiers, test_guard};
        let _g = test_guard();
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            // Non-multiple-of-4/-8 symbol counts cover both wide-block tails.
            for nsym in [1usize, 4, 7, 8, 9, 23, 50] {
                let bits = pattern(m.bits_per_symbol() * nsym);
                let syms: Vec<Cf32> = m
                    .map(&bits)
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        *s + Cf32::new((i as f32 * 0.13).sin() * 0.4, (i as f32 * 0.31).cos() * 0.4)
                    })
                    .collect();
                let nv: Vec<f32> = (0..nsym).map(|i| 0.02 + 0.01 * (i % 5) as f32).collect();
                let mut expect = Vec::new();
                demap_maxlog_reference(m, &syms, &nv, &mut expect);
                for tier in supported_tiers() {
                    force_tier(Some(tier));
                    let mut got = Vec::new();
                    m.demap_maxlog(&syms, &nv, &mut got);
                    assert_eq!(got, expect, "{m:?} nsym={nsym} tier={}", tier.name());
                }
                force_tier(None);
            }
        }
    }

    #[test]
    fn demap_batch_matches_sequential_calls() {
        let mods = [Modulation::Qam64, Modulation::Qpsk, Modulation::Qam16];
        let cases: Vec<(Modulation, Vec<Cf32>, Vec<f32>)> = mods
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let nsym = 11 + 3 * i;
                let bits = pattern(m.bits_per_symbol() * nsym);
                let syms: Vec<Cf32> = m
                    .map(&bits)
                    .iter()
                    .enumerate()
                    .map(|(j, s)| *s + Cf32::new((j as f32 * 0.7).sin() * 0.3, 0.1))
                    .collect();
                let nv: Vec<f32> = (0..nsym).map(|j| 0.05 + 0.02 * (j % 3) as f32).collect();
                (m, syms, nv)
            })
            .collect();
        let mut expect: Vec<Vec<f32>> = Vec::new();
        for (m, syms, nv) in &cases {
            let mut out = Vec::new();
            m.demap_maxlog(syms, nv, &mut out);
            expect.push(out);
        }
        let mut outs: Vec<Vec<f32>> = cases.iter().map(|_| Vec::new()).collect();
        let mut jobs: Vec<DemapJob> = cases
            .iter()
            .zip(outs.iter_mut())
            .map(|((m, syms, nv), out)| DemapJob {
                modulation: *m,
                symbols: syms,
                noise_var: nv,
                out,
            })
            .collect();
        demap_batch(&mut jobs);
        assert_eq!(outs, expect);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_clean_roundtrip(order in prop::sample::select(vec![2usize, 4, 6]),
                                nsym in 1usize..64, seed in 0u64..1000) {
            let m = Modulation::from_order(order).unwrap();
            let bits: Vec<u8> = (0..nsym * order)
                .map(|i| (((i as u64 + seed).wrapping_mul(0x9E3779B9) >> 13) & 1) as u8)
                .collect();
            prop_assert_eq!(roundtrip(m, &bits), bits);
        }
    }
}
