//! LTE turbo codec: rate-1/3 parallel-concatenated convolutional code.
//!
//! Two identical 8-state recursive systematic convolutional (RSC)
//! constituent encoders with transfer function `G(D) = [1, g1(D)/g0(D)]`,
//! `g0 = 1 + D² + D³` (13 octal) and `g1 = 1 + D + D³` (15 octal), joined
//! by a quadratic permutation polynomial (QPP) interleaver, exactly as in
//! 3GPP TS 36.212 §5.1.3.2.
//!
//! Decoding is iterative max-log-MAP with CRC-based early termination —
//! the source of the variable iteration count `L ∈ [1, Lm]` in the paper's
//! processing-time model (Eq. 1).
//!
//! Tail-bit multiplexing into the three output streams uses a documented
//! internal layout (encoder and decoder agree; see `DESIGN.md`), since
//! over-the-air interoperability is not a goal of this reproduction.

pub mod decoder;
pub mod encoder;
pub mod qpp;

pub use decoder::{decode_batch, TurboBatchJob, TurboDecodeResult, TurboDecoder, TurboWorkspace};
pub use encoder::{TurboCodeword, TurboEncoder};
pub use qpp::Qpp;

/// Number of trellis states of each constituent encoder.
pub const NUM_STATES: usize = 8;

/// Tail (termination) steps per constituent encoder.
pub const TAIL_STEPS: usize = 3;

/// Stream length produced for an input of `K` bits: `K + 4`
/// (12 tail bits multiplexed over 3 streams, 4 each).
pub const fn stream_len(k: usize) -> usize {
    k + 4
}

/// The 8-state RSC trellis (g0 = 13, g1 = 15 octal).
///
/// State encoding: `s = a_{t-1}·4 + a_{t-2}·2 + a_{t-3}`, where `a` is the
/// post-feedback register input sequence.
#[derive(Clone, Copy, Debug)]
pub struct Trellis {
    /// `next[s][u]` — successor state on input bit `u`.
    pub next: [[u8; 2]; NUM_STATES],
    /// `parity[s][u]` — parity output bit on input `u` from state `s`.
    pub parity: [[u8; 2]; NUM_STATES],
    /// `term_input[s]` — input bit that drives the feedback to zero
    /// (used for trellis termination).
    pub term_input: [u8; NUM_STATES],
}

impl Trellis {
    /// Builds the LTE constituent-code trellis.
    pub const fn lte() -> Self {
        let mut next = [[0u8; 2]; NUM_STATES];
        let mut parity = [[0u8; 2]; NUM_STATES];
        let mut term_input = [0u8; NUM_STATES];
        let mut s = 0;
        while s < NUM_STATES {
            let s0 = ((s >> 2) & 1) as u8;
            let s1 = ((s >> 1) & 1) as u8;
            let s2 = (s & 1) as u8;
            let mut u = 0;
            while u < 2 {
                let a = (u as u8) ^ s1 ^ s2; // feedback (g0 = 1 + D² + D³)
                let z = a ^ s0 ^ s2; // parity (g1 = 1 + D + D³)
                next[s][u] = (a << 2) | (s0 << 1) | s1;
                parity[s][u] = z;
                u += 1;
            }
            term_input[s] = s1 ^ s2; // makes the feedback a = 0
            s += 1;
        }
        Trellis {
            next,
            parity,
            term_input,
        }
    }
}

/// The shared LTE trellis instance.
pub const TRELLIS: Trellis = Trellis::lte();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trellis_is_a_permutation_per_input() {
        for u in 0..2 {
            let mut seen = [false; NUM_STATES];
            for s in 0..NUM_STATES {
                let n = TRELLIS.next[s][u] as usize;
                assert!(n < NUM_STATES);
                assert!(!seen[n], "input {u}: state {n} reached twice");
                seen[n] = true;
            }
        }
    }

    #[test]
    fn termination_reaches_zero_in_three_steps() {
        for start in 0..NUM_STATES {
            let mut s = start;
            for _ in 0..TAIL_STEPS {
                let u = TRELLIS.term_input[s] as usize;
                s = TRELLIS.next[s][u] as usize;
            }
            assert_eq!(s, 0, "termination failed from state {start}");
        }
    }

    #[test]
    fn zero_state_zero_input_stays_put() {
        assert_eq!(TRELLIS.next[0][0], 0);
        assert_eq!(TRELLIS.parity[0][0], 0);
    }

    #[test]
    fn impulse_response_is_recursive() {
        // A single 1 into the zero state must never return to state 0 under
        // zero input (infinite impulse response of the recursive code); the
        // state instead cycles with the feedback polynomial's period, 7.
        let start = TRELLIS.next[0][1] as usize;
        assert_ne!(start, 0);
        let mut s = start;
        for step in 1..=7 {
            s = TRELLIS.next[s][0] as usize;
            assert_ne!(s, 0, "returned to zero at step {step}");
            if step < 7 {
                assert_ne!(s, start, "period shorter than 7 at step {step}");
            }
        }
        assert_eq!(s, start, "period of 1+D²+D³ must be 7");
    }
}
