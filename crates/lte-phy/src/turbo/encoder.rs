//! Turbo encoder: parallel concatenation of two RSC encoders.

use super::{stream_len, Qpp, TAIL_STEPS, TRELLIS};

/// The three encoded streams for one code block, each of length `K + 4`.
///
/// Stream `d0` is (mostly) systematic, `d1` carries the first encoder's
/// parity, `d2` the second encoder's parity; the 12 termination bits are
/// multiplexed into the last four positions of each stream (layout
/// documented in the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TurboCodeword {
    /// Systematic stream (`K` data bits + 4 tail bits).
    pub d0: Vec<u8>,
    /// Parity stream of encoder 1 (+ tail).
    pub d1: Vec<u8>,
    /// Parity stream of encoder 2 (+ tail).
    pub d2: Vec<u8>,
}

impl TurboCodeword {
    /// The block size `K` this codeword encodes.
    pub fn k(&self) -> usize {
        self.d0.len() - 4
    }
}

/// Encoder for a fixed block size `K` (owns the QPP interleaver).
#[derive(Clone, Debug)]
pub struct TurboEncoder {
    qpp: Qpp,
}

/// Runs one constituent RSC encoder over `input`, returning the parity
/// sequence, then appends the termination: `(sys_tail, par_tail)`.
fn rsc_encode(input: &[u8]) -> (Vec<u8>, [u8; TAIL_STEPS], [u8; TAIL_STEPS]) {
    let mut state = 0usize;
    let mut parity = Vec::with_capacity(input.len());
    for &u in input {
        debug_assert!(u <= 1);
        parity.push(TRELLIS.parity[state][u as usize]);
        state = TRELLIS.next[state][u as usize] as usize;
    }
    let mut sys_tail = [0u8; TAIL_STEPS];
    let mut par_tail = [0u8; TAIL_STEPS];
    for i in 0..TAIL_STEPS {
        let u = TRELLIS.term_input[state];
        sys_tail[i] = u;
        par_tail[i] = TRELLIS.parity[state][u as usize];
        state = TRELLIS.next[state][u as usize] as usize;
    }
    debug_assert_eq!(state, 0, "trellis not terminated");
    (parity, sys_tail, par_tail)
}

impl TurboEncoder {
    /// Creates an encoder for block size `k`.
    pub fn new(k: usize) -> Self {
        TurboEncoder { qpp: Qpp::new(k) }
    }

    /// Creates an encoder reusing an existing interleaver.
    pub fn with_qpp(qpp: Qpp) -> Self {
        TurboEncoder { qpp }
    }

    /// The block size `K`.
    pub fn k(&self) -> usize {
        self.qpp.len()
    }

    /// Access to the interleaver (shared with the decoder).
    pub fn qpp(&self) -> &Qpp {
        &self.qpp
    }

    /// Encodes `K` information bits into a rate-1/3 [`TurboCodeword`].
    ///
    /// # Panics
    /// Panics if `bits.len() != K`.
    pub fn encode(&self, bits: &[u8]) -> TurboCodeword {
        assert_eq!(bits.len(), self.k(), "turbo encoder input length");
        let k = self.k();
        let interleaved = self.qpp.interleave(bits);
        let (p1, xt1, zt1) = rsc_encode(bits);
        let (p2, xt2, zt2) = rsc_encode(&interleaved);

        let n = stream_len(k);
        let mut d0 = Vec::with_capacity(n);
        d0.extend_from_slice(bits);
        let mut d1 = p1;
        d1.reserve(4);
        let mut d2 = p2;
        d2.reserve(4);

        // Tail multiplexing (internal layout, mirrored by the decoder):
        //   d0: xt1[0] xt1[1] xt1[2] xt2[0]
        //   d1: zt1[0] zt1[1] zt1[2] xt2[1]
        //   d2: zt2[0] zt2[1] zt2[2] xt2[2]
        d0.extend_from_slice(&[xt1[0], xt1[1], xt1[2], xt2[0]]);
        d1.extend_from_slice(&[zt1[0], zt1[1], zt1[2], xt2[1]]);
        d2.extend_from_slice(&[zt2[0], zt2[1], zt2[2], xt2[2]]);

        TurboCodeword { d0, d1, d2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .map(|i| {
                (((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33)
                    & 1) as u8
            })
            .collect()
    }

    #[test]
    fn output_streams_have_k_plus_4() {
        let enc = TurboEncoder::new(40);
        let cw = enc.encode(&bits(40, 1));
        assert_eq!(cw.d0.len(), 44);
        assert_eq!(cw.d1.len(), 44);
        assert_eq!(cw.d2.len(), 44);
        assert_eq!(cw.k(), 40);
    }

    #[test]
    fn systematic_part_matches_input() {
        let data = bits(512, 7);
        let enc = TurboEncoder::new(512);
        let cw = enc.encode(&data);
        assert_eq!(&cw.d0[..512], &data[..]);
    }

    #[test]
    fn all_zero_input_gives_all_zero_codeword() {
        // The code is linear and both encoders terminate from state 0.
        let enc = TurboEncoder::new(104);
        let cw = enc.encode(&[0u8; 104]);
        assert!(cw.d0.iter().all(|&b| b == 0));
        assert!(cw.d1.iter().all(|&b| b == 0));
        assert!(cw.d2.iter().all(|&b| b == 0));
    }

    #[test]
    fn encoder_is_deterministic() {
        let data = bits(256, 3);
        let e1 = TurboEncoder::new(256).encode(&data);
        let e2 = TurboEncoder::new(256).encode(&data);
        assert_eq!(e1, e2);
    }

    #[test]
    fn single_bit_flip_changes_many_parity_bits() {
        // Recursive encoders spread a single flip over the whole parity
        // stream — the property that gives turbo codes their distance.
        let mut data = vec![0u8; 512];
        let enc = TurboEncoder::new(512);
        let base = enc.encode(&data);
        data[100] = 1;
        let flipped = enc.encode(&data);
        let diff1: usize = base
            .d1
            .iter()
            .zip(&flipped.d1)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff1 > 50, "only {diff1} parity bits changed");
    }

    #[test]
    fn rsc_terminates_from_any_data() {
        for seed in 0..20 {
            let data = bits(96, seed);
            // rsc_encode asserts final state == 0 in debug builds.
            let (p, _, _) = rsc_encode(&data);
            assert_eq!(p.len(), 96);
        }
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        TurboEncoder::new(64).encode(&[0u8; 63]);
    }
}
