//! Quadratic permutation polynomial (QPP) interleaver.
//!
//! The LTE turbo interleaver permutes a block of `K` bits with
//! `π(i) = (f1·i + f2·i²) mod K`. 3GPP TS 36.212 Table 5.1.3-3 fixes
//! `(f1, f2)` per block size; this reproduction instead **derives** valid
//! coefficients algorithmically (substitution documented in DESIGN.md):
//! by Takeshita's sufficient condition, `π` is a permutation whenever
//! `gcd(f1, K) = 1` and `f2` is divisible by every prime factor of `K`.
//! Each constructed permutation is verified bijective, so the interleaver
//! is correct by construction; only the exact constants differ from the
//! standard (irrelevant without over-the-air interoperability). A few
//! well-known standard pairs are kept as anchors and covered by tests.

/// Known 36.212 coefficient pairs, used when they match the requested size.
const STANDARD_PAIRS: [(usize, u64, u64); 4] =
    [(40, 3, 10), (64, 7, 16), (1024, 31, 64), (6144, 263, 480)];

/// A QPP interleaver for block size `K`.
#[derive(Clone, Debug)]
pub struct Qpp {
    k: usize,
    f1: u64,
    f2: u64,
    perm: Vec<u32>,
    inv: Vec<u32>,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Product of the distinct prime factors of `n`.
fn radical(mut n: u64) -> u64 {
    let mut rad = 1;
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rad *= d;
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        rad *= n;
    }
    rad
}

/// Evaluates `(f1·i + f2·i²) mod k` without overflow for `k ≤ 2^20`.
fn eval(f1: u64, f2: u64, i: u64, k: u64) -> u64 {
    // Reduce aggressively; k ≤ 6144 in LTE, i < k, so products fit in u64.
    (f1 % k * (i % k) + f2 % k * (i % k) % k * (i % k)) % k
}

/// Checks bijectivity of `π(i) = f1·i + f2·i² (mod k)` directly.
fn is_permutation(f1: u64, f2: u64, k: usize) -> bool {
    let mut seen = vec![false; k];
    for i in 0..k as u64 {
        let p = eval(f1, f2, i, k as u64) as usize;
        if seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

impl Qpp {
    /// Builds the interleaver for block size `k` (`k ≥ 2`).
    ///
    /// # Panics
    /// Panics if `k < 2` — LTE's smallest block is 40 bits, so a tiny `k`
    /// indicates a caller bug, not a runtime condition.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "QPP block size must be at least 2");
        let (f1, f2) = Self::coefficients(k);
        let perm: Vec<u32> = (0..k as u64)
            .map(|i| eval(f1, f2, i, k as u64) as u32)
            .collect();
        let mut inv = vec![0u32; k];
        for (i, &p) in perm.iter().enumerate() {
            inv[p as usize] = i as u32;
        }
        Qpp {
            k,
            f1,
            f2,
            perm,
            inv,
        }
    }

    /// Finds valid `(f1, f2)` for block size `k`.
    fn coefficients(k: usize) -> (u64, u64) {
        for &(kk, f1, f2) in &STANDARD_PAIRS {
            if kk == k {
                debug_assert!(is_permutation(f1, f2, k));
                return (f1, f2);
            }
        }
        let rad = radical(k as u64);
        // f1: smallest odd integer ≥ 3 coprime to K.
        let mut f1 = 3u64;
        while gcd(f1, k as u64) != 1 {
            f1 += 2;
        }
        // f2: smallest multiple of the radical that yields a permutation.
        let mut t = 1u64;
        loop {
            let f2 = rad * t;
            if is_permutation(f1, f2, k) {
                return (f1, f2);
            }
            t += 1;
            assert!(
                t < 1_000,
                "no QPP coefficients found for K={k} (should be unreachable)"
            );
        }
    }

    /// Block size `K`.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Always false (`K ≥ 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The coefficients `(f1, f2)` in use.
    pub fn coeffs(&self) -> (u64, u64) {
        (self.f1, self.f2)
    }

    /// `π(i)` — the interleaved position of input index `i`.
    #[inline]
    pub fn map(&self, i: usize) -> usize {
        self.perm[i] as usize
    }

    /// `π⁻¹(j)` — the input index mapped to interleaved position `j`.
    #[inline]
    pub fn unmap(&self, j: usize) -> usize {
        self.inv[j] as usize
    }

    /// Produces `out[i] = input[π(i)]` — the interleaved sequence as the
    /// second constituent encoder reads it (`c'_i = c_{π(i)}`, 36.212).
    ///
    /// # Panics
    /// Panics if `input.len() != K`.
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.interleave_into(input, &mut out);
        out
    }

    /// [`Qpp::interleave`] into a caller-owned vector (cleared and refilled;
    /// no allocation once `out` has capacity `K`).
    ///
    /// # Panics
    /// Panics if `input.len() != K`.
    pub fn interleave_into<T: Copy>(&self, input: &[T], out: &mut Vec<T>) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(input.len(), self.k, "interleave length mismatch");
        out.clear();
        out.extend(self.perm.iter().map(|&p| input[p as usize]));
    }

    /// Inverse of [`Qpp::interleave`]: `out[π(i)] = input[i]`.
    ///
    /// # Panics
    /// Panics if `input.len() != K`.
    pub fn deinterleave<T: Copy + Default>(&self, input: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.deinterleave_into(input, &mut out);
        out
    }

    /// [`Qpp::deinterleave`] into a caller-owned vector (cleared and
    /// refilled; no allocation once `out` has capacity `K`).
    ///
    /// # Panics
    /// Panics if `input.len() != K`.
    pub fn deinterleave_into<T: Copy + Default>(&self, input: &[T], out: &mut Vec<T>) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(input.len(), self.k, "deinterleave length mismatch");
        out.clear();
        out.resize(self.k, T::default());
        for (i, &p) in self.perm.iter().enumerate() {
            out[p as usize] = input[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmentation::{is_valid_k, next_valid_k, MAX_CODE_BLOCK};
    use proptest::prelude::*;

    #[test]
    fn standard_pairs_are_permutations() {
        for &(k, f1, f2) in &STANDARD_PAIRS {
            assert!(is_permutation(f1, f2, k), "K={k}");
        }
    }

    #[test]
    fn all_lte_block_sizes_construct() {
        // Every valid LTE interleaver size must yield a bijective QPP.
        let mut k = 40;
        while k <= MAX_CODE_BLOCK {
            assert!(is_valid_k(k));
            let q = Qpp::new(k);
            assert_eq!(q.len(), k);
            k = match next_valid_k(k + 1) {
                Some(n) => n,
                None => break,
            };
        }
    }

    #[test]
    fn interleave_deinterleave_roundtrip() {
        let q = Qpp::new(512);
        let data: Vec<u16> = (0..512).map(|i| i as u16).collect();
        let il = q.interleave(&data);
        let back = q.deinterleave(&il);
        assert_eq!(back, data);
    }

    #[test]
    fn map_unmap_inverse() {
        let q = Qpp::new(6144);
        for i in (0..6144).step_by(17) {
            assert_eq!(q.unmap(q.map(i)), i);
        }
    }

    #[test]
    fn interleave_moves_data() {
        // Sanity: the permutation is not the identity for realistic sizes.
        let q = Qpp::new(1024);
        let moved = (0..1024).filter(|&i| q.map(i) != i).count();
        assert!(moved > 1000, "only {moved} indices moved");
    }

    #[test]
    fn f2_divisible_by_radical() {
        for k in [40, 104, 512, 1056, 2048, 6144] {
            let q = Qpp::new(k);
            let (f1, f2) = q.coeffs();
            assert_eq!(gcd(f1, k as u64), 1);
            assert_eq!(f2 % radical(k as u64), 0);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        Qpp::new(40).interleave(&[0u8; 39]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_bijective(k in 2usize..2000) {
            let q = Qpp::new(k);
            let mut seen = vec![false; k];
            for i in 0..k {
                let p = q.map(i);
                prop_assert!(!seen[p]);
                seen[p] = true;
            }
        }
    }
}
