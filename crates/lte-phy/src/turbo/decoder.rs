//! Iterative max-log-MAP turbo decoder with CRC-based early termination.
//!
//! Each full iteration runs both constituent max-log-MAP (BCJR) decoders
//! and exchanges extrinsic information through the QPP interleaver. After
//! every iteration the hard decision is offered to an early-stop predicate
//! (the per-code-block CRC24B in the uplink chain); a pass ends decoding.
//!
//! The number of iterations actually executed — `L ∈ [1, Lm]` — is exactly
//! the `L` term of the paper's processing-time model (Eq. 1): good channels
//! stop after one pass, bad channels burn the full budget. This is the
//! physical origin of the execution-time variability RT-OPEX exploits.

use super::{Qpp, NUM_STATES, TAIL_STEPS, TRELLIS};
use crate::simd::{self, SimdTier};

/// LLR convention: `L = ln(P(bit = 0) / P(bit = 1))`.
/// Log-domain "minus infinity" for unreachable states.
const NEG_INF: f32 = -1.0e30;

/// Extrinsic scaling factor — the standard max-log-MAP correction
/// (compensates the max approximation's overconfidence).
const EXTRINSIC_SCALE: f32 = 0.75;

/// Clamp on extrinsic LLRs to keep the iteration numerically stable.
const EXTRINSIC_CLAMP: f32 = 64.0;

/// Result of a turbo decode.
#[derive(Clone, Debug)]
pub struct TurboDecodeResult {
    /// Hard-decision information bits (length `K`).
    pub bits: Vec<u8>,
    /// Number of full iterations executed, `1..=max_iters`.
    pub iterations: usize,
    /// Whether the early-stop predicate accepted the output.
    pub converged: bool,
}

/// Decoder for a fixed block size `K` (owns the interleaver and scratch).
#[derive(Clone, Debug)]
pub struct TurboDecoder {
    qpp: Qpp,
}

/// Reusable scratch for [`TurboDecoder::decode_with`].
///
/// Holds every intermediate buffer a decode needs — the flattened alpha
/// trellis, interleaved systematic copy, extrinsic exchanges, posteriors
/// and hard decisions. Buffers grow to the largest block size seen and are
/// then reused, so steady-state decoding performs no heap allocation even
/// when consecutive code blocks have different sizes.
#[derive(Clone, Debug, Default)]
pub struct TurboWorkspace {
    alpha: Vec<f32>,
    sys2: Vec<f32>,
    le21: Vec<f32>,
    le12: Vec<f32>,
    a2: Vec<f32>,
    le21_il: Vec<f32>,
    l1: Vec<f32>,
    l2: Vec<f32>,
    l2_nat: Vec<f32>,
    /// Hard-decision bits from the most recent decode (length `K`).
    pub bits: Vec<u8>,
}

fn reserve_to<T>(v: &mut Vec<T>, n: usize) {
    v.reserve(n.saturating_sub(v.len()));
}

impl TurboWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows every buffer for block size `k`, so a subsequent decode of
    /// any block size `≤ k` allocates nothing.
    pub fn warm(&mut self, k: usize) {
        // 2× NUM_STATES: the paired-trellis kernel stores both items' rows
        // in the first workspace's alpha buffer.
        reserve_to(&mut self.alpha, (k + 1) * 2 * NUM_STATES);
        for v in [
            &mut self.sys2,
            &mut self.le21,
            &mut self.le12,
            &mut self.a2,
            &mut self.le21_il,
            &mut self.l1,
            &mut self.l2,
            &mut self.l2_nat,
        ] {
            reserve_to(v, k);
        }
        reserve_to(&mut self.bits, k);
    }
}

/// Half branch metric for bit hypothesis `u` given LLR `l`
/// (`L = ln P(0)/P(1)`; hypothesis 0 earns `+l/2`, hypothesis 1 `-l/2`).
#[inline]
fn half_metric(u: u8, l: f32) -> f32 {
    if u == 0 {
        0.5 * l
    } else {
        -0.5 * l
    }
}

/// Per-transition permutation/sign tables derived from [`TRELLIS`] at
/// compile time — the "gather masks" of the lane-form recursions.
///
/// The LTE trellis is a *permutation* per input bit (each state has exactly
/// one predecessor under `u = 0` and one under `u = 1`), so both recursions
/// become 8-lane shuffles:
///
/// * forward: `α'[ns] = max_u( α[prev[u][ns]] + γ_u(prev[u][ns]) )`,
/// * backward: `β'[s] = max_u( γ_u(s) + β[next[u][s]] )`,
///
/// with the branch metric in sign-vector form
/// `γ_u(s) = ±hu + sign[u][s]·hp` (`+hu` for `u = 0`, `−hu` for `u = 1`;
/// the sign is `+1` when the transition's parity bit is 0, else `−1`).
struct LaneTables {
    /// `prev[u][ns]` — the unique state `s` with `next[s][u] == ns`.
    prev: [[usize; NUM_STATES]; 2],
    /// Parity sign of the transition `prev[u][ns] → ns` (gathered order).
    sign_prev: [[f32; NUM_STATES]; 2],
    /// `next[u][s]` — successor state ([`TRELLIS::next`] transposed).
    next: [[usize; NUM_STATES]; 2],
    /// Parity sign of the transition `s → next[u][s]` (source order).
    sign_next: [[f32; NUM_STATES]; 2],
}

const fn build_lane_tables() -> LaneTables {
    let mut prev = [[0usize; NUM_STATES]; 2];
    let mut sign_prev = [[0.0f32; NUM_STATES]; 2];
    let mut next = [[0usize; NUM_STATES]; 2];
    let mut sign_next = [[0.0f32; NUM_STATES]; 2];
    let mut u = 0;
    while u < 2 {
        let mut s = 0;
        while s < NUM_STATES {
            let ns = TRELLIS.next[s][u] as usize;
            let sign = if TRELLIS.parity[s][u] == 0 { 1.0 } else { -1.0 };
            next[u][s] = ns;
            sign_next[u][s] = sign;
            prev[u][ns] = s;
            sign_prev[u][ns] = sign;
            s += 1;
        }
        u += 1;
    }
    LaneTables {
        prev,
        sign_prev,
        next,
        sign_next,
    }
}

/// The lane tables for the LTE trellis (compile-time constant, so the
/// scalar tier's gathers compile to shuffles too).
const LANES: LaneTables = build_lane_tables();

/// Horizontal max over 8 lanes with the fixed pairwise reduction tree the
/// AVX2 tier uses (`max` is order-independent for the finite, non-NaN
/// metrics here; the fixed tree keeps the two tiers literally identical).
#[inline]
fn hmax8(v: [f32; 8]) -> f32 {
    let a = [
        v[0].max(v[4]),
        v[1].max(v[5]),
        v[2].max(v[6]),
        v[3].max(v[7]),
    ];
    let b = [a[0].max(a[2]), a[1].max(a[3])];
    b[0].max(b[1])
}

/// Tail metric propagation: beta from the known zero end state back through
/// the three termination steps, yielding beta at step `K`. Each state has
/// exactly one termination branch per step, so this is scalar and tiny.
fn tail_betas(sys_tail: &[f32; TAIL_STEPS], par_tail: &[f32; TAIL_STEPS]) -> [f32; NUM_STATES] {
    let mut beta_end = [NEG_INF; NUM_STATES];
    beta_end[0] = 0.0;
    for t in (0..TAIL_STEPS).rev() {
        let mut prev = [NEG_INF; NUM_STATES];
        for s in 0..NUM_STATES {
            let u = TRELLIS.term_input[s];
            let p = TRELLIS.parity[s][u as usize];
            let ns = TRELLIS.next[s][u as usize] as usize;
            let g = half_metric(u, sys_tail[t]) + half_metric(p, par_tail[t]);
            prev[s] = g + beta_end[ns];
        }
        beta_end = prev;
    }
    beta_end
}

/// One constituent max-log-MAP pass (runtime-dispatched).
///
/// * `sys`, `par`, `apriori` — length-`K` LLRs,
/// * `sys_tail`, `par_tail` — termination LLRs,
/// * `out` — length-`K` posterior LLRs,
/// * `alpha` — caller-owned forward-metric storage, resized to
///   `(K+1)·NUM_STATES` (flattened row-major; reused across calls).
///
/// Both tiers run the identical lane-form recursion (add, multiply by ±1,
/// `max`), so the AVX2 tier is bit-exact vs the scalar tier — and both
/// match the historical per-state/per-input scalar loop: unreachable-state
/// skips are replaced by unconditional arithmetic on `NEG_INF`, which
/// absorbs any finite branch metric (`−10³⁰ + γ` rounds back to `−10³⁰`
/// for `|γ| ≪ ulp(10³⁰)/2 ≈ 3.7·10²²`), so dead lanes never win a `max`.
// The argument list mirrors the historical scalar signature plus the tier;
// bundling it into a struct would obscure the BCJR call sites.
#[allow(clippy::too_many_arguments)]
fn map_decode(
    sys: &[f32],
    sys_tail: &[f32; TAIL_STEPS],
    par: &[f32],
    par_tail: &[f32; TAIL_STEPS],
    apriori: &[f32],
    out: &mut [f32],
    alpha: &mut Vec<f32>,
    tier: SimdTier,
) {
    #[cfg(target_arch = "x86_64")]
    if tier >= SimdTier::Avx2 {
        // A single 8-state trellis fills exactly one ymm; the Avx512 tier
        // only pays off when two trellises share a zmm (`map_decode_pair`),
        // so single decodes route to the AVX2 form under both wide tiers.
        // SAFETY: the Avx2 tier is only ever reported by `crate::simd`
        // after `is_x86_feature_detected!("avx2")` succeeded.
        #[allow(unsafe_code)]
        unsafe {
            avx2::map_decode(sys, sys_tail, par, par_tail, apriori, out, alpha)
        };
        return;
    }
    let _ = tier;
    map_decode_lanes(sys, sys_tail, par, par_tail, apriori, out, alpha);
}

/// Portable lane-form tier of [`map_decode`]: branchless `[f32; 8]`
/// state-metric rows with compile-time gather indices, which LLVM turns
/// into shuffles on any vector ISA.
fn map_decode_lanes(
    sys: &[f32],
    sys_tail: &[f32; TAIL_STEPS],
    par: &[f32],
    par_tail: &[f32; TAIL_STEPS],
    apriori: &[f32],
    out: &mut [f32],
    alpha: &mut Vec<f32>,
) {
    let k = sys.len();
    debug_assert_eq!(par.len(), k);
    debug_assert_eq!(apriori.len(), k);
    debug_assert_eq!(out.len(), k);

    // Forward (alpha) recursion, storing all steps (flattened rows).
    alpha.clear();
    alpha.resize((k + 1) * NUM_STATES, NEG_INF);
    alpha[0] = 0.0;
    for i in 0..k {
        let hu = 0.5 * (sys[i] + apriori[i]);
        let hp = 0.5 * par[i];
        let (cur, nxt) = alpha[i * NUM_STATES..(i + 2) * NUM_STATES].split_at_mut(NUM_STATES);
        for ns in 0..NUM_STATES {
            let c0 = cur[LANES.prev[0][ns]] + (hu + LANES.sign_prev[0][ns] * hp);
            let c1 = cur[LANES.prev[1][ns]] + (LANES.sign_prev[1][ns] * hp - hu);
            nxt[ns] = c0.max(c1);
        }
    }

    // Backward (beta) recursion over the data part, emitting LLRs on the fly.
    let mut beta = tail_betas(sys_tail, par_tail);
    for i in (0..k).rev() {
        let hu = 0.5 * (sys[i] + apriori[i]);
        let hp = 0.5 * par[i];
        let arow = &alpha[i * NUM_STATES..(i + 1) * NUM_STATES];
        let mut new_beta = [0.0f32; NUM_STATES];
        let mut m0 = [0.0f32; NUM_STATES];
        let mut m1 = [0.0f32; NUM_STATES];
        for s in 0..NUM_STATES {
            let gb0 = (hu + LANES.sign_next[0][s] * hp) + beta[LANES.next[0][s]];
            let gb1 = (LANES.sign_next[1][s] * hp - hu) + beta[LANES.next[1][s]];
            new_beta[s] = gb0.max(gb1);
            m0[s] = arow[s] + gb0;
            m1[s] = arow[s] + gb1;
        }
        out[i] = hmax8(m0) - hmax8(m1);
        beta = new_beta;
    }
}

/// Explicit AVX2 tier: the 8 state metrics live in one `__m256`, the
/// trellis permutations become `vpermps`, and the paired LLR reduction
/// shares shuffles between `best0` and `best1`. Same operations in the
/// same order as [`map_decode_lanes`], hence bit-exact with it.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use super::{tail_betas, LANES, NEG_INF, NUM_STATES, TAIL_STEPS};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    fn idx(p: &[usize; NUM_STATES]) -> __m256i {
        _mm256_setr_epi32(
            p[0] as i32,
            p[1] as i32,
            p[2] as i32,
            p[3] as i32,
            p[4] as i32,
            p[5] as i32,
            p[6] as i32,
            p[7] as i32,
        )
    }

    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn map_decode(
        sys: &[f32],
        sys_tail: &[f32; TAIL_STEPS],
        par: &[f32],
        par_tail: &[f32; TAIL_STEPS],
        apriori: &[f32],
        out: &mut [f32],
        alpha: &mut Vec<f32>,
    ) {
        let k = sys.len();
        debug_assert_eq!(par.len(), k);
        debug_assert_eq!(apriori.len(), k);
        debug_assert_eq!(out.len(), k);

        alpha.clear();
        alpha.resize((k + 1) * NUM_STATES, NEG_INF);
        alpha[0] = 0.0;

        let ip0 = idx(&LANES.prev[0]);
        let ip1 = idx(&LANES.prev[1]);
        // SAFETY: the sign tables are 8 contiguous f32s.
        let (sp0, sp1) = unsafe {
            (
                _mm256_loadu_ps(LANES.sign_prev[0].as_ptr()),
                _mm256_loadu_ps(LANES.sign_prev[1].as_ptr()),
            )
        };
        let ap = alpha.as_mut_ptr();
        for i in 0..k {
            let hu = 0.5 * (sys[i] + apriori[i]);
            let hp = 0.5 * par[i];
            let hu_v = _mm256_set1_ps(hu);
            let hp_v = _mm256_set1_ps(hp);
            let g0 = _mm256_add_ps(hu_v, _mm256_mul_ps(sp0, hp_v));
            let g1 = _mm256_sub_ps(_mm256_mul_ps(sp1, hp_v), hu_v);
            // SAFETY: rows i and i+1 are in bounds of the (k+1)·8 buffer.
            unsafe {
                let cur = _mm256_loadu_ps(ap.add(i * NUM_STATES));
                let a0 = _mm256_permutevar8x32_ps(cur, ip0);
                let a1 = _mm256_permutevar8x32_ps(cur, ip1);
                let nxt = _mm256_max_ps(_mm256_add_ps(a0, g0), _mm256_add_ps(a1, g1));
                _mm256_storeu_ps(ap.add((i + 1) * NUM_STATES), nxt);
            }
        }

        let in0 = idx(&LANES.next[0]);
        let in1 = idx(&LANES.next[1]);
        // SAFETY: 8 contiguous f32s each.
        let (sn0, sn1, mut beta) = unsafe {
            (
                _mm256_loadu_ps(LANES.sign_next[0].as_ptr()),
                _mm256_loadu_ps(LANES.sign_next[1].as_ptr()),
                _mm256_loadu_ps(tail_betas(sys_tail, par_tail).as_ptr()),
            )
        };
        for i in (0..k).rev() {
            let hu = 0.5 * (sys[i] + apriori[i]);
            let hp = 0.5 * par[i];
            let hu_v = _mm256_set1_ps(hu);
            let hp_v = _mm256_set1_ps(hp);
            let gb0 = _mm256_add_ps(
                _mm256_add_ps(hu_v, _mm256_mul_ps(sn0, hp_v)),
                _mm256_permutevar8x32_ps(beta, in0),
            );
            let gb1 = _mm256_add_ps(
                _mm256_sub_ps(_mm256_mul_ps(sn1, hp_v), hu_v),
                _mm256_permutevar8x32_ps(beta, in1),
            );
            // SAFETY: row i is in bounds.
            let arow = unsafe { _mm256_loadu_ps(ap.add(i * NUM_STATES)) };
            let m0 = _mm256_add_ps(arow, gb0);
            let m1 = _mm256_add_ps(arow, gb1);
            beta = _mm256_max_ps(gb0, gb1);
            // Paired horizontal max: after the three shuffle/max rounds,
            // lane 0 holds hmax(m0) and lane 4 holds hmax(m1), with the
            // exact reduction tree of `hmax8`.
            let lo = _mm256_permute2f128_ps(m0, m1, 0x20);
            let hi = _mm256_permute2f128_ps(m0, m1, 0x31);
            let a = _mm256_max_ps(lo, hi);
            let b = _mm256_max_ps(a, _mm256_shuffle_ps(a, a, 0b0100_1110));
            let c = _mm256_max_ps(b, _mm256_shuffle_ps(b, b, 0b1011_0001));
            let best0 = _mm_cvtss_f32(_mm256_castps256_ps128(c));
            let best1 = _mm_cvtss_f32(_mm256_extractf128_ps(c, 1));
            out[i] = best0 - best1;
        }
    }
}

/// Explicit AVX-512 tier: **two same-`K` trellises share one `__m512`** —
/// lanes 0–7 carry item A's 8 state metrics, lanes 8–15 item B's. Every
/// operation applies the identical 8-lane pattern to both halves
/// (`vpermps` becomes a 16-lane `vpermps` whose index vector repeats the
/// 8-lane permutation offset by 8), so each half is bit-exact with the
/// AVX2 single-trellis pass — batching never changes an output bit.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    #![allow(unsafe_code)]

    use super::{tail_betas, LANES, NEG_INF, NUM_STATES, TAIL_STEPS};
    use core::arch::x86_64::*;

    /// Borrowed inputs of one constituent MAP pass (the slice arguments of
    /// [`super::map_decode`], bundled so the paired kernel takes two).
    pub(super) struct MapInput<'a> {
        pub sys: &'a [f32],
        pub sys_tail: &'a [f32; TAIL_STEPS],
        pub par: &'a [f32],
        pub par_tail: &'a [f32; TAIL_STEPS],
        pub apriori: &'a [f32],
    }

    /// 16-lane permutation applying the 8-lane pattern `p` to each half.
    #[target_feature(enable = "avx512f")]
    fn idx16(p: &[usize; NUM_STATES]) -> __m512i {
        _mm512_set_epi32(
            (p[7] + 8) as i32,
            (p[6] + 8) as i32,
            (p[5] + 8) as i32,
            (p[4] + 8) as i32,
            (p[3] + 8) as i32,
            (p[2] + 8) as i32,
            (p[1] + 8) as i32,
            (p[0] + 8) as i32,
            p[7] as i32,
            p[6] as i32,
            p[5] as i32,
            p[4] as i32,
            p[3] as i32,
            p[2] as i32,
            p[1] as i32,
            p[0] as i32,
        )
    }

    /// The 8-entry sign table replicated into both halves.
    #[target_feature(enable = "avx512f")]
    fn sign16(s: &[f32; NUM_STATES]) -> __m512 {
        _mm512_set_ps(
            s[7], s[6], s[5], s[4], s[3], s[2], s[1], s[0], s[7], s[6], s[5], s[4], s[3], s[2],
            s[1], s[0],
        )
    }

    /// `a` broadcast into lanes 0–7, `b` into lanes 8–15.
    #[target_feature(enable = "avx512f")]
    fn splat_halves(a: f32, b: f32) -> __m512 {
        _mm512_set_ps(b, b, b, b, b, b, b, b, a, a, a, a, a, a, a, a)
    }

    /// Horizontal max of each 8-lane half with the exact reduction tree of
    /// [`super::hmax8`]: returns `(hmax(lanes 0–7), hmax(lanes 8–15))`.
    #[target_feature(enable = "avx512f")]
    fn hmax_halves(m: __m512) -> (f32, f32) {
        // Stage 1 of hmax8 pairs lane j with lane j+4: swap the 128-bit
        // quarters within each half and max.
        let a = _mm512_max_ps(m, _mm512_shuffle_f32x4::<0b10_11_00_01>(m, m));
        let b = _mm512_max_ps(a, _mm512_shuffle_ps::<0b0100_1110>(a, a));
        let c = _mm512_max_ps(b, _mm512_shuffle_ps::<0b1011_0001>(b, b));
        (
            _mm512_cvtss_f32(c),
            _mm_cvtss_f32(_mm512_extractf32x4_ps::<2>(c)),
        )
    }

    /// Two same-`K` constituent MAP passes in lockstep, one trellis per
    /// zmm half. `alpha` is the paired forward-metric store, resized to
    /// `(K+1)·16` (row `i` = item A's states in floats 0–7, item B's in
    /// 8–15; reused across calls).
    ///
    /// # Safety
    /// The CPU must support AVX-512F. Both inputs must have the same `K`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn map_decode_pair(
        a: &MapInput<'_>,
        b: &MapInput<'_>,
        out_a: &mut [f32],
        out_b: &mut [f32],
        alpha: &mut Vec<f32>,
    ) {
        const W: usize = 2 * NUM_STATES;
        let k = a.sys.len();
        debug_assert_eq!(b.sys.len(), k);
        debug_assert!(
            a.par.len() == k
                && b.par.len() == k
                && a.apriori.len() == k
                && b.apriori.len() == k
                && out_a.len() == k
                && out_b.len() == k
        );

        alpha.clear();
        alpha.resize((k + 1) * W, NEG_INF);
        alpha[0] = 0.0; // item A, state 0
        alpha[NUM_STATES] = 0.0; // item B, state 0 (lane 8)

        let ip0 = idx16(&LANES.prev[0]);
        let ip1 = idx16(&LANES.prev[1]);
        let sp0 = sign16(&LANES.sign_prev[0]);
        let sp1 = sign16(&LANES.sign_prev[1]);
        let ap = alpha.as_mut_ptr();
        for i in 0..k {
            let hu = splat_halves(
                0.5 * (a.sys[i] + a.apriori[i]),
                0.5 * (b.sys[i] + b.apriori[i]),
            );
            let hp = splat_halves(0.5 * a.par[i], 0.5 * b.par[i]);
            let g0 = _mm512_add_ps(hu, _mm512_mul_ps(sp0, hp));
            let g1 = _mm512_sub_ps(_mm512_mul_ps(sp1, hp), hu);
            // SAFETY: rows i and i+1 are in bounds of the (k+1)·16 buffer.
            unsafe {
                let cur = _mm512_loadu_ps(ap.add(i * W));
                let a0 = _mm512_permutexvar_ps(ip0, cur);
                let a1 = _mm512_permutexvar_ps(ip1, cur);
                let nxt = _mm512_max_ps(_mm512_add_ps(a0, g0), _mm512_add_ps(a1, g1));
                _mm512_storeu_ps(ap.add((i + 1) * W), nxt);
            }
        }

        let in0 = idx16(&LANES.next[0]);
        let in1 = idx16(&LANES.next[1]);
        let sn0 = sign16(&LANES.sign_next[0]);
        let sn1 = sign16(&LANES.sign_next[1]);
        let beta_a = tail_betas(a.sys_tail, a.par_tail);
        let beta_b = tail_betas(b.sys_tail, b.par_tail);
        let mut beta = splat_halves(0.0, 0.0);
        for s in 0..NUM_STATES {
            // Assemble the paired beta row lane by lane (runs once).
            beta = _mm512_mask_mov_ps(
                beta,
                (1u16 << s) | (1u16 << (s + NUM_STATES)),
                splat_halves(beta_a[s], beta_b[s]),
            );
        }
        for i in (0..k).rev() {
            let hu = splat_halves(
                0.5 * (a.sys[i] + a.apriori[i]),
                0.5 * (b.sys[i] + b.apriori[i]),
            );
            let hp = splat_halves(0.5 * a.par[i], 0.5 * b.par[i]);
            let gb0 = _mm512_add_ps(
                _mm512_add_ps(hu, _mm512_mul_ps(sn0, hp)),
                _mm512_permutexvar_ps(in0, beta),
            );
            let gb1 = _mm512_add_ps(
                _mm512_sub_ps(_mm512_mul_ps(sn1, hp), hu),
                _mm512_permutexvar_ps(in1, beta),
            );
            // SAFETY: row i is in bounds.
            let arow = unsafe { _mm512_loadu_ps(ap.add(i * W)) };
            let m0 = _mm512_add_ps(arow, gb0);
            let m1 = _mm512_add_ps(arow, gb1);
            beta = _mm512_max_ps(gb0, gb1);
            let (best0_a, best0_b) = hmax_halves(m0);
            let (best1_a, best1_b) = hmax_halves(m1);
            out_a[i] = best0_a - best1_a;
            out_b[i] = best0_b - best1_b;
        }
    }
}

impl TurboDecoder {
    /// Creates a decoder for block size `k`.
    pub fn new(k: usize) -> Self {
        TurboDecoder { qpp: Qpp::new(k) }
    }

    /// Creates a decoder reusing an existing interleaver.
    pub fn with_qpp(qpp: Qpp) -> Self {
        TurboDecoder { qpp }
    }

    /// The block size `K`.
    pub fn k(&self) -> usize {
        self.qpp.len()
    }

    /// Decodes soft LLRs for the three streams (`d0`, `d1`, `d2`, each of
    /// length `K + 4` as produced by de-rate-matching), running at most
    /// `max_iters` iterations and stopping early as soon as `early_stop`
    /// accepts the hard-decision bits.
    ///
    /// # Panics
    /// Panics if any stream length differs from `K + 4` or `max_iters == 0`.
    pub fn decode(
        &self,
        d0: &[f32],
        d1: &[f32],
        d2: &[f32],
        max_iters: usize,
        early_stop: impl Fn(&[u8]) -> bool,
    ) -> TurboDecodeResult {
        let mut ws = TurboWorkspace::new();
        let (iterations, converged) = self.decode_with(d0, d1, d2, max_iters, early_stop, &mut ws);
        TurboDecodeResult {
            bits: ws.bits,
            iterations,
            converged,
        }
    }

    /// [`TurboDecoder::decode`] with caller-owned scratch: all intermediate
    /// buffers live in `ws` and are reused across calls, so a warmed
    /// workspace makes steady-state decoding allocation-free. Hard-decision
    /// bits are left in `ws.bits`; returns `(iterations, converged)`.
    /// Produces values identical to [`TurboDecoder::decode`].
    ///
    /// # Panics
    /// Panics if any stream length differs from `K + 4` or `max_iters == 0`.
    pub fn decode_with(
        &self,
        d0: &[f32],
        d1: &[f32],
        d2: &[f32],
        max_iters: usize,
        early_stop: impl Fn(&[u8]) -> bool,
        ws: &mut TurboWorkspace,
    ) -> (usize, bool) {
        let k = self.k();
        // analyze: allow(panic): decoder config contract; zero iterations can only come from a miscomputed MCS table
        assert!(max_iters > 0, "max_iters must be positive");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(d0.len(), k + 4, "d0 length");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(d1.len(), k + 4, "d1 length");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(d2.len(), k + 4, "d2 length");

        let sys = &d0[..k];
        let par1 = &d1[..k];
        let par2 = &d2[..k];
        // Tail demultiplexing — mirrors TurboEncoder::encode.
        let xt1 = [d0[k], d0[k + 1], d0[k + 2]];
        let zt1 = [d1[k], d1[k + 1], d1[k + 2]];
        let xt2 = [d0[k + 3], d1[k + 3], d2[k + 3]];
        let zt2 = [d2[k], d2[k + 1], d2[k + 2]];

        let TurboWorkspace {
            alpha,
            sys2,
            le21, // extrinsic DEC2 → DEC1
            le12,
            a2,
            le21_il,
            l1,
            l2,
            l2_nat,
            bits,
        } = ws;

        // Resolve the SIMD tier once per decode, not per constituent pass.
        let tier = simd::active_tier();

        self.qpp.interleave_into(sys, sys2);
        le21.clear();
        le21.resize(k, 0.0);
        l1.clear();
        l1.resize(k, 0.0);
        l2.clear();
        l2.resize(k, 0.0);
        bits.clear();
        bits.resize(k, 0);

        for it in 1..=max_iters {
            // DEC1 on natural order.
            map_decode(sys, &xt1, par1, &zt1, le21, l1, alpha, tier);
            le12.clear();
            le12.extend((0..k).map(|i| clamp_scale(l1[i] - sys[i] - le21[i])));

            // DEC2 on interleaved order.
            self.qpp.interleave_into(le12, a2);
            map_decode(sys2, &xt2, par2, &zt2, a2, l2, alpha, tier);
            le21_il.clear();
            le21_il.extend((0..k).map(|i| clamp_scale(l2[i] - sys2[i] - a2[i])));
            self.qpp.deinterleave_into(le21_il, le21);

            // Hard decision from DEC2's posteriors, in natural order.
            self.qpp.deinterleave_into(l2, l2_nat);
            for (b, &l) in bits.iter_mut().zip(l2_nat.iter()) {
                *b = (l < 0.0) as u8;
            }
            if early_stop(bits) {
                return (it, true);
            }
        }
        (max_iters, false)
    }

    /// Decodes **two same-`K` code blocks in lockstep**, interleaving their
    /// trellises across SIMD lanes on the AVX-512 tier (each zmm half runs
    /// one item's recursion). On narrower tiers the items run back-to-back
    /// per iteration. Either way the outputs — LLR trajectories, hard bits,
    /// iteration counts — are **bit-for-bit identical** to two sequential
    /// [`TurboDecoder::decode_with`] calls: the per-half operations match
    /// the single-trellis tiers exactly, and when one item's early-stop
    /// fires it simply drops out of the pair while the partner continues on
    /// the single path.
    ///
    /// `a`/`b` are each `(d0, d1, d2)` streams of length `K + 4`; hard bits
    /// are left in the respective workspace's `bits`. Returns the two
    /// `(iterations, converged)` results.
    ///
    /// # Panics
    /// Panics if any stream length differs from `K + 4` or `max_iters == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn decode_pair_with(
        &self,
        a: (&[f32], &[f32], &[f32]),
        b: (&[f32], &[f32], &[f32]),
        max_iters: usize,
        early_stop_a: impl Fn(&[u8]) -> bool,
        early_stop_b: impl Fn(&[u8]) -> bool,
        ws_a: &mut TurboWorkspace,
        ws_b: &mut TurboWorkspace,
    ) -> ((usize, bool), (usize, bool)) {
        let k = self.k();
        // analyze: allow(panic): decoder config contract; zero iterations can only come from a miscomputed MCS table
        assert!(max_iters > 0, "max_iters must be positive");
        for d in [a.0, a.1, a.2, b.0, b.1, b.2] {
            // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
            assert_eq!(d.len(), k + 4, "stream length");
        }

        let (sys_a, par1_a, par2_a) = (&a.0[..k], &a.1[..k], &a.2[..k]);
        let (sys_b, par1_b, par2_b) = (&b.0[..k], &b.1[..k], &b.2[..k]);
        let xt1_a = [a.0[k], a.0[k + 1], a.0[k + 2]];
        let zt1_a = [a.1[k], a.1[k + 1], a.1[k + 2]];
        let xt2_a = [a.0[k + 3], a.1[k + 3], a.2[k + 3]];
        let zt2_a = [a.2[k], a.2[k + 1], a.2[k + 2]];
        let xt1_b = [b.0[k], b.0[k + 1], b.0[k + 2]];
        let zt1_b = [b.1[k], b.1[k + 1], b.1[k + 2]];
        let xt2_b = [b.0[k + 3], b.1[k + 3], b.2[k + 3]];
        let zt2_b = [b.2[k], b.2[k + 1], b.2[k + 2]];

        let TurboWorkspace {
            alpha: alpha_a,
            sys2: sys2_a,
            le21: le21_a,
            le12: le12_a,
            a2: a2_a,
            le21_il: le21_il_a,
            l1: l1_a,
            l2: l2_a,
            l2_nat: l2_nat_a,
            bits: bits_a,
        } = ws_a;
        let TurboWorkspace {
            alpha: alpha_b,
            sys2: sys2_b,
            le21: le21_b,
            le12: le12_b,
            a2: a2_b,
            le21_il: le21_il_b,
            l1: l1_b,
            l2: l2_b,
            l2_nat: l2_nat_b,
            bits: bits_b,
        } = ws_b;

        let tier = simd::active_tier();
        self.qpp.interleave_into(sys_a, sys2_a);
        self.qpp.interleave_into(sys_b, sys2_b);
        for v in [&mut *le21_a, &mut *le21_b, l1_a, l1_b, l2_a, l2_b] {
            v.clear();
            v.resize(k, 0.0);
        }
        for bits in [&mut *bits_a, &mut *bits_b] {
            bits.clear();
            bits.resize(k, 0);
        }

        let mut done_a: Option<(usize, bool)> = None;
        let mut done_b: Option<(usize, bool)> = None;
        for it in 1..=max_iters {
            #[cfg(target_arch = "x86_64")]
            let paired = done_a.is_none() && done_b.is_none() && tier >= SimdTier::Avx512;
            #[cfg(not(target_arch = "x86_64"))]
            let paired = false;

            // DEC1 on natural order.
            if paired {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the Avx512 tier is only ever reported by
                // `crate::simd` after avx512f+avx512bw detection succeeded;
                // both items share K by construction.
                #[allow(unsafe_code)]
                unsafe {
                    avx512::map_decode_pair(
                        &avx512::MapInput {
                            sys: sys_a,
                            sys_tail: &xt1_a,
                            par: par1_a,
                            par_tail: &zt1_a,
                            apriori: le21_a,
                        },
                        &avx512::MapInput {
                            sys: sys_b,
                            sys_tail: &xt1_b,
                            par: par1_b,
                            par_tail: &zt1_b,
                            apriori: le21_b,
                        },
                        l1_a,
                        l1_b,
                        alpha_a,
                    )
                };
            } else {
                if done_a.is_none() {
                    map_decode(sys_a, &xt1_a, par1_a, &zt1_a, le21_a, l1_a, alpha_a, tier);
                }
                if done_b.is_none() {
                    map_decode(sys_b, &xt1_b, par1_b, &zt1_b, le21_b, l1_b, alpha_b, tier);
                }
            }
            if done_a.is_none() {
                dec1_glue(&self.qpp, sys_a, le21_a, l1_a, le12_a, a2_a);
            }
            if done_b.is_none() {
                dec1_glue(&self.qpp, sys_b, le21_b, l1_b, le12_b, a2_b);
            }

            // DEC2 on interleaved order.
            if paired {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above.
                #[allow(unsafe_code)]
                unsafe {
                    avx512::map_decode_pair(
                        &avx512::MapInput {
                            sys: sys2_a,
                            sys_tail: &xt2_a,
                            par: par2_a,
                            par_tail: &zt2_a,
                            apriori: a2_a,
                        },
                        &avx512::MapInput {
                            sys: sys2_b,
                            sys_tail: &xt2_b,
                            par: par2_b,
                            par_tail: &zt2_b,
                            apriori: a2_b,
                        },
                        l2_a,
                        l2_b,
                        alpha_a,
                    )
                };
            } else {
                if done_a.is_none() {
                    map_decode(sys2_a, &xt2_a, par2_a, &zt2_a, a2_a, l2_a, alpha_a, tier);
                }
                if done_b.is_none() {
                    map_decode(sys2_b, &xt2_b, par2_b, &zt2_b, a2_b, l2_b, alpha_b, tier);
                }
            }
            if done_a.is_none() {
                dec2_glue(
                    &self.qpp, sys2_a, a2_a, l2_a, le21_il_a, le21_a, l2_nat_a, bits_a,
                );
                if early_stop_a(bits_a) {
                    done_a = Some((it, true));
                }
            }
            if done_b.is_none() {
                dec2_glue(
                    &self.qpp, sys2_b, a2_b, l2_b, le21_il_b, le21_b, l2_nat_b, bits_b,
                );
                if early_stop_b(bits_b) {
                    done_b = Some((it, true));
                }
            }
            if done_a.is_some() && done_b.is_some() {
                break;
            }
        }
        (
            done_a.unwrap_or((max_iters, false)),
            done_b.unwrap_or((max_iters, false)),
        )
    }
}

/// Post-DEC1 per-item glue: extrinsic `DEC1 → DEC2` and its interleave.
fn dec1_glue(
    qpp: &Qpp,
    sys: &[f32],
    le21: &[f32],
    l1: &[f32],
    le12: &mut Vec<f32>,
    a2: &mut Vec<f32>,
) {
    le12.clear();
    le12.extend((0..sys.len()).map(|i| clamp_scale(l1[i] - sys[i] - le21[i])));
    qpp.interleave_into(le12, a2);
}

/// Post-DEC2 per-item glue: extrinsic `DEC2 → DEC1`, posterior
/// deinterleave and hard decision — the same statements as the tail of
/// [`TurboDecoder::decode_with`]'s iteration body.
#[allow(clippy::too_many_arguments)]
fn dec2_glue(
    qpp: &Qpp,
    sys2: &[f32],
    a2: &[f32],
    l2: &[f32],
    le21_il: &mut Vec<f32>,
    le21: &mut Vec<f32>,
    l2_nat: &mut Vec<f32>,
    bits: &mut Vec<u8>,
) {
    le21_il.clear();
    le21_il.extend((0..sys2.len()).map(|i| clamp_scale(l2[i] - sys2[i] - a2[i])));
    qpp.deinterleave_into(le21_il, le21);
    qpp.deinterleave_into(l2, l2_nat);
    bits.clear();
    bits.extend(l2_nat.iter().map(|&l| (l < 0.0) as u8));
}

/// One decode request inside a [`decode_batch`] call.
pub struct TurboBatchJob<'a> {
    /// Decoder for this job's block size (jobs with equal `K` get paired).
    pub decoder: &'a TurboDecoder,
    /// Systematic stream, length `K + 4`.
    pub d0: &'a [f32],
    /// First parity stream, length `K + 4`.
    pub d1: &'a [f32],
    /// Second parity stream, length `K + 4`.
    pub d2: &'a [f32],
    /// Iteration cap for this job.
    pub max_iters: usize,
}

/// Batched turbo decoding: pairs same-`K` jobs (first-fit, preserving
/// order) and runs each pair through [`TurboDecoder::decode_pair_with`] so
/// two trellises share the AVX-512 lanes; unpaired jobs decode singly.
/// Results — including each job's hard bits, left in its workspace's
/// `bits` — are **bit-for-bit identical** to sequential
/// [`TurboDecoder::decode_with`] calls in job order.
///
/// `early_stop` receives `(job index, hard bits)`. `results[i]` is set to
/// job `i`'s `(iterations, converged)`.
///
/// # Panics
/// Panics if `jobs.len() > 64` (cluster drains are tick-bounded far below
/// this) or either output slice is shorter than `jobs`.
pub fn decode_batch(
    jobs: &[TurboBatchJob<'_>],
    early_stop: impl Fn(usize, &[u8]) -> bool,
    workspaces: &mut [TurboWorkspace],
    results: &mut [(usize, bool)],
) {
    // analyze: allow(panic): batch-shape contract; the cluster drain sizes these slices together
    assert!(jobs.len() <= 64, "decode_batch caps at 64 jobs");
    // analyze: allow(panic): batch-shape contract; the cluster drain sizes these slices together
    assert!(
        workspaces.len() >= jobs.len() && results.len() >= jobs.len(),
        "one workspace and result slot per job"
    );
    let mut used = 0u64;
    for i in 0..jobs.len() {
        if used & (1 << i) != 0 {
            continue;
        }
        used |= 1 << i;
        let ji = &jobs[i];
        let k = ji.decoder.k();
        let partner = (i + 1..jobs.len()).find(|&j| {
            used & (1 << j) == 0 && jobs[j].decoder.k() == k && jobs[j].max_iters == ji.max_iters
        });
        match partner {
            Some(j) => {
                used |= 1 << j;
                let (lo, hi) = workspaces.split_at_mut(j);
                let (ra, rb) = ji.decoder.decode_pair_with(
                    (ji.d0, ji.d1, ji.d2),
                    (jobs[j].d0, jobs[j].d1, jobs[j].d2),
                    ji.max_iters,
                    |bits| early_stop(i, bits),
                    |bits| early_stop(j, bits),
                    &mut lo[i],
                    &mut hi[0],
                );
                results[i] = ra;
                results[j] = rb;
            }
            None => {
                results[i] = ji.decoder.decode_with(
                    ji.d0,
                    ji.d1,
                    ji.d2,
                    ji.max_iters,
                    |bits| early_stop(i, bits),
                    &mut workspaces[i],
                );
            }
        }
    }
}

#[inline]
fn clamp_scale(l: f32) -> f32 {
    (l * EXTRINSIC_SCALE).clamp(-EXTRINSIC_CLAMP, EXTRINSIC_CLAMP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::CRC24B;
    use crate::turbo::TurboEncoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..2u8)).collect()
    }

    /// BPSK-modulates a bit stream and adds AWGN at the given Es/N0 (dB),
    /// returning channel LLRs in the `ln P(0)/P(1)` convention.
    fn channel_llrs(bits: &[u8], snr_db: f32, rng: &mut StdRng) -> Vec<f32> {
        let sigma = (10f32.powf(-snr_db / 10.0) / 2.0).sqrt();
        bits.iter()
            .map(|&b| {
                let s = 1.0 - 2.0 * b as f32;
                let g: f32 = {
                    // Box-Muller.
                    let u1: f32 = rng.gen_range(1e-9..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                };
                let y = s + sigma * g;
                2.0 * y / (sigma * sigma)
            })
            .collect()
    }

    fn run_once(
        k: usize,
        snr_db: f32,
        seed: u64,
        max_iters: usize,
    ) -> (bool, usize, Vec<u8>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = bits(k - 24, seed);
        CRC24B.attach(&mut data);
        assert_eq!(data.len(), k);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let d0 = channel_llrs(&cw.d0, snr_db, &mut rng);
        let d1 = channel_llrs(&cw.d1, snr_db, &mut rng);
        let d2 = channel_llrs(&cw.d2, snr_db, &mut rng);
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let res = dec.decode(&d0, &d1, &d2, max_iters, |b| CRC24B.check(b));
        (res.converged, res.iterations, res.bits, data)
    }

    #[test]
    fn decodes_clean_channel_in_one_iteration() {
        let (ok, iters, out, data) = run_once(104, 20.0, 42, 4);
        assert!(ok);
        assert_eq!(iters, 1);
        assert_eq!(out, data);
    }

    #[test]
    fn decodes_moderate_noise() {
        // Es/N0 = 0 dB ≙ Eb/N0 ≈ 4.8 dB at rate 1/3 — comfortable for turbo.
        let mut converged = 0;
        for seed in 0..10 {
            let (ok, _, out, data) = run_once(512, 0.0, seed, 6);
            if ok {
                assert_eq!(out, data);
                converged += 1;
            }
        }
        assert!(converged >= 9, "only {converged}/10 converged");
    }

    #[test]
    fn iteration_count_increases_with_noise() {
        let mut iters_clean = 0usize;
        let mut iters_noisy = 0usize;
        let trials = 8;
        for seed in 0..trials {
            iters_clean += run_once(512, 6.0, seed, 8).1;
            // Es/N0 = −3 dB ⇒ Eb/N0 ≈ 1.8 dB at rate 1/3: near the
            // waterfall, where extra iterations are actually needed.
            iters_noisy += run_once(512, -3.0, seed, 8).1;
        }
        assert!(
            iters_noisy > iters_clean,
            "noisy {iters_noisy} vs clean {iters_clean}"
        );
    }

    #[test]
    fn hopeless_channel_hits_iteration_cap() {
        let (ok, iters, _, _) = run_once(256, -12.0, 5, 4);
        assert!(!ok);
        assert_eq!(iters, 4);
    }

    #[test]
    fn early_stop_predicate_controls_latency() {
        // With a predicate that never accepts, all iterations run.
        let k = 104;
        let data = bits(k, 3);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let to_llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&b| 8.0 * (1.0 - 2.0 * b as f32)).collect() };
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let res = dec.decode(&to_llr(&cw.d0), &to_llr(&cw.d1), &to_llr(&cw.d2), 5, |_| {
            false
        });
        assert_eq!(res.iterations, 5);
        assert!(!res.converged);
        assert_eq!(res.bits, data, "bits still correct on a clean channel");
    }

    #[test]
    fn large_block_clean_roundtrip() {
        let (ok, iters, out, data) = run_once(6144, 10.0, 9, 4);
        assert!(ok);
        assert_eq!(iters, 1);
        assert_eq!(out, data);
    }

    #[test]
    fn map_decode_prefers_strong_systematic() {
        // Strongly biased systematic LLRs dominate a weak parity signal.
        let k = 40;
        let data = vec![0u8; k];
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let d0: Vec<f32> = cw.d0.iter().map(|_| 10.0).collect(); // all say "0"
        let d1: Vec<f32> = cw.d1.iter().map(|_| 0.1).collect();
        let d2: Vec<f32> = cw.d2.iter().map(|_| 0.1).collect();
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let res = dec.decode(&d0, &d1, &d2, 2, |b| b.iter().all(|&x| x == 0));
        assert!(res.converged);
    }

    #[test]
    #[should_panic(expected = "max_iters")]
    fn zero_iters_panics() {
        let dec = TurboDecoder::new(40);
        dec.decode(&[0.0; 44], &[0.0; 44], &[0.0; 44], 0, |_| true);
    }

    /// The pre-vectorization per-state/per-input scalar MAP pass, kept
    /// verbatim as the reference the lane-form tiers are verified against.
    fn map_decode_reference(
        sys: &[f32],
        sys_tail: &[f32; TAIL_STEPS],
        par: &[f32],
        par_tail: &[f32; TAIL_STEPS],
        apriori: &[f32],
        out: &mut [f32],
        alpha: &mut Vec<f32>,
    ) {
        let k = sys.len();
        alpha.clear();
        alpha.resize((k + 1) * NUM_STATES, NEG_INF);
        alpha[0] = 0.0;
        for i in 0..k {
            let hu = 0.5 * (sys[i] + apriori[i]);
            let hp = 0.5 * par[i];
            let g = [[hu + hp, hu - hp], [hp - hu, -hu - hp]];
            let (cur, nxt) = alpha[i * NUM_STATES..(i + 2) * NUM_STATES].split_at_mut(NUM_STATES);
            for s in 0..NUM_STATES {
                let a = cur[s];
                if a <= NEG_INF {
                    continue;
                }
                for u in 0..2usize {
                    let p = TRELLIS.parity[s][u] as usize;
                    let ns = TRELLIS.next[s][u] as usize;
                    nxt[ns] = nxt[ns].max(a + g[u][p]);
                }
            }
        }
        let mut beta = tail_betas(sys_tail, par_tail);
        for i in (0..k).rev() {
            let hu = 0.5 * (sys[i] + apriori[i]);
            let hp = 0.5 * par[i];
            let g = [[hu + hp, hu - hp], [hp - hu, -hu - hp]];
            let mut best0 = NEG_INF;
            let mut best1 = NEG_INF;
            let mut new_beta = [NEG_INF; NUM_STATES];
            let arow = &alpha[i * NUM_STATES..(i + 1) * NUM_STATES];
            for s in 0..NUM_STATES {
                let a = arow[s];
                for u in 0..2usize {
                    let p = TRELLIS.parity[s][u] as usize;
                    let ns = TRELLIS.next[s][u] as usize;
                    let b = beta[ns];
                    let gb = g[u][p] + b;
                    new_beta[s] = new_beta[s].max(gb);
                    if a <= NEG_INF || b <= NEG_INF {
                        continue;
                    }
                    let m = a + gb;
                    if u == 0 {
                        best0 = best0.max(m);
                    } else {
                        best1 = best1.max(m);
                    }
                }
            }
            out[i] = best0 - best1;
            beta = new_beta;
        }
    }

    fn random_llrs(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-20.0f32..20.0)).collect()
    }

    /// One random MAP-pass input set plus its reference output.
    #[allow(clippy::type_complexity)]
    fn map_case(
        k: usize,
        seed: u64,
    ) -> (Vec<f32>, [f32; 3], Vec<f32>, [f32; 3], Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = random_llrs(k, &mut rng);
        let par = random_llrs(k, &mut rng);
        let apriori = random_llrs(k, &mut rng);
        let st: [f32; 3] = std::array::from_fn(|_| rng.gen_range(-20.0f32..20.0));
        let pt: [f32; 3] = std::array::from_fn(|_| rng.gen_range(-20.0f32..20.0));
        let mut expect = vec![0.0f32; k];
        let mut alpha = Vec::new();
        map_decode_reference(&sys, &st, &par, &pt, &apriori, &mut expect, &mut alpha);
        (sys, st, par, pt, apriori, expect)
    }

    #[test]
    fn lane_form_is_bit_exact_vs_reference() {
        for (k, seed) in [(40usize, 1u64), (104, 2), (512, 3), (1024, 4)] {
            let (sys, st, par, pt, apriori, expect) = map_case(k, seed);
            let mut got = vec![0.0f32; k];
            let mut alpha = Vec::new();
            map_decode_lanes(&sys, &st, &par, &pt, &apriori, &mut got, &mut alpha);
            assert_eq!(got, expect, "k={k} seed={seed}");
        }
    }

    #[test]
    fn intrinsic_tiers_are_bit_exact_vs_lane_form() {
        for tier in simd::supported_tiers().filter(|&t| t != SimdTier::Scalar) {
            for (k, seed) in [(40usize, 5u64), (104, 6), (512, 7), (2048, 8)] {
                let (sys, st, par, pt, apriori, _) = map_case(k, seed);
                let mut lanes = vec![0.0f32; k];
                let mut intr = vec![0.0f32; k];
                let mut alpha = Vec::new();
                map_decode_lanes(&sys, &st, &par, &pt, &apriori, &mut lanes, &mut alpha);
                map_decode(&sys, &st, &par, &pt, &apriori, &mut intr, &mut alpha, tier);
                assert_eq!(intr, lanes, "k={k} seed={seed} tier={}", tier.name());
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn paired_map_pass_is_bit_exact_vs_singles() {
        if !simd::supports(SimdTier::Avx512) {
            eprintln!("skipping: AVX-512 not available");
            return;
        }
        for (k, seed) in [(40usize, 11u64), (104, 12), (512, 13), (6144, 14)] {
            let (sys_a, st_a, par_a, pt_a, ap_a, expect_a) = map_case(k, seed);
            let (sys_b, st_b, par_b, pt_b, ap_b, expect_b) = map_case(k, seed + 100);
            let mut out_a = vec![0.0f32; k];
            let mut out_b = vec![0.0f32; k];
            let mut alpha = Vec::new();
            // SAFETY: AVX-512 support was checked above; both items share k.
            #[allow(unsafe_code)]
            unsafe {
                avx512::map_decode_pair(
                    &avx512::MapInput {
                        sys: &sys_a,
                        sys_tail: &st_a,
                        par: &par_a,
                        par_tail: &pt_a,
                        apriori: &ap_a,
                    },
                    &avx512::MapInput {
                        sys: &sys_b,
                        sys_tail: &st_b,
                        par: &par_b,
                        par_tail: &pt_b,
                        apriori: &ap_b,
                    },
                    &mut out_a,
                    &mut out_b,
                    &mut alpha,
                )
            };
            assert_eq!(out_a, expect_a, "item A k={k} seed={seed}");
            assert_eq!(out_b, expect_b, "item B k={k} seed={seed}");
        }
    }

    /// Builds a noisy `(d0, d1, d2)` LLR triple for a random payload.
    fn noisy_streams(k: usize, snr_db: f32, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Qpp) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = bits(k - 24, seed);
        CRC24B.attach(&mut data);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        (
            channel_llrs(&cw.d0, snr_db, &mut rng),
            channel_llrs(&cw.d1, snr_db, &mut rng),
            channel_llrs(&cw.d2, snr_db, &mut rng),
            enc.qpp().clone(),
        )
    }

    #[test]
    fn decode_pair_matches_sequential_under_every_tier() {
        let _g = simd::test_guard();
        let k = 512;
        // One converging and one iteration-burning item, so the pair
        // exercises the drop-out path (A stops, B continues solo).
        let (a0, a1, a2, qpp) = noisy_streams(k, 4.0, 21);
        let (b0, b1, b2, _) = noisy_streams(k, -4.0, 22);
        let dec = TurboDecoder::with_qpp(qpp);
        let mut ws = TurboWorkspace::new();
        let mut expect = Vec::new();
        for (d0, d1, d2) in [(&a0, &a1, &a2), (&b0, &b1, &b2)] {
            let r = dec.decode_with(d0, d1, d2, 6, |b| CRC24B.check(b), &mut ws);
            expect.push((r, ws.bits.clone()));
        }
        for tier in simd::supported_tiers() {
            simd::force_tier(Some(tier));
            let mut ws_a = TurboWorkspace::new();
            let mut ws_b = TurboWorkspace::new();
            let (ra, rb) = dec.decode_pair_with(
                (&a0, &a1, &a2),
                (&b0, &b1, &b2),
                6,
                |b| CRC24B.check(b),
                |b| CRC24B.check(b),
                &mut ws_a,
                &mut ws_b,
            );
            assert_eq!(
                (ra, ws_a.bits.clone()),
                expect[0],
                "item A, {}",
                tier.name()
            );
            assert_eq!(
                (rb, ws_b.bits.clone()),
                expect[1],
                "item B, {}",
                tier.name()
            );
        }
        simd::force_tier(None);
    }

    #[test]
    fn decode_batch_matches_sequential_calls() {
        let _g = simd::test_guard();
        // Mixed sizes and channel qualities: 512s pair up (one pair), the
        // 2048 and the odd 512 run... sizes: [512, 2048, 512, 104] pairs
        // (0,2); 2048 and 104 decode singly.
        let specs = [(512usize, 2.0f32), (2048, 6.0), (512, -3.0), (104, 8.0)];
        let cases: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, &(k, snr))| {
                let (d0, d1, d2, qpp) = noisy_streams(k, snr, 31 + i as u64);
                (d0, d1, d2, TurboDecoder::with_qpp(qpp))
            })
            .collect();
        let mut expect = Vec::new();
        let mut ws = TurboWorkspace::new();
        for (d0, d1, d2, dec) in &cases {
            let r = dec.decode_with(d0, d1, d2, 5, |b| CRC24B.check(b), &mut ws);
            expect.push((r, ws.bits.clone()));
        }
        let jobs: Vec<TurboBatchJob> = cases
            .iter()
            .map(|(d0, d1, d2, dec)| TurboBatchJob {
                decoder: dec,
                d0,
                d1,
                d2,
                max_iters: 5,
            })
            .collect();
        let mut workspaces: Vec<TurboWorkspace> =
            (0..jobs.len()).map(|_| TurboWorkspace::new()).collect();
        let mut results = vec![(0usize, false); jobs.len()];
        decode_batch(&jobs, |_, b| CRC24B.check(b), &mut workspaces, &mut results);
        for i in 0..jobs.len() {
            assert_eq!(
                (results[i], workspaces[i].bits.clone()),
                expect[i],
                "job {i} (k={})",
                specs[i].0
            );
        }
    }
}
