//! Iterative max-log-MAP turbo decoder with CRC-based early termination.
//!
//! Each full iteration runs both constituent max-log-MAP (BCJR) decoders
//! and exchanges extrinsic information through the QPP interleaver. After
//! every iteration the hard decision is offered to an early-stop predicate
//! (the per-code-block CRC24B in the uplink chain); a pass ends decoding.
//!
//! The number of iterations actually executed — `L ∈ [1, Lm]` — is exactly
//! the `L` term of the paper's processing-time model (Eq. 1): good channels
//! stop after one pass, bad channels burn the full budget. This is the
//! physical origin of the execution-time variability RT-OPEX exploits.

use super::{Qpp, NUM_STATES, TAIL_STEPS, TRELLIS};

/// LLR convention: `L = ln(P(bit = 0) / P(bit = 1))`.
/// Log-domain "minus infinity" for unreachable states.
const NEG_INF: f32 = -1.0e30;

/// Extrinsic scaling factor — the standard max-log-MAP correction
/// (compensates the max approximation's overconfidence).
const EXTRINSIC_SCALE: f32 = 0.75;

/// Clamp on extrinsic LLRs to keep the iteration numerically stable.
const EXTRINSIC_CLAMP: f32 = 64.0;

/// Result of a turbo decode.
#[derive(Clone, Debug)]
pub struct TurboDecodeResult {
    /// Hard-decision information bits (length `K`).
    pub bits: Vec<u8>,
    /// Number of full iterations executed, `1..=max_iters`.
    pub iterations: usize,
    /// Whether the early-stop predicate accepted the output.
    pub converged: bool,
}

/// Decoder for a fixed block size `K` (owns the interleaver and scratch).
#[derive(Clone, Debug)]
pub struct TurboDecoder {
    qpp: Qpp,
}

/// Half branch metric for bit hypothesis `u` given LLR `l`
/// (`L = ln P(0)/P(1)`; hypothesis 0 earns `+l/2`, hypothesis 1 `-l/2`).
#[inline]
fn half_metric(u: u8, l: f32) -> f32 {
    if u == 0 {
        0.5 * l
    } else {
        -0.5 * l
    }
}

/// One constituent max-log-MAP pass.
///
/// * `sys`, `par`, `apriori` — length-`K` LLRs,
/// * `sys_tail`, `par_tail` — termination LLRs,
/// * `out` — length-`K` posterior LLRs.
fn map_decode(
    sys: &[f32],
    sys_tail: &[f32; TAIL_STEPS],
    par: &[f32],
    par_tail: &[f32; TAIL_STEPS],
    apriori: &[f32],
    out: &mut [f32],
) {
    let k = sys.len();
    debug_assert_eq!(par.len(), k);
    debug_assert_eq!(apriori.len(), k);
    debug_assert_eq!(out.len(), k);

    // Forward (alpha) recursion, storing all steps.
    let mut alpha = vec![[NEG_INF; NUM_STATES]; k + 1];
    alpha[0][0] = 0.0;
    for i in 0..k {
        let lu = sys[i] + apriori[i];
        let lp = par[i];
        let (cur, nxt) = {
            let (a, b) = alpha.split_at_mut(i + 1);
            (&a[i], &mut b[0])
        };
        for s in 0..NUM_STATES {
            let a = cur[s];
            if a <= NEG_INF {
                continue;
            }
            for u in 0..2u8 {
                let p = TRELLIS.parity[s][u as usize];
                let g = half_metric(u, lu) + half_metric(p, lp);
                let ns = TRELLIS.next[s][u as usize] as usize;
                let cand = a + g;
                if cand > nxt[ns] {
                    nxt[ns] = cand;
                }
            }
        }
    }

    // Tail: propagate beta from the known zero end state back to step K.
    // Each state has exactly one termination branch per step.
    let mut beta_end = [NEG_INF; NUM_STATES];
    beta_end[0] = 0.0;
    for t in (0..TAIL_STEPS).rev() {
        let mut prev = [NEG_INF; NUM_STATES];
        for s in 0..NUM_STATES {
            let u = TRELLIS.term_input[s];
            let p = TRELLIS.parity[s][u as usize];
            let ns = TRELLIS.next[s][u as usize] as usize;
            let g = half_metric(u, sys_tail[t]) + half_metric(p, par_tail[t]);
            prev[s] = g + beta_end[ns];
        }
        beta_end = prev;
    }

    // Backward (beta) recursion over the data part, emitting LLRs on the fly.
    let mut beta = beta_end;
    for i in (0..k).rev() {
        let lu = sys[i] + apriori[i];
        let lp = par[i];
        let mut best0 = NEG_INF;
        let mut best1 = NEG_INF;
        let mut new_beta = [NEG_INF; NUM_STATES];
        for s in 0..NUM_STATES {
            let a = alpha[i][s];
            for u in 0..2u8 {
                let p = TRELLIS.parity[s][u as usize];
                let ns = TRELLIS.next[s][u as usize] as usize;
                let g = half_metric(u, lu) + half_metric(p, lp);
                let b = beta[ns];
                // Beta update uses only gamma + beta.
                let gb = g + b;
                if gb > new_beta[s] {
                    new_beta[s] = gb;
                }
                // LLR uses alpha + gamma + beta.
                if a <= NEG_INF || b <= NEG_INF {
                    continue;
                }
                let m = a + gb;
                if u == 0 {
                    if m > best0 {
                        best0 = m;
                    }
                } else if m > best1 {
                    best1 = m;
                }
            }
        }
        out[i] = best0 - best1;
        beta = new_beta;
    }
}

impl TurboDecoder {
    /// Creates a decoder for block size `k`.
    pub fn new(k: usize) -> Self {
        TurboDecoder { qpp: Qpp::new(k) }
    }

    /// Creates a decoder reusing an existing interleaver.
    pub fn with_qpp(qpp: Qpp) -> Self {
        TurboDecoder { qpp }
    }

    /// The block size `K`.
    pub fn k(&self) -> usize {
        self.qpp.len()
    }

    /// Decodes soft LLRs for the three streams (`d0`, `d1`, `d2`, each of
    /// length `K + 4` as produced by de-rate-matching), running at most
    /// `max_iters` iterations and stopping early as soon as `early_stop`
    /// accepts the hard-decision bits.
    ///
    /// # Panics
    /// Panics if any stream length differs from `K + 4` or `max_iters == 0`.
    pub fn decode(
        &self,
        d0: &[f32],
        d1: &[f32],
        d2: &[f32],
        max_iters: usize,
        early_stop: impl Fn(&[u8]) -> bool,
    ) -> TurboDecodeResult {
        let k = self.k();
        assert!(max_iters > 0, "max_iters must be positive");
        assert_eq!(d0.len(), k + 4, "d0 length");
        assert_eq!(d1.len(), k + 4, "d1 length");
        assert_eq!(d2.len(), k + 4, "d2 length");

        let sys = &d0[..k];
        let par1 = &d1[..k];
        let par2 = &d2[..k];
        // Tail demultiplexing — mirrors TurboEncoder::encode.
        let xt1 = [d0[k], d0[k + 1], d0[k + 2]];
        let zt1 = [d1[k], d1[k + 1], d1[k + 2]];
        let xt2 = [d0[k + 3], d1[k + 3], d2[k + 3]];
        let zt2 = [d2[k], d2[k + 1], d2[k + 2]];

        let sys2 = self.qpp.interleave(sys);

        let mut le21 = vec![0.0f32; k]; // extrinsic DEC2 → DEC1
        let mut l1 = vec![0.0f32; k];
        let mut l2 = vec![0.0f32; k];
        let mut bits = vec![0u8; k];

        for it in 1..=max_iters {
            // DEC1 on natural order.
            map_decode(sys, &xt1, par1, &zt1, &le21, &mut l1);
            let le12: Vec<f32> = (0..k)
                .map(|i| clamp_scale(l1[i] - sys[i] - le21[i]))
                .collect();

            // DEC2 on interleaved order.
            let a2 = self.qpp.interleave(&le12);
            map_decode(&sys2, &xt2, par2, &zt2, &a2, &mut l2);
            let le21_il: Vec<f32> = (0..k)
                .map(|i| clamp_scale(l2[i] - sys2[i] - a2[i]))
                .collect();
            le21 = self.qpp.deinterleave(&le21_il);

            // Hard decision from DEC2's posteriors, in natural order.
            let l2_nat = self.qpp.deinterleave(&l2);
            for (b, &l) in bits.iter_mut().zip(&l2_nat) {
                *b = (l < 0.0) as u8;
            }
            if early_stop(&bits) {
                return TurboDecodeResult {
                    bits,
                    iterations: it,
                    converged: true,
                };
            }
        }
        TurboDecodeResult {
            bits,
            iterations: max_iters,
            converged: false,
        }
    }
}

#[inline]
fn clamp_scale(l: f32) -> f32 {
    (l * EXTRINSIC_SCALE).clamp(-EXTRINSIC_CLAMP, EXTRINSIC_CLAMP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::CRC24B;
    use crate::turbo::TurboEncoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..2u8)).collect()
    }

    /// BPSK-modulates a bit stream and adds AWGN at the given Es/N0 (dB),
    /// returning channel LLRs in the `ln P(0)/P(1)` convention.
    fn channel_llrs(bits: &[u8], snr_db: f32, rng: &mut StdRng) -> Vec<f32> {
        let sigma = (10f32.powf(-snr_db / 10.0) / 2.0).sqrt();
        bits.iter()
            .map(|&b| {
                let s = 1.0 - 2.0 * b as f32;
                let g: f32 = {
                    // Box-Muller.
                    let u1: f32 = rng.gen_range(1e-9..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                };
                let y = s + sigma * g;
                2.0 * y / (sigma * sigma)
            })
            .collect()
    }

    fn run_once(
        k: usize,
        snr_db: f32,
        seed: u64,
        max_iters: usize,
    ) -> (bool, usize, Vec<u8>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = bits(k - 24, seed);
        CRC24B.attach(&mut data);
        assert_eq!(data.len(), k);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let d0 = channel_llrs(&cw.d0, snr_db, &mut rng);
        let d1 = channel_llrs(&cw.d1, snr_db, &mut rng);
        let d2 = channel_llrs(&cw.d2, snr_db, &mut rng);
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let res = dec.decode(&d0, &d1, &d2, max_iters, |b| CRC24B.check(b));
        (res.converged, res.iterations, res.bits, data)
    }

    #[test]
    fn decodes_clean_channel_in_one_iteration() {
        let (ok, iters, out, data) = run_once(104, 20.0, 42, 4);
        assert!(ok);
        assert_eq!(iters, 1);
        assert_eq!(out, data);
    }

    #[test]
    fn decodes_moderate_noise() {
        // Es/N0 = 0 dB ≙ Eb/N0 ≈ 4.8 dB at rate 1/3 — comfortable for turbo.
        let mut converged = 0;
        for seed in 0..10 {
            let (ok, _, out, data) = run_once(512, 0.0, seed, 6);
            if ok {
                assert_eq!(out, data);
                converged += 1;
            }
        }
        assert!(converged >= 9, "only {converged}/10 converged");
    }

    #[test]
    fn iteration_count_increases_with_noise() {
        let mut iters_clean = 0usize;
        let mut iters_noisy = 0usize;
        let trials = 8;
        for seed in 0..trials {
            iters_clean += run_once(512, 6.0, seed, 8).1;
            // Es/N0 = −3 dB ⇒ Eb/N0 ≈ 1.8 dB at rate 1/3: near the
            // waterfall, where extra iterations are actually needed.
            iters_noisy += run_once(512, -3.0, seed, 8).1;
        }
        assert!(
            iters_noisy > iters_clean,
            "noisy {iters_noisy} vs clean {iters_clean}"
        );
    }

    #[test]
    fn hopeless_channel_hits_iteration_cap() {
        let (ok, iters, _, _) = run_once(256, -12.0, 5, 4);
        assert!(!ok);
        assert_eq!(iters, 4);
    }

    #[test]
    fn early_stop_predicate_controls_latency() {
        // With a predicate that never accepts, all iterations run.
        let k = 104;
        let data = bits(k, 3);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let to_llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&b| 8.0 * (1.0 - 2.0 * b as f32)).collect() };
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let res = dec.decode(&to_llr(&cw.d0), &to_llr(&cw.d1), &to_llr(&cw.d2), 5, |_| {
            false
        });
        assert_eq!(res.iterations, 5);
        assert!(!res.converged);
        assert_eq!(res.bits, data, "bits still correct on a clean channel");
    }

    #[test]
    fn large_block_clean_roundtrip() {
        let (ok, iters, out, data) = run_once(6144, 10.0, 9, 4);
        assert!(ok);
        assert_eq!(iters, 1);
        assert_eq!(out, data);
    }

    #[test]
    fn map_decode_prefers_strong_systematic() {
        // Strongly biased systematic LLRs dominate a weak parity signal.
        let k = 40;
        let data = vec![0u8; k];
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let d0: Vec<f32> = cw.d0.iter().map(|_| 10.0).collect(); // all say "0"
        let d1: Vec<f32> = cw.d1.iter().map(|_| 0.1).collect();
        let d2: Vec<f32> = cw.d2.iter().map(|_| 0.1).collect();
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let res = dec.decode(&d0, &d1, &d2, 2, |b| b.iter().all(|&x| x == 0));
        assert!(res.converged);
    }

    #[test]
    #[should_panic(expected = "max_iters")]
    fn zero_iters_panics() {
        let dec = TurboDecoder::new(40);
        dec.decode(&[0.0; 44], &[0.0; 44], &[0.0; 44], 0, |_| true);
    }
}
