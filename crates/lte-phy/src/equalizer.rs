//! DMRS-based channel estimation and MRC diversity combining.
//!
//! The paper's **demod task** (Fig. 5) comprises channel estimation,
//! equalization and constellation demapping. Estimation here is least
//! squares against the Zadoff-Chu DMRS on symbols 3 and 10, averaged over
//! the two slots; the two independent estimates also yield a noise-variance
//! estimate. Combining is maximum-ratio across the `N` receive antennas —
//! the source of the `w1·N` antenna term in the paper's Eq. (1), and of the
//! footnote that equalization cost grows with antenna count.

use crate::complex::Cf32;
use crate::params::dmrs_symbols;
use crate::resource_grid::Grid;
use crate::simd::{self, SimdTier};

/// Channel state estimated from one subframe's DMRS.
#[derive(Clone, Debug, Default)]
pub struct ChannelEstimate {
    /// Per-antenna, per-subcarrier channel gains, `h[antenna][subcarrier]`.
    pub h: Vec<Vec<Cf32>>,
    /// Estimated noise variance per complex sample (average over antennas).
    pub noise_var: f32,
}

impl ChannelEstimate {
    /// Number of receive antennas.
    pub fn num_antennas(&self) -> usize {
        self.h.len()
    }

    /// Number of subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.h.first().map_or(0, Vec::len)
    }
}

/// Least-squares channel estimation from the two DMRS symbols, over the
/// full grid width.
///
/// `grids` holds one demodulated grid per antenna; `dmrs_ref` is the known
/// unit-magnitude reference sequence (one entry per subcarrier).
///
/// # Panics
/// Panics if `grids` is empty or `dmrs_ref` length mismatches the grid width.
pub fn estimate_channel(grids: &[Grid], dmrs_ref: &[Cf32]) -> ChannelEstimate {
    let m = grids
        .first()
        // analyze: allow(panic): documented precondition, validated at setup
        .expect("at least one antenna required")
        .bandwidth()
        .num_subcarriers();
    estimate_channel_band(grids, dmrs_ref, 0..m)
}

/// Band-limited channel estimation: only the subcarriers in `band` carry a
/// reference signal (a partial PRB allocation); `dmrs_ref.len()` must equal
/// the band width. Returned gains are indexed relative to the band start.
///
/// # Panics
/// Panics if `grids` is empty, the band exceeds the grid, or `dmrs_ref`
/// length mismatches the band width.
pub fn estimate_channel_band(
    grids: &[Grid],
    dmrs_ref: &[Cf32],
    band: std::ops::Range<usize>,
) -> ChannelEstimate {
    let mut est = ChannelEstimate {
        // analyze: allow(alloc): allocating convenience over the _into form
        // analyze: allow(alloc): Vec::new does not allocate; rows grow once during the warm-up decode and retain capacity thereafter
        h: Vec::new(),
        noise_var: 0.0,
    };
    estimate_channel_band_into(grids, dmrs_ref, band, &mut est);
    est
}

/// [`estimate_channel_band`] into a caller-owned estimate, reusing its
/// per-antenna gain vectors (no allocation once they have capacity).
/// Produces values identical to [`estimate_channel_band`].
///
/// # Panics
/// Panics if `grids` is empty, the band exceeds the grid, or `dmrs_ref`
/// length mismatches the band width.
pub fn estimate_channel_band_into(
    grids: &[Grid],
    dmrs_ref: &[Cf32],
    band: std::ops::Range<usize>,
    est: &mut ChannelEstimate,
) {
    // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
    assert!(!grids.is_empty(), "at least one antenna required");
    let width = grids[0].bandwidth().num_subcarriers();
    // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
    assert!(band.end <= width, "band exceeds grid width");
    let m = band.len();
    // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
    assert_eq!(dmrs_ref.len(), m, "DMRS reference length");
    let [l1, l2] = dmrs_symbols();

    // Grow-only: keep existing inner vectors (and their capacity) alive.
    if est.h.len() > grids.len() {
        est.h.truncate(grids.len());
    }
    while est.h.len() < grids.len() {
        // analyze: allow(alloc): Vec::new is allocation-free; rows grow on warm-up only
        // analyze: allow(alloc): push into a capacity-retaining estimate buffer; tests/alloc_regression.rs proves zero steady-state allocations
        est.h.push(Vec::new());
    }
    let mut noise_acc = 0.0f64;
    for (grid, ha) in grids.iter().zip(est.h.iter_mut()) {
        let y1 = &grid.symbol(l1)[band.clone()];
        let y2 = &grid.symbol(l2)[band.clone()];
        ha.clear();
        ha.reserve(m);
        // Split-complex lane blocks: the per-subcarrier LS estimates and
        // difference energies vectorize; only the f64 noise accumulation
        // stays scalar (in subcarrier order, so values are unchanged).
        let mut k0 = 0;
        while k0 < m {
            let len = (m - k0).min(8);
            let mut h_re = [0.0f32; 8];
            let mut h_im = [0.0f32; 8];
            let mut dn = [0.0f32; 8];
            for j in 0..len {
                let k = k0 + j;
                // LS estimate: y = h·r + n with |r| = 1 ⇒ ĥ = y·r*.
                let r = dmrs_ref[k];
                let (e1re, e1im) = (
                    y1[k].re * r.re + y1[k].im * r.im,
                    y1[k].im * r.re - y1[k].re * r.im,
                );
                let (e2re, e2im) = (
                    y2[k].re * r.re + y2[k].im * r.im,
                    y2[k].im * r.re - y2[k].re * r.im,
                );
                h_re[j] = (e1re + e2re) * 0.5;
                h_im[j] = (e1im + e2im) * 0.5;
                // (e1 − e2) = n1·r* − n2·r* has variance 2σ².
                let (dre, dim) = (e1re - e2re, e1im - e2im);
                dn[j] = (dre * dre + dim * dim) / 2.0;
            }
            for j in 0..len {
                ha.push(Cf32::new(h_re[j], h_im[j]));
                noise_acc += dn[j] as f64;
            }
            k0 += len;
        }
    }
    est.noise_var = (noise_acc / (grids.len() * m) as f64).max(1e-12) as f32;
}

/// Maximum-ratio combining of one OFDM symbol across antennas.
///
/// `rows[a]` is antenna `a`'s demodulated subcarriers for the symbol.
/// Returns the combined symbol estimates and the per-subcarrier
/// post-combining noise variance (`σ²/Σ|hₐ|²`), ready for the soft demapper.
///
/// # Panics
/// Panics if `rows` length differs from the estimate's antenna count, or a
/// row's width differs from the subcarrier count.
pub fn mrc_combine(rows: &[&[Cf32]], est: &ChannelEstimate) -> (Vec<Cf32>, Vec<f32>) {
    // analyze: allow(alloc): allocating convenience over mrc_combine_into
    let mut combined = Vec::new();
    // analyze: allow(alloc): allocating convenience over mrc_combine_into
    let mut post_var = Vec::new();
    mrc_combine_into(rows, est, &mut combined, &mut post_var);
    (combined, post_var)
}

/// [`mrc_combine`] into caller-owned vectors (cleared and refilled; no
/// allocation once they have capacity). Produces values identical to
/// [`mrc_combine`].
///
/// # Panics
/// Panics if `rows` length differs from the estimate's antenna count, or a
/// row's width differs from the subcarrier count.
pub fn mrc_combine_into(
    rows: &[&[Cf32]],
    est: &ChannelEstimate,
    combined: &mut Vec<Cf32>,
    post_var: &mut Vec<f32>,
) {
    // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
    assert_eq!(rows.len(), est.num_antennas(), "antenna count");
    let m = est.num_subcarriers();
    for row in rows {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(row.len(), m, "subcarrier count");
    }
    combined.clear();
    combined.reserve(m);
    post_var.clear();
    post_var.reserve(m);
    let tier = simd::active_tier();
    let mut k0 = 0;
    while k0 < m {
        let len = (m - k0).min(8);
        let mut acc_re = [0.0f32; 8];
        let mut acc_im = [0.0f32; 8];
        let mut gain = [0.0f32; 8];
        #[cfg(target_arch = "x86_64")]
        let done = if tier >= SimdTier::Avx2 && len == 8 {
            // The MRC block stays 8-wide under Avx512 too: per-antenna rows
            // are short and the deinterleave dominates, so a 16-lane form
            // does not pay (measured in the `mrc` bench group).
            // SAFETY: the Avx2 tier is only reported after runtime
            // detection succeeded (see crate::simd).
            #[allow(unsafe_code)]
            unsafe {
                avx2::mrc_block(rows, &est.h, k0, &mut acc_re, &mut acc_im, &mut gain)
            };
            true
        } else {
            false
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = tier;
            false
        };
        if !done {
            // Split-complex (SoA) lane accumulation — same per-subcarrier
            // arithmetic as the AVX2 tier and the historical per-k loop
            // (`x − (−y)` ≡ `x + y` in IEEE 754, so expanding the complex
            // conjugate multiply is value-preserving).
            for (a, row) in rows.iter().enumerate() {
                let h = &est.h[a][k0..k0 + len];
                let r = &row[k0..k0 + len];
                for j in 0..len {
                    acc_re[j] += h[j].re * r[j].re + h[j].im * r[j].im;
                    acc_im[j] += h[j].re * r[j].im - h[j].im * r[j].re;
                    gain[j] += h[j].re * h[j].re + h[j].im * h[j].im;
                }
            }
        }
        for j in 0..len {
            let g = gain[j].max(1e-9);
            let inv = 1.0 / g;
            combined.push(Cf32::new(acc_re[j] * inv, acc_im[j] * inv));
            post_var.push(est.noise_var / g);
        }
        k0 += len;
    }
}

/// Explicit AVX2 tier of the MRC accumulation: deinterleaves eight complex
/// subcarriers per antenna into split-complex registers and accumulates
/// `Σ h*·r` and `Σ |h|²` with the exact operation sequence of the lane
/// form, hence bit-exact with it.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use crate::complex::Cf32;
    use core::arch::x86_64::*;

    /// Deinterleaves 8 consecutive `Cf32` (16 floats) into (re, im) lanes
    /// in subcarrier order.
    ///
    /// # Safety
    /// `ptr` must point at 8 valid `Cf32` values; the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn load_split(ptr: *const Cf32) -> (__m256, __m256) {
        // SAFETY: caller guarantees 16 readable f32s at `ptr`.
        unsafe {
            let p = ptr as *const f32;
            let v0 = _mm256_loadu_ps(p); // r0 i0 r1 i1 | r2 i2 r3 i3
            let v1 = _mm256_loadu_ps(p.add(8)); // r4 i4 r5 i5 | r6 i6 r7 i7
            let lo = _mm256_permute2f128_ps(v0, v1, 0x20); // r0 i0 r1 i1 | r4 i4 r5 i5
            let hi = _mm256_permute2f128_ps(v0, v1, 0x31); // r2 i2 r3 i3 | r6 i6 r7 i7
            let re = _mm256_shuffle_ps(lo, hi, 0b10_00_10_00); // r0 r1 r2 r3 | r4..r7
            let im = _mm256_shuffle_ps(lo, hi, 0b11_01_11_01); // i0 i1 i2 i3 | i4..i7
            (re, im)
        }
    }

    /// # Safety
    /// Every row and `h[a]` must have at least `k0 + 8` entries; the CPU
    /// must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mrc_block(
        rows: &[&[Cf32]],
        h: &[Vec<Cf32>],
        k0: usize,
        acc_re: &mut [f32; 8],
        acc_im: &mut [f32; 8],
        gain: &mut [f32; 8],
    ) {
        let mut num_re = _mm256_setzero_ps();
        let mut num_im = _mm256_setzero_ps();
        let mut g = _mm256_setzero_ps();
        for (a, row) in rows.iter().enumerate() {
            // SAFETY: caller guarantees k0 + 8 in-bounds complex entries.
            let ((hre, him), (rre, rim)) = unsafe {
                (
                    load_split(h[a].as_ptr().add(k0)),
                    load_split(row.as_ptr().add(k0)),
                )
            };
            num_re = _mm256_add_ps(
                num_re,
                _mm256_add_ps(_mm256_mul_ps(hre, rre), _mm256_mul_ps(him, rim)),
            );
            num_im = _mm256_add_ps(
                num_im,
                _mm256_sub_ps(_mm256_mul_ps(hre, rim), _mm256_mul_ps(him, rre)),
            );
            g = _mm256_add_ps(
                g,
                _mm256_add_ps(_mm256_mul_ps(hre, hre), _mm256_mul_ps(him, him)),
            );
        }
        // SAFETY: the output arrays are 8 contiguous f32s each.
        unsafe {
            _mm256_storeu_ps(acc_re.as_mut_ptr(), num_re);
            _mm256_storeu_ps(acc_im.as_mut_ptr(), num_im);
            _mm256_storeu_ps(gain.as_mut_ptr(), g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::complex_gaussian;
    use crate::params::{Bandwidth, SYMBOLS_PER_SUBFRAME};
    use crate::zadoff_chu::dmrs_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds per-antenna grids: each RE is `h[a] · x(l, k) + noise`, with
    /// DMRS on symbols 3/10.
    fn make_grids(
        bw: Bandwidth,
        hs: &[Cf32],
        sigma: f32,
        rng: &mut StdRng,
    ) -> (Vec<Grid>, Vec<Cf32>, Vec<Vec<Cf32>>) {
        let m = bw.num_subcarriers();
        let dmrs = dmrs_sequence(0, m);
        // Data: deterministic unit-power symbols.
        let data: Vec<Vec<Cf32>> = (0..SYMBOLS_PER_SUBFRAME)
            .map(|l| {
                (0..m)
                    .map(|k| Cf32::from_phase((l * 997 + k * 31) as f32 * 0.071))
                    .collect()
            })
            .collect();
        let grids = hs
            .iter()
            .map(|&h| {
                let mut g = Grid::new(bw);
                for l in 0..SYMBOLS_PER_SUBFRAME {
                    let src: &[Cf32] = if crate::params::is_dmrs_symbol(l) {
                        &dmrs
                    } else {
                        &data[l]
                    };
                    for (k, v) in g.symbol_mut(l).iter_mut().enumerate() {
                        *v = h * src[k] + complex_gaussian(rng).scale(sigma);
                    }
                }
                g
            })
            .collect();
        (grids, dmrs, data)
    }

    #[test]
    fn noiseless_estimate_recovers_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        let hs = [Cf32::new(0.8, -0.6), Cf32::new(-0.3, 1.1)];
        let (grids, dmrs, _) = make_grids(Bandwidth::Mhz1_4, &hs, 0.0, &mut rng);
        let est = estimate_channel(&grids, &dmrs);
        assert_eq!(est.num_antennas(), 2);
        for (a, &h_true) in hs.iter().enumerate() {
            for k in 0..est.num_subcarriers() {
                assert!((est.h[a][k] - h_true).abs() < 1e-3, "ant {a} sc {k}");
            }
        }
        assert!(est.noise_var < 1e-6);
    }

    #[test]
    fn noise_variance_estimate_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 0.3f32; // per-axis? no: total complex std
        let (grids, dmrs, _) = make_grids(Bandwidth::Mhz5, &[Cf32::ONE], sigma, &mut rng);
        let est = estimate_channel(&grids, &dmrs);
        let expected = sigma * sigma; // complex_gaussian(·).scale(σ) has var σ²
        assert!(
            (est.noise_var - expected).abs() < 0.2 * expected,
            "est {} vs {}",
            est.noise_var,
            expected
        );
    }

    #[test]
    fn mrc_recovers_data_noiseless() {
        let mut rng = StdRng::seed_from_u64(3);
        let hs = [Cf32::new(1.2, 0.4), Cf32::new(-0.5, 0.9)];
        let (grids, dmrs, data) = make_grids(Bandwidth::Mhz1_4, &hs, 0.0, &mut rng);
        let est = estimate_channel(&grids, &dmrs);
        let l = 5; // a data symbol
        let rows: Vec<&[Cf32]> = grids.iter().map(|g| g.symbol(l)).collect();
        let (xhat, _) = mrc_combine(&rows, &est);
        for (a, b) in xhat.iter().zip(&data[l]) {
            assert!((*a - *b).abs() < 1e-2);
        }
    }

    #[test]
    fn mrc_gain_improves_with_antennas() {
        // Post-combining noise variance with 2 equal-gain antennas is half
        // that of a single antenna.
        let mut rng = StdRng::seed_from_u64(4);
        let (g1, dmrs, _) = make_grids(Bandwidth::Mhz1_4, &[Cf32::ONE], 0.1, &mut rng);
        let (g2, _, _) = make_grids(Bandwidth::Mhz1_4, &[Cf32::ONE, Cf32::ONE], 0.1, &mut rng);
        let e1 = estimate_channel(&g1, &dmrs);
        let e2 = estimate_channel(&g2, &dmrs);
        let r1: Vec<&[Cf32]> = g1.iter().map(|g| g.symbol(0)).collect();
        let r2: Vec<&[Cf32]> = g2.iter().map(|g| g.symbol(0)).collect();
        let (_, v1) = mrc_combine(&r1, &e1);
        let (_, v2) = mrc_combine(&r2, &e2);
        let m1: f32 = v1.iter().sum::<f32>() / v1.len() as f32;
        let m2: f32 = v2.iter().sum::<f32>() / v2.len() as f32;
        assert!(m2 < 0.7 * m1, "v1 {m1}, v2 {m2}");
    }

    #[test]
    fn deep_fade_on_one_antenna_is_tolerated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hs = [Cf32::new(1e-4, 0.0), Cf32::new(1.0, 0.0)]; // antenna 0 dead
        let (grids, dmrs, data) = make_grids(Bandwidth::Mhz1_4, &hs, 0.01, &mut rng);
        let est = estimate_channel(&grids, &dmrs);
        let rows: Vec<&[Cf32]> = grids.iter().map(|g| g.symbol(1)).collect();
        let (xhat, _) = mrc_combine(&rows, &est);
        let err: f32 = xhat
            .iter()
            .zip(&data[1])
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f32::max);
        assert!(err < 0.2, "max err {err}");
    }

    #[test]
    fn blocked_mrc_is_bit_exact_vs_reference() {
        use crate::simd::{force_tier, test_guard, SimdTier};
        let _g = test_guard();
        let mut rng = StdRng::seed_from_u64(9);
        // Deliberately non-multiple-of-8 widths to cover the lane tail.
        for m in [1usize, 8, 13, 72] {
            for nant in [1usize, 2, 4] {
                let h: Vec<Vec<Cf32>> = (0..nant)
                    .map(|_| (0..m).map(|_| complex_gaussian(&mut rng)).collect())
                    .collect();
                let data: Vec<Vec<Cf32>> = (0..nant)
                    .map(|_| (0..m).map(|_| complex_gaussian(&mut rng)).collect())
                    .collect();
                let est = ChannelEstimate { h, noise_var: 0.07 };
                let rows: Vec<&[Cf32]> = data.iter().map(Vec::as_slice).collect();
                // Reference: the historical per-subcarrier Cf32 loop.
                let mut exp_c = Vec::new();
                let mut exp_v = Vec::new();
                for k in 0..m {
                    let mut num = Cf32::ZERO;
                    let mut gain = 0.0f32;
                    for (a, row) in rows.iter().enumerate() {
                        let hk = est.h[a][k];
                        num += hk.conj() * row[k];
                        gain += hk.norm_sq();
                    }
                    let g = gain.max(1e-9);
                    exp_c.push(num.scale(1.0 / g));
                    exp_v.push(est.noise_var / g);
                }
                for tier in [None, Some(SimdTier::Scalar)] {
                    force_tier(tier);
                    let (c, v) = mrc_combine(&rows, &est);
                    assert_eq!(c, exp_c, "m={m} nant={nant} tier={tier:?}");
                    assert_eq!(v, exp_v, "m={m} nant={nant} tier={tier:?}");
                }
                force_tier(None);
            }
        }
    }

    #[test]
    #[should_panic(expected = "antenna count")]
    fn antenna_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let (grids, dmrs, _) = make_grids(Bandwidth::Mhz1_4, &[Cf32::ONE], 0.0, &mut rng);
        let est = estimate_channel(&grids, &dmrs);
        let rows: Vec<&[Cf32]> = vec![grids[0].symbol(0), grids[0].symbol(1)];
        mrc_combine(&rows, &est);
    }
}
