//! Mixed-radix FFT/IFFT and DFT transform precoding.
//!
//! LTE needs transforms of two kinds of sizes: power-of-two (and `1536 =
//! 2⁹·3`) OFDM FFTs, and `12·N_PRB`-point DFTs for SC-FDMA transform
//! precoding (e.g. 600 points for 50 PRBs). This module implements an
//! **iterative** mixed-radix Stockham autosort kernel over arbitrary
//! factorizations — no recursion, no per-call heap allocation, and no
//! digit-reversal pass. Prime factors degrade to an `O(n·r)` stage, so the
//! transform is correct for *any* size and fast for the sizes LTE uses.
//!
//! The per-size [`FftPlan`] precomputes the factorization and a single
//! root-of-unity table; plans are cheap to clone and safe to share. The
//! steady-state entry points are [`FftPlan::forward_with`] /
//! [`FftPlan::inverse_with`], which ping-pong between the caller's buffer
//! and a caller-owned scratch vector; [`FftPlan::forward`] /
//! [`FftPlan::inverse`] are allocating conveniences. [`plan`] returns a
//! process-wide cached `Arc<FftPlan>` so hot paths build each size once.

use crate::complex::Cf32;
use crate::simd::{self, SimdTier};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A precomputed transform plan for a fixed size `n`.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// `twiddles[j] = e^{-2πi·j/n}` for `j ∈ [0, n)`.
    twiddles: Vec<Cf32>,
    /// Prime factorization of `n`, smallest factors first.
    factors: Vec<usize>,
}

/// Returns the prime factorization of `n` (smallest first). `n ≥ 1`.
fn factorize(mut n: usize) -> Vec<usize> {
    // analyze: allow(alloc): runs once per FFT size at plan construction
    let mut f = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            f.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        f.push(n);
    }
    f
}

/// Process-wide plan cache, one shared immutable plan per size.
static PLAN_CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();

/// Returns the shared plan for size `n`, building it on first use.
///
/// Every component that transforms a given size (OFDM processors, DFT
/// precoders, tests) resolves through this cache, so twiddle tables are
/// computed once per process rather than once per constructor call.
///
/// # Panics
/// Panics if `n == 0`.
pub fn plan(n: usize) -> Arc<FftPlan> {
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // analyze: allow(panic): poison implies a prior panic already failed the run
    let mut map = cache.lock().expect("plan cache poisoned");
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

impl FftPlan {
    /// Builds a plan for `n`-point transforms.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT size must be positive");
        let twiddles = (0..n)
            .map(|j| Cf32::from_phase(-2.0 * std::f32::consts::PI * j as f32 / n as f32))
            // analyze: allow(alloc): runs once per FFT size at plan construction
            .collect();
        FftPlan {
            n,
            twiddles,
            factors: factorize(n),
        }
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; a plan has size ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward DFT: `X[k] = Σ x[j]·e^{-2πi jk/n}` (no normalization).
    ///
    /// Allocating convenience over [`FftPlan::forward_with`].
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Cf32]) {
        // analyze: allow(alloc): allocating convenience; hot callers use forward_scratch
        let mut scratch = vec![Cf32::ZERO; self.n];
        self.forward_scratch(data, &mut scratch);
    }

    /// Inverse DFT with `1/n` normalization, so `inverse(forward(x)) = x`.
    ///
    /// Allocating convenience over [`FftPlan::inverse_with`].
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Cf32]) {
        // analyze: allow(alloc): allocating convenience; hot callers use inverse_scratch
        let mut scratch = vec![Cf32::ZERO; self.n];
        self.inverse_scratch(data, &mut scratch);
    }

    /// Forward DFT using a caller-owned scratch vector, resized as needed.
    /// After warm-up the call performs no heap allocation.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward_with(&self, data: &mut [Cf32], scratch: &mut Vec<Cf32>) {
        scratch.resize(self.n, Cf32::ZERO);
        self.forward_scratch(data, &mut scratch[..]);
    }

    /// Inverse DFT using a caller-owned scratch vector, resized as needed.
    /// After warm-up the call performs no heap allocation.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse_with(&self, data: &mut [Cf32], scratch: &mut Vec<Cf32>) {
        scratch.resize(self.n, Cf32::ZERO);
        self.inverse_scratch(data, &mut scratch[..]);
    }

    /// Forward DFT with an exact-size scratch slice (the zero-allocation
    /// primitive; `scratch` contents are clobbered).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()` or `scratch.len() != self.len()`.
    pub fn forward_scratch(&self, data: &mut [Cf32], scratch: &mut [Cf32]) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(scratch.len(), self.n, "scratch length must equal plan size");
        self.stockham(data, scratch);
    }

    /// Inverse DFT with an exact-size scratch slice (the zero-allocation
    /// primitive; `scratch` contents are clobbered).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()` or `scratch.len() != self.len()`.
    pub fn inverse_scratch(&self, data: &mut [Cf32], scratch: &mut [Cf32]) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(scratch.len(), self.n, "scratch length must equal plan size");
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.stockham(data, scratch);
        let s = 1.0 / self.n as f32;
        for v in data.iter_mut() {
            *v = v.conj().scale(s);
        }
    }

    /// Plan-shared batched forward transform: `data` holds `rows`
    /// back-to-back transforms of [`FftPlan::len`] points each, all run
    /// through this plan with one tier resolution and a hot twiddle table.
    /// This is the FFT half of the cross-cell batched dispatch path: when
    /// several cells' subframes land in the same tick, one worker fans the
    /// whole flattened grid through here instead of re-entering the plan
    /// per symbol.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `self.len()` or
    /// `scratch.len() != self.len()`.
    pub fn forward_rows(&self, data: &mut [Cf32], scratch: &mut [Cf32]) {
        // analyze: allow(panic): buffer-shape contract, same as forward_scratch
        assert!(
            data.len().is_multiple_of(self.n),
            "batch length must be a whole number of rows"
        );
        for row in data.chunks_exact_mut(self.n) {
            self.forward_scratch(row, scratch);
        }
    }

    /// Iterative Stockham autosort mixed-radix kernel. One pass per prime
    /// factor, ping-ponging between `data` and `scratch`; the result always
    /// ends up back in `data`.
    ///
    /// Stage invariant: with `n_cur` the remaining sub-transform length and
    /// `s` the accumulated stride (`s · n_cur · …` spans `n`), each stage of
    /// radix `r` (`m = n_cur / r`) computes
    ///
    /// ```text
    /// y[q + s·(r·p + j)] = ( Σᵢ x[q + s·(p + m·i)] · W_r^{ij} ) · W_{n_cur}^{p·j}
    /// ```
    ///
    /// for `p ∈ [0,m)`, `q ∈ [0,s)`, `j ∈ [0,r)`; then `n_cur ← m`, `s ← s·r`.
    ///
    /// Radix 2, 3 and 5 stages use dedicated butterflies (constant
    /// rotations instead of the `O(r²)` twiddle-table accumulation), each
    /// with an intrinsic form once the accumulated stride covers a whole
    /// vector; other prime factors fall back to the generic stage.
    fn stockham(&self, data: &mut [Cf32], scratch: &mut [Cf32]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let tw = &self.twiddles;
        let tier = simd::active_tier();
        let mut n_cur = n;
        let mut s = 1usize;
        let mut in_data = true;
        for &r in &self.factors {
            let m = n_cur / r;
            let (src, dst): (&[Cf32], &mut [Cf32]) = if in_data {
                (data, scratch)
            } else {
                (scratch, data)
            };
            let wn_stride = n / n_cur;
            // Stride-aligned stages dispatch to the intrinsic tiers; the
            // per-element op sequence is identical in every form, so the
            // tiers stay bit-exact (see the avx2/avx512 module docs).
            #[cfg(target_arch = "x86_64")]
            let vectorized = {
                #[allow(unsafe_code)]
                match r {
                    2 if tier >= SimdTier::Avx512 && s.is_multiple_of(8) => {
                        // SAFETY: the Avx512 tier is only reported by `crate::simd`
                        // after avx512f/avx512bw detection; `s % 8 == 0` guarantees
                        // the 8-complex zmm loads stay in bounds.
                        unsafe { avx512::radix2_stage(src, dst, tw, m, s, wn_stride) };
                        true
                    }
                    2 if tier >= SimdTier::Avx2 && s.is_multiple_of(4) => {
                        // SAFETY: the Avx2 tier is only reported after feature
                        // detection; `s % 4 == 0` keeps the 4-complex loads in bounds.
                        unsafe { avx2::radix2_stage(src, dst, tw, m, s, wn_stride) };
                        true
                    }
                    3 if tier >= SimdTier::Avx2 && s.is_multiple_of(4) => {
                        // SAFETY: as above — detected AVX2 plus stride-aligned loads.
                        unsafe { avx2::radix3_stage(src, dst, tw, m, s, n_cur, wn_stride) };
                        true
                    }
                    5 if tier >= SimdTier::Avx2 && s.is_multiple_of(4) => {
                        // SAFETY: as above — detected AVX2 plus stride-aligned loads.
                        unsafe { avx2::radix5_stage(src, dst, tw, m, s, n_cur, wn_stride) };
                        true
                    }
                    _ => false,
                }
            };
            #[cfg(not(target_arch = "x86_64"))]
            let vectorized = {
                let _ = tier;
                false
            };
            if !vectorized {
                match r {
                    2 => radix2_lanes(src, dst, tw, m, s, wn_stride),
                    3 => radix3_lanes(src, dst, tw, m, s, n_cur, wn_stride),
                    5 => radix5_lanes(src, dst, tw, m, s, n_cur, wn_stride),
                    _ => {
                        let wr_stride = n / r;
                        for j in 0..r {
                            for p in 0..m {
                                let wp = tw[(p * j) % n_cur * wn_stride];
                                for q in 0..s {
                                    let mut acc = Cf32::ZERO;
                                    for i in 0..r {
                                        let w = tw[(i * j) % r * wr_stride];
                                        acc += w * src[q + s * (p + m * i)];
                                    }
                                    dst[q + s * (r * p + j)] = acc * wp;
                                }
                            }
                        }
                    }
                }
            }
            n_cur = m;
            s *= r;
            in_data = !in_data;
        }
        if !in_data {
            data.copy_from_slice(scratch);
        }
    }
}

/// `cos(2π/3)` — the radix-3 rotation's real part.
const C3: f32 = -0.5;
/// `sin(2π/3)`.
const S3: f32 = 0.866_025_4;
/// `cos(2π/5)`.
const C51: f32 = 0.309_017;
/// `cos(4π/5)`.
const C52: f32 = -0.809_017;
/// `sin(2π/5)`.
const S51: f32 = 0.951_056_5;
/// `sin(4π/5)`.
const S52: f32 = 0.587_785_25;

/// Portable radix-2 butterfly stage (the lane-form reference the intrinsic
/// stages mirror term for term).
fn radix2_lanes(src: &[Cf32], dst: &mut [Cf32], tw: &[Cf32], m: usize, s: usize, wn_stride: usize) {
    for p in 0..m {
        let wp = tw[p * wn_stride];
        for q in 0..s {
            let x0 = src[q + s * p];
            let x1 = src[q + s * (p + m)];
            dst[q + s * 2 * p] = x0 + x1;
            dst[q + s * (2 * p + 1)] = (x0 - x1) * wp;
        }
    }
}

/// Portable dedicated radix-3 butterfly: `W₃ = C3 ∓ i·S3` folded into two
/// real rotations (6 real multiplies per butterfly vs the generic stage's
/// 9 table-lookup complex multiplies plus index modulos).
fn radix3_lanes(
    src: &[Cf32],
    dst: &mut [Cf32],
    tw: &[Cf32],
    m: usize,
    s: usize,
    n_cur: usize,
    wn_stride: usize,
) {
    for p in 0..m {
        let w1 = tw[p * wn_stride];
        let w2 = tw[(2 * p) % n_cur * wn_stride];
        for q in 0..s {
            let x0 = src[q + s * p];
            let x1 = src[q + s * (p + m)];
            let x2 = src[q + s * (p + 2 * m)];
            let t = x1 + x2;
            let u = x1 - x2;
            let z = Cf32::new(x0.re + C3 * t.re, x0.im + C3 * t.im);
            let w = Cf32::new(S3 * u.im, -(S3 * u.re));
            dst[q + s * 3 * p] = x0 + t;
            dst[q + s * (3 * p + 1)] = (z + w) * w1;
            dst[q + s * (3 * p + 2)] = (z - w) * w2;
        }
    }
}

/// Portable dedicated radix-5 butterfly (Winograd-style real rotations:
/// 16 real multiplies per butterfly vs the generic stage's 25 table-lookup
/// complex multiplies).
fn radix5_lanes(
    src: &[Cf32],
    dst: &mut [Cf32],
    tw: &[Cf32],
    m: usize,
    s: usize,
    n_cur: usize,
    wn_stride: usize,
) {
    for p in 0..m {
        let w1 = tw[p * wn_stride];
        let w2 = tw[(2 * p) % n_cur * wn_stride];
        let w3 = tw[(3 * p) % n_cur * wn_stride];
        let w4 = tw[(4 * p) % n_cur * wn_stride];
        for q in 0..s {
            let x0 = src[q + s * p];
            let x1 = src[q + s * (p + m)];
            let x2 = src[q + s * (p + 2 * m)];
            let x3 = src[q + s * (p + 3 * m)];
            let x4 = src[q + s * (p + 4 * m)];
            let t1 = x1 + x4;
            let t2 = x2 + x3;
            let t3 = x1 - x4;
            let t4 = x2 - x3;
            let m1 = Cf32::new(
                x0.re + C51 * t1.re + C52 * t2.re,
                x0.im + C51 * t1.im + C52 * t2.im,
            );
            let m2 = Cf32::new(
                x0.re + C52 * t1.re + C51 * t2.re,
                x0.im + C52 * t1.im + C51 * t2.im,
            );
            let v1 = Cf32::new(S51 * t3.im + S52 * t4.im, -(S51 * t3.re + S52 * t4.re));
            let v2 = Cf32::new(S52 * t3.im - S51 * t4.im, -(S52 * t3.re - S51 * t4.re));
            dst[q + s * 5 * p] = x0 + t1 + t2;
            dst[q + s * (5 * p + 1)] = (m1 + v1) * w1;
            dst[q + s * (5 * p + 2)] = (m2 + v2) * w2;
            dst[q + s * (5 * p + 3)] = (m2 - v2) * w3;
            dst[q + s * (5 * p + 4)] = (m1 - v1) * w4;
        }
    }
}

/// AVX2 radix-2 butterfly stage operating on 4 interleaved complex values
/// per vector. The arithmetic per element — complex add, subtract, and the
/// `(re·wr − im·wi, re·wi + im·wr)` twiddle multiply — matches the scalar
/// `Cf32` operators term for term (the only reordering is the commuted final
/// addition of the imaginary part), so stage output is bit-identical to the
/// scalar loop.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use crate::complex::Cf32;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 support at runtime. Requires
    /// `s % 4 == 0`, `src.len() >= 2 * m * s`, and `dst.len() >= 2 * m * s`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix2_stage(
        src: &[Cf32],
        dst: &mut [Cf32],
        tw: &[Cf32],
        m: usize,
        s: usize,
        wn_stride: usize,
    ) {
        debug_assert!(s.is_multiple_of(4));
        debug_assert!(src.len() >= 2 * m * s && dst.len() >= 2 * m * s);
        let sp = src.as_ptr() as *const f32;
        let dp = dst.as_mut_ptr() as *mut f32;
        for p in 0..m {
            let wp = tw[p * wn_stride];
            let wr = _mm256_set1_ps(wp.re);
            let wi = _mm256_set1_ps(wp.im);
            let a = s * p;
            let b = s * (p + m);
            let lo = s * 2 * p;
            let hi = s * (2 * p + 1);
            let mut q = 0usize;
            while q < s {
                // SAFETY: q + 4 <= s, so all four-complex (8-float) loads and
                // stores below stay inside the slices per the length bounds.
                unsafe {
                    let x0 = _mm256_loadu_ps(sp.add(2 * (a + q)));
                    let x1 = _mm256_loadu_ps(sp.add(2 * (b + q)));
                    let sum = _mm256_add_ps(x0, x1);
                    let d = _mm256_sub_ps(x0, x1);
                    // (re·wr − im·wi, im·wr + re·wi): multiply the lanes by
                    // wr, the pair-swapped lanes by wi, then addsub merges
                    // the even (subtract) and odd (add) results.
                    let t1 = _mm256_mul_ps(d, wr);
                    let dsw = _mm256_permute_ps(d, 0b10_11_00_01);
                    let t2 = _mm256_mul_ps(dsw, wi);
                    let prod = _mm256_addsub_ps(t1, t2);
                    _mm256_storeu_ps(dp.add(2 * (lo + q)), sum);
                    _mm256_storeu_ps(dp.add(2 * (hi + q)), prod);
                }
                q += 4;
            }
        }
    }

    /// Swaps the re/im halves of each complex pair.
    #[inline(always)]
    fn swap_pairs(v: __m256) -> __m256 {
        // SAFETY: pure register permute, no memory access; only reachable
        // from `avx2`-gated callers.
        unsafe { _mm256_permute_ps(v, 0b10_11_00_01) }
    }

    /// Flips the sign of the imaginary (odd) lanes: `(re, im) → (re, −im)`.
    /// An XOR of the sign bit, so exact for every input.
    #[inline(always)]
    fn negate_im(v: __m256) -> __m256 {
        // SAFETY: pure register ops; only reachable from avx2-gated callers.
        unsafe {
            let mask = _mm256_set_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
            _mm256_xor_ps(v, mask)
        }
    }

    /// Complex multiply of 4 packed complex lanes by the broadcast twiddle
    /// `(wr, wi)`: `(re·wr − im·wi, im·wr + re·wi)` — the same term order as
    /// `Cf32`'s operator up to the exactly-commutative final addition.
    #[inline(always)]
    fn cmul(v: __m256, wr: __m256, wi: __m256) -> __m256 {
        // SAFETY: pure register ops; only reachable from avx2-gated callers.
        unsafe { _mm256_addsub_ps(_mm256_mul_ps(v, wr), _mm256_mul_ps(swap_pairs(v), wi)) }
    }

    /// AVX2 dedicated radix-3 butterfly stage: term-for-term the vector
    /// form of `radix3_lanes` (same constants, same op order per element),
    /// so the two are bit-exact.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime. Requires
    /// `s % 4 == 0` and both slices at least `3 * m * s` long.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix3_stage(
        src: &[Cf32],
        dst: &mut [Cf32],
        tw: &[Cf32],
        m: usize,
        s: usize,
        n_cur: usize,
        wn_stride: usize,
    ) {
        debug_assert!(s.is_multiple_of(4));
        debug_assert!(src.len() >= 3 * m * s && dst.len() >= 3 * m * s);
        let sp = src.as_ptr() as *const f32;
        let dp = dst.as_mut_ptr() as *mut f32;
        let c3 = _mm256_set1_ps(super::C3);
        let s3 = _mm256_set1_ps(super::S3);
        for p in 0..m {
            let w1 = tw[p * wn_stride];
            let w2 = tw[(2 * p) % n_cur * wn_stride];
            let (w1r, w1i) = (_mm256_set1_ps(w1.re), _mm256_set1_ps(w1.im));
            let (w2r, w2i) = (_mm256_set1_ps(w2.re), _mm256_set1_ps(w2.im));
            let (a0, a1, a2) = (s * p, s * (p + m), s * (p + 2 * m));
            let (o0, o1, o2) = (s * 3 * p, s * (3 * p + 1), s * (3 * p + 2));
            let mut q = 0usize;
            while q < s {
                // SAFETY: q + 4 <= s keeps every 8-float load/store in range.
                unsafe {
                    let x0 = _mm256_loadu_ps(sp.add(2 * (a0 + q)));
                    let x1 = _mm256_loadu_ps(sp.add(2 * (a1 + q)));
                    let x2 = _mm256_loadu_ps(sp.add(2 * (a2 + q)));
                    let t = _mm256_add_ps(x1, x2);
                    let u = _mm256_sub_ps(x1, x2);
                    // z = x0 + C3·t ; w = (S3·u.im, −S3·u.re)
                    let z = _mm256_add_ps(x0, _mm256_mul_ps(t, c3));
                    let w = negate_im(_mm256_mul_ps(swap_pairs(u), s3));
                    _mm256_storeu_ps(dp.add(2 * (o0 + q)), _mm256_add_ps(x0, t));
                    _mm256_storeu_ps(dp.add(2 * (o1 + q)), cmul(_mm256_add_ps(z, w), w1r, w1i));
                    _mm256_storeu_ps(dp.add(2 * (o2 + q)), cmul(_mm256_sub_ps(z, w), w2r, w2i));
                }
                q += 4;
            }
        }
    }

    /// AVX2 dedicated radix-5 butterfly stage: the vector form of
    /// `radix5_lanes`, bit-exact with it.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime. Requires
    /// `s % 4 == 0` and both slices at least `5 * m * s` long.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix5_stage(
        src: &[Cf32],
        dst: &mut [Cf32],
        tw: &[Cf32],
        m: usize,
        s: usize,
        n_cur: usize,
        wn_stride: usize,
    ) {
        debug_assert!(s.is_multiple_of(4));
        debug_assert!(src.len() >= 5 * m * s && dst.len() >= 5 * m * s);
        let sp = src.as_ptr() as *const f32;
        let dp = dst.as_mut_ptr() as *mut f32;
        let c51 = _mm256_set1_ps(super::C51);
        let c52 = _mm256_set1_ps(super::C52);
        let s51 = _mm256_set1_ps(super::S51);
        let s52 = _mm256_set1_ps(super::S52);
        for p in 0..m {
            let wp: [Cf32; 4] = [
                tw[p * wn_stride],
                tw[(2 * p) % n_cur * wn_stride],
                tw[(3 * p) % n_cur * wn_stride],
                tw[(4 * p) % n_cur * wn_stride],
            ];
            let a = [
                s * p,
                s * (p + m),
                s * (p + 2 * m),
                s * (p + 3 * m),
                s * (p + 4 * m),
            ];
            let o = [
                s * 5 * p,
                s * (5 * p + 1),
                s * (5 * p + 2),
                s * (5 * p + 3),
                s * (5 * p + 4),
            ];
            let mut q = 0usize;
            while q < s {
                // SAFETY: q + 4 <= s keeps every 8-float load/store in range.
                unsafe {
                    let x0 = _mm256_loadu_ps(sp.add(2 * (a[0] + q)));
                    let x1 = _mm256_loadu_ps(sp.add(2 * (a[1] + q)));
                    let x2 = _mm256_loadu_ps(sp.add(2 * (a[2] + q)));
                    let x3 = _mm256_loadu_ps(sp.add(2 * (a[3] + q)));
                    let x4 = _mm256_loadu_ps(sp.add(2 * (a[4] + q)));
                    let t1 = _mm256_add_ps(x1, x4);
                    let t2 = _mm256_add_ps(x2, x3);
                    let t3 = _mm256_sub_ps(x1, x4);
                    let t4 = _mm256_sub_ps(x2, x3);
                    let m1 = _mm256_add_ps(
                        _mm256_add_ps(x0, _mm256_mul_ps(t1, c51)),
                        _mm256_mul_ps(t2, c52),
                    );
                    let m2 = _mm256_add_ps(
                        _mm256_add_ps(x0, _mm256_mul_ps(t1, c52)),
                        _mm256_mul_ps(t2, c51),
                    );
                    let t3s = swap_pairs(t3);
                    let t4s = swap_pairs(t4);
                    let v1 = negate_im(_mm256_add_ps(
                        _mm256_mul_ps(t3s, s51),
                        _mm256_mul_ps(t4s, s52),
                    ));
                    let v2 = negate_im(_mm256_sub_ps(
                        _mm256_mul_ps(t3s, s52),
                        _mm256_mul_ps(t4s, s51),
                    ));
                    let y0 = _mm256_add_ps(_mm256_add_ps(x0, t1), t2);
                    _mm256_storeu_ps(dp.add(2 * (o[0] + q)), y0);
                    let pairs = [
                        (_mm256_add_ps(m1, v1), o[1], wp[0]),
                        (_mm256_add_ps(m2, v2), o[2], wp[1]),
                        (_mm256_sub_ps(m2, v2), o[3], wp[2]),
                        (_mm256_sub_ps(m1, v1), o[4], wp[3]),
                    ];
                    for (y, off, w) in pairs {
                        let prod = cmul(y, _mm256_set1_ps(w.re), _mm256_set1_ps(w.im));
                        _mm256_storeu_ps(dp.add(2 * (off + q)), prod);
                    }
                }
                q += 4;
            }
        }
    }
}

/// AVX-512 radix-2 butterfly stage: 8 interleaved complex values per
/// vector. Per-element arithmetic matches the AVX2/scalar forms exactly —
/// the `addsub` is emulated as an even-lane sign flip followed by an add,
/// which is the identical IEEE operation (`a − b ≡ a + (−b)`), so the tier
/// stays bit-exact.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    #![allow(unsafe_code)]

    use crate::complex::Cf32;
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX-512F support at runtime. Requires
    /// `s % 8 == 0`, `src.len() >= 2 * m * s`, and `dst.len() >= 2 * m * s`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn radix2_stage(
        src: &[Cf32],
        dst: &mut [Cf32],
        tw: &[Cf32],
        m: usize,
        s: usize,
        wn_stride: usize,
    ) {
        debug_assert!(s.is_multiple_of(8));
        debug_assert!(src.len() >= 2 * m * s && dst.len() >= 2 * m * s);
        let sp = src.as_ptr() as *const f32;
        let dp = dst.as_mut_ptr() as *mut f32;
        // −0.0 in even (real) lanes: XOR then add emulates addsub exactly.
        let even_neg = _mm512_set_ps(
            0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0,
        );
        for p in 0..m {
            let wp = tw[p * wn_stride];
            let wr = _mm512_set1_ps(wp.re);
            let wi = _mm512_set1_ps(wp.im);
            let a = s * p;
            let b = s * (p + m);
            let lo = s * 2 * p;
            let hi = s * (2 * p + 1);
            let mut q = 0usize;
            while q < s {
                // SAFETY: q + 8 <= s, so all eight-complex (16-float) loads
                // and stores stay inside the slices per the length bounds.
                unsafe {
                    let x0 = _mm512_loadu_ps(sp.add(2 * (a + q)));
                    let x1 = _mm512_loadu_ps(sp.add(2 * (b + q)));
                    let sum = _mm512_add_ps(x0, x1);
                    let d = _mm512_sub_ps(x0, x1);
                    let t1 = _mm512_mul_ps(d, wr);
                    let dsw = _mm512_permute_ps(d, 0b10_11_00_01);
                    let t2 = _mm512_mul_ps(dsw, wi);
                    let prod = _mm512_add_ps(t1, _mm512_xor_ps(t2, even_neg));
                    _mm512_storeu_ps(dp.add(2 * (lo + q)), sum);
                    _mm512_storeu_ps(dp.add(2 * (hi + q)), prod);
                }
                q += 8;
            }
        }
    }
}

/// Convenience: one-shot forward DFT (resolves through the plan cache).
pub fn dft(data: &mut [Cf32]) {
    plan(data.len()).forward(data);
}

/// Convenience: one-shot inverse DFT (resolves through the plan cache).
pub fn idft(data: &mut [Cf32]) {
    plan(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dft(x: &[Cf32]) -> Vec<Cf32> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Cf32::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let w = Cf32::from_phase(
                        -2.0 * std::f32::consts::PI * (j * k % n) as f32 / n as f32,
                    );
                    acc += w * v;
                }
                acc
            })
            .collect()
    }

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f32::max)
    }

    fn ramp(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::new((i % 17) as f32 - 8.0, ((i * 3) % 11) as f32 - 5.0))
            .collect()
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let plan = FftPlan::new(64);
        let mut x = vec![Cf32::ZERO; 64];
        x[0] = Cf32::ONE;
        plan.forward(&mut x);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-4 && v.im.abs() < 1e-4);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 600; // LTE 50-PRB DFT-precoding size
        let plan = FftPlan::new(n);
        let k0 = 42;
        let mut x: Vec<Cf32> = (0..n)
            .map(|j| Cf32::from_phase(2.0 * std::f32::consts::PI * (j * k0) as f32 / n as f32))
            .collect();
        plan.forward(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f32).abs() < 0.05 * n as f32);
            } else {
                assert!(v.abs() < 0.01 * n as f32, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn matches_naive_for_mixed_sizes() {
        for n in [1, 2, 3, 4, 5, 6, 8, 12, 15, 20, 30, 36, 60, 72, 128, 144] {
            let x = ramp(n);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            let z = naive_dft(&x);
            assert!(max_err(&y, &z) < 1e-2 * n as f32, "size {n}");
        }
    }

    #[test]
    fn matches_naive_for_prime_sizes() {
        for n in [7, 11, 13, 17, 23, 31] {
            let x = ramp(n);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            let z = naive_dft(&x);
            assert!(max_err(&y, &z) < 1e-3 * n as f32, "prime size {n}");
        }
    }

    #[test]
    fn lte_sizes_roundtrip() {
        for n in [128, 256, 512, 600, 1024, 1536, 2048, 900, 1200] {
            let x = ramp(n);
            let mut y = x.clone();
            let plan = FftPlan::new(n);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 2e-3, "size {n}");
        }
    }

    #[test]
    fn scratch_path_matches_allocating_path() {
        for n in [1usize, 2, 12, 128, 600, 1536] {
            let x = ramp(n);
            let mut a = x.clone();
            FftPlan::new(n).forward(&mut a);
            let mut b = x.clone();
            let mut scratch = Vec::new();
            let plan = plan(n);
            plan.forward_with(&mut b, &mut scratch);
            assert_eq!(a, b, "size {n}");
            // And the cached-plan inverse round-trips through the same scratch.
            plan.inverse_with(&mut b, &mut scratch);
            assert!(max_err(&x, &b) < 2e-3, "size {n}");
        }
    }

    #[test]
    fn every_supported_tier_is_bit_exact_vs_scalar() {
        use crate::simd::{self, SimdTier};
        let _g = simd::test_guard();
        // Sizes with radix-2/3/5 stages at s >= 4 (the vectorized cases)
        // plus odd/mixed sizes that exercise the fallback under all tiers.
        for tier in simd::supported_tiers().filter(|&t| t != SimdTier::Scalar) {
            for n in [8usize, 16, 128, 256, 600, 900, 1024, 1200, 1536, 2048] {
                let x = ramp(n);
                let plan = FftPlan::new(n);
                simd::force_tier(Some(SimdTier::Scalar));
                let mut a = x.clone();
                plan.forward(&mut a);
                simd::force_tier(Some(tier));
                let mut b = x.clone();
                plan.forward(&mut b);
                assert_eq!(a, b, "forward size {n} tier {}", tier.name());
                plan.inverse(&mut b);
                simd::force_tier(Some(SimdTier::Scalar));
                plan.inverse(&mut a);
                assert_eq!(a, b, "inverse size {n} tier {}", tier.name());
            }
        }
        simd::force_tier(None);
    }

    #[test]
    fn forward_rows_matches_per_row_calls() {
        let n = 600;
        let rows = 3;
        let plan = FftPlan::new(n);
        let mut batch: Vec<Cf32> = (0..rows).flat_map(|_| ramp(n)).collect();
        for (r, v) in batch.iter_mut().enumerate() {
            // Make rows distinct so a row-mixup would be caught.
            *v += Cf32::new(r as f32, -(r as f32));
        }
        let mut scratch = Vec::new();
        let mut expect = batch.clone();
        for row in expect.chunks_exact_mut(n) {
            plan.forward_with(row, &mut scratch);
        }
        plan.forward_rows(&mut batch, &mut scratch);
        assert_eq!(batch, expect);
    }

    #[test]
    fn plan_cache_returns_shared_plan() {
        let a = plan(640);
        let b = plan(640);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 640);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 1024;
        let x = ramp(n);
        let time_energy: f32 = x.iter().map(|v| v.norm_sq()).sum();
        let mut y = x;
        FftPlan::new(n).forward(&mut y);
        let freq_energy: f32 = y.iter().map(|v| v.norm_sq()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 60;
        let a = ramp(n);
        let b: Vec<Cf32> = a.iter().map(|v| v.conj() + Cf32::new(0.5, 1.0)).collect();
        let plan = FftPlan::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fsum: Vec<Cf32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fsum);
        let expect: Vec<Cf32> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &expect) < 1e-2);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_length_panics() {
        FftPlan::new(16).forward(&mut [Cf32::ZERO; 8]);
    }

    #[test]
    #[should_panic(expected = "scratch length")]
    fn wrong_scratch_length_panics() {
        FftPlan::new(16).forward_scratch(&mut [Cf32::ZERO; 16], &mut [Cf32::ZERO; 8]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(n in 1usize..200, seed in 0u64..1000) {
            let x: Vec<Cf32> = (0..n).map(|i| {
                let a = ((i as u64 + seed) * 2654435761 % 1000) as f32 / 500.0 - 1.0;
                let b = ((i as u64 * 7 + seed) * 40503 % 1000) as f32 / 500.0 - 1.0;
                Cf32::new(a, b)
            }).collect();
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            let err = x.iter().zip(&y).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max);
            prop_assert!(err < 5e-3, "n={n} err={err}");
        }
    }
}
