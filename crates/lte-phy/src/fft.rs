//! Mixed-radix FFT/IFFT and DFT transform precoding.
//!
//! LTE needs transforms of two kinds of sizes: power-of-two (and `1536 =
//! 2⁹·3`) OFDM FFTs, and `12·N_PRB`-point DFTs for SC-FDMA transform
//! precoding (e.g. 600 points for 50 PRBs). This module implements a
//! recursive mixed-radix Cooley-Tukey decomposition over arbitrary
//! factorizations, with a naive `O(n²)` DFT fallback for prime factors —
//! correct for *any* size, fast for the sizes LTE actually uses.
//!
//! The per-size [`FftPlan`] precomputes the factorization and a single
//! root-of-unity table; plans are cheap to clone and safe to share.

use crate::complex::Cf32;

/// A precomputed transform plan for a fixed size `n`.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// `twiddles[j] = e^{-2πi·j/n}` for `j ∈ [0, n)`.
    twiddles: Vec<Cf32>,
    /// Prime factorization of `n`, smallest factors first.
    factors: Vec<usize>,
}

/// Returns the prime factorization of `n` (smallest first). `n ≥ 1`.
fn factorize(mut n: usize) -> Vec<usize> {
    let mut f = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            f.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        f.push(n);
    }
    f
}

impl FftPlan {
    /// Builds a plan for `n`-point transforms.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT size must be positive");
        let twiddles = (0..n)
            .map(|j| Cf32::from_phase(-2.0 * std::f32::consts::PI * j as f32 / n as f32))
            .collect();
        FftPlan {
            n,
            twiddles,
            factors: factorize(n),
        }
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; a plan has size ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward DFT: `X[k] = Σ x[j]·e^{-2πi jk/n}` (no normalization).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Cf32]) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        let mut out = vec![Cf32::ZERO; self.n];
        self.rec(data, 1, &mut out, self.n, &self.factors);
        data.copy_from_slice(&out);
    }

    /// Inverse DFT with `1/n` normalization, so `inverse(forward(x)) = x`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Cf32]) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let s = 1.0 / self.n as f32;
        for v in data.iter_mut() {
            *v = v.conj().scale(s);
        }
    }

    /// Recursive mixed-radix step: computes the `n`-point DFT of
    /// `input[0], input[stride], …` into `out[0..n]`.
    fn rec(&self, input: &[Cf32], stride: usize, out: &mut [Cf32], n: usize, factors: &[usize]) {
        if n == 1 {
            out[0] = input[0];
            return;
        }
        let r = factors[0];
        let m = n / r;
        if m == 1 {
            // Pure small/naive DFT of size r.
            self.naive(input, stride, out, r);
            return;
        }
        // r sub-DFTs of size m over the decimated sequences x_q[j] = x[jr+q].
        for q in 0..r {
            self.rec(
                &input[q * stride..],
                stride * r,
                &mut out[q * m..(q + 1) * m],
                m,
                &factors[1..],
            );
        }
        // Combine: X[k1 + m·k2] = Σ_q W_n^{q·k1} · W_r^{q·k2} · X_q[k1].
        let root_stride = self.n / n; // W_n^j == twiddles[j · n_root/n]
        let r_stride = self.n / r;
        let mut t = [Cf32::ZERO; 16];
        debug_assert!(r <= 16 || m == 1, "large prime factors handled by naive()");
        if r > 16 {
            // Extremely large prime factor with a composite cofactor: fall
            // back to a naive DFT of the whole block (correct, slow).
            self.naive(input, stride, out, n);
            return;
        }
        for k1 in 0..m {
            for (q, tq) in t.iter_mut().enumerate().take(r) {
                let w = self.twiddles[(q * k1 * root_stride) % self.n];
                *tq = w * out[q * m + k1];
            }
            for k2 in 0..r {
                let mut acc = Cf32::ZERO;
                for (q, tq) in t.iter().enumerate().take(r) {
                    let w = self.twiddles[(q * k2 * r_stride) % self.n];
                    acc += w * *tq;
                }
                out[k1 + m * k2] = acc;
            }
        }
    }

    /// Naive `O(n²)` DFT used for prime sizes.
    fn naive(&self, input: &[Cf32], stride: usize, out: &mut [Cf32], n: usize) {
        let root_stride = self.n / n;
        for (k, o) in out.iter_mut().enumerate().take(n) {
            let mut acc = Cf32::ZERO;
            for j in 0..n {
                let w = self.twiddles[(j * k * root_stride) % self.n];
                acc += w * input[j * stride];
            }
            *o = acc;
        }
    }
}

/// Convenience: one-shot forward DFT (builds a plan internally).
pub fn dft(data: &mut [Cf32]) {
    FftPlan::new(data.len()).forward(data);
}

/// Convenience: one-shot inverse DFT (builds a plan internally).
pub fn idft(data: &mut [Cf32]) {
    FftPlan::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dft(x: &[Cf32]) -> Vec<Cf32> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Cf32::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let w = Cf32::from_phase(
                        -2.0 * std::f32::consts::PI * (j * k % n) as f32 / n as f32,
                    );
                    acc += w * v;
                }
                acc
            })
            .collect()
    }

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f32::max)
    }

    fn ramp(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| Cf32::new((i % 17) as f32 - 8.0, ((i * 3) % 11) as f32 - 5.0))
            .collect()
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let plan = FftPlan::new(64);
        let mut x = vec![Cf32::ZERO; 64];
        x[0] = Cf32::ONE;
        plan.forward(&mut x);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-4 && v.im.abs() < 1e-4);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 600; // LTE 50-PRB DFT-precoding size
        let plan = FftPlan::new(n);
        let k0 = 42;
        let mut x: Vec<Cf32> = (0..n)
            .map(|j| Cf32::from_phase(2.0 * std::f32::consts::PI * (j * k0) as f32 / n as f32))
            .collect();
        plan.forward(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f32).abs() < 0.05 * n as f32);
            } else {
                assert!(v.abs() < 0.01 * n as f32, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn matches_naive_for_mixed_sizes() {
        for n in [1, 2, 3, 4, 5, 6, 8, 12, 15, 20, 30, 36, 60, 72, 128, 144] {
            let x = ramp(n);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            let z = naive_dft(&x);
            assert!(max_err(&y, &z) < 1e-2 * n as f32, "size {n}");
        }
    }

    #[test]
    fn matches_naive_for_prime_sizes() {
        for n in [7, 11, 13, 17, 23, 31] {
            let x = ramp(n);
            let mut y = x.clone();
            FftPlan::new(n).forward(&mut y);
            let z = naive_dft(&x);
            assert!(max_err(&y, &z) < 1e-3 * n as f32, "prime size {n}");
        }
    }

    #[test]
    fn lte_sizes_roundtrip() {
        for n in [128, 256, 512, 600, 1024, 1536, 2048, 900, 1200] {
            let x = ramp(n);
            let mut y = x.clone();
            let plan = FftPlan::new(n);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 2e-3, "size {n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 1024;
        let x = ramp(n);
        let time_energy: f32 = x.iter().map(|v| v.norm_sq()).sum();
        let mut y = x;
        FftPlan::new(n).forward(&mut y);
        let freq_energy: f32 = y.iter().map(|v| v.norm_sq()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 60;
        let a = ramp(n);
        let b: Vec<Cf32> = a.iter().map(|v| v.conj() + Cf32::new(0.5, 1.0)).collect();
        let plan = FftPlan::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fsum: Vec<Cf32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fsum);
        let expect: Vec<Cf32> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &expect) < 1e-2);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_length_panics() {
        FftPlan::new(16).forward(&mut [Cf32::ZERO; 8]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(n in 1usize..200, seed in 0u64..1000) {
            let x: Vec<Cf32> = (0..n).map(|i| {
                let a = ((i as u64 + seed) * 2654435761 % 1000) as f32 / 500.0 - 1.0;
                let b = ((i as u64 * 7 + seed) * 40503 % 1000) as f32 / 500.0 - 1.0;
                Cf32::new(a, b)
            }).collect();
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            let err = x.iter().zip(&y).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max);
            prop_assert!(err < 5e-3, "n={n} err={err}");
        }
    }
}
