//! End-to-end PUSCH uplink chain: transmit-side test-vector generation and
//! the receive-side processing whose execution time the schedulers manage.
//!
//! The receiver is exposed two ways:
//!
//! * [`UplinkRx::decode_subframe`] — the serial chain, one call per subframe;
//! * [`SubframeJob`] — the staged form matching the paper's Fig. 5: the
//!   owner runs/absorbs individual **subtasks** (`run_fft_subtask`,
//!   `run_demod_subtask`, `run_decode_subtask`), which is exactly the unit
//!   RT-OPEX migrates to idle cores. `run_*` methods take `&self`, so a
//!   migrated subtask can execute on another thread while the owner works
//!   on its own share; results are combined with the `absorb_*` methods.

use crate::complex::Cf32;
use crate::crc::{CRC24A, CRC24B};
use crate::equalizer::{
    estimate_channel_band, estimate_channel_band_into, mrc_combine_into, ChannelEstimate,
};
use crate::error::PhyError;
use crate::fft::{self, FftPlan};
use crate::mcs::Mcs;
use crate::modulation::Modulation;
use crate::params::{is_dmrs_symbol, Bandwidth, SYMBOLS_PER_SUBFRAME};
use crate::ratematch::RateMatcher;
use crate::resource_grid::{Grid, OfdmProcessor};
use crate::scramble::{pusch_c_init, Scrambler};
use crate::segmentation::Segmentation;
use crate::tasks::TaskBreakdown;
use crate::turbo::{TurboDecoder, TurboEncoder, TurboWorkspace};
use crate::workspace::{self, PhyWorkspace};
use crate::zadoff_chu::dmrs_sequence;
use std::sync::Arc;

/// Strong "known zero" LLR clamped onto filler-bit positions.
const FILLER_LLR: f32 = 100.0;

/// Converts bytes to bits, MSB first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1))
        .collect()
}

/// Converts bits (MSB first) to bytes; the bit count must be a multiple of 8.
///
/// # Panics
/// Panics if `bits.len() % 8 != 0`.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    // analyze: allow(alloc): owned-return transport-block assembly used by the mailbox job; the result must outlive the job slab
    let mut out = Vec::new();
    bits_to_bytes_into(bits, &mut out);
    out
}

/// [`bits_to_bytes`] into a caller-owned vector (cleared and refilled; no
/// allocation once `out` has capacity).
///
/// # Panics
/// Panics if `bits.len() % 8 != 0`.
pub fn bits_to_bytes_into(bits: &[u8], out: &mut Vec<u8>) {
    // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
    assert_eq!(bits.len() % 8, 0, "bit count must be a multiple of 8");
    out.clear();
    out.extend(
        bits.chunks_exact(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b)),
    );
}

/// Full configuration of one basestation's uplink processing.
#[derive(Clone, Debug)]
pub struct UplinkConfig {
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Number of receive antennas `N` (1–8).
    pub num_antennas: usize,
    /// Modulation and coding scheme.
    pub mcs: Mcs,
    /// Turbo-iteration cap `Lm` (paper default: 4).
    pub max_turbo_iters: usize,
    /// UE identity for scrambling.
    pub n_rnti: u16,
    /// Cell identity for scrambling/DMRS.
    pub cell_id: u16,
    /// Allocated PRBs (contiguous from PRB 0). The paper's experiments use
    /// 100 % utilization; partial allocations model the multi-user /
    /// varying-utilization scenario its §4.2 footnote discusses.
    pub alloc_prbs: usize,
    seg: Segmentation,
    /// The constellation, resolved from the MCS once at construction so
    /// the per-subframe paths never re-derive (and never re-validate) it.
    modu: Modulation,
    /// Per-block rate-matching sizes `E_r`, precomputed at construction.
    e_splits: Vec<usize>,
    /// Prefix sums of `e_splits` (length `C + 1`).
    e_offsets: Vec<usize>,
    /// Indices of the data (non-DMRS) OFDM symbols.
    data_syms: Vec<usize>,
}

impl UplinkConfig {
    /// Builds a configuration: full-band allocation (the paper's 100 % PRB
    /// utilization), single user, `Lm = 4`.
    pub fn new(bandwidth: Bandwidth, num_antennas: usize, mcs_index: u8) -> Result<Self, PhyError> {
        Self::with_iters(
            bandwidth,
            num_antennas,
            mcs_index,
            crate::mcs::DEFAULT_MAX_TURBO_ITERS,
        )
    }

    /// Like [`UplinkConfig::new`] with an explicit turbo-iteration cap.
    pub fn with_iters(
        bandwidth: Bandwidth,
        num_antennas: usize,
        mcs_index: u8,
        max_turbo_iters: usize,
    ) -> Result<Self, PhyError> {
        Self::with_allocation(
            bandwidth,
            num_antennas,
            mcs_index,
            max_turbo_iters,
            bandwidth.num_prbs(),
        )
    }

    /// Builds a configuration with a partial allocation of `alloc_prbs`
    /// contiguous PRBs (SC-FDMA requires contiguity). The transport block
    /// size, coded bits, and DMRS band all scale with the allocation.
    pub fn with_allocation(
        bandwidth: Bandwidth,
        num_antennas: usize,
        mcs_index: u8,
        max_turbo_iters: usize,
        alloc_prbs: usize,
    ) -> Result<Self, PhyError> {
        if alloc_prbs == 0 || alloc_prbs > bandwidth.num_prbs() {
            return Err(PhyError::InvalidConfig {
                what: "alloc_prbs",
                detail: format!("{alloc_prbs} not in 1..={}", bandwidth.num_prbs()),
            });
        }
        if !(1..=8).contains(&num_antennas) {
            return Err(PhyError::InvalidConfig {
                what: "num_antennas",
                detail: format!("{num_antennas} not in 1..=8"),
            });
        }
        if max_turbo_iters == 0 || max_turbo_iters > 16 {
            return Err(PhyError::InvalidConfig {
                what: "max_turbo_iters",
                detail: format!("{max_turbo_iters} not in 1..=16"),
            });
        }
        let mcs = Mcs::new(mcs_index).ok_or_else(|| PhyError::InvalidConfig {
            what: "mcs",
            detail: format!("index {mcs_index} above 28"),
        })?;
        let tbs = mcs.transport_block_bits(alloc_prbs);
        let seg = Segmentation::compute(tbs + 24)?;

        // Precompute the hot-path lookup tables once (36.212 §5.1.4.1.2).
        let data_syms: Vec<usize> = (0..SYMBOLS_PER_SUBFRAME)
            .filter(|&l| !is_dmrs_symbol(l))
            .collect();
        let qm = mcs.modulation_order();
        let modu = Modulation::from_order(qm).ok_or_else(|| PhyError::InvalidConfig {
            what: "modulation",
            detail: format!("unsupported Qm {qm}"),
        })?;
        let alloc_sc = alloc_prbs * crate::params::SUBCARRIERS_PER_PRB;
        let g_sym = alloc_sc * data_syms.len(); // G' with one layer
        let c = seg.num_blocks;
        let gamma = g_sym % c;
        let e_splits: Vec<usize> = (0..c)
            .map(|r| {
                if r < c - gamma {
                    qm * (g_sym / c)
                } else {
                    qm * g_sym.div_ceil(c)
                }
            })
            .collect();
        let mut e_offsets = Vec::with_capacity(c + 1);
        let mut acc = 0usize;
        e_offsets.push(0);
        for &e in &e_splits {
            acc += e;
            e_offsets.push(acc);
        }

        Ok(UplinkConfig {
            bandwidth,
            num_antennas,
            mcs,
            max_turbo_iters,
            n_rnti: 0x1234,
            cell_id: 42,
            alloc_prbs,
            seg,
            modu,
            e_splits,
            e_offsets,
            data_syms,
        })
    }

    /// Allocated subcarriers (12 per allocated PRB).
    pub fn alloc_subcarriers(&self) -> usize {
        self.alloc_prbs * crate::params::SUBCARRIERS_PER_PRB
    }

    /// Data resource elements in the allocation (12 data symbols).
    pub fn data_res(&self) -> usize {
        self.alloc_subcarriers() * (SYMBOLS_PER_SUBFRAME - 2)
    }

    /// Transport block size in bits (scales with the allocation).
    pub fn tbs_bits(&self) -> usize {
        self.mcs.transport_block_bits(self.alloc_prbs)
    }

    /// Transport block size in bytes.
    pub fn transport_block_bytes(&self) -> usize {
        self.tbs_bits() / 8
    }

    /// Total coded bits per subframe: `G = allocated data REs × Qm`.
    pub fn coded_bits(&self) -> usize {
        self.data_res() * self.mcs.modulation_order()
    }

    /// The code-block segmentation in force.
    pub fn segmentation(&self) -> &Segmentation {
        &self.seg
    }

    /// The modulation scheme.
    pub fn modulation(&self) -> Modulation {
        self.modu
    }

    /// Per-code-block rate-matching output sizes `E_r` (36.212 §5.1.4.1.2),
    /// precomputed at construction.
    pub fn e_splits(&self) -> &[usize] {
        &self.e_splits
    }

    /// Bit offset of block `r` within the coded stream (precomputed).
    pub fn e_offset(&self, r: usize) -> usize {
        self.e_offsets[r]
    }

    /// Indices of the 12 data (non-DMRS) OFDM symbols (precomputed).
    pub fn data_symbols(&self) -> &[usize] {
        &self.data_syms
    }

    /// The Fig. 5 subtask breakdown for this configuration.
    pub fn breakdown(&self) -> TaskBreakdown {
        TaskBreakdown {
            fft: self.num_antennas * SYMBOLS_PER_SUBFRAME,
            demod: self.data_symbols().len(),
            decode: self.seg.num_blocks,
        }
    }
}

/// Per-code-block codec state (shared between identical block sizes).
#[derive(Clone, Debug)]
struct BlockCodec {
    k: usize,
    matcher: RateMatcher,
    decoder: TurboDecoder,
    encoder: TurboEncoder,
}

fn build_codecs(seg: &Segmentation) -> (Vec<BlockCodec>, Vec<usize>) {
    let sizes = seg.block_sizes();
    let mut codecs: Vec<BlockCodec> = Vec::new();
    let mut index = Vec::with_capacity(sizes.len());
    for k in sizes {
        if let Some(pos) = codecs.iter().position(|c| c.k == k) {
            index.push(pos);
        } else {
            let encoder = TurboEncoder::new(k);
            let decoder = TurboDecoder::with_qpp(encoder.qpp().clone());
            codecs.push(BlockCodec {
                k,
                matcher: RateMatcher::new(k),
                decoder,
                encoder,
            });
            index.push(codecs.len() - 1);
        }
    }
    (codecs, index)
}

/// A transmitted subframe: the time-domain IQ samples (single Tx antenna).
#[derive(Clone, Debug)]
pub struct TxSubframe {
    /// Baseband samples, `samples_per_subframe` long.
    pub samples: Vec<Cf32>,
}

/// PUSCH transmitter (test-vector generator).
#[derive(Clone, Debug)]
pub struct UplinkTx {
    cfg: UplinkConfig,
    ofdm: OfdmProcessor,
    dft: Arc<FftPlan>,
    scrambler: Scrambler,
    dmrs: Vec<Cf32>,
    codecs: Vec<BlockCodec>,
    codec_index: Vec<usize>,
}

impl UplinkTx {
    /// Creates a transmitter for the configuration.
    pub fn new(cfg: UplinkConfig) -> Self {
        let m = cfg.alloc_subcarriers();
        let (codecs, codec_index) = build_codecs(&cfg.seg);
        UplinkTx {
            ofdm: OfdmProcessor::new(cfg.bandwidth),
            dft: fft::plan(m),
            scrambler: Scrambler::new(pusch_c_init(cfg.n_rnti, 0, cfg.cell_id), cfg.coded_bits()),
            dmrs: dmrs_sequence(cfg.cell_id as usize, m),
            codecs,
            codec_index,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &UplinkConfig {
        &self.cfg
    }

    /// Encodes one transport block into a subframe of IQ samples
    /// (redundancy version 0).
    ///
    /// `payload` must be exactly [`UplinkConfig::transport_block_bytes`] long.
    pub fn encode_subframe(&self, payload: &[u8]) -> Result<TxSubframe, PhyError> {
        self.encode_subframe_rv(payload, 0)
    }

    /// Encodes a (re)transmission at redundancy version `rv` (0..=3) — the
    /// HARQ incremental-redundancy path (see [`crate::harq`]).
    pub fn encode_subframe_rv(&self, payload: &[u8], rv: u8) -> Result<TxSubframe, PhyError> {
        let cfg = &self.cfg;
        if payload.len() != cfg.transport_block_bytes() {
            return Err(PhyError::LengthMismatch {
                what: "payload bytes",
                expected: cfg.transport_block_bytes(),
                actual: payload.len(),
            });
        }
        // Transport block: payload bits + CRC24A.
        let mut tb = bytes_to_bits(payload);
        CRC24A.attach(&mut tb);
        let blocks = cfg.seg.segment(&tb)?;

        // Per block: turbo encode + rate match, then concatenate.
        let mut coded = Vec::with_capacity(cfg.coded_bits());
        for (r, (block, &e)) in blocks.iter().zip(cfg.e_splits()).enumerate() {
            let codec = &self.codecs[self.codec_index[r]];
            let cw = codec.encoder.encode(block);
            coded.extend(codec.matcher.rate_match_rv(&cw, e, rv));
        }
        debug_assert_eq!(coded.len(), cfg.coded_bits());

        // Scramble and map to constellation symbols.
        self.scrambler.scramble_bits(&mut coded);
        let symbols = cfg.modulation().map(&coded);

        // DFT-precode each data symbol and place on the grid's allocated
        // band (contiguous from subcarrier 0); DMRS on symbols 3/10.
        let m = cfg.alloc_subcarriers();
        let mut grid = Grid::new(cfg.bandwidth);
        for (si, &l) in cfg.data_symbols().iter().enumerate() {
            let mut chunk: Vec<Cf32> = symbols[si * m..(si + 1) * m].to_vec();
            self.dft.forward(&mut chunk);
            let scale = 1.0 / (m as f32).sqrt(); // unitary DFT precoding
            for (dst, src) in grid.symbol_mut(l)[..m].iter_mut().zip(&chunk) {
                *dst = src.scale(scale);
            }
        }
        for l in crate::params::dmrs_symbols() {
            grid.symbol_mut(l)[..m].copy_from_slice(&self.dmrs);
        }
        Ok(TxSubframe {
            samples: self.ofdm.modulate(&grid),
        })
    }
}

/// Outcome of decoding one subframe.
#[derive(Clone, Debug)]
pub struct RxOutput {
    /// Recovered transport-block payload bytes (best effort on CRC failure).
    pub payload: Vec<u8>,
    /// Transport-block CRC24A result — the ACK/NACK decision.
    pub crc_ok: bool,
    /// Per-code-block CRC results.
    pub block_crc_ok: Vec<bool>,
    /// Per-code-block turbo iteration counts (`L` of Eq. 1).
    pub block_iterations: Vec<usize>,
}

impl RxOutput {
    /// Total turbo iterations across code blocks.
    pub fn total_iterations(&self) -> usize {
        self.block_iterations.iter().sum()
    }

    /// Largest per-block iteration count (the critical-path `L`).
    pub fn max_iterations(&self) -> usize {
        self.block_iterations.iter().copied().max().unwrap_or(0)
    }
}

/// Borrowed outcome of a workspace-based decode
/// ([`UplinkRx::decode_subframe_with`]): the same information as
/// [`RxOutput`], but viewing the workspace's buffers instead of owning
/// fresh allocations.
#[derive(Debug)]
pub struct RxView<'w> {
    /// Recovered transport-block payload bytes (best effort on CRC failure).
    pub payload: &'w [u8],
    /// Transport-block CRC24A result — the ACK/NACK decision.
    pub crc_ok: bool,
    /// Per-code-block CRC results.
    pub block_crc_ok: &'w [bool],
    /// Per-code-block turbo iteration counts (`L` of Eq. 1).
    pub block_iterations: &'w [usize],
}

impl RxView<'_> {
    /// Copies the view into an owned [`RxOutput`].
    pub fn to_output(&self) -> RxOutput {
        RxOutput {
            payload: self.payload.to_vec(),
            crc_ok: self.crc_ok,
            block_crc_ok: self.block_crc_ok.to_vec(),
            block_iterations: self.block_iterations.to_vec(),
        }
    }

    /// Total turbo iterations across code blocks.
    pub fn total_iterations(&self) -> usize {
        self.block_iterations.iter().sum()
    }

    /// Largest per-block iteration count (the critical-path `L`).
    pub fn max_iterations(&self) -> usize {
        self.block_iterations.iter().copied().max().unwrap_or(0)
    }
}

/// Result of one FFT subtask: a demodulated antenna-symbol row.
#[derive(Clone, Debug)]
pub struct FftOut {
    /// Receive antenna index.
    pub antenna: usize,
    /// OFDM symbol index within the subframe.
    pub symbol: usize,
    /// The symbol's subcarrier values.
    pub row: Vec<Cf32>,
}

/// Result of one demod subtask: soft bits for one data symbol.
#[derive(Clone, Debug)]
pub struct DemodOut {
    /// Data-symbol index (0..12, skipping DMRS symbols).
    pub data_symbol: usize,
    /// `M × Qm` LLRs in transmission order.
    pub llrs: Vec<f32>,
}

/// Result of one decode subtask: one turbo-decoded code block.
#[derive(Clone, Debug)]
pub struct BlockOut {
    /// Code-block index.
    pub index: usize,
    /// Hard-decision bits of the block (length `K_r`).
    pub bits: Vec<u8>,
    /// Turbo iterations used.
    pub iterations: usize,
    /// Per-block CRC outcome.
    pub crc_ok: bool,
}

/// PUSCH receiver.
#[derive(Clone, Debug)]
pub struct UplinkRx {
    cfg: UplinkConfig,
    ofdm: OfdmProcessor,
    dft: Arc<FftPlan>,
    scrambler: Scrambler,
    dmrs: Vec<Cf32>,
    codecs: Vec<BlockCodec>,
    codec_index: Vec<usize>,
}

impl UplinkRx {
    /// Creates a receiver for the configuration.
    pub fn new(cfg: UplinkConfig) -> Self {
        let m = cfg.alloc_subcarriers();
        let (codecs, codec_index) = build_codecs(&cfg.seg);
        UplinkRx {
            ofdm: OfdmProcessor::new(cfg.bandwidth),
            dft: fft::plan(m),
            scrambler: Scrambler::new(pusch_c_init(cfg.n_rnti, 0, cfg.cell_id), cfg.coded_bits()),
            dmrs: dmrs_sequence(cfg.cell_id as usize, m),
            codecs,
            codec_index,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &UplinkConfig {
        &self.cfg
    }

    /// Starts a staged decode of one subframe. `rx_samples` holds one
    /// stream per receive antenna.
    pub fn start_job<'a>(
        &'a self,
        rx_samples: &'a [Vec<Cf32>],
    ) -> Result<SubframeJob<'a>, PhyError> {
        let cfg = &self.cfg;
        if rx_samples.len() != cfg.num_antennas {
            return Err(PhyError::LengthMismatch {
                what: "antenna streams",
                expected: cfg.num_antennas,
                actual: rx_samples.len(),
            });
        }
        let need = cfg.bandwidth.samples_per_subframe();
        for s in rx_samples {
            if s.len() != need {
                return Err(PhyError::LengthMismatch {
                    what: "subframe samples",
                    expected: need,
                    actual: s.len(),
                });
            }
        }
        Ok(SubframeJob {
            rx: self,
            samples: rx_samples,
            grids: vec![Grid::new(cfg.bandwidth); cfg.num_antennas],
            est: None,
            llrs: vec![0.0; cfg.coded_bits()],
            fft_done: 0,
            demod_done: 0,
            blocks: vec![None; cfg.seg.num_blocks],
        })
    }

    /// Runs one FFT subtask against raw antenna streams — the stateless
    /// form used when the subtask executes on a *different* thread than
    /// the job owner (RT-OPEX migration): the callee only needs shared
    /// references, and the owner absorbs the returned value.
    ///
    /// # Panics
    /// Panics if `i` is out of range for the configured antenna count.
    pub fn run_fft_subtask_on(&self, rx_samples: &[Vec<Cf32>], i: usize) -> FftOut {
        // The output row is owned (it crosses threads on migration), but
        // the FFT scratch comes from this thread's workspace.
        let mut row = Vec::new();
        self.run_fft_subtask_into(rx_samples, i, &mut row);
        FftOut {
            antenna: i / SYMBOLS_PER_SUBFRAME,
            symbol: i % SYMBOLS_PER_SUBFRAME,
            row,
        }
    }

    /// [`UplinkRx::run_fft_subtask_on`] into a caller-owned row buffer —
    /// no allocation once `row` has capacity. This is the form the
    /// work-stealing runtime uses: a thief demodulates straight into a
    /// preallocated slot in the owner's arena.
    ///
    /// # Panics
    /// Panics if `i` is out of range for the configured antenna count.
    pub fn run_fft_subtask_into(&self, rx_samples: &[Vec<Cf32>], i: usize, row: &mut Vec<Cf32>) {
        let count = self.cfg.breakdown().fft;
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(i < count, "fft subtask {i} out of range");
        let antenna = i / SYMBOLS_PER_SUBFRAME;
        let symbol = i % SYMBOLS_PER_SUBFRAME;
        row.clear();
        row.resize(self.cfg.bandwidth.num_subcarriers(), Cf32::ZERO);
        workspace::with_thread_workspace(|ws| {
            self.ofdm.demod_symbol_into(
                &rx_samples[antenna],
                symbol,
                row,
                &mut ws.time,
                &mut ws.fft_scratch,
            );
        });
    }

    /// Runs one antenna's full 14-symbol FFT batch — the node's FFT
    /// migration unit — into `out` as 14 back-to-back subcarrier rows
    /// (`out.len() == 14 × num_subcarriers`). Allocation-free once `out`
    /// has grown; this is what a thief executes into a slot arena.
    ///
    /// # Panics
    /// Panics if `antenna` is out of range.
    pub fn run_fft_batch_into(
        &self,
        rx_samples: &[Vec<Cf32>],
        antenna: usize,
        out: &mut Vec<Cf32>,
    ) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(
            antenna < self.cfg.num_antennas,
            "antenna {antenna} out of range"
        );
        let nsc = self.cfg.bandwidth.num_subcarriers();
        out.clear();
        out.resize(SYMBOLS_PER_SUBFRAME * nsc, Cf32::ZERO);
        workspace::with_thread_workspace(|ws| {
            for (symbol, row) in out.chunks_exact_mut(nsc).enumerate() {
                self.ofdm.demod_symbol_into(
                    &rx_samples[antenna],
                    symbol,
                    row,
                    &mut ws.time,
                    &mut ws.fft_scratch,
                );
            }
        });
    }

    /// Runs one decode subtask against a complete coded-LLR stream — the
    /// stateless (migratable) form of [`SubframeJob::run_decode_subtask`].
    ///
    /// # Panics
    /// Panics if `r` is out of range or `llrs` has the wrong length.
    pub fn run_decode_subtask_on(&self, llrs: &[f32], r: usize) -> BlockOut {
        let mut bits = Vec::new();
        let (iterations, crc_ok) = self.run_decode_subtask_into(llrs, r, &mut bits);
        BlockOut {
            index: r,
            crc_ok,
            // Owned copy: the result crosses threads on migration.
            bits,
            iterations,
        }
    }

    /// [`UplinkRx::run_decode_subtask_on`] into a caller-owned bit buffer,
    /// returning `(iterations, crc_ok)` — no allocation once `bits` has
    /// capacity. Thieves in the work-stealing runtime decode into a
    /// preallocated [`BlockBuf`] slot in the owner's arena.
    ///
    /// # Panics
    /// Panics if `r` is out of range or `llrs` has the wrong length.
    pub fn run_decode_subtask_into(
        &self,
        llrs: &[f32],
        r: usize,
        bits: &mut Vec<u8>,
    ) -> (usize, bool) {
        let cfg = &self.cfg;
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(r < cfg.seg.num_blocks, "decode subtask {r} out of range");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(llrs.len(), cfg.coded_bits(), "coded LLR stream length");
        let e = cfg.e_splits()[r];
        let off = cfg.e_offset(r);
        let multi = cfg.seg.num_blocks > 1;
        let filler = if r == 0 { cfg.seg.filler } else { 0 };
        let codec = &self.codecs[self.codec_index[r]];

        workspace::with_thread_workspace(|ws| {
            ws.block_llrs.clear();
            ws.block_llrs.extend_from_slice(&llrs[off..off + e]);
            self.scrambler.descramble_llrs_at(off, &mut ws.block_llrs);
            codec
                .matcher
                .de_rate_match_into(&ws.block_llrs, &mut ws.d0, &mut ws.d1, &mut ws.d2);
            for v in ws.d0.iter_mut().take(filler) {
                *v = FILLER_LLR;
            }
            let (iterations, crc_ok) = codec.decoder.decode_with(
                &ws.d0,
                &ws.d1,
                &ws.d2,
                cfg.max_turbo_iters,
                |bits| {
                    if multi {
                        CRC24B.check(bits)
                    } else {
                        CRC24A.check(&bits[filler..])
                    }
                },
                &mut ws.turbo,
            );
            bits.clear();
            bits.extend_from_slice(&ws.turbo.bits);
            (iterations, crc_ok)
        })
    }

    /// Stages decode subtask `r` into the next free slot of `scratch`:
    /// extracts and descrambles the block's LLR segment, de-rate-matches
    /// it into the slot's `d0/d1/d2` streams and clamps filler positions —
    /// everything [`UplinkRx::run_decode_subtask_into`] does *before* the
    /// turbo decoder runs. A later [`run_staged_decode_batch`] call then
    /// decodes all staged slots together, pairing same-`K` blocks through
    /// the wide turbo kernel. Returns the slot index.
    ///
    /// # Panics
    /// Panics if `r` is out of range, `llrs` has the wrong length, or
    /// `scratch` is full.
    pub fn stage_decode_subtask(
        &self,
        llrs: &[f32],
        r: usize,
        scratch: &mut DecodeBatchScratch,
    ) -> usize {
        let cfg = &self.cfg;
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(r < cfg.seg.num_blocks, "decode subtask {r} out of range");
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(llrs.len(), cfg.coded_bits(), "coded LLR stream length");
        // analyze: allow(panic): buffer-shape contract; callers size their drains to `capacity()`
        assert!(!scratch.is_full(), "decode batch scratch full");
        let e = cfg.e_splits()[r];
        let off = cfg.e_offset(r);
        let i = scratch.len;
        let slot = &mut scratch.slots[i];
        slot.block_llrs.clear();
        slot.block_llrs.extend_from_slice(&llrs[off..off + e]);
        self.scrambler.descramble_llrs_at(off, &mut slot.block_llrs);
        let codec = &self.codecs[self.codec_index[r]];
        codec.matcher.de_rate_match_into(
            &slot.block_llrs,
            &mut slot.d0,
            &mut slot.d1,
            &mut slot.d2,
        );
        slot.filler = if r == 0 { cfg.seg.filler } else { 0 };
        for v in slot.d0.iter_mut().take(slot.filler) {
            *v = FILLER_LLR;
        }
        slot.multi = cfg.seg.num_blocks > 1;
        slot.max_iters = cfg.max_turbo_iters;
        slot.codec_idx = self.codec_index[r];
        scratch.len = i + 1;
        i
    }

    /// Decodes a (re)transmission at redundancy version `rv`, combining its
    /// soft information with everything already accumulated in `harq`
    /// before turbo decoding — chase combining for repeated rvs,
    /// incremental redundancy across different rvs.
    ///
    /// The caller owns the ACK/NACK policy: on `crc_ok` reset the process,
    /// otherwise request the next rv from
    /// [`crate::harq::rv_for_transmission`] and call again.
    ///
    /// # Errors
    /// Propagates configuration/shape errors; a failed CRC is reported in
    /// the output, not as an error.
    pub fn decode_subframe_harq(
        &self,
        rx_samples: &[Vec<Cf32>],
        rv: u8,
        harq: &mut crate::harq::HarqProcess,
    ) -> Result<RxOutput, PhyError> {
        if harq.num_blocks() != self.cfg.seg.num_blocks {
            return Err(PhyError::LengthMismatch {
                what: "harq process blocks",
                expected: self.cfg.seg.num_blocks,
                actual: harq.num_blocks(),
            });
        }
        let mut job = self.start_job(rx_samples)?;
        for i in 0..job.fft_subtask_count() {
            let out = job.run_fft_subtask(i);
            job.absorb_fft(out);
        }
        job.finish_fft();
        for i in 0..job.demod_subtask_count() {
            let out = job.run_demod_subtask(i);
            job.absorb_demod(out);
        }
        let llrs = job.coded_llrs().to_vec();
        let cfg = &self.cfg;
        for r in 0..cfg.seg.num_blocks {
            let e = cfg.e_splits()[r];
            let off = cfg.e_offset(r);
            let mut slice = llrs[off..off + e].to_vec();
            self.scrambler.descramble_llrs_at(off, &mut slice);
            let codec = &self.codecs[self.codec_index[r]];
            let (d0, d1, d2) = codec.matcher.de_rate_match_rv(&slice, rv);
            let (c0, c1, c2) = harq.accumulate(r, &d0, &d1, &d2)?;
            let mut cd0 = c0.to_vec();
            let (c1, c2) = (c1.to_vec(), c2.to_vec());
            if r == 0 {
                for v in cd0.iter_mut().take(cfg.seg.filler) {
                    *v = FILLER_LLR;
                }
            }
            let multi = cfg.seg.num_blocks > 1;
            let filler = if r == 0 { cfg.seg.filler } else { 0 };
            let res = codec
                .decoder
                .decode(&cd0, &c1, &c2, cfg.max_turbo_iters, |bits| {
                    if multi {
                        CRC24B.check(bits)
                    } else {
                        CRC24A.check(&bits[filler..])
                    }
                });
            job.absorb_decode(BlockOut {
                index: r,
                crc_ok: res.converged,
                bits: res.bits,
                iterations: res.iterations,
            });
        }
        harq.mark_transmission();
        job.finish()
    }

    /// Decodes one subframe serially, using `ws` for every intermediate
    /// buffer and returning views into the workspace instead of fresh
    /// allocations. After one warm-up call (or an explicit
    /// [`PhyWorkspace::warm`]) further calls with the same — or any
    /// smaller — configuration perform **zero heap allocations**.
    ///
    /// Produces bit-identical results to the staged
    /// [`UplinkRx::start_job`] path: both run the same `_into` kernels in
    /// the same order.
    ///
    /// # Errors
    /// Returns [`PhyError::LengthMismatch`] if the antenna-stream count or
    /// per-stream sample count does not match the configuration.
    pub fn decode_subframe_with<'w>(
        &self,
        rx_samples: &[Vec<Cf32>],
        ws: &'w mut PhyWorkspace,
    ) -> Result<RxView<'w>, PhyError> {
        let cfg = &self.cfg;
        if rx_samples.len() != cfg.num_antennas {
            return Err(PhyError::LengthMismatch {
                what: "antenna streams",
                expected: cfg.num_antennas,
                actual: rx_samples.len(),
            });
        }
        let need = cfg.bandwidth.samples_per_subframe();
        for s in rx_samples {
            if s.len() != need {
                return Err(PhyError::LengthMismatch {
                    what: "subframe samples",
                    expected: need,
                    actual: s.len(),
                });
            }
        }
        ws.prepare(cfg);
        let PhyWorkspace {
            grids,
            est,
            llrs,
            time,
            fft_scratch,
            combined,
            post_var,
            nv,
            sym_llrs,
            block_llrs,
            d0,
            d1,
            d2,
            turbo,
            block_bits,
            block_crc_ok,
            block_iters,
            tb,
            tb_oks,
            payload,
        } = ws;

        // FFT task: CP removal + FFT per antenna-symbol.
        for (a, samples) in rx_samples.iter().enumerate() {
            for l in 0..SYMBOLS_PER_SUBFRAME {
                self.ofdm
                    .demod_symbol_into(samples, l, grids[a].symbol_mut(l), time, fft_scratch);
            }
        }
        let m = cfg.alloc_subcarriers();
        estimate_channel_band_into(grids, &self.dmrs, 0..m, est);

        // Demod task: MRC + DFT de-precoding + soft demapping per data
        // symbol.
        llrs.clear();
        llrs.resize(cfg.coded_bits(), 0.0);
        let per_symbol = m * cfg.mcs.modulation_order();
        let scale = (m as f32).sqrt();
        for (si, &l) in cfg.data_symbols().iter().enumerate() {
            let mut rows: [&[Cf32]; 8] = [&[]; 8];
            for (a, g) in grids.iter().enumerate() {
                rows[a] = &g.symbol(l)[..m];
            }
            mrc_combine_into(&rows[..grids.len()], est, combined, post_var);
            self.dft.inverse_with(combined, fft_scratch);
            for v in combined.iter_mut() {
                *v = v.scale(scale);
            }
            let mean_var = post_var.iter().sum::<f32>() / m as f32;
            nv.clear();
            nv.resize(m, mean_var);
            sym_llrs.clear();
            cfg.modulation().demap_maxlog(combined, nv, sym_llrs);
            llrs[si * per_symbol..(si + 1) * per_symbol].copy_from_slice(sym_llrs);
        }

        // Decode task: descramble + de-rate-match + turbo per code block.
        block_crc_ok.clear();
        block_iters.clear();
        let multi = cfg.seg.num_blocks > 1;
        for r in 0..cfg.seg.num_blocks {
            let e = cfg.e_splits[r];
            let off = cfg.e_offsets[r];
            block_llrs.clear();
            block_llrs.extend_from_slice(&llrs[off..off + e]);
            self.scrambler.descramble_llrs_at(off, block_llrs);
            let codec = &self.codecs[self.codec_index[r]];
            codec.matcher.de_rate_match_into(block_llrs, d0, d1, d2);
            let filler = if r == 0 { cfg.seg.filler } else { 0 };
            for v in d0.iter_mut().take(filler) {
                *v = FILLER_LLR;
            }
            let (iterations, crc_ok) = codec.decoder.decode_with(
                d0,
                d1,
                d2,
                cfg.max_turbo_iters,
                |bits| {
                    if multi {
                        CRC24B.check(bits)
                    } else {
                        CRC24A.check(&bits[filler..])
                    }
                },
                turbo,
            );
            block_crc_ok.push(crc_ok);
            block_iters.push(iterations);
            block_bits[r].clear();
            block_bits[r].extend_from_slice(&turbo.bits);
        }

        // Finish: transport-block reassembly + CRC24A.
        cfg.seg
            .desegment_into(&block_bits[..cfg.seg.num_blocks], tb, tb_oks)?;
        let crc_ok = CRC24A.check(tb) && block_crc_ok.iter().all(|&b| b);
        bits_to_bytes_into(&tb[..cfg.tbs_bits()], payload);
        Ok(RxView {
            payload: &payload[..],
            crc_ok,
            block_crc_ok: &block_crc_ok[..],
            block_iterations: &block_iters[..],
        })
    }

    /// Serial convenience wrapper: decodes on the calling thread using its
    /// thread-local [`PhyWorkspace`], so repeated calls on one thread are
    /// allocation-free in steady state.
    ///
    /// # Errors
    /// See [`UplinkRx::decode_subframe_with`].
    pub fn decode_subframe(&self, rx_samples: &[Vec<Cf32>]) -> Result<RxOutput, PhyError> {
        workspace::with_thread_workspace(|ws| {
            let view = self.decode_subframe_with(rx_samples, ws)?;
            Ok(view.to_output())
        })
    }
}

/// A staged subframe decode (see module docs). Subtask `run_*` methods are
/// `&self` and side-effect-free, so they can run on any thread; `absorb_*`
/// and the stage transitions belong to the owning thread.
pub struct SubframeJob<'a> {
    rx: &'a UplinkRx,
    samples: &'a [Vec<Cf32>],
    grids: Vec<Grid>,
    est: Option<ChannelEstimate>,
    llrs: Vec<f32>,
    fft_done: usize,
    demod_done: usize,
    blocks: Vec<Option<BlockOut>>,
}

impl<'a> SubframeJob<'a> {
    /// Number of FFT subtasks (`N × 14`).
    pub fn fft_subtask_count(&self) -> usize {
        self.rx.cfg.breakdown().fft
    }

    /// Runs FFT subtask `i` (antenna `i / 14`, symbol `i % 14`).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn run_fft_subtask(&self, i: usize) -> FftOut {
        self.rx.run_fft_subtask_on(self.samples, i)
    }

    /// The complete coded-LLR stream (valid once the demod task finished);
    /// owners clone this into shared storage when migrating decode
    /// subtasks to other threads.
    ///
    /// # Panics
    /// Panics if demod subtasks are still outstanding.
    pub fn coded_llrs(&self) -> &[f32] {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.demod_done,
            self.demod_subtask_count(),
            "demod task incomplete"
        );
        &self.llrs
    }

    /// Stores an FFT subtask result.
    pub fn absorb_fft(&mut self, out: FftOut) {
        self.grids[out.antenna]
            .symbol_mut(out.symbol)
            .copy_from_slice(&out.row);
        self.fft_done += 1;
    }

    /// Ends the FFT task: estimates the channel from the DMRS symbols.
    /// Must be called once after all FFT results are absorbed.
    ///
    /// # Panics
    /// Panics if FFT subtasks are still outstanding.
    pub fn finish_fft(&mut self) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.fft_done,
            self.fft_subtask_count(),
            "FFT task incomplete"
        );
        let band = 0..self.rx.cfg.alloc_subcarriers();
        self.est = Some(estimate_channel_band(&self.grids, &self.rx.dmrs, band));
    }

    /// Number of demod subtasks (12 data symbols).
    pub fn demod_subtask_count(&self) -> usize {
        self.rx.cfg.breakdown().demod
    }

    /// Runs demod subtask `i`: MRC-combines data symbol `i` across
    /// antennas, removes the DFT precoding and soft-demaps to LLRs.
    ///
    /// # Panics
    /// Panics if called before [`SubframeJob::finish_fft`] or `i` is out of
    /// range.
    pub fn run_demod_subtask(&self, i: usize) -> DemodOut {
        // analyze: allow(panic): stage-ordering protocol; the SlotBoard confirms every subtask before this stage runs, so a missing result is a scheduler bug
        let est = self.est.as_ref().expect("finish_fft must run first");
        let data_syms = self.rx.cfg.data_symbols();
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(i < data_syms.len(), "demod subtask {i} out of range");
        let l = data_syms[i];
        let m = self.rx.cfg.alloc_subcarriers();
        let mut llrs = Vec::with_capacity(m * self.rx.cfg.mcs.modulation_order());
        workspace::with_thread_workspace(|ws| {
            let mut rows: [&[Cf32]; 8] = [&[]; 8];
            for (a, g) in self.grids.iter().enumerate() {
                rows[a] = &g.symbol(l)[..m];
            }
            mrc_combine_into(
                &rows[..self.grids.len()],
                est,
                &mut ws.combined,
                &mut ws.post_var,
            );

            // Undo the unitary DFT precoding (SC-FDMA → constellation
            // domain).
            self.rx
                .dft
                .inverse_with(&mut ws.combined, &mut ws.fft_scratch);
            let scale = (m as f32).sqrt();
            for v in ws.combined.iter_mut() {
                *v = v.scale(scale);
            }
            // The IDFT spreads each subcarrier's noise over all
            // constellation symbols: use the mean post-combining variance
            // for every symbol.
            let mean_var = ws.post_var.iter().sum::<f32>() / m as f32;
            ws.nv.clear();
            ws.nv.resize(m, mean_var);
            self.rx
                .cfg
                .modulation()
                .demap_maxlog(&ws.combined, &ws.nv, &mut llrs);
        });
        DemodOut {
            data_symbol: i,
            llrs,
        }
    }

    /// Stores a demod subtask result.
    pub fn absorb_demod(&mut self, out: DemodOut) {
        let per_symbol = self.rx.cfg.alloc_subcarriers() * self.rx.cfg.mcs.modulation_order();
        let off = out.data_symbol * per_symbol;
        self.llrs[off..off + per_symbol].copy_from_slice(&out.llrs);
        self.demod_done += 1;
    }

    /// Number of decode subtasks (`C` code blocks).
    pub fn decode_subtask_count(&self) -> usize {
        self.rx.cfg.seg.num_blocks
    }

    /// Runs decode subtask `r`: descrambles the block's slice of the coded
    /// stream, de-rate-matches, clamps filler bits, and turbo-decodes with
    /// CRC early termination.
    ///
    /// # Panics
    /// Panics if demod subtasks are still outstanding or `r` out of range.
    pub fn run_decode_subtask(&self, r: usize) -> BlockOut {
        self.rx.run_decode_subtask_on(self.coded_llrs(), r)
    }

    /// Stores a decode subtask result.
    pub fn absorb_decode(&mut self, out: BlockOut) {
        let idx = out.index;
        self.blocks[idx] = Some(out);
    }

    /// Finishes the job: reassembles the transport block and checks its CRC.
    ///
    /// # Panics
    /// Panics if any decode subtask result is missing.
    pub fn finish(self) -> Result<RxOutput, PhyError> {
        let cfg = &self.rx.cfg;
        // analyze: allow(alloc): owned-return transport-block assembly used by the mailbox job; the result must outlive the job slab
        let mut block_bits = Vec::with_capacity(cfg.seg.num_blocks);
        // analyze: allow(alloc): owned-return transport-block assembly used by the mailbox job; the result must outlive the job slab
        let mut block_crc_ok = Vec::with_capacity(cfg.seg.num_blocks);
        // analyze: allow(alloc): owned-return transport-block assembly used by the mailbox job; the result must outlive the job slab
        let mut block_iterations = Vec::with_capacity(cfg.seg.num_blocks);
        for (r, slot) in self.blocks.into_iter().enumerate() {
            // analyze: allow(panic): stage-ordering protocol; the SlotBoard confirms every subtask before this stage runs, so a missing result is a scheduler bug
            let out = slot.unwrap_or_else(|| panic!("decode subtask {r} missing"));
            block_crc_ok.push(out.crc_ok);
            block_iterations.push(out.iterations);
            block_bits.push(out.bits);
        }
        let (tb, _) = cfg.seg.desegment(&block_bits)?;
        let crc_ok = CRC24A.check(&tb) && block_crc_ok.iter().all(|&b| b);
        let payload = bits_to_bytes(&tb[..cfg.tbs_bits()]);
        Ok(RxOutput {
            payload,
            crc_ok,
            block_crc_ok,
            block_iterations,
        })
    }
}

/// Reusable result buffer for one migrated decode subtask: the
/// allocation-free counterpart of [`BlockOut`], owned by a slot arena and
/// refilled in place by [`UplinkRx::run_decode_subtask_into`].
#[derive(Clone, Debug, Default)]
pub struct BlockBuf {
    /// Hard-decision bits of the block (length `K_r`).
    pub bits: Vec<u8>,
    /// Turbo iterations used.
    pub iterations: usize,
    /// Per-block CRC outcome.
    pub crc_ok: bool,
}

impl BlockBuf {
    /// An empty buffer; grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows the bit buffer for any block of `cfg`.
    pub fn warm(&mut self, cfg: &UplinkConfig) {
        let want = cfg.seg.k_plus;
        self.bits.reserve(want.saturating_sub(self.bits.len()));
    }
}

/// Largest number of decode subtasks one [`run_staged_decode_batch`] call
/// drains: enough for every code block of a 5 MHz subframe plus headroom
/// for cross-cell drains, small enough that staging never delays the
/// first decode noticeably.
pub const MAX_DECODE_BATCH: usize = 8;

/// One staged decode subtask inside a [`DecodeBatchScratch`]: the
/// descrambled, de-rate-matched soft streams plus the bookkeeping the
/// early-stop closure needs, and the decode outputs.
#[derive(Debug, Default)]
pub struct DecodeSlot {
    block_llrs: Vec<f32>,
    d0: Vec<f32>,
    d1: Vec<f32>,
    d2: Vec<f32>,
    max_iters: usize,
    multi: bool,
    filler: usize,
    codec_idx: usize,
    /// Hard-decision bits (valid after [`run_staged_decode_batch`]).
    pub bits: Vec<u8>,
    /// Turbo iterations used.
    pub iterations: usize,
    /// Per-block CRC outcome.
    pub crc_ok: bool,
}

/// Preallocated staging area for a batched decode drain: up to
/// [`MAX_DECODE_BATCH`] subtasks' prepped streams and turbo workspaces.
/// A runtime worker keeps one per core, warms it once per configuration,
/// and reuses it every subframe — the steady-state batched decode
/// performs **zero heap allocations**, like the rest of the slab path.
#[derive(Debug)]
pub struct DecodeBatchScratch {
    slots: Vec<DecodeSlot>,
    workspaces: Vec<TurboWorkspace>,
    len: usize,
}

impl Default for DecodeBatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl DecodeBatchScratch {
    /// A scratch with [`MAX_DECODE_BATCH`] cold slots; warm before use.
    pub fn new() -> Self {
        DecodeBatchScratch {
            // analyze: allow(alloc): scratch construction; runs once per worker and tests/alloc_regression.rs proves the steady state is alloc-free
            slots: (0..MAX_DECODE_BATCH)
                .map(|_| DecodeSlot::default())
                .collect(),
            // analyze: allow(alloc): scratch construction; runs once per worker and tests/alloc_regression.rs proves the steady state is alloc-free
            workspaces: (0..MAX_DECODE_BATCH)
                .map(|_| TurboWorkspace::new())
                .collect(),
            len: 0,
        }
    }

    /// Pre-grows every slot for any block of `cfg`.
    pub fn warm(&mut self, cfg: &UplinkConfig) {
        let max_e = cfg.e_splits().iter().copied().max().unwrap_or(0);
        let k = cfg.seg.k_plus;
        for slot in &mut self.slots {
            slot.block_llrs
                .reserve(max_e.saturating_sub(slot.block_llrs.len()));
            for d in [&mut slot.d0, &mut slot.d1, &mut slot.d2] {
                d.reserve((k + 4).saturating_sub(d.len()));
            }
            slot.bits.reserve(k.saturating_sub(slot.bits.len()));
        }
        for ws in &mut self.workspaces {
            ws.warm(k);
        }
    }

    /// Slots staged since the last [`DecodeBatchScratch::clear`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no subtask is staged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every slot is staged.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Maximum batch size.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Drops all staged subtasks (buffers keep their capacity).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Staged slot `i` (outputs valid after [`run_staged_decode_batch`]).
    ///
    /// # Panics
    /// Panics if `i` is not a staged slot index.
    pub fn slot(&self, i: usize) -> &DecodeSlot {
        // analyze: allow(panic): buffer-shape contract; callers index by the value stage_decode_subtask returned
        assert!(i < self.len, "slot {i} not staged");
        &self.slots[i]
    }
}

/// Decodes every staged slot of `scratch`, pairing same-`K` blocks
/// through [`TurboDecoder::decode_pair_with`] so two trellises share one
/// wide SIMD kernel; leftovers run the single-block path. `rxs[i]` is the
/// receiver whose [`UplinkRx::stage_decode_subtask`] staged slot `i` —
/// slots from *different* cells pair freely, because an LTE turbo
/// interleaver is fully determined by `K` (same `K` ⇒ identical QPP), so
/// either receiver's decoder serves both. Results are bit-for-bit
/// identical to per-slot [`UplinkRx::run_decode_subtask_into`] calls.
///
/// # Panics
/// Panics if `rxs.len()` differs from the staged count.
pub fn run_staged_decode_batch(rxs: &[&UplinkRx], scratch: &mut DecodeBatchScratch) {
    let n = scratch.len;
    // analyze: allow(panic): buffer-shape contract; a mismatch means the drain staged against different receivers — decode garbage or fail loudly, and loud wins
    assert_eq!(rxs.len(), n, "one receiver per staged slot");
    let DecodeBatchScratch {
        slots, workspaces, ..
    } = scratch;
    let early = |multi: bool, filler: usize| {
        move |bits: &[u8]| {
            if multi {
                CRC24B.check(bits)
            } else {
                CRC24A.check(&bits[filler..])
            }
        }
    };
    let mut used: u64 = 0;
    for i in 0..n {
        if used & (1 << i) != 0 {
            continue;
        }
        used |= 1 << i;
        let partner = (i + 1..n).find(|&j| {
            used & (1 << j) == 0
                && slots[j].d0.len() == slots[i].d0.len()
                && slots[j].max_iters == slots[i].max_iters
        });
        let decoder = &rxs[i].codecs[slots[i].codec_idx].decoder;
        if let Some(j) = partner {
            used |= 1 << j;
            let (lo, hi) = slots.split_at_mut(j);
            let (a, b) = (&lo[i], &hi[0]);
            let (ws_lo, ws_hi) = workspaces.split_at_mut(j);
            let ((it_a, ok_a), (it_b, ok_b)) = decoder.decode_pair_with(
                (&a.d0, &a.d1, &a.d2),
                (&b.d0, &b.d1, &b.d2),
                a.max_iters,
                early(a.multi, a.filler),
                early(b.multi, b.filler),
                &mut ws_lo[i],
                &mut ws_hi[0],
            );
            for (s, ws, it, ok) in [
                (&mut lo[i], &ws_lo[i], it_a, ok_a),
                (&mut hi[0], &ws_hi[0], it_b, ok_b),
            ] {
                s.bits.clear();
                s.bits.extend_from_slice(&ws.bits);
                s.iterations = it;
                s.crc_ok = ok;
            }
        } else {
            let s = &mut slots[i];
            let (iterations, crc_ok) = decoder.decode_with(
                &s.d0,
                &s.d1,
                &s.d2,
                s.max_iters,
                early(s.multi, s.filler),
                &mut workspaces[i],
            );
            s.bits.clear();
            s.bits.extend_from_slice(&workspaces[i].bits);
            s.iterations = iterations;
            s.crc_ok = crc_ok;
        }
    }
}

/// Preallocated per-subframe state backing a [`SlabJob`] — the
/// allocation-free counterpart of the buffers [`UplinkRx::start_job`]
/// allocates per call. A runtime worker keeps one slab per core, warms it
/// once for every configuration it will see, and reuses it for every
/// subframe: the steady-state staged decode then performs **zero heap
/// allocations**, matching `decode_subframe_with`.
#[derive(Debug, Default)]
pub struct JobSlab {
    grids: Vec<Grid>,
    est: ChannelEstimate,
    llrs: Vec<f32>,
    block_bits: Vec<Vec<u8>>,
    block_iters: Vec<usize>,
    block_crc: Vec<bool>,
    block_done: Vec<bool>,
    tb: Vec<u8>,
    tb_oks: Vec<bool>,
    payload: Vec<u8>,
}

impl JobSlab {
    /// An empty slab; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the slab for `cfg` (grids rebuilt only on a bandwidth or
    /// antenna-count change; everything else grow-only).
    fn prepare(&mut self, cfg: &UplinkConfig) {
        let rebuild = self.grids.len() != cfg.num_antennas
            || self
                .grids
                .first()
                .is_some_and(|g| g.bandwidth() != cfg.bandwidth);
        if rebuild {
            // analyze: allow(alloc): slab construction; runs once per config change and tests/alloc_regression.rs proves the steady state is alloc-free
            self.grids = vec![Grid::new(cfg.bandwidth); cfg.num_antennas];
        }
        let c = cfg.seg.num_blocks;
        while self.block_bits.len() < c {
            // analyze: allow(alloc): slab construction; runs once per config change and tests/alloc_regression.rs proves the steady state is alloc-free
            self.block_bits.push(Vec::new());
        }
        self.llrs.clear();
        self.llrs.resize(cfg.coded_bits(), 0.0);
        self.block_iters.clear();
        self.block_iters.resize(c, 0);
        self.block_crc.clear();
        self.block_crc.resize(c, false);
        self.block_done.clear();
        self.block_done.resize(c, false);
    }

    /// Pre-grows every buffer to the steady-state size of `cfg`, so later
    /// [`UplinkRx::start_job_in`] cycles with this configuration (or any
    /// smaller one) perform no heap allocation.
    pub fn warm(&mut self, cfg: &UplinkConfig) {
        self.prepare(cfg);
        let m = cfg.alloc_subcarriers();
        let seg = &cfg.seg;
        let c = seg.num_blocks;
        for (r, bits) in self.block_bits.iter_mut().enumerate().take(c) {
            let want = seg.block_size(r);
            bits.reserve(want.saturating_sub(bits.len()));
        }
        let grow = |v: &mut Vec<u8>, n: usize| v.reserve(n.saturating_sub(v.len()));
        grow(&mut self.tb, seg.input_bits);
        grow(&mut self.payload, cfg.transport_block_bytes());
        self.tb_oks.reserve(c.saturating_sub(self.tb_oks.len()));
        while self.est.h.len() < cfg.num_antennas {
            self.est.h.push(Vec::new());
        }
        for ha in self.est.h.iter_mut().take(cfg.num_antennas) {
            ha.reserve(m.saturating_sub(ha.len()));
        }
    }

    /// The recovered payload bytes of the last finished job.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Per-block turbo iteration counts of the last finished job.
    pub fn block_iterations(&self) -> &[usize] {
        &self.block_iters
    }

    /// Per-block CRC outcomes of the last finished job.
    pub fn block_crc_ok(&self) -> &[bool] {
        &self.block_crc
    }
}

/// Compact outcome of a slab-backed staged decode: the ACK/NACK decision
/// plus iteration accounting. The payload stays in the slab
/// ([`JobSlab::payload`]) — nothing is allocated.
#[derive(Clone, Copy, Debug)]
pub struct SlabVerdict {
    /// Transport-block CRC24A result — the ACK/NACK decision.
    pub crc_ok: bool,
    /// Total turbo iterations across code blocks.
    pub total_iterations: usize,
}

/// The allocation-free staged decode: same stage/subtask structure as
/// [`SubframeJob`] (Fig. 5), but every intermediate buffer lives in a
/// caller-owned [`JobSlab`]. Local subtasks write straight into the slab;
/// migrated subtasks run via the `_into` kernels on the thief's thread
/// into arena slots the owner absorbs with `absorb_*`.
pub struct SlabJob<'a> {
    rx: &'a UplinkRx,
    samples: &'a [Vec<Cf32>],
    slab: &'a mut JobSlab,
    fft_done: usize,
    demod_done: usize,
}

impl UplinkRx {
    /// Starts a staged decode whose buffers come from `slab` — the
    /// allocation-free form of [`UplinkRx::start_job`].
    ///
    /// # Errors
    /// Returns [`PhyError::LengthMismatch`] on an antenna-stream or
    /// sample-count mismatch.
    pub fn start_job_in<'a>(
        &'a self,
        rx_samples: &'a [Vec<Cf32>],
        slab: &'a mut JobSlab,
    ) -> Result<SlabJob<'a>, PhyError> {
        let cfg = &self.cfg;
        if rx_samples.len() != cfg.num_antennas {
            return Err(PhyError::LengthMismatch {
                what: "antenna streams",
                expected: cfg.num_antennas,
                actual: rx_samples.len(),
            });
        }
        let need = cfg.bandwidth.samples_per_subframe();
        for s in rx_samples {
            if s.len() != need {
                return Err(PhyError::LengthMismatch {
                    what: "subframe samples",
                    expected: need,
                    actual: s.len(),
                });
            }
        }
        slab.prepare(cfg);
        Ok(SlabJob {
            rx: self,
            samples: rx_samples,
            slab,
            fft_done: 0,
            demod_done: 0,
        })
    }
}

impl SlabJob<'_> {
    /// Number of FFT subtasks (`N × 14`).
    pub fn fft_subtask_count(&self) -> usize {
        self.rx.cfg.breakdown().fft
    }

    /// Runs FFT subtask `i` on the owning thread, demodulating straight
    /// into the slab's grid (no intermediate row buffer).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn run_fft_subtask_local(&mut self, i: usize) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(i < self.fft_subtask_count(), "fft subtask {i} out of range");
        let antenna = i / SYMBOLS_PER_SUBFRAME;
        let symbol = i % SYMBOLS_PER_SUBFRAME;
        workspace::with_thread_workspace(|ws| {
            self.rx.ofdm.demod_symbol_into(
                &self.samples[antenna],
                symbol,
                self.slab.grids[antenna].symbol_mut(symbol),
                &mut ws.time,
                &mut ws.fft_scratch,
            );
        });
        self.fft_done += 1;
    }

    /// Absorbs a migrated FFT row (produced by
    /// [`UplinkRx::run_fft_subtask_into`] on another thread).
    ///
    /// # Panics
    /// Panics if the row length does not match the grid.
    pub fn absorb_fft_row(&mut self, antenna: usize, symbol: usize, row: &[Cf32]) {
        self.slab.grids[antenna]
            .symbol_mut(symbol)
            .copy_from_slice(row);
        self.fft_done += 1;
    }

    /// Absorbs a migrated 14-symbol FFT batch (produced by
    /// [`UplinkRx::run_fft_batch_into`] on another thread).
    ///
    /// # Panics
    /// Panics if `flat` is not `14 × num_subcarriers` long.
    pub fn absorb_fft_batch(&mut self, antenna: usize, flat: &[Cf32]) {
        let nsc = self.rx.cfg.bandwidth.num_subcarriers();
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(flat.len(), SYMBOLS_PER_SUBFRAME * nsc, "batch length");
        for (symbol, row) in flat.chunks_exact(nsc).enumerate() {
            self.slab.grids[antenna]
                .symbol_mut(symbol)
                .copy_from_slice(row);
        }
        self.fft_done += SYMBOLS_PER_SUBFRAME;
    }

    /// Runs one antenna's whole 14-symbol FFT batch locally (the node's
    /// FFT migration granularity).
    ///
    /// # Panics
    /// Panics if `antenna` is out of range.
    pub fn run_fft_batch_local(&mut self, antenna: usize) {
        for s in 0..SYMBOLS_PER_SUBFRAME {
            self.run_fft_subtask_local(antenna * SYMBOLS_PER_SUBFRAME + s);
        }
    }

    /// Ends the FFT task: estimates the channel from the DMRS symbols.
    ///
    /// # Panics
    /// Panics if FFT subtasks are still outstanding.
    pub fn finish_fft(&mut self) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.fft_done,
            self.fft_subtask_count(),
            "FFT task incomplete"
        );
        let band = 0..self.rx.cfg.alloc_subcarriers();
        estimate_channel_band_into(&self.slab.grids, &self.rx.dmrs, band, &mut self.slab.est);
    }

    /// Number of demod subtasks (12 data symbols).
    pub fn demod_subtask_count(&self) -> usize {
        self.rx.cfg.breakdown().demod
    }

    /// Runs demod subtask `i` on the owning thread, writing LLRs straight
    /// into the slab's coded stream.
    ///
    /// # Panics
    /// Panics if called before [`SlabJob::finish_fft`] or `i` is out of
    /// range.
    pub fn run_demod_subtask_local(&mut self, i: usize) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.fft_done,
            self.fft_subtask_count(),
            "FFT task incomplete"
        );
        let cfg = &self.rx.cfg;
        let data_syms = cfg.data_symbols();
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(i < data_syms.len(), "demod subtask {i} out of range");
        let l = data_syms[i];
        let m = cfg.alloc_subcarriers();
        let per_symbol = m * cfg.mcs.modulation_order();
        workspace::with_thread_workspace(|ws| {
            let mut rows: [&[Cf32]; 8] = [&[]; 8];
            for (a, g) in self.slab.grids.iter().enumerate() {
                rows[a] = &g.symbol(l)[..m];
            }
            mrc_combine_into(
                &rows[..self.slab.grids.len()],
                &self.slab.est,
                &mut ws.combined,
                &mut ws.post_var,
            );
            self.rx
                .dft
                .inverse_with(&mut ws.combined, &mut ws.fft_scratch);
            let scale = (m as f32).sqrt();
            for v in ws.combined.iter_mut() {
                *v = v.scale(scale);
            }
            let mean_var = ws.post_var.iter().sum::<f32>() / m as f32;
            ws.nv.clear();
            ws.nv.resize(m, mean_var);
            ws.sym_llrs.clear();
            cfg.modulation()
                .demap_maxlog(&ws.combined, &ws.nv, &mut ws.sym_llrs);
            self.slab.llrs[i * per_symbol..(i + 1) * per_symbol].copy_from_slice(&ws.sym_llrs);
        });
        self.demod_done += 1;
    }

    /// The complete coded-LLR stream (valid once the demod task finished).
    /// This is what the owner copies into its arena when publishing decode
    /// subtasks for stealing.
    ///
    /// # Panics
    /// Panics if demod subtasks are still outstanding.
    pub fn coded_llrs(&self) -> &[f32] {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.demod_done,
            self.demod_subtask_count(),
            "demod task incomplete"
        );
        &self.slab.llrs
    }

    /// Number of decode subtasks (`C` code blocks).
    pub fn decode_subtask_count(&self) -> usize {
        self.rx.cfg.seg.num_blocks
    }

    /// Runs decode subtask `r` on the owning thread, writing straight into
    /// the slab's per-block buffers.
    ///
    /// # Panics
    /// Panics if demod subtasks are still outstanding or `r` out of range.
    pub fn run_decode_subtask_local(&mut self, r: usize) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.demod_done,
            self.demod_subtask_count(),
            "demod task incomplete"
        );
        let (iterations, crc_ok) =
            self.rx
                .run_decode_subtask_into(&self.slab.llrs, r, &mut self.slab.block_bits[r]);
        self.slab.block_iters[r] = iterations;
        self.slab.block_crc[r] = crc_ok;
        self.slab.block_done[r] = true;
    }

    /// Runs every decode subtask whose bit is set in `mask` on the owning
    /// thread, draining them through [`run_staged_decode_batch`] in groups
    /// of up to [`MAX_DECODE_BATCH`] so same-`K` blocks share one wide
    /// turbo kernel. Bit-for-bit identical to per-block
    /// [`SlabJob::run_decode_subtask_local`] calls.
    ///
    /// # Panics
    /// Panics if demod subtasks are still outstanding or `mask` addresses
    /// a block out of range.
    pub fn run_decode_batch_local(&mut self, mask: u64, scratch: &mut DecodeBatchScratch) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(
            self.demod_done,
            self.demod_subtask_count(),
            "demod task incomplete"
        );
        let blocks = self.decode_subtask_count();
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(
            blocks >= 64 - mask.leading_zeros() as usize,
            "decode mask out of range"
        );
        let mut staged = [0usize; MAX_DECODE_BATCH];
        let mut r = 0;
        while r < blocks {
            scratch.clear();
            let mut ns = 0;
            while r < blocks && ns < scratch.capacity() {
                if mask & (1 << r) != 0 {
                    self.rx.stage_decode_subtask(&self.slab.llrs, r, scratch);
                    staged[ns] = r;
                    ns += 1;
                }
                r += 1;
            }
            if ns == 0 {
                continue;
            }
            let rxs = [self.rx; MAX_DECODE_BATCH];
            run_staged_decode_batch(&rxs[..ns], scratch);
            for (i, &br) in staged.iter().enumerate().take(ns) {
                let slot = scratch.slot(i);
                let bits = &mut self.slab.block_bits[br];
                bits.clear();
                bits.extend_from_slice(&slot.bits);
                self.slab.block_iters[br] = slot.iterations;
                self.slab.block_crc[br] = slot.crc_ok;
                self.slab.block_done[br] = true;
            }
        }
    }

    /// Absorbs a migrated decode result (produced by
    /// [`UplinkRx::run_decode_subtask_into`] on another thread).
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn absorb_decode_buf(&mut self, r: usize, buf: &BlockBuf) {
        let bits = &mut self.slab.block_bits[r];
        bits.clear();
        bits.extend_from_slice(&buf.bits);
        self.slab.block_iters[r] = buf.iterations;
        self.slab.block_crc[r] = buf.crc_ok;
        self.slab.block_done[r] = true;
    }

    /// Whether decode subtask `r` has been run or absorbed.
    pub fn decode_done(&self, r: usize) -> bool {
        self.slab.block_done[r]
    }

    /// Finishes the job: reassembles the transport block into the slab and
    /// checks its CRC. The payload stays in [`JobSlab::payload`].
    ///
    /// # Errors
    /// Propagates desegmentation shape errors.
    ///
    /// # Panics
    /// Panics if any decode subtask is missing.
    pub fn finish(self) -> Result<SlabVerdict, PhyError> {
        let cfg = &self.rx.cfg;
        let c = cfg.seg.num_blocks;
        for (r, done) in self.slab.block_done.iter().enumerate().take(c) {
            // analyze: allow(panic): stage-ordering protocol; the SlotBoard confirms every subtask before this stage runs, so a missing result is a scheduler bug
            assert!(done, "decode subtask {r} missing");
        }
        cfg.seg.desegment_into(
            &self.slab.block_bits[..c],
            &mut self.slab.tb,
            &mut self.slab.tb_oks,
        )?;
        let crc_ok = CRC24A.check(&self.slab.tb) && self.slab.block_crc[..c].iter().all(|&b| b);
        bits_to_bytes_into(&self.slab.tb[..cfg.tbs_bits()], &mut self.slab.payload);
        Ok(SlabVerdict {
            crc_ok,
            total_iterations: self.slab.block_iters[..c].iter().sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{AwgnChannel, ChannelModel, MultipathChannel, RayleighBlockChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn payload(cfg: &UplinkConfig, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cfg.transport_block_bytes())
            .map(|_| rng.gen())
            .collect()
    }

    fn run_e2e(bw: Bandwidth, ants: usize, mcs: u8, snr_db: f64, seed: u64) -> (RxOutput, Vec<u8>) {
        let cfg = UplinkConfig::new(bw, ants, mcs).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let p = payload(&cfg, seed);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let mut ch = AwgnChannel::new(snr_db);
        let rx_samples = ch.apply(&sf.samples, ants, &mut rng);
        let rx = UplinkRx::new(cfg);
        (rx.decode_subframe(&rx_samples).unwrap(), p)
    }

    #[test]
    fn bits_bytes_roundtrip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
        assert_eq!(bytes_to_bits(&[0x80])[0], 1);
    }

    #[test]
    fn e2e_qpsk_clean_channel() {
        let (out, p) = run_e2e(Bandwidth::Mhz1_4, 1, 5, 30.0, 1);
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
        assert_eq!(out.max_iterations(), 1, "clean channel needs 1 iteration");
    }

    #[test]
    fn e2e_16qam_two_antennas() {
        let (out, p) = run_e2e(Bandwidth::Mhz1_4, 2, 15, 25.0, 2);
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
    }

    #[test]
    fn e2e_64qam_high_mcs() {
        let (out, p) = run_e2e(Bandwidth::Mhz1_4, 2, 27, 30.0, 3);
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
    }

    #[test]
    fn e2e_5mhz_multi_block() {
        // 5 MHz, MCS 20: TBS big enough for multiple code blocks.
        let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).unwrap();
        assert!(cfg.segmentation().num_blocks >= 2);
        let (out, p) = run_e2e(Bandwidth::Mhz5, 2, 20, 28.0, 4);
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
        assert_eq!(out.block_crc_ok.len(), cfg.segmentation().num_blocks);
    }

    #[test]
    fn low_snr_fails_crc_not_panics() {
        let (out, _) = run_e2e(Bandwidth::Mhz1_4, 1, 27, -5.0, 5);
        assert!(!out.crc_ok);
        assert_eq!(out.max_iterations(), 4, "hopeless decode hits Lm");
    }

    #[test]
    fn iterations_grow_as_snr_drops() {
        let hi = run_e2e(Bandwidth::Mhz1_4, 2, 16, 30.0, 6)
            .0
            .total_iterations();
        let lo = run_e2e(Bandwidth::Mhz1_4, 2, 16, 8.5, 6)
            .0
            .total_iterations();
        assert!(
            lo >= hi,
            "iterations should not decrease with noise: {hi} vs {lo}"
        );
    }

    #[test]
    fn rayleigh_fading_decodes_at_high_average_snr() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 4, 10).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let p = payload(&cfg, 7);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ch = RayleighBlockChannel::new(30.0);
        let rx_samples = ch.apply(&sf.samples, 4, &mut rng);
        let rx = UplinkRx::new(cfg);
        let out = rx.decode_subframe(&rx_samples).unwrap();
        assert!(out.crc_ok, "4-branch diversity at 30 dB must decode");
        assert_eq!(out.payload, p);
    }

    #[test]
    fn partial_allocation_roundtrip() {
        // 10 of 25 PRBs at 5 MHz: TBS, G, and the DMRS band all shrink;
        // the chain must still decode cleanly.
        let cfg = UplinkConfig::with_allocation(Bandwidth::Mhz5, 2, 14, 4, 10).unwrap();
        assert_eq!(cfg.alloc_subcarriers(), 120);
        assert_eq!(cfg.tbs_bits(), cfg.mcs.transport_block_bits(10));
        assert_eq!(cfg.coded_bits(), 120 * 12 * 4);
        let tx = UplinkTx::new(cfg.clone());
        let rx = UplinkRx::new(cfg.clone());
        let p = payload(&cfg, 41);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut ch = AwgnChannel::new(25.0);
        let rxs = ch.apply(&sf.samples, 2, &mut rng);
        let out = rx.decode_subframe(&rxs).unwrap();
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
    }

    #[test]
    fn partial_allocation_leaves_unused_band_silent() {
        // Energy outside the allocated band must be (near) zero — the rest
        // of the carrier belongs to other users.
        let cfg = UplinkConfig::with_allocation(Bandwidth::Mhz5, 1, 10, 4, 8).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let sf = tx.encode_subframe(&payload(&cfg, 42)).unwrap();
        // Demodulate the clean waveform and inspect the grid.
        let ofdm = crate::resource_grid::OfdmProcessor::new(cfg.bandwidth);
        let grid = ofdm.demodulate(&sf.samples);
        let m = cfg.alloc_subcarriers();
        let width = cfg.bandwidth.num_subcarriers();
        let mut in_band = 0.0f32;
        let mut out_band = 0.0f32;
        for l in 0..SYMBOLS_PER_SUBFRAME {
            let row = grid.symbol(l);
            in_band += row[..m].iter().map(|v| v.norm_sq()).sum::<f32>();
            out_band += row[m..].iter().map(|v| v.norm_sq()).sum::<f32>();
        }
        assert!(in_band > 1.0, "allocation carries energy");
        assert!(
            out_band < in_band * ((width - m) as f32 / m as f32) * 1e-3,
            "unallocated band leaks: {out_band} vs {in_band}"
        );
    }

    #[test]
    fn smaller_allocation_fewer_code_blocks() {
        // Fewer PRBs ⇒ smaller TBS ⇒ fewer decode subtasks — the mechanism
        // behind §4.2's note that varying PRB utilization changes the
        // migration opportunity profile.
        let full = UplinkConfig::new(Bandwidth::Mhz10, 2, 27).unwrap();
        let half = UplinkConfig::with_allocation(Bandwidth::Mhz10, 2, 27, 4, 25).unwrap();
        assert!(half.breakdown().decode < full.breakdown().decode);
        assert!(half.tbs_bits() < full.tbs_bits());
    }

    #[test]
    fn zero_or_oversized_allocation_rejected() {
        assert!(UplinkConfig::with_allocation(Bandwidth::Mhz5, 1, 5, 4, 0).is_err());
        assert!(UplinkConfig::with_allocation(Bandwidth::Mhz5, 1, 5, 4, 26).is_err());
    }

    #[test]
    fn harq_retransmission_recovers_failed_decode() {
        // Pick an SNR where the first transmission reliably fails but the
        // accumulated soft energy of IR retransmissions succeeds.
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 1, 16).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let rx = UplinkRx::new(cfg.clone());
        let p = payload(&cfg, 77);
        let mut rng = StdRng::seed_from_u64(77);
        let mut harq = crate::harq::HarqProcess::new(cfg.segmentation());
        let snr = 6.5; // well below the MCS-16 waterfall for one antenna
        let mut history = Vec::new();
        for txn in 0..4u32 {
            let rv = crate::harq::rv_for_transmission(txn);
            let sf = tx.encode_subframe_rv(&p, rv).unwrap();
            let mut ch = AwgnChannel::new(snr);
            let rx_samples = ch.apply(&sf.samples, 1, &mut rng);
            let out = rx.decode_subframe_harq(&rx_samples, rv, &mut harq).unwrap();
            history.push(out.crc_ok);
            if out.crc_ok {
                assert_eq!(out.payload, p, "combined decode must be correct");
                break;
            }
        }
        assert!(
            !history[0],
            "first transmission should fail at this SNR (else the test is vacuous)"
        );
        assert!(
            history.iter().any(|&ok| ok),
            "soft combining over {history:?} transmissions never recovered"
        );
        assert!(harq.transmissions() >= 2);
    }

    #[test]
    fn harq_single_shot_equals_plain_decode_at_rv0() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 10).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let rx = UplinkRx::new(cfg.clone());
        let p = payload(&cfg, 5);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = AwgnChannel::new(25.0);
        let rx_samples = ch.apply(&sf.samples, 2, &mut rng);
        let plain = rx.decode_subframe(&rx_samples).unwrap();
        let mut harq = crate::harq::HarqProcess::new(cfg.segmentation());
        let combined = rx.decode_subframe_harq(&rx_samples, 0, &mut harq).unwrap();
        assert_eq!(plain.crc_ok, combined.crc_ok);
        assert_eq!(plain.payload, combined.payload);
    }

    #[test]
    fn harq_rejects_mismatched_process() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz5, 1, 27).unwrap(); // multi-block
        let other = UplinkConfig::new(Bandwidth::Mhz1_4, 1, 0).unwrap(); // single block
        let rx = UplinkRx::new(cfg.clone());
        let mut harq = crate::harq::HarqProcess::new(other.segmentation());
        let samples = vec![vec![Cf32::ZERO; cfg.bandwidth.samples_per_subframe()]];
        assert!(rx.decode_subframe_harq(&samples, 0, &mut harq).is_err());
    }

    #[test]
    fn e2e_frequency_selective_channel() {
        // Two-antenna diversity through a two-path fading channel: the
        // per-subcarrier LS estimate + MRC must flatten the echo.
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 8).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let rx = UplinkRx::new(cfg.clone());
        let mut decoded = 0;
        let trials = 6;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let p = payload(&cfg, seed);
            let sf = tx.encode_subframe(&p).unwrap();
            let mut ch = MultipathChannel::two_path(28.0);
            let rx_samples = ch.apply(&sf.samples, 2, &mut rng);
            let out = rx.decode_subframe(&rx_samples).unwrap();
            if out.crc_ok && out.payload == p {
                decoded += 1;
            }
        }
        // Rayleigh taps occasionally fade both antennas; most must decode.
        assert!(decoded >= trials - 1, "only {decoded}/{trials} decoded");
    }

    #[test]
    fn staged_job_equals_serial() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 12).unwrap();
        let tx = UplinkTx::new(cfg.clone());
        let p = payload(&cfg, 8);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut ch = AwgnChannel::new(20.0);
        let rx_samples = ch.apply(&sf.samples, 2, &mut rng);
        let rx = UplinkRx::new(cfg);

        let serial = rx.decode_subframe(&rx_samples).unwrap();

        // Staged, with subtasks run out of order (as migration would).
        let mut job = rx.start_job(&rx_samples).unwrap();
        let fft_outs: Vec<_> = (0..job.fft_subtask_count())
            .rev()
            .map(|i| job.run_fft_subtask(i))
            .collect();
        for o in fft_outs {
            job.absorb_fft(o);
        }
        job.finish_fft();
        let demod_outs: Vec<_> = (0..job.demod_subtask_count())
            .rev()
            .map(|i| job.run_demod_subtask(i))
            .collect();
        for o in demod_outs {
            job.absorb_demod(o);
        }
        let dec_outs: Vec<_> = (0..job.decode_subtask_count())
            .rev()
            .map(|r| job.run_decode_subtask(r))
            .collect();
        for o in dec_outs {
            job.absorb_decode(o);
        }
        let staged = job.finish().unwrap();
        assert_eq!(staged.payload, serial.payload);
        assert_eq!(staged.crc_ok, serial.crc_ok);
        assert_eq!(staged.block_iterations, serial.block_iterations);
    }

    #[test]
    fn slab_job_equals_serial() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).unwrap();
        assert!(cfg.segmentation().num_blocks >= 2);
        let tx = UplinkTx::new(cfg.clone());
        let p = payload(&cfg, 9);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ch = AwgnChannel::new(22.0);
        let rx_samples = ch.apply(&sf.samples, 2, &mut rng);
        let rx = UplinkRx::new(cfg.clone());

        let serial = rx.decode_subframe(&rx_samples).unwrap();

        let mut slab = JobSlab::new();
        slab.warm(&cfg);
        // Run the slab job three times (reuse), alternating local subtasks
        // with the migrated `_into` + `absorb_*` path, as the cluster would;
        // the last round uses the batch-granularity FFT unit.
        for round in 0..3 {
            let mut job = rx.start_job_in(&rx_samples, &mut slab).unwrap();
            let mut row = Vec::new();
            if round == 2 {
                for a in 0..2 {
                    if a == 0 {
                        job.run_fft_batch_local(a);
                    } else {
                        rx.run_fft_batch_into(&rx_samples, a, &mut row);
                        job.absorb_fft_batch(a, &row);
                    }
                }
            } else {
                for i in 0..job.fft_subtask_count() {
                    if (i + round) % 2 == 0 {
                        job.run_fft_subtask_local(i);
                    } else {
                        rx.run_fft_subtask_into(&rx_samples, i, &mut row);
                        job.absorb_fft_row(
                            i / SYMBOLS_PER_SUBFRAME,
                            i % SYMBOLS_PER_SUBFRAME,
                            &row,
                        );
                    }
                }
            }
            job.finish_fft();
            for i in 0..job.demod_subtask_count() {
                job.run_demod_subtask_local(i);
            }
            let llrs = job.coded_llrs().to_vec();
            let mut buf = BlockBuf::new();
            for r in 0..job.decode_subtask_count() {
                if (r + round) % 2 == 0 {
                    job.run_decode_subtask_local(r);
                } else {
                    let (iterations, crc_ok) = rx.run_decode_subtask_into(&llrs, r, &mut buf.bits);
                    buf.iterations = iterations;
                    buf.crc_ok = crc_ok;
                    job.absorb_decode_buf(r, &buf);
                }
                assert!(job.decode_done(r));
            }
            let verdict = job.finish().unwrap();
            assert_eq!(verdict.crc_ok, serial.crc_ok);
            assert_eq!(verdict.total_iterations, serial.total_iterations());
            assert_eq!(slab.payload(), &serial.payload[..]);
            assert_eq!(slab.block_iterations(), &serial.block_iterations[..]);
            assert_eq!(slab.block_crc_ok(), &serial.block_crc_ok[..]);
        }
    }

    #[test]
    fn batched_decode_drain_equals_serial() {
        // Multi-block (same-K blocks pair through the wide kernel) and
        // single-block (degenerate drain) configs, at an SNR low enough
        // that iteration counts vary — any kernel divergence shows up in
        // `block_iterations`, not just the payload.
        for (mcs, snr_db) in [(20u8, 6.0), (5u8, 2.0)] {
            let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, mcs).unwrap();
            let tx = UplinkTx::new(cfg.clone());
            let p = payload(&cfg, 31);
            let sf = tx.encode_subframe(&p).unwrap();
            let mut rng = StdRng::seed_from_u64(31);
            let mut ch = AwgnChannel::new(snr_db);
            let rx_samples = ch.apply(&sf.samples, 2, &mut rng);
            let rx = UplinkRx::new(cfg.clone());

            let run = |batched: bool| {
                let mut slab = JobSlab::new();
                slab.warm(&cfg);
                let mut scratch = DecodeBatchScratch::new();
                scratch.warm(&cfg);
                let mut job = rx.start_job_in(&rx_samples, &mut slab).unwrap();
                for a in 0..2 {
                    job.run_fft_batch_local(a);
                }
                job.finish_fft();
                for i in 0..job.demod_subtask_count() {
                    job.run_demod_subtask_local(i);
                }
                let blocks = job.decode_subtask_count();
                if batched {
                    job.run_decode_batch_local((1u64 << blocks) - 1, &mut scratch);
                } else {
                    for r in 0..blocks {
                        job.run_decode_subtask_local(r);
                    }
                }
                let verdict = job.finish().unwrap();
                (
                    verdict.crc_ok,
                    slab.payload().to_vec(),
                    slab.block_iterations().to_vec(),
                    slab.block_crc_ok().to_vec(),
                )
            };
            assert_eq!(run(true), run(false), "mcs {mcs}");
        }
    }

    #[test]
    fn batched_drain_handles_sparse_masks() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).unwrap();
        let blocks = cfg.segmentation().num_blocks;
        assert!(blocks >= 2);
        let tx = UplinkTx::new(cfg.clone());
        let p = payload(&cfg, 7);
        let sf = tx.encode_subframe(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ch = AwgnChannel::new(22.0);
        let rx_samples = ch.apply(&sf.samples, 2, &mut rng);
        let rx = UplinkRx::new(cfg.clone());
        let mut slab = JobSlab::new();
        slab.warm(&cfg);
        let mut scratch = DecodeBatchScratch::new();
        scratch.warm(&cfg);
        let mut job = rx.start_job_in(&rx_samples, &mut slab).unwrap();
        for a in 0..2 {
            job.run_fft_batch_local(a);
        }
        job.finish_fft();
        for i in 0..job.demod_subtask_count() {
            job.run_demod_subtask_local(i);
        }
        // Odd blocks via the batch drain, even blocks serially — the mix a
        // steal-mode owner produces when thieves took part of the stage.
        let mut mask = 0u64;
        for r in (1..blocks).step_by(2) {
            mask |= 1 << r;
        }
        job.run_decode_batch_local(mask, &mut scratch);
        for r in (0..blocks).step_by(2) {
            assert!(!job.decode_done(r));
            job.run_decode_subtask_local(r);
        }
        for r in 0..blocks {
            assert!(job.decode_done(r));
        }
        let verdict = job.finish().unwrap();
        assert!(verdict.crc_ok);
        let serial = rx.decode_subframe(&rx_samples).unwrap();
        assert_eq!(slab.payload(), &serial.payload[..]);
        assert_eq!(slab.block_iterations(), &serial.block_iterations[..]);
    }

    #[test]
    fn config_validation() {
        assert!(UplinkConfig::new(Bandwidth::Mhz10, 0, 5).is_err());
        assert!(UplinkConfig::new(Bandwidth::Mhz10, 9, 5).is_err());
        assert!(UplinkConfig::new(Bandwidth::Mhz10, 2, 29).is_err());
        assert!(UplinkConfig::with_iters(Bandwidth::Mhz10, 2, 5, 0).is_err());
    }

    #[test]
    fn e_splits_sum_to_g() {
        for mcs in [0u8, 9, 17, 27, 28] {
            let cfg = UplinkConfig::new(Bandwidth::Mhz10, 2, mcs).unwrap();
            let total: usize = cfg.e_splits().iter().sum();
            assert_eq!(total, cfg.coded_bits(), "MCS {mcs}");
            for e in cfg.e_splits() {
                assert_eq!(e % cfg.mcs.modulation_order(), 0);
            }
        }
    }

    #[test]
    fn breakdown_matches_paper_config() {
        // Paper: N = 2, 10 MHz, MCS 27 → 28 FFT subtasks, 12 demod, 6 decode.
        let cfg = UplinkConfig::new(Bandwidth::Mhz10, 2, 27).unwrap();
        let b = cfg.breakdown();
        assert_eq!(b.fft, 28);
        assert_eq!(b.demod, 12);
        assert_eq!(b.decode, 6);
    }

    #[test]
    fn wrong_payload_size_rejected() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 1, 5).unwrap();
        let tx = UplinkTx::new(cfg);
        assert!(tx.encode_subframe(&[0u8; 3]).is_err());
    }

    #[test]
    fn wrong_antenna_count_rejected() {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 5).unwrap();
        let rx = UplinkRx::new(cfg.clone());
        let one = vec![vec![Cf32::ZERO; cfg.bandwidth.samples_per_subframe()]];
        assert!(rx.start_job(&one).is_err());
    }
}
