//! PUSCH modulation-and-coding-scheme (MCS) and transport-block-size tables.
//!
//! The MCS index determines the modulation order `Qm ∈ {2, 4, 6}` and the
//! transport block size (TBS) index per 3GPP TS 36.213 Table 8.6.1-1. The
//! TBS then follows from the number of allocated PRBs.
//!
//! **Substitution note (see DESIGN.md):** the full 36.213 TBS table spans
//! 110 PRB columns. The paper's experiments use exactly one column —
//! N_PRB = 50 at 10 MHz — which is embedded verbatim here. Other PRB
//! counts use a byte-aligned proportional scaling of that column; this
//! preserves the subcarrier-load range the paper reports (D = 0.16 … 3.7
//! bits/RE for MCS 0 … 27 at 10 MHz).

use crate::params::Bandwidth;

/// Highest supported PUSCH MCS index.
pub const MAX_MCS: u8 = 28;

/// Maximum number of turbo-decoder iterations used throughout the paper.
pub const DEFAULT_MAX_TURBO_ITERS: usize = 4;

/// Exact 36.213 TBS values (bits) for N_PRB = 50, indexed by I_TBS 0..=26.
const TBS_50PRB: [usize; 27] = [
    1384, 1800, 2216, 2856, 3624, 4392, 5160, 6200, 6968, 7992, 8760, 9912, 11448, 12960, 14112,
    15264, 16416, 18336, 19848, 21384, 22920, 25456, 27376, 28336, 30576, 31704, 32856,
];

/// A PUSCH modulation-and-coding scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mcs(u8);

impl Mcs {
    /// Creates an MCS from its index; returns `None` above [`MAX_MCS`].
    pub const fn new(index: u8) -> Option<Self> {
        if index <= MAX_MCS {
            Some(Mcs(index))
        } else {
            None
        }
    }

    /// The raw MCS index, `0..=28`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Modulation order `Qm`: bits per constellation symbol (2, 4 or 6).
    ///
    /// This is the `K` term of the paper's Eq. (1).
    pub const fn modulation_order(self) -> usize {
        match self.0 {
            0..=10 => 2,  // QPSK
            11..=20 => 4, // 16-QAM
            _ => 6,       // 64-QAM
        }
    }

    /// TBS index `I_TBS` per 36.213 Table 8.6.1-1.
    pub const fn tbs_index(self) -> usize {
        match self.0 {
            0..=10 => self.0 as usize,
            11..=20 => self.0 as usize - 1,
            _ => self.0 as usize - 2,
        }
    }

    /// Transport block size in bits for `nprb` allocated PRBs.
    ///
    /// Exact for `nprb == 50`; proportionally scaled (kept byte-aligned and
    /// ≥ 16 bits) otherwise — see the module-level substitution note.
    pub fn transport_block_bits(self, nprb: usize) -> usize {
        let base = TBS_50PRB[self.tbs_index()];
        if nprb == 50 {
            return base;
        }
        let scaled = base as u64 * nprb as u64 / 50;
        let aligned = (scaled / 8 * 8) as usize;
        aligned.max(16)
    }

    /// Subcarrier load `D`: data bits per resource element, the paper's
    /// Eq. (1) load term (`TBS / total REs in the subframe`).
    pub fn subcarrier_load(self, bw: Bandwidth) -> f64 {
        self.transport_block_bits(bw.num_prbs()) as f64 / bw.total_res() as f64
    }

    /// Nominal PHY throughput in Mbps when every 1 ms subframe carries one
    /// transport block at this MCS (the x-axis of the paper's Fig. 17).
    pub fn nominal_throughput_mbps(self, bw: Bandwidth) -> f64 {
        self.transport_block_bits(bw.num_prbs()) as f64 / 1000.0
    }

    /// Iterates over all valid MCS values, `0..=28`.
    pub fn all() -> impl Iterator<Item = Mcs> {
        (0..=MAX_MCS).map(Mcs)
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MCS{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulation_orders_follow_standard_bands() {
        assert_eq!(Mcs::new(0).unwrap().modulation_order(), 2);
        assert_eq!(Mcs::new(10).unwrap().modulation_order(), 2);
        assert_eq!(Mcs::new(11).unwrap().modulation_order(), 4);
        assert_eq!(Mcs::new(20).unwrap().modulation_order(), 4);
        assert_eq!(Mcs::new(21).unwrap().modulation_order(), 6);
        assert_eq!(Mcs::new(28).unwrap().modulation_order(), 6);
    }

    #[test]
    fn mcs_29_is_invalid() {
        assert!(Mcs::new(29).is_none());
        assert!(Mcs::new(28).is_some());
    }

    #[test]
    fn paper_subcarrier_load_range() {
        // Paper §2.1: at 10 MHz (8400 REs), D spans 0.16 … 3.7 bits/RE
        // between MCS 0 and MCS 27.
        let d0 = Mcs::new(0).unwrap().subcarrier_load(Bandwidth::Mhz10);
        let d27 = Mcs::new(27).unwrap().subcarrier_load(Bandwidth::Mhz10);
        assert!((d0 - 0.165).abs() < 0.01, "D(MCS0) = {d0}");
        assert!((d27 - 3.77).abs() < 0.1, "D(MCS27) = {d27}");
    }

    #[test]
    fn tbs_monotone_in_mcs() {
        let mut prev = 0;
        for mcs in Mcs::all() {
            let tbs = mcs.transport_block_bits(50);
            assert!(tbs >= prev, "{mcs}");
            prev = tbs;
        }
    }

    #[test]
    fn tbs_monotone_in_prbs() {
        let mcs = Mcs::new(15).unwrap();
        let mut prev = 0;
        for nprb in 1..=110 {
            let tbs = mcs.transport_block_bits(nprb);
            assert!(tbs >= prev);
            prev = tbs;
        }
    }

    #[test]
    fn tbs_byte_aligned() {
        for mcs in Mcs::all() {
            for nprb in [6, 15, 25, 50, 75, 100] {
                assert_eq!(mcs.transport_block_bits(nprb) % 8, 0, "{mcs} nprb={nprb}");
            }
        }
    }

    #[test]
    fn paper_throughput_range() {
        // Paper §4.2: nominal PHY throughput varies 1.3 … 31.7 Mbps at 10 MHz.
        let lo = Mcs::new(0)
            .unwrap()
            .nominal_throughput_mbps(Bandwidth::Mhz10);
        let hi = Mcs::new(27)
            .unwrap()
            .nominal_throughput_mbps(Bandwidth::Mhz10);
        assert!((lo - 1.384).abs() < 0.1);
        assert!((hi - 31.7).abs() < 0.1);
    }

    #[test]
    fn tbs_index_mapping() {
        assert_eq!(Mcs::new(10).unwrap().tbs_index(), 10);
        assert_eq!(Mcs::new(11).unwrap().tbs_index(), 10); // Qm switch, same I_TBS
        assert_eq!(Mcs::new(20).unwrap().tbs_index(), 19);
        assert_eq!(Mcs::new(21).unwrap().tbs_index(), 19);
        assert_eq!(Mcs::new(28).unwrap().tbs_index(), 26);
    }
}
