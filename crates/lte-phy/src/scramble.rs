//! Gold-sequence scrambling (3GPP TS 36.211 §7.2).
//!
//! LTE scrambles the rate-matched bit stream with a length-31 Gold sequence
//! seeded from the cell/UE identity and subframe number. The descrambler
//! operates on LLRs by sign-flipping, so it sits in the paper's *decode*
//! task together with the rate dematcher and turbo decoder.

/// Offset `Nc` discarded from the head of the Gold sequence.
const NC: usize = 1600;

/// A pseudo-random scrambling sequence generator.
#[derive(Clone, Debug)]
pub struct Scrambler {
    seq: Vec<u8>,
}

/// Builds the standard `c_init` for PUSCH: `n_rnti·2¹⁴ + ns·2⁹ + cell_id`
/// (simplified to the fields that matter for sequence diversity here).
pub fn pusch_c_init(n_rnti: u16, subframe: u8, cell_id: u16) -> u32 {
    (n_rnti as u32) << 14 | ((2 * subframe as u32) & 0x1F) << 9 | (cell_id as u32 & 0x1FF)
}

impl Scrambler {
    /// Generates `len` bits of the Gold sequence for seed `c_init`.
    pub fn new(c_init: u32, len: usize) -> Self {
        // x1: fixed init 000...001; feedback x1(n+31) = x1(n+3) ⊕ x1(n).
        // x2: init = c_init;       feedback x2(n+31) = x2(n+3) ⊕ x2(n+2) ⊕ x2(n+1) ⊕ x2(n).
        let total = NC + len;
        let mut x1 = vec![0u8; total + 31];
        let mut x2 = vec![0u8; total + 31];
        x1[0] = 1;
        for i in 0..31 {
            x2[i] = ((c_init >> i) & 1) as u8;
        }
        for n in 0..total {
            x1[n + 31] = x1[n + 3] ^ x1[n];
            x2[n + 31] = x2[n + 3] ^ x2[n + 2] ^ x2[n + 1] ^ x2[n];
        }
        let seq = (0..len).map(|n| x1[n + NC] ^ x2[n + NC]).collect();
        Scrambler { seq }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The raw sequence bits.
    pub fn bits(&self) -> &[u8] {
        &self.seq
    }

    /// Scrambles a bit slice in place (`b ⊕ c`).
    ///
    /// # Panics
    /// Panics if `bits` is longer than the generated sequence.
    pub fn scramble_bits(&self, bits: &mut [u8]) {
        assert!(bits.len() <= self.seq.len(), "sequence too short");
        for (b, &c) in bits.iter_mut().zip(&self.seq) {
            *b ^= c;
        }
    }

    /// Descrambles soft LLRs in place: positions where the sequence bit is 1
    /// get their sign flipped (`L(b⊕1) = −L(b)`).
    ///
    /// # Panics
    /// Panics if `llrs` is longer than the generated sequence.
    pub fn descramble_llrs(&self, llrs: &mut [f32]) {
        assert!(llrs.len() <= self.seq.len(), "sequence too short");
        for (l, &c) in llrs.iter_mut().zip(&self.seq) {
            if c == 1 {
                *l = -*l;
            }
        }
    }

    /// Descrambles a sub-range of LLRs using the matching sub-range of the
    /// sequence, so per-code-block workers can descramble only their slice.
    ///
    /// # Panics
    /// Panics if `offset + llrs.len()` exceeds the sequence length.
    pub fn descramble_llrs_at(&self, offset: usize, llrs: &mut [f32]) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(
            offset + llrs.len() <= self.seq.len(),
            "sequence too short for offset {offset}"
        );
        for (l, &c) in llrs.iter_mut().zip(&self.seq[offset..]) {
            if c == 1 {
                *l = -*l;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_twice_is_identity() {
        let s = Scrambler::new(0x1234, 1000);
        let orig: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let mut b = orig.clone();
        s.scramble_bits(&mut b);
        assert_ne!(b, orig, "scrambling must change the stream");
        s.scramble_bits(&mut b);
        assert_eq!(b, orig);
    }

    #[test]
    fn sequence_is_balanced() {
        // Gold sequences are nearly balanced: ~50% ones.
        let s = Scrambler::new(0xBEEF, 100_000);
        let ones: usize = s.bits().iter().map(|&b| b as usize).sum();
        let frac = ones as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let a = Scrambler::new(1, 512);
        let b = Scrambler::new(2, 512);
        let agree = a
            .bits()
            .iter()
            .zip(b.bits())
            .filter(|(x, y)| x == y)
            .count();
        assert!(agree < 320, "sequences too similar: {agree}/512 agree");
    }

    #[test]
    fn llr_descramble_matches_bit_scramble() {
        let s = Scrambler::new(77, 256);
        let bits: Vec<u8> = (0..256).map(|i| ((i * 5 + 1) % 2) as u8).collect();
        let mut tx = bits.clone();
        s.scramble_bits(&mut tx);
        // Perfect channel: LLR = +4 for 0, −4 for 1 (of the scrambled bit).
        let mut llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        s.descramble_llrs(&mut llrs);
        for (l, &b) in llrs.iter().zip(&bits) {
            assert_eq!((*l < 0.0) as u8, b);
        }
    }

    #[test]
    fn sliced_descramble_equals_full() {
        let s = Scrambler::new(99, 300);
        let mut full: Vec<f32> = (0..300).map(|i| i as f32 - 150.0).collect();
        let mut sliced = full.clone();
        s.descramble_llrs(&mut full);
        s.descramble_llrs_at(0, &mut sliced[..100]);
        s.descramble_llrs_at(100, &mut sliced[100..250]);
        s.descramble_llrs_at(250, &mut sliced[250..]);
        assert_eq!(full, sliced);
    }

    #[test]
    fn autocorrelation_is_low() {
        let s = Scrambler::new(0xACE, 4096);
        let b = s.bits();
        for shift in [1usize, 7, 63, 500] {
            let agree = (0..b.len() - shift)
                .filter(|&i| b[i] == b[i + shift])
                .count();
            let frac = agree as f64 / (b.len() - shift) as f64;
            assert!((frac - 0.5).abs() < 0.05, "shift {shift}: {frac}");
        }
    }

    #[test]
    fn c_init_packs_fields() {
        let c = pusch_c_init(0x003D, 5, 101);
        assert_eq!(c >> 14, 0x003D);
        assert_eq!(c & 0x1FF, 101);
    }
}
