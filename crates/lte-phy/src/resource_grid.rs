//! OFDM resource grid and (de)modulation between grid and time domain.
//!
//! A subframe grid holds 14 OFDM symbols × `12·N_PRB` subcarriers. The
//! transmit path maps each symbol row onto centered FFT bins, runs an IFFT
//! and prepends the cyclic prefix; the receive path removes the CP and runs
//! the forward FFT — this *is* the paper's per-antenna-symbol **FFT
//! subtask** (Fig. 4(a), Fig. 5).

use crate::complex::Cf32;
use crate::fft::{self, FftPlan};
use crate::params::{Bandwidth, SYMBOLS_PER_SUBFRAME};
use std::sync::Arc;

/// One antenna's subframe resource grid (14 × `num_subcarriers`).
#[derive(Clone, Debug)]
pub struct Grid {
    bw: Bandwidth,
    data: Vec<Cf32>,
}

impl Grid {
    /// Creates an all-zero grid for the bandwidth.
    pub fn new(bw: Bandwidth) -> Self {
        Grid {
            bw,
            // analyze: allow(alloc): slab construction; runs once per config change and tests/alloc_regression.rs proves the steady state is alloc-free
            data: vec![Cf32::ZERO; SYMBOLS_PER_SUBFRAME * bw.num_subcarriers()],
        }
    }

    /// The grid's bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }

    /// Immutable view of one OFDM symbol's subcarriers.
    ///
    /// # Panics
    /// Panics if `l >= 14`.
    pub fn symbol(&self, l: usize) -> &[Cf32] {
        let m = self.bw.num_subcarriers();
        &self.data[l * m..(l + 1) * m]
    }

    /// Mutable view of one OFDM symbol's subcarriers.
    ///
    /// # Panics
    /// Panics if `l >= 14`.
    pub fn symbol_mut(&mut self, l: usize) -> &mut [Cf32] {
        let m = self.bw.num_subcarriers();
        &mut self.data[l * m..(l + 1) * m]
    }
}

/// OFDM modulator/demodulator for a fixed bandwidth (shares the cached
/// FFT plan for that size).
#[derive(Clone, Debug)]
pub struct OfdmProcessor {
    bw: Bandwidth,
    plan: Arc<FftPlan>,
}

impl OfdmProcessor {
    /// Creates a processor for the bandwidth.
    pub fn new(bw: Bandwidth) -> Self {
        OfdmProcessor {
            bw,
            plan: fft::plan(bw.fft_size()),
        }
    }

    /// The bandwidth this processor was built for.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }

    /// FFT bin index of subcarrier `k` (allocation centered on DC).
    fn bin(&self, k: usize) -> usize {
        let n = self.bw.fft_size();
        let m = self.bw.num_subcarriers();
        (n + k - m / 2) % n
    }

    /// Modulates a full grid into `samples_per_subframe` time samples
    /// (IFFT + cyclic prefix per symbol), normalized to ≈ unit mean power
    /// for a unit-power grid.
    pub fn modulate(&self, grid: &Grid) -> Vec<Cf32> {
        let n = self.bw.fft_size();
        let m = self.bw.num_subcarriers();
        let scale = n as f32 / (m as f32).sqrt();
        let mut out = Vec::with_capacity(self.bw.samples_per_subframe());
        let mut freq = vec![Cf32::ZERO; n];
        let mut scratch = vec![Cf32::ZERO; n];
        for l in 0..SYMBOLS_PER_SUBFRAME {
            freq.iter_mut().for_each(|v| *v = Cf32::ZERO);
            for (k, &v) in grid.symbol(l).iter().enumerate() {
                freq[self.bin(k)] = v;
            }
            self.plan.inverse_scratch(&mut freq, &mut scratch);
            for v in freq.iter_mut() {
                *v = v.scale(scale);
            }
            let cp = self.bw.cp_len(l);
            out.extend_from_slice(&freq[n - cp..]);
            out.extend_from_slice(&freq);
        }
        debug_assert_eq!(out.len(), self.bw.samples_per_subframe());
        out
    }

    /// Demodulates **one** OFDM symbol from a subframe's time samples: CP
    /// removal + forward FFT + subcarrier extraction.
    ///
    /// This is the unit of work of one FFT subtask.
    ///
    /// # Panics
    /// Panics if `samples` is shorter than a subframe or `l >= 14`.
    pub fn demod_symbol(&self, samples: &[Cf32], l: usize) -> Vec<Cf32> {
        let m = self.bw.num_subcarriers();
        let mut out = vec![Cf32::ZERO; m];
        let mut time_buf = Vec::new();
        let mut fft_scratch = Vec::new();
        self.demod_symbol_into(samples, l, &mut out, &mut time_buf, &mut fft_scratch);
        out
    }

    /// Demodulates one OFDM symbol into `out` (length `num_subcarriers`),
    /// using caller-owned scratch buffers so steady-state calls perform no
    /// heap allocation. Produces values identical to [`Self::demod_symbol`].
    ///
    /// # Panics
    /// Panics if `samples` is shorter than a subframe, `l >= 14`, or
    /// `out.len() != num_subcarriers`.
    pub fn demod_symbol_into(
        &self,
        samples: &[Cf32],
        l: usize,
        out: &mut [Cf32],
        time_buf: &mut Vec<Cf32>,
        fft_scratch: &mut Vec<Cf32>,
    ) {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(
            samples.len() >= self.bw.samples_per_subframe(),
            "subframe samples required"
        );
        let n = self.bw.fft_size();
        let m = self.bw.num_subcarriers();
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert_eq!(out.len(), m, "output length must equal subcarrier count");
        let start = self.bw.symbol_offset(l) + self.bw.cp_len(l);
        time_buf.clear();
        time_buf.extend_from_slice(&samples[start..start + n]);
        self.plan.forward_with(time_buf, fft_scratch);
        let scale = (m as f32).sqrt() / n as f32;
        for (k, o) in out.iter_mut().enumerate() {
            *o = time_buf[self.bin(k)].scale(scale);
        }
    }

    /// Demodulates all 14 symbols into a [`Grid`] (serial helper).
    pub fn demodulate(&self, samples: &[Cf32]) -> Grid {
        let mut grid = Grid::new(self.bw);
        for l in 0..SYMBOLS_PER_SUBFRAME {
            let row = self.demod_symbol(samples, l);
            grid.symbol_mut(l).copy_from_slice(&row);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;

    fn filled_grid(bw: Bandwidth) -> Grid {
        let mut g = Grid::new(bw);
        for l in 0..SYMBOLS_PER_SUBFRAME {
            for (k, v) in g.symbol_mut(l).iter_mut().enumerate() {
                *v = Cf32::from_phase((l * 31 + k * 7) as f32 * 0.13);
            }
        }
        g
    }

    #[test]
    fn modulate_demodulate_roundtrip_10mhz() {
        let bw = Bandwidth::Mhz10;
        let proc_ = OfdmProcessor::new(bw);
        let grid = filled_grid(bw);
        let samples = proc_.modulate(&grid);
        assert_eq!(samples.len(), 15_360);
        let back = proc_.demodulate(&samples);
        for l in 0..SYMBOLS_PER_SUBFRAME {
            for (a, b) in grid.symbol(l).iter().zip(back.symbol(l)) {
                assert!((*a - *b).abs() < 1e-2, "symbol {l}");
            }
        }
    }

    #[test]
    fn roundtrip_all_bandwidths() {
        for bw in [Bandwidth::Mhz1_4, Bandwidth::Mhz5, Bandwidth::Mhz15] {
            let proc_ = OfdmProcessor::new(bw);
            let grid = filled_grid(bw);
            let samples = proc_.modulate(&grid);
            let back = proc_.demodulate(&samples);
            let err: f32 = (0..SYMBOLS_PER_SUBFRAME)
                .flat_map(|l| {
                    grid.symbol(l)
                        .iter()
                        .zip(back.symbol(l))
                        .map(|(a, b)| (*a - *b).abs())
                        .collect::<Vec<_>>()
                })
                .fold(0.0, f32::max);
            assert!(err < 2e-2, "{}: max err {err}", bw.label());
        }
    }

    #[test]
    fn time_signal_has_unit_mean_power() {
        let bw = Bandwidth::Mhz10;
        let proc_ = OfdmProcessor::new(bw);
        let samples = proc_.modulate(&filled_grid(bw));
        let p = mean_power(&samples);
        // CP repeats signal energy, so power stays ≈ 1 (within a few %).
        assert!((p - 1.0).abs() < 0.1, "mean power {p}");
    }

    #[test]
    fn single_symbol_demod_matches_full() {
        let bw = Bandwidth::Mhz5;
        let proc_ = OfdmProcessor::new(bw);
        let samples = proc_.modulate(&filled_grid(bw));
        let full = proc_.demodulate(&samples);
        for l in [0usize, 3, 7, 13] {
            let one = proc_.demod_symbol(&samples, l);
            assert_eq!(&one[..], full.symbol(l));
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let bw = Bandwidth::Mhz5;
        let proc_ = OfdmProcessor::new(bw);
        let samples = proc_.modulate(&filled_grid(bw));
        for l in 0..SYMBOLS_PER_SUBFRAME {
            let start = bw.symbol_offset(l);
            let cp = bw.cp_len(l);
            let n = bw.fft_size();
            for i in 0..cp {
                let a = samples[start + i];
                let b = samples[start + cp + n - cp + i];
                assert!((a - b).abs() < 1e-5, "symbol {l} cp sample {i}");
            }
        }
    }

    #[test]
    fn empty_grid_produces_silence() {
        let proc_ = OfdmProcessor::new(Bandwidth::Mhz1_4);
        let samples = proc_.modulate(&Grid::new(Bandwidth::Mhz1_4));
        assert!(samples.iter().all(|s| s.abs() < 1e-6));
    }
}
