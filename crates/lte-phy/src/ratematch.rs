//! Rate matching for turbo-coded transport channels (36.212 §5.1.4.1).
//!
//! Each of the three turbo output streams passes through a 32-column
//! sub-block interleaver; the interleaved systematic stream followed by the
//! bit-interlaced parity streams forms the **circular buffer**, from which
//! exactly `E` bits are read (wrapping, skipping the `<NULL>` padding) for
//! transmission. De-rate-matching reverses the walk, *accumulating* LLRs at
//! repeated positions (chase combining) and leaving punctured positions at
//! LLR 0 (erasure).

use crate::turbo::{stream_len, TurboCodeword};

/// Number of columns of the sub-block interleaver.
const COLS: usize = 32;

/// The inter-column permutation pattern of 36.212 Table 5.1.4-1.
const PERM: [usize; COLS] = [
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30, 1, 17, 9, 25, 5, 21, 13, 29, 3, 19,
    11, 27, 7, 23, 15, 31,
];

/// Identifies one of the three turbo streams inside the circular buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// `<NULL>` padding bit — never transmitted.
    Null,
    /// Bit `idx` of stream `stream`.
    Bit { stream: u8, idx: u32 },
}

/// Rate matcher for turbo codewords of a fixed block size `K`.
#[derive(Clone, Debug)]
pub struct RateMatcher {
    /// Stream length `D = K + 4`.
    d: usize,
    /// Rows of the sub-block interleaver, `R = ⌈D/32⌉`.
    rows: usize,
    /// Map: circular-buffer position → stream slot.
    w_map: Vec<Slot>,
}

impl RateMatcher {
    /// Creates a rate matcher for turbo block size `k`.
    pub fn new(k: usize) -> Self {
        let d = stream_len(k);
        let rows = d.div_ceil(COLS);
        let kpi = rows * COLS;
        let nd = kpi - d; // NULL padding at the head of each stream
        let mut w_map = Vec::with_capacity(3 * kpi);
        // v0: interleaved systematic stream.
        for j in 0..kpi {
            w_map.push(Self::slot(j, rows, nd, 0, 0));
        }
        // Interlaced v1 (parity 1) and v2 (parity 2, extra +1 rotation).
        for j in 0..kpi {
            w_map.push(Self::slot(j, rows, nd, 1, 0));
            w_map.push(Self::slot(j, rows, nd, 2, 1));
        }
        RateMatcher { d, rows, w_map }
    }

    /// Resolves sub-block-interleaver output position `j` of a stream to a
    /// [`Slot`]. `shift` is 1 for the third stream (36.212's `+1` rotation).
    fn slot(j: usize, rows: usize, nd: usize, stream: u8, shift: usize) -> Slot {
        let kpi = rows * COLS;
        let col = j / rows;
        let row = j % rows;
        let y_idx = (row * COLS + PERM[col] + shift) % kpi;
        if y_idx < nd {
            Slot::Null
        } else {
            Slot::Bit {
                stream,
                idx: (y_idx - nd) as u32,
            }
        }
    }

    /// Stream length `D = K + 4`.
    pub fn stream_len(&self) -> usize {
        self.d
    }

    /// Circular-buffer length `Kw = 3·R·32`.
    pub fn buffer_len(&self) -> usize {
        self.w_map.len()
    }

    /// Redundancy-version start offset `k0(rv)` (36.212 §5.1.4.1.2):
    /// `k0 = R·(2·⌈Ncb/(8R)⌉·rv + 2)`, which with the full circular buffer
    /// (`Ncb = 96R`) reduces to `R·(24·rv + 2)`.
    ///
    /// # Panics
    /// Panics if `rv > 3`.
    pub fn k0_rv(&self, rv: u8) -> usize {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(rv <= 3, "redundancy version 0..=3");
        self.rows * (24 * rv as usize + 2)
    }

    /// Redundancy-version start offset `k0` for rv 0 (`2R`).
    pub fn k0(&self) -> usize {
        self.k0_rv(0)
    }

    /// Selects `e` bits from the codeword's circular buffer.
    ///
    /// # Panics
    /// Panics if the codeword block size differs from this matcher's, or if
    /// `e == 0`.
    pub fn rate_match(&self, cw: &TurboCodeword, e: usize) -> Vec<u8> {
        self.rate_match_rv(cw, e, 0)
    }

    /// Selects `e` bits starting at redundancy version `rv`'s offset —
    /// retransmissions with `rv > 0` begin deeper in the circular buffer,
    /// sending mostly *new* parity (incremental redundancy).
    ///
    /// # Panics
    /// Panics like [`RateMatcher::rate_match`], or if `rv > 3`.
    pub fn rate_match_rv(&self, cw: &TurboCodeword, e: usize, rv: u8) -> Vec<u8> {
        assert_eq!(cw.d0.len(), self.d, "codeword size mismatch");
        assert!(e > 0, "cannot select zero bits");
        let ncb = self.buffer_len();
        let mut out = Vec::with_capacity(e);
        let mut k = self.k0_rv(rv);
        while out.len() < e {
            if let Slot::Bit { stream, idx } = self.w_map[k] {
                let bit = match stream {
                    0 => cw.d0[idx as usize],
                    1 => cw.d1[idx as usize],
                    _ => cw.d2[idx as usize],
                };
                out.push(bit);
            }
            k = (k + 1) % ncb;
        }
        out
    }

    /// Reverses the selection walk over `llrs` (length `E`), accumulating
    /// repeated transmissions and returning per-stream LLRs `(d0, d1, d2)`
    /// of length `D` each. Punctured (never-sent) positions stay at 0.
    pub fn de_rate_match(&self, llrs: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        self.de_rate_match_rv(llrs, 0)
    }

    /// Reverses a redundancy-version-`rv` selection (see
    /// [`RateMatcher::rate_match_rv`]).
    pub fn de_rate_match_rv(&self, llrs: &[f32], rv: u8) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut d0 = Vec::new();
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        self.de_rate_match_rv_into(llrs, rv, &mut d0, &mut d1, &mut d2);
        (d0, d1, d2)
    }

    /// [`RateMatcher::de_rate_match`] into caller-owned stream vectors
    /// (cleared, resized to `D`, refilled; no allocation once they have
    /// capacity).
    pub fn de_rate_match_into(
        &self,
        llrs: &[f32],
        d0: &mut Vec<f32>,
        d1: &mut Vec<f32>,
        d2: &mut Vec<f32>,
    ) {
        self.de_rate_match_rv_into(llrs, 0, d0, d1, d2);
    }

    /// [`RateMatcher::de_rate_match_rv`] into caller-owned stream vectors.
    pub fn de_rate_match_rv_into(
        &self,
        llrs: &[f32],
        rv: u8,
        d0: &mut Vec<f32>,
        d1: &mut Vec<f32>,
        d2: &mut Vec<f32>,
    ) {
        let ncb = self.buffer_len();
        for v in [&mut *d0, &mut *d1, &mut *d2] {
            v.clear();
            v.resize(self.d, 0.0);
        }
        let mut k = self.k0_rv(rv);
        let mut taken = 0usize;
        while taken < llrs.len() {
            if let Slot::Bit { stream, idx } = self.w_map[k] {
                let tgt = match stream {
                    0 => &mut d0[idx as usize],
                    1 => &mut d1[idx as usize],
                    _ => &mut d2[idx as usize],
                };
                *tgt += llrs[taken];
                taken += 1;
            }
            k = (k + 1) % ncb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turbo::TurboEncoder;
    use proptest::prelude::*;

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .map(|i| {
                (((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed)
                    >> 40)
                    & 1) as u8
            })
            .collect()
    }

    #[test]
    fn perm_is_a_permutation_of_columns() {
        let mut seen = [false; COLS];
        for &p in &PERM {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn every_codeword_bit_appears_in_buffer() {
        let rm = RateMatcher::new(40);
        let mut counts = [[0usize; 64]; 3];
        for slot in &rm.w_map {
            if let Slot::Bit { stream, idx } = slot {
                counts[*stream as usize][*idx as usize] += 1;
            }
        }
        for s in 0..3 {
            for i in 0..44 {
                assert_eq!(counts[s][i], 1, "stream {s} bit {i}");
            }
        }
    }

    #[test]
    fn full_buffer_readout_contains_all_bits() {
        let k = 104;
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&bits(k, 1));
        let rm = RateMatcher::new(k);
        let non_null = rm
            .w_map
            .iter()
            .filter(|s| matches!(s, Slot::Bit { .. }))
            .count();
        assert_eq!(non_null, 3 * (k + 4));
        let out = rm.rate_match(&cw, non_null);
        let ones_in = cw
            .d0
            .iter()
            .chain(&cw.d1)
            .chain(&cw.d2)
            .filter(|&&b| b == 1)
            .count();
        let ones_out = out.iter().filter(|&&b| b == 1).count();
        assert_eq!(ones_in, ones_out);
    }

    #[test]
    fn puncturing_then_soft_combine_roundtrip() {
        // Rate-match to fewer bits than the buffer, de-rate-match perfect
        // LLRs, and confirm transmitted positions carry the right signs.
        let k = 512;
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&bits(k, 9));
        let rm = RateMatcher::new(k);
        let e = 2 * (k + 4); // some puncturing (rate 1/2 instead of 1/3)
        let tx = rm.rate_match(&cw, e);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 5.0 } else { -5.0 })
            .collect();
        let (d0, d1, d2) = rm.de_rate_match(&llrs);
        let check = |llr: &[f32], bits: &[u8], name: &str| {
            for (i, (&l, &b)) in llr.iter().zip(bits).enumerate() {
                if l != 0.0 {
                    let hard = (l < 0.0) as u8;
                    assert_eq!(hard, b, "{name}[{i}]");
                }
            }
        };
        check(&d0, &cw.d0, "d0");
        check(&d1, &cw.d1, "d1");
        check(&d2, &cw.d2, "d2");
    }

    #[test]
    fn repetition_accumulates_llrs() {
        let k = 40;
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&bits(k, 2));
        let rm = RateMatcher::new(k);
        let ncb_bits = 3 * (k + 4);
        let e = 2 * ncb_bits; // every bit sent exactly twice
        let tx = rm.rate_match(&cw, e);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        let (d0, _, _) = rm.de_rate_match(&llrs);
        for (&l, &b) in d0.iter().zip(&cw.d0) {
            assert_eq!(l, if b == 0 { 2.0 } else { -2.0 });
        }
    }

    #[test]
    fn systematic_bits_survive_heavy_puncturing() {
        // rv0 starts just past the NULL head of the systematic section, so
        // with E = D the output is dominated by systematic bits.
        let k = 1024;
        let enc = TurboEncoder::new(k);
        let data = bits(k, 3);
        let cw = enc.encode(&data);
        let rm = RateMatcher::new(k);
        let tx = rm.rate_match(&cw, k);
        // Count agreement with some systematic bits: walk the map again.
        let mut sys_count = 0usize;
        let ncb = rm.buffer_len();
        let mut pos = rm.k0();
        let mut taken = 0;
        while taken < k {
            if let Slot::Bit { stream, idx } = rm.w_map[pos] {
                if stream == 0 {
                    assert_eq!(tx[taken], cw.d0[idx as usize]);
                    sys_count += 1;
                }
                taken += 1;
            }
            pos = (pos + 1) % ncb;
        }
        assert!(sys_count > k * 8 / 10, "only {sys_count} systematic bits");
    }

    #[test]
    fn rv_offsets_are_distinct_and_in_buffer() {
        let rm = RateMatcher::new(1024);
        let offs: Vec<usize> = (0..4).map(|rv| rm.k0_rv(rv)).collect();
        for w in offs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(offs[3] < rm.buffer_len());
        assert_eq!(rm.k0(), rm.k0_rv(0));
    }

    #[test]
    fn rv_roundtrip_each_version() {
        let k = 512;
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&bits(k, 5));
        let rm = RateMatcher::new(k);
        let e = 2 * (k + 4);
        for rv in 0..4u8 {
            let tx = rm.rate_match_rv(&cw, e, rv);
            let llrs: Vec<f32> = tx
                .iter()
                .map(|&b| if b == 0 { 3.0 } else { -3.0 })
                .collect();
            let (d0, d1, d2) = rm.de_rate_match_rv(&llrs, rv);
            for (llr, bits, name) in [
                (&d0, &cw.d0, "d0"),
                (&d1, &cw.d1, "d1"),
                (&d2, &cw.d2, "d2"),
            ] {
                for (i, (&l, &b)) in llr.iter().zip(bits.iter()).enumerate() {
                    if l != 0.0 {
                        assert_eq!((l < 0.0) as u8, b, "rv{rv} {name}[{i}]");
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_redundancy_covers_more_of_the_buffer() {
        // rv0 + rv2 together should fill far more codeword positions than
        // rv0 twice (chase) — the point of incremental redundancy.
        let k = 2048;
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&bits(k, 6));
        let rm = RateMatcher::new(k);
        let e = k; // heavy puncturing, rate ~1
        let filled = |rvs: &[u8]| -> usize {
            let mut acc0 = vec![0.0f32; k + 4];
            let mut acc1 = vec![0.0f32; k + 4];
            let mut acc2 = vec![0.0f32; k + 4];
            for &rv in rvs {
                let tx = rm.rate_match_rv(&cw, e, rv);
                let llrs: Vec<f32> = tx
                    .iter()
                    .map(|&b| if b == 0 { 1.0 } else { -1.0 })
                    .collect();
                let (d0, d1, d2) = rm.de_rate_match_rv(&llrs, rv);
                for i in 0..k + 4 {
                    acc0[i] += d0[i];
                    acc1[i] += d1[i];
                    acc2[i] += d2[i];
                }
            }
            acc0.iter()
                .chain(&acc1)
                .chain(&acc2)
                .filter(|&&x| x != 0.0)
                .count()
        };
        let chase = filled(&[0, 0]);
        let ir = filled(&[0, 2]);
        assert!(ir > chase + k / 2, "chase {chase}, ir {ir}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_de_rate_match_preserves_energy(k_sel in 0usize..6, e_mult in 1usize..4) {
            let ks = [40usize, 104, 512, 1056, 2048, 6144];
            let k = ks[k_sel];
            let enc = TurboEncoder::new(k);
            let cw = enc.encode(&bits(k, k as u64));
            let rm = RateMatcher::new(k);
            let e = e_mult * (k + 4);
            let tx = rm.rate_match(&cw, e);
            prop_assert_eq!(tx.len(), e);
            let llrs: Vec<f32> = tx.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
            let (d0, d1, d2) = rm.de_rate_match(&llrs);
            let total: f32 = d0.iter().chain(&d1).chain(&d2).map(|l| l.abs()).sum();
            // Chase combining preserves total LLR magnitude.
            prop_assert!((total - e as f32).abs() < 1e-3 * e as f32);
        }
    }
}
