//! The paper's task/subtask decomposition of subframe processing (Fig. 5).
//!
//! A subframe decode is three **sequential tasks** — FFT, Demod, Decode —
//! each of which splits into **independent subtasks** that may execute
//! concurrently (and, under RT-OPEX, migrate to idle cores). All subtasks
//! of a task must complete before the next task starts (the precedence
//! constraint of §2.2).

/// The three sequential tasks of uplink subframe processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// CP removal + FFT, parallel over antenna-symbols.
    Fft,
    /// Channel estimation, equalization, demapping, parallel over symbols.
    Demod,
    /// Descrambling, de-rate-matching, turbo decode, parallel over code blocks.
    Decode,
}

impl TaskKind {
    /// The tasks in their mandatory execution order.
    pub const ORDER: [TaskKind; 3] = [TaskKind::Fft, TaskKind::Demod, TaskKind::Decode];

    /// The task that must follow this one, if any.
    pub const fn next(self) -> Option<TaskKind> {
        match self {
            TaskKind::Fft => Some(TaskKind::Demod),
            TaskKind::Demod => Some(TaskKind::Decode),
            TaskKind::Decode => None,
        }
    }

    /// Short label used in experiment output ("fft" / "demod" / "decode").
    pub const fn label(self) -> &'static str {
        match self {
            TaskKind::Fft => "fft",
            TaskKind::Demod => "demod",
            TaskKind::Decode => "decode",
        }
    }
}

/// How many independent subtasks each task of a subframe decode offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskBreakdown {
    /// FFT subtasks: one per (antenna, OFDM symbol) = `N × 14`.
    pub fft: usize,
    /// Demod subtasks: one per data OFDM symbol = 12 (normal CP).
    pub demod: usize,
    /// Decode subtasks: one per code block = `C` (1–13 depending on MCS).
    pub decode: usize,
}

impl TaskBreakdown {
    /// Subtask count for a task.
    pub const fn count(&self, kind: TaskKind) -> usize {
        match kind {
            TaskKind::Fft => self.fft,
            TaskKind::Demod => self.demod,
            TaskKind::Decode => self.decode,
        }
    }

    /// Total subtasks across the three tasks.
    pub const fn total(&self) -> usize {
        self.fft + self.demod + self.decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_fft_demod_decode() {
        assert_eq!(TaskKind::ORDER[0].next(), Some(TaskKind::ORDER[1]));
        assert_eq!(TaskKind::ORDER[1].next(), Some(TaskKind::ORDER[2]));
        assert_eq!(TaskKind::Decode.next(), None);
    }

    #[test]
    fn breakdown_counts() {
        let b = TaskBreakdown {
            fft: 28,
            demod: 12,
            decode: 6,
        };
        assert_eq!(b.count(TaskKind::Fft), 28);
        assert_eq!(b.count(TaskKind::Demod), 12);
        assert_eq!(b.count(TaskKind::Decode), 6);
        assert_eq!(b.total(), 46);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TaskKind::Fft.label(), "fft");
        assert_eq!(TaskKind::Demod.label(), "demod");
        assert_eq!(TaskKind::Decode.label(), "decode");
    }
}
