//! Code-block segmentation (3GPP TS 36.212 §5.1.2).
//!
//! A transport block larger than the maximum turbo-interleaver size
//! `Z = 6144` is split into `C` code blocks, each of a *valid* interleaver
//! size `K`, with filler bits padding the front of the first block and a
//! CRC24B appended to every block when `C > 1`.
//!
//! The per-code-block structure is what makes the paper's **decode task
//! parallelizable**: each code block can be turbo-decoded (and CRC-checked)
//! independently — at MCS 27 / 50 PRBs a subframe carries 6 code blocks,
//! i.e. 6 decode subtasks available for RT-OPEX migration.

use crate::crc::CRC24B;
use crate::error::PhyError;

/// Maximum code-block (turbo interleaver) size.
pub const MAX_CODE_BLOCK: usize = 6144;

/// Length of the per-code-block CRC attached when `C > 1`.
pub const BLOCK_CRC_LEN: usize = 24;

/// Returns the smallest valid turbo-interleaver size `K ≥ want`, or `None`
/// if `want` exceeds [`MAX_CODE_BLOCK`].
///
/// Valid sizes (36.212 Table 5.1.3-3): 40..=512 step 8, 528..=1024 step 16,
/// 1056..=2048 step 32, 2112..=6144 step 64.
pub fn next_valid_k(want: usize) -> Option<usize> {
    if want > MAX_CODE_BLOCK {
        return None;
    }
    let k = if want <= 512 {
        40.max(want.div_ceil(8) * 8)
    } else if want <= 1024 {
        want.div_ceil(16) * 16
    } else if want <= 2048 {
        want.div_ceil(32) * 32
    } else {
        want.div_ceil(64) * 64
    };
    Some(k)
}

/// Returns the largest valid turbo-interleaver size `K < k`, or `None` if
/// `k <= 40`.
pub fn prev_valid_k(k: usize) -> Option<usize> {
    if k <= 40 {
        return None;
    }
    let want = k - 1;
    let p = if want <= 512 {
        40.max(want / 8 * 8)
    } else if want <= 1024 {
        (want / 16 * 16).max(512)
    } else if want <= 2048 {
        (want / 32 * 32).max(1024)
    } else {
        (want / 64 * 64).max(2048)
    };
    Some(p)
}

/// Returns `true` if `k` is a valid turbo-interleaver size.
pub fn is_valid_k(k: usize) -> bool {
    next_valid_k(k) == Some(k)
}

/// The segmentation of one transport block into code blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segmentation {
    /// Number of code blocks `C`.
    pub num_blocks: usize,
    /// Larger block size `K⁺`.
    pub k_plus: usize,
    /// Smaller block size `K⁻` (0 when unused).
    pub k_minus: usize,
    /// Number of blocks of size `K⁺`.
    pub c_plus: usize,
    /// Number of blocks of size `K⁻`.
    pub c_minus: usize,
    /// Number of filler bits prepended to the first block.
    pub filler: usize,
    /// Input size `B` this segmentation was computed for (bits, incl. TB CRC).
    pub input_bits: usize,
}

impl Segmentation {
    /// Computes the segmentation for a transport block of `b` bits
    /// (including the transport-block CRC24A).
    pub fn compute(b: usize) -> Result<Self, PhyError> {
        if b == 0 {
            return Err(PhyError::UnsupportedBlockSize { bits: 0 });
        }
        let (c, b_prime) = if b <= MAX_CODE_BLOCK {
            (1, b)
        } else {
            let c = b.div_ceil(MAX_CODE_BLOCK - BLOCK_CRC_LEN);
            (c, b + c * BLOCK_CRC_LEN)
        };
        let k_plus =
            next_valid_k(b_prime.div_ceil(c)).ok_or(PhyError::UnsupportedBlockSize { bits: b })?;
        let (k_minus, c_minus, c_plus) = if c == 1 {
            (0, 0, 1)
        } else {
            match prev_valid_k(k_plus) {
                Some(k_minus) => {
                    let delta = k_plus - k_minus;
                    let c_minus = (c * k_plus - b_prime) / delta;
                    (k_minus, c_minus, c - c_minus)
                }
                None => (0, 0, c),
            }
        };
        let filler = c_plus * k_plus + c_minus * k_minus - b_prime;
        Ok(Segmentation {
            num_blocks: c,
            k_plus,
            k_minus,
            c_plus,
            c_minus,
            filler,
            input_bits: b,
        })
    }

    /// Sizes of the `C` code blocks in transmission order
    /// (`K⁻` blocks first, per 36.212).
    pub fn block_sizes(&self) -> Vec<usize> {
        (0..self.num_blocks).map(|r| self.block_size(r)).collect()
    }

    /// Size of code block `r` in transmission order (`K⁻` blocks first).
    ///
    /// # Panics
    /// Panics if `r >= num_blocks`.
    pub fn block_size(&self, r: usize) -> usize {
        // analyze: allow(panic): buffer-shape contract; a mismatch means the job was built against a different config — decode garbage or fail loudly, and loud wins
        assert!(r < self.num_blocks, "code block index out of range");
        if r < self.c_minus {
            self.k_minus
        } else {
            self.k_plus
        }
    }

    /// Splits `tb` (the transport block bits including its CRC24A, length
    /// [`Self::input_bits`]) into code blocks: filler zeros are prepended to
    /// the first block, and a CRC24B is appended to each block when `C > 1`.
    pub fn segment(&self, tb: &[u8]) -> Result<Vec<Vec<u8>>, PhyError> {
        if tb.len() != self.input_bits {
            return Err(PhyError::LengthMismatch {
                what: "transport block",
                expected: self.input_bits,
                actual: tb.len(),
            });
        }
        let crc = self.num_blocks > 1;
        let mut blocks = Vec::with_capacity(self.num_blocks);
        let mut pos = 0usize;
        for (r, k) in self.block_sizes().into_iter().enumerate() {
            let payload = if crc { k - BLOCK_CRC_LEN } else { k };
            let mut blk = Vec::with_capacity(k);
            if r == 0 {
                blk.extend(std::iter::repeat_n(0u8, self.filler));
            }
            let take = payload - blk.len();
            blk.extend_from_slice(&tb[pos..pos + take]);
            pos += take;
            if crc {
                CRC24B.attach(&mut blk);
            }
            debug_assert_eq!(blk.len(), k);
            blocks.push(blk);
        }
        debug_assert_eq!(pos, tb.len());
        Ok(blocks)
    }

    /// Reassembles decoded code blocks into the transport block bits
    /// (still including the transport-block CRC24A).
    ///
    /// Returns the reassembled bits and a per-block CRC24B pass/fail vector
    /// (all `true` when `C == 1`, where no per-block CRC exists).
    pub fn desegment(&self, blocks: &[Vec<u8>]) -> Result<(Vec<u8>, Vec<bool>), PhyError> {
        // analyze: allow(alloc): owned-return transport-block assembly used by the mailbox job; the result must outlive the job slab
        let mut tb = Vec::new();
        // analyze: allow(alloc): owned-return transport-block assembly used by the mailbox job; the result must outlive the job slab
        let mut oks = Vec::new();
        self.desegment_into(blocks, &mut tb, &mut oks)?;
        Ok((tb, oks))
    }

    /// [`Segmentation::desegment`] into caller-owned vectors (cleared and
    /// refilled; no allocation once they have capacity).
    pub fn desegment_into(
        &self,
        blocks: &[Vec<u8>],
        tb: &mut Vec<u8>,
        oks: &mut Vec<bool>,
    ) -> Result<(), PhyError> {
        if blocks.len() != self.num_blocks {
            return Err(PhyError::LengthMismatch {
                what: "code blocks",
                expected: self.num_blocks,
                actual: blocks.len(),
            });
        }
        let crc = self.num_blocks > 1;
        tb.clear();
        tb.reserve(self.input_bits);
        oks.clear();
        oks.reserve(self.num_blocks);
        for (r, blk) in blocks.iter().enumerate() {
            let k = self.block_size(r);
            if blk.len() != k {
                return Err(PhyError::LengthMismatch {
                    what: "code block",
                    expected: k,
                    actual: blk.len(),
                });
            }
            let payload_end = if crc { k - BLOCK_CRC_LEN } else { k };
            let start = if r == 0 { self.filler } else { 0 };
            oks.push(if crc { CRC24B.check(blk) } else { true });
            tb.extend_from_slice(&blk[start..payload_end]);
        }
        debug_assert_eq!(tb.len(), self.input_bits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) >> 7) & 1) as u8)
            .collect()
    }

    #[test]
    fn valid_k_lattice() {
        assert!(is_valid_k(40));
        assert!(is_valid_k(512));
        assert!(is_valid_k(528));
        assert!(is_valid_k(1024));
        assert!(is_valid_k(1056));
        assert!(is_valid_k(2048));
        assert!(is_valid_k(2112));
        assert!(is_valid_k(6144));
        assert!(!is_valid_k(41));
        assert!(!is_valid_k(520)); // between 512 and 528
        assert!(!is_valid_k(2080)); // between 2048 and 2112
    }

    #[test]
    fn next_prev_are_adjacent() {
        let mut k = 40;
        while k < MAX_CODE_BLOCK {
            let n = next_valid_k(k + 1).unwrap();
            assert_eq!(prev_valid_k(n), Some(k), "around {k}");
            k = n;
        }
    }

    #[test]
    fn small_tb_single_block_no_crc() {
        let seg = Segmentation::compute(1000).unwrap();
        assert_eq!(seg.num_blocks, 1);
        assert_eq!(seg.k_plus, next_valid_k(1000).unwrap());
        assert_eq!(seg.filler, seg.k_plus - 1000);
    }

    #[test]
    fn mcs27_50prb_has_six_blocks() {
        // Paper §2.2: "at MCS 27, LTE utilizes 6 code-blocks".
        // TBS(MCS27, 50 PRB) = 31704, +24 CRC = 31728.
        let seg = Segmentation::compute(31704 + 24).unwrap();
        assert_eq!(seg.num_blocks, 6);
        let total: usize = seg.block_sizes().iter().sum();
        assert_eq!(total, seg.input_bits + 6 * BLOCK_CRC_LEN + seg.filler);
    }

    #[test]
    fn segment_desegment_roundtrip_small() {
        let tb = bits(800, 3);
        let seg = Segmentation::compute(800).unwrap();
        let blocks = seg.segment(&tb).unwrap();
        let (out, oks) = seg.desegment(&blocks).unwrap();
        assert_eq!(out, tb);
        assert!(oks.iter().all(|&x| x));
    }

    #[test]
    fn segment_desegment_roundtrip_large() {
        let tb = bits(31728, 99);
        let seg = Segmentation::compute(tb.len()).unwrap();
        let blocks = seg.segment(&tb).unwrap();
        assert_eq!(blocks.len(), 6);
        let (out, oks) = seg.desegment(&blocks).unwrap();
        assert_eq!(out, tb);
        assert!(oks.iter().all(|&x| x));
    }

    #[test]
    fn corrupted_block_fails_its_crc_only() {
        let tb = bits(20000, 1);
        let seg = Segmentation::compute(tb.len()).unwrap();
        let mut blocks = seg.segment(&tb).unwrap();
        blocks[1][17] ^= 1;
        let (_, oks) = seg.desegment(&blocks).unwrap();
        assert!(!oks[1]);
        assert!(oks.iter().enumerate().all(|(i, &ok)| ok || i == 1));
    }

    #[test]
    fn zero_bits_rejected() {
        assert!(Segmentation::compute(0).is_err());
    }

    #[test]
    fn block_sizes_are_valid_k() {
        for b in [40, 100, 6144, 6145, 10000, 31728, 50000] {
            let seg = Segmentation::compute(b).unwrap();
            for k in seg.block_sizes() {
                assert!(is_valid_k(k), "B={b} K={k}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip(b in 40usize..40000, seed in 0u64..100) {
            let tb = bits(b, seed);
            let seg = Segmentation::compute(b).unwrap();
            let blocks = seg.segment(&tb).unwrap();
            let (out, oks) = seg.desegment(&blocks).unwrap();
            prop_assert_eq!(out, tb);
            prop_assert!(oks.iter().all(|&x| x));
        }

        #[test]
        fn prop_accounting(b in 40usize..40000) {
            let seg = Segmentation::compute(b).unwrap();
            let sizes = seg.block_sizes();
            prop_assert_eq!(sizes.len(), seg.num_blocks);
            let crc_bits = if seg.num_blocks > 1 { seg.num_blocks * BLOCK_CRC_LEN } else { 0 };
            let total: usize = sizes.iter().sum();
            prop_assert_eq!(total, b + crc_bits + seg.filler);
            // Filler is always smaller than the K-granularity.
            prop_assert!(seg.filler < 64 * seg.num_blocks);
        }
    }
}
