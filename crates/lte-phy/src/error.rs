//! Error type shared by the PHY chain.

use std::fmt;

/// Errors produced while configuring or running the PHY chain.
///
/// The chain is written so that *expected* run-time outcomes (a CRC failure
/// on a noisy channel, a decoder hitting its iteration cap) are **not**
/// errors — they are reported in the decode result. `PhyError` covers
/// misconfiguration and internally inconsistent inputs only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhyError {
    /// A configuration parameter is outside the supported range.
    InvalidConfig {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An input buffer does not have the length the configuration implies.
    LengthMismatch {
        /// What buffer was being validated.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// A transport block size is not representable (e.g. too many code blocks).
    UnsupportedBlockSize {
        /// The offending size in bits.
        bits: usize,
    },
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidConfig { what, detail } => {
                write!(f, "invalid PHY configuration ({what}): {detail}")
            }
            PhyError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "length mismatch for {what}: expected {expected}, got {actual}"
            ),
            PhyError::UnsupportedBlockSize { bits } => {
                write!(f, "unsupported transport block size: {bits} bits")
            }
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PhyError::LengthMismatch {
            what: "samples",
            expected: 15360,
            actual: 100,
        };
        let s = e.to_string();
        assert!(s.contains("15360") && s.contains("samples"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(PhyError::UnsupportedBlockSize { bits: 1 });
        assert!(e.to_string().contains("1 bits"));
    }
}
