//! Wireless channel models: AWGN and flat Rayleigh block fading.
//!
//! The paper drives its evaluation with an AWGN channel at a configured SNR
//! (§4.2: fixed 30 dB, MCS varied by the load trace) and sweeps SNR 0–30 dB
//! for the processing-time model (Fig. 3(b)). Both models here produce one
//! received stream per antenna; receive diversity across `N` antennas is
//! what makes the FFT/equalization cost scale with `N` (Eq. 1's `w1·N`).

use crate::complex::Cf32;
use rand::Rng;

/// Draws a standard complex Gaussian `CN(0, 1)` sample (unit total variance).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R) -> Cf32 {
    // Box-Muller: two uniforms → two independent N(0, 1/2) components.
    let u1: f32 = rng.gen_range(1e-12..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    let r = (-u1.ln()).sqrt(); // scale for variance 1/2 per axis
    let theta = 2.0 * std::f32::consts::PI * u2;
    Cf32::new(r * theta.cos(), r * theta.sin())
}

/// A channel that turns one transmitted sample stream into `n_antennas`
/// received streams.
pub trait ChannelModel {
    /// Applies the channel. Returns one received stream per antenna, each
    /// the same length as `tx`.
    fn apply<R: Rng + ?Sized>(
        &mut self,
        tx: &[Cf32],
        n_antennas: usize,
        rng: &mut R,
    ) -> Vec<Vec<Cf32>>;

    /// The per-antenna average SNR in dB this channel realizes.
    fn snr_db(&self) -> f64;
}

/// Additive white Gaussian noise with unit channel gain on every antenna.
#[derive(Clone, Debug)]
pub struct AwgnChannel {
    snr_db: f64,
}

impl AwgnChannel {
    /// Creates an AWGN channel with the given per-antenna SNR in dB.
    pub fn new(snr_db: f64) -> Self {
        AwgnChannel { snr_db }
    }

    /// Noise variance per complex sample for a unit-power input.
    pub fn noise_var(&self) -> f32 {
        10f64.powf(-self.snr_db / 10.0) as f32
    }
}

impl ChannelModel for AwgnChannel {
    fn apply<R: Rng + ?Sized>(
        &mut self,
        tx: &[Cf32],
        n_antennas: usize,
        rng: &mut R,
    ) -> Vec<Vec<Cf32>> {
        let sigma = self.noise_var().sqrt();
        (0..n_antennas)
            .map(|_| {
                tx.iter()
                    .map(|&s| s + complex_gaussian(rng).scale(sigma))
                    .collect()
            })
            .collect()
    }

    fn snr_db(&self) -> f64 {
        self.snr_db
    }
}

/// Flat Rayleigh block fading: one complex gain per antenna per call
/// (constant over the subframe), plus AWGN.
///
/// Per-antenna gains are independent `CN(0, 1)`, so the *average* SNR is as
/// configured while instantaneous SNR varies between subframes — which
/// makes the turbo iteration count (and hence decode time) fluctuate even
/// at a fixed MCS, feeding the variability the scheduler must absorb.
#[derive(Clone, Debug)]
pub struct RayleighBlockChannel {
    snr_db: f64,
}

impl RayleighBlockChannel {
    /// Creates a flat Rayleigh block-fading channel with the given average
    /// per-antenna SNR in dB.
    pub fn new(snr_db: f64) -> Self {
        RayleighBlockChannel { snr_db }
    }
}

impl ChannelModel for RayleighBlockChannel {
    fn apply<R: Rng + ?Sized>(
        &mut self,
        tx: &[Cf32],
        n_antennas: usize,
        rng: &mut R,
    ) -> Vec<Vec<Cf32>> {
        let sigma = (10f64.powf(-self.snr_db / 10.0) as f32).sqrt();
        (0..n_antennas)
            .map(|_| {
                let h = complex_gaussian(rng);
                tx.iter()
                    .map(|&s| h * s + complex_gaussian(rng).scale(sigma))
                    .collect()
            })
            .collect()
    }

    fn snr_db(&self) -> f64 {
        self.snr_db
    }
}

/// Frequency-selective multipath fading: a tapped-delay-line channel with
/// independent Rayleigh taps per antenna (block fading — the taps hold for
/// the subframe), plus AWGN.
///
/// Unlike the flat models above, the resulting channel varies across
/// *subcarriers*, exercising the per-subcarrier LS estimation and MRC
/// combining in [`crate::equalizer`]. Tap delays must stay well inside the
/// cyclic prefix (72+ samples at 10 MHz) for OFDM to hold.
#[derive(Clone, Debug)]
pub struct MultipathChannel {
    snr_db: f64,
    /// `(delay_samples, average linear power)` per tap; powers should sum
    /// to ≈ 1 to preserve the configured average SNR.
    taps: Vec<(usize, f64)>,
}

impl MultipathChannel {
    /// Creates a multipath channel with explicit taps.
    ///
    /// # Panics
    /// Panics if `taps` is empty or a tap power is non-positive.
    pub fn new(snr_db: f64, taps: Vec<(usize, f64)>) -> Self {
        assert!(!taps.is_empty(), "at least one tap");
        assert!(taps.iter().all(|&(_, p)| p > 0.0), "tap powers positive");
        MultipathChannel { snr_db, taps }
    }

    /// A two-tap profile: a main path and a −6 dB echo 16 samples later
    /// (≈ 1 µs at 10 MHz — well inside the 72-sample normal CP).
    pub fn two_path(snr_db: f64) -> Self {
        Self::new(snr_db, vec![(0, 0.8), (16, 0.2)])
    }

    /// A pedestrian-like 4-tap profile with short delays.
    pub fn pedestrian(snr_db: f64) -> Self {
        Self::new(snr_db, vec![(0, 0.60), (4, 0.25), (9, 0.10), (17, 0.05)])
    }

    /// The tap profile in force.
    pub fn taps(&self) -> &[(usize, f64)] {
        &self.taps
    }
}

impl ChannelModel for MultipathChannel {
    fn apply<R: Rng + ?Sized>(
        &mut self,
        tx: &[Cf32],
        n_antennas: usize,
        rng: &mut R,
    ) -> Vec<Vec<Cf32>> {
        let sigma = (10f64.powf(-self.snr_db / 10.0) as f32).sqrt();
        (0..n_antennas)
            .map(|_| {
                // Independent Rayleigh gain per tap per antenna.
                let gains: Vec<(usize, Cf32)> = self
                    .taps
                    .iter()
                    .map(|&(d, p)| (d, complex_gaussian(rng).scale((p as f32).sqrt())))
                    .collect();
                (0..tx.len())
                    .map(|n| {
                        let mut acc = Cf32::ZERO;
                        for &(d, h) in &gains {
                            if n >= d {
                                acc += h * tx[n - d];
                            }
                        }
                        acc + complex_gaussian(rng).scale(sigma)
                    })
                    .collect()
            })
            .collect()
    }

    fn snr_db(&self) -> f64 {
        self.snr_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tone(n: usize) -> Vec<Cf32> {
        (0..n).map(|i| Cf32::from_phase(0.37 * i as f32)).collect()
    }

    #[test]
    fn complex_gaussian_is_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<Cf32> = (0..20000).map(|_| complex_gaussian(&mut rng)).collect();
        let p = mean_power(&v);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
        // Both axes should carry roughly half the energy.
        let re_var: f32 = v.iter().map(|z| z.re * z.re).sum::<f32>() / v.len() as f32;
        assert!((re_var - 0.5).abs() < 0.05, "re var {re_var}");
    }

    #[test]
    fn awgn_noise_power_matches_snr() {
        let mut rng = StdRng::seed_from_u64(2);
        let tx = tone(10000);
        let mut ch = AwgnChannel::new(10.0);
        let rx = ch.apply(&tx, 1, &mut rng);
        let noise: Vec<Cf32> = rx[0].iter().zip(&tx).map(|(r, t)| *r - *t).collect();
        let np = mean_power(&noise);
        assert!((np - 0.1).abs() < 0.01, "noise power {np}");
    }

    #[test]
    fn awgn_produces_independent_antenna_streams() {
        let mut rng = StdRng::seed_from_u64(3);
        let tx = tone(2000);
        let mut ch = AwgnChannel::new(0.0);
        let rx = ch.apply(&tx, 2, &mut rng);
        assert_eq!(rx.len(), 2);
        let mut cross = Cf32::ZERO;
        for ((a, b), t) in rx[0].iter().zip(&rx[1]).zip(&tx) {
            cross += (*a - *t) * (*b - *t).conj();
        }
        assert!(cross.abs() / (tx.len() as f32) < 0.1, "correlated noise");
    }

    #[test]
    fn high_snr_is_nearly_transparent() {
        let mut rng = StdRng::seed_from_u64(4);
        let tx = tone(100);
        let mut ch = AwgnChannel::new(60.0);
        let rx = ch.apply(&tx, 1, &mut rng);
        for (r, t) in rx[0].iter().zip(&tx) {
            assert!((*r - *t).abs() < 0.02);
        }
    }

    #[test]
    fn rayleigh_average_power_is_preserved() {
        let mut rng = StdRng::seed_from_u64(5);
        let tx = tone(300);
        let mut ch = RayleighBlockChannel::new(40.0);
        // Average the received power over many fading realizations.
        let mut acc = 0.0f64;
        let trials = 400;
        for _ in 0..trials {
            let rx = ch.apply(&tx, 1, &mut rng);
            acc += mean_power(&rx[0]) as f64;
        }
        let avg = acc / trials as f64;
        assert!((avg - 1.0).abs() < 0.15, "average rx power {avg}");
    }

    #[test]
    fn rayleigh_gain_constant_within_block() {
        let mut rng = StdRng::seed_from_u64(6);
        let tx = tone(64);
        let mut ch = RayleighBlockChannel::new(80.0); // noiseless, isolate h
        let rx = ch.apply(&tx, 1, &mut rng);
        let h0 = rx[0][0] / tx[0];
        for (r, t) in rx[0].iter().zip(&tx) {
            let h = *r / *t;
            assert!((h - h0).abs() < 1e-2);
        }
    }

    #[test]
    fn multipath_average_power_is_preserved() {
        let mut rng = StdRng::seed_from_u64(7);
        let tx = tone(400);
        let mut ch = MultipathChannel::two_path(60.0);
        let mut acc = 0.0f64;
        let trials = 300;
        for _ in 0..trials {
            let rx = ch.apply(&tx, 1, &mut rng);
            acc += mean_power(&rx[0]) as f64;
        }
        let avg = acc / trials as f64;
        assert!((avg - 1.0).abs() < 0.15, "average rx power {avg}");
    }

    #[test]
    fn multipath_is_frequency_selective() {
        // The echo creates subcarrier-dependent gain: the DFT of the
        // channel impulse response must vary across bins.
        let mut rng = StdRng::seed_from_u64(8);
        // Impulse probing: send a delta, read the impulse response.
        let mut tx = vec![Cf32::ZERO; 256];
        tx[0] = Cf32::ONE;
        let mut ch = MultipathChannel::two_path(80.0); // negligible noise
        let rx = ch.apply(&tx, 1, &mut rng);
        let mut h = rx[0].clone();
        crate::fft::plan(256).forward(&mut h);
        let mags: Vec<f32> = h.iter().map(|v| v.abs()).collect();
        let max = mags.iter().cloned().fold(0.0f32, f32::max);
        let min = mags.iter().cloned().fold(f32::MAX, f32::min);
        assert!(
            max / min.max(1e-6) > 1.3,
            "flat response: {min}..{max} — echo not visible"
        );
    }

    #[test]
    fn multipath_taps_accessor_and_validation() {
        let ch = MultipathChannel::pedestrian(20.0);
        assert_eq!(ch.taps().len(), 4);
        assert_eq!(ch.snr_db(), 20.0);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_panics() {
        MultipathChannel::new(10.0, vec![]);
    }

    #[test]
    fn snr_accessor_roundtrips() {
        assert_eq!(AwgnChannel::new(12.5).snr_db(), 12.5);
        assert_eq!(RayleighBlockChannel::new(-3.0).snr_db(), -3.0);
    }
}
