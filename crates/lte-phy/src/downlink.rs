//! Downlink (PDSCH-style) processing — the paper's **Tx side**.
//!
//! The paper's Fig. 8 timeline reserves the last 1 ms of the HARQ loop for
//! Tx processing: encoding the downlink subframe that carries the ACK/NACK
//! and user data. Downlink processing is substantially cheaper than uplink
//! (§2: "uplink … is significantly more time-consuming and varying than
//! downlink") because encoding has no iterative decoder; this module makes
//! that asymmetry measurable.
//!
//! The chain mirrors the uplink's coding path (CRC24A → segmentation →
//! turbo → rate matching → scrambling → QAM) but uses plain OFDM (no DFT
//! precoding) and **cell-specific reference signals** (CRS): scattered
//! pilots on symbols 0/4 of each slot, every 6th subcarrier, frequency-
//! shifted by the cell identity — the antenna-port-0 pattern of 36.211
//! §6.10.1. A UE-side receiver with pilot interpolation is included so the
//! chain is verifiable end to end.

use crate::complex::Cf32;
use crate::crc::{CRC24A, CRC24B};
use crate::error::PhyError;
use crate::mcs::Mcs;
use crate::modulation::Modulation;
use crate::params::{Bandwidth, SYMBOLS_PER_SLOT, SYMBOLS_PER_SUBFRAME};
use crate::ratematch::RateMatcher;
use crate::resource_grid::{Grid, OfdmProcessor};
use crate::scramble::Scrambler;
use crate::segmentation::Segmentation;
use crate::turbo::{TurboDecoder, TurboEncoder};
use crate::uplink::{bits_to_bytes, bytes_to_bits, RxOutput};
use crate::zadoff_chu::dmrs_sequence;

/// Strong "known zero" LLR clamped onto filler-bit positions.
const FILLER_LLR: f32 = 100.0;

/// Subframe symbols carrying CRS for antenna port 0 (l = 0, 4 per slot).
pub const CRS_SYMBOLS: [usize; 4] = [0, 4, SYMBOLS_PER_SLOT, SYMBOLS_PER_SLOT + 4];

/// CRS frequency stride: one pilot every 6th subcarrier.
pub const CRS_STRIDE: usize = 6;

/// Returns `true` if subframe symbol `l` carries CRS.
pub const fn is_crs_symbol(l: usize) -> bool {
    matches!(l % SYMBOLS_PER_SLOT, 0 | 4)
}

/// The pilot subcarrier offset for symbol `l` and a cell's shift:
/// symbols 0 use `v = 0`, symbols 4 use `v = 3` (port 0), both shifted by
/// `cell_id mod 6`.
pub fn crs_offset(l: usize, cell_id: u16) -> usize {
    let v = if l.is_multiple_of(SYMBOLS_PER_SLOT) {
        0
    } else {
        3
    };
    (v + cell_id as usize) % CRS_STRIDE
}

/// Downlink configuration (single antenna port, full-band allocation).
#[derive(Clone, Debug)]
pub struct DownlinkConfig {
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// UE receive antennas (1–8).
    pub num_antennas: usize,
    /// Modulation and coding scheme (PDSCH shares the TBS table here).
    pub mcs: Mcs,
    /// Turbo-iteration cap at the UE.
    pub max_turbo_iters: usize,
    /// Cell identity (CRS shift, scrambling).
    pub cell_id: u16,
    seg: Segmentation,
    /// The constellation, resolved from the MCS once at construction so
    /// the per-subframe paths never re-derive (and never re-validate) it.
    modu: Modulation,
    /// Per-block rate-matching sizes `E_r`, precomputed at construction.
    e_splits: Vec<usize>,
}

impl DownlinkConfig {
    /// Builds a configuration.
    pub fn new(bandwidth: Bandwidth, num_antennas: usize, mcs_index: u8) -> Result<Self, PhyError> {
        if !(1..=8).contains(&num_antennas) {
            return Err(PhyError::InvalidConfig {
                what: "num_antennas",
                detail: format!("{num_antennas} not in 1..=8"),
            });
        }
        let mcs = Mcs::new(mcs_index).ok_or_else(|| PhyError::InvalidConfig {
            what: "mcs",
            detail: format!("index {mcs_index} above 28"),
        })?;
        let tbs = mcs.transport_block_bits(bandwidth.num_prbs());
        let seg = Segmentation::compute(tbs + 24)?;
        let qm = mcs.modulation_order();
        let modu = Modulation::from_order(qm).ok_or_else(|| PhyError::InvalidConfig {
            what: "modulation",
            detail: format!("unsupported Qm {qm}"),
        })?;
        // Precompute E_r once (36.212 §5.1.4.1.2), mirroring the uplink
        // config, so the decode path never allocates the split table.
        let data_res =
            bandwidth.total_res() - CRS_SYMBOLS.len() * (bandwidth.num_subcarriers() / CRS_STRIDE);
        let g_sym = data_res;
        let c = seg.num_blocks;
        let gamma = g_sym % c;
        let e_splits: Vec<usize> = (0..c)
            .map(|r| {
                if r < c - gamma {
                    qm * (g_sym / c)
                } else {
                    qm * g_sym.div_ceil(c)
                }
            })
            .collect();
        Ok(DownlinkConfig {
            bandwidth,
            num_antennas,
            mcs,
            max_turbo_iters: crate::mcs::DEFAULT_MAX_TURBO_ITERS,
            cell_id: 42,
            seg,
            modu,
            e_splits,
        })
    }

    /// Transport block size in bits.
    pub fn tbs_bits(&self) -> usize {
        self.mcs.transport_block_bits(self.bandwidth.num_prbs())
    }

    /// Transport block size in bytes.
    pub fn transport_block_bytes(&self) -> usize {
        self.tbs_bits() / 8
    }

    /// Pilots per CRS symbol.
    pub fn pilots_per_symbol(&self) -> usize {
        self.bandwidth.num_subcarriers() / CRS_STRIDE
    }

    /// Data resource elements: everything except the CRS.
    pub fn data_res(&self) -> usize {
        self.bandwidth.total_res() - CRS_SYMBOLS.len() * self.pilots_per_symbol()
    }

    /// Coded bits per subframe `G`.
    pub fn coded_bits(&self) -> usize {
        self.data_res() * self.mcs.modulation_order()
    }

    /// The code-block segmentation.
    pub fn segmentation(&self) -> &Segmentation {
        &self.seg
    }

    /// The modulation scheme.
    pub fn modulation(&self) -> Modulation {
        self.modu
    }

    /// Per-code-block rate-matching sizes (multiples of Qm summing to G),
    /// precomputed at construction.
    pub fn e_splits(&self) -> &[usize] {
        &self.e_splits
    }

    /// Iterator over data RE coordinates `(symbol, subcarrier)` in mapping
    /// order (symbol-major, skipping CRS positions).
    fn data_positions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = self.bandwidth.num_subcarriers();
        let cell = self.cell_id;
        (0..SYMBOLS_PER_SUBFRAME).flat_map(move |l| {
            (0..m).filter_map(move |k| {
                if is_crs_symbol(l) && k % CRS_STRIDE == crs_offset(l, cell) {
                    None
                } else {
                    Some((l, k))
                }
            })
        })
    }
}

fn build_codecs(seg: &Segmentation) -> Vec<(usize, RateMatcher, TurboEncoder, TurboDecoder)> {
    seg.block_sizes()
        .into_iter()
        .map(|k| {
            let enc = TurboEncoder::new(k);
            let dec = TurboDecoder::with_qpp(enc.qpp().clone());
            (k, RateMatcher::new(k), enc, dec)
        })
        .collect()
}

/// Downlink transmitter (eNB side) — the Tx-processing workload of Fig. 8.
#[derive(Clone, Debug)]
pub struct DownlinkTx {
    cfg: DownlinkConfig,
    ofdm: OfdmProcessor,
    scrambler: Scrambler,
    pilots: Vec<Cf32>,
    codecs: Vec<(usize, RateMatcher, TurboEncoder, TurboDecoder)>,
}

impl DownlinkTx {
    /// Creates a transmitter.
    pub fn new(cfg: DownlinkConfig) -> Self {
        DownlinkTx {
            ofdm: OfdmProcessor::new(cfg.bandwidth),
            scrambler: Scrambler::new(0x4D00 | cfg.cell_id as u32, cfg.coded_bits()),
            pilots: dmrs_sequence(cfg.cell_id as usize + 7, cfg.bandwidth.num_subcarriers()),
            codecs: build_codecs(&cfg.seg),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DownlinkConfig {
        &self.cfg
    }

    /// Encodes one downlink transport block into IQ samples.
    pub fn encode_subframe(&self, payload: &[u8]) -> Result<Vec<Cf32>, PhyError> {
        let cfg = &self.cfg;
        if payload.len() != cfg.transport_block_bytes() {
            return Err(PhyError::LengthMismatch {
                what: "payload bytes",
                expected: cfg.transport_block_bytes(),
                actual: payload.len(),
            });
        }
        let mut tb = bytes_to_bits(payload);
        CRC24A.attach(&mut tb);
        let blocks = cfg.seg.segment(&tb)?;
        let mut coded = Vec::with_capacity(cfg.coded_bits());
        for (r, (block, &e)) in blocks.iter().zip(cfg.e_splits()).enumerate() {
            let (_, rm, enc, _) = &self.codecs[r];
            coded.extend(rm.rate_match(&enc.encode(block), e));
        }
        self.scrambler.scramble_bits(&mut coded);
        let symbols = cfg.modulation().map(&coded);

        let mut grid = Grid::new(cfg.bandwidth);
        // Data REs in mapping order.
        for ((l, k), &sym) in cfg.data_positions().zip(&symbols) {
            grid.symbol_mut(l)[k] = sym;
        }
        // CRS pilots.
        for &l in &CRS_SYMBOLS {
            let off = crs_offset(l, cfg.cell_id);
            let row = grid.symbol_mut(l);
            for (p, k) in (off..row.len()).step_by(CRS_STRIDE).enumerate() {
                row[k] = self.pilots[p % self.pilots.len()];
            }
        }
        Ok(self.ofdm.modulate(&grid))
    }
}

/// Downlink receiver (UE side) — verifies the Tx chain end to end.
#[derive(Clone, Debug)]
pub struct DownlinkRx {
    cfg: DownlinkConfig,
    ofdm: OfdmProcessor,
    scrambler: Scrambler,
    pilots: Vec<Cf32>,
    codecs: Vec<(usize, RateMatcher, TurboEncoder, TurboDecoder)>,
}

impl DownlinkRx {
    /// Creates a receiver.
    pub fn new(cfg: DownlinkConfig) -> Self {
        DownlinkRx {
            ofdm: OfdmProcessor::new(cfg.bandwidth),
            scrambler: Scrambler::new(0x4D00 | cfg.cell_id as u32, cfg.coded_bits()),
            pilots: dmrs_sequence(cfg.cell_id as usize + 7, cfg.bandwidth.num_subcarriers()),
            codecs: build_codecs(&cfg.seg),
            cfg,
        }
    }

    /// Per-antenna channel estimate from the CRS: LS at pilot positions,
    /// linear interpolation across frequency, averaged over CRS symbols
    /// (the channel is treated as block-constant in time).
    fn estimate(&self, grid: &Grid) -> (Vec<Cf32>, f32) {
        let m = self.cfg.bandwidth.num_subcarriers();
        let mut per_symbol: Vec<Vec<Cf32>> = Vec::new();
        for &l in &CRS_SYMBOLS {
            let off = crs_offset(l, self.cfg.cell_id);
            let row = grid.symbol(l);
            // LS at pilots.
            let pts: Vec<(usize, Cf32)> = (off..m)
                .step_by(CRS_STRIDE)
                .enumerate()
                .map(|(p, k)| (k, row[k] * self.pilots[p % self.pilots.len()].conj()))
                .collect();
            // Linear interpolation to all subcarriers.
            let mut h = vec![Cf32::ZERO; m];
            for k in 0..m {
                let (lo_i, hi_i) = match pts.binary_search_by(|&(pk, _)| pk.cmp(&k)) {
                    Ok(i) => (i, i),
                    Err(0) => (0, 0),
                    Err(i) if i >= pts.len() => (pts.len() - 1, pts.len() - 1),
                    Err(i) => (i - 1, i),
                };
                h[k] = if lo_i == hi_i {
                    pts[lo_i].1
                } else {
                    let (k0, h0) = pts[lo_i];
                    let (k1, h1) = pts[hi_i];
                    let t = (k - k0) as f32 / (k1 - k0) as f32;
                    h0.scale(1.0 - t) + h1.scale(t)
                };
            }
            per_symbol.push(h);
        }
        // Average over CRS symbols; the spread estimates noise.
        let mut h = vec![Cf32::ZERO; m];
        for hs in &per_symbol {
            for (a, &b) in h.iter_mut().zip(hs) {
                *a += b;
            }
        }
        let n = per_symbol.len() as f32;
        for a in h.iter_mut() {
            *a = a.scale(1.0 / n);
        }
        let mut noise = 0.0f64;
        let mut count = 0usize;
        for hs in &per_symbol {
            for (a, &b) in h.iter().zip(hs) {
                noise += (b - *a).norm_sq() as f64;
                count += 1;
            }
        }
        // Var of symbol estimate around the mean, scaled back to per-RE.
        let noise_var = ((noise / count.max(1) as f64) as f32 * n / (n - 1.0).max(1.0)).max(1e-9);
        (h, noise_var)
    }

    /// Decodes one downlink subframe received on `rx_samples` (one stream
    /// per UE antenna).
    pub fn decode_subframe(&self, rx_samples: &[Vec<Cf32>]) -> Result<RxOutput, PhyError> {
        let cfg = &self.cfg;
        if rx_samples.len() != cfg.num_antennas {
            return Err(PhyError::LengthMismatch {
                what: "antenna streams",
                expected: cfg.num_antennas,
                actual: rx_samples.len(),
            });
        }
        let need = cfg.bandwidth.samples_per_subframe();
        for s in rx_samples {
            if s.len() != need {
                return Err(PhyError::LengthMismatch {
                    what: "subframe samples",
                    expected: need,
                    actual: s.len(),
                });
            }
        }
        // OFDM demodulate every antenna, estimate per-antenna channels.
        let grids: Vec<Grid> = rx_samples.iter().map(|s| self.ofdm.demodulate(s)).collect();
        let ests: Vec<(Vec<Cf32>, f32)> = grids.iter().map(|g| self.estimate(g)).collect();
        let noise_var = ests.iter().map(|(_, v)| *v).sum::<f32>() / ests.len() as f32;

        // MRC-combine and demap the data REs in mapping order.
        let mut eq = Vec::with_capacity(cfg.data_res());
        let mut nv = Vec::with_capacity(cfg.data_res());
        for (l, k) in cfg.data_positions() {
            let mut num = Cf32::ZERO;
            let mut gain = 0.0f32;
            for (g, (h, _)) in grids.iter().zip(&ests) {
                num += h[k].conj() * g.symbol(l)[k];
                gain += h[k].norm_sq();
            }
            let g = gain.max(1e-9);
            eq.push(num.scale(1.0 / g));
            nv.push(noise_var / g);
        }
        let mut llrs = Vec::with_capacity(cfg.coded_bits());
        cfg.modulation().demap_maxlog(&eq, &nv, &mut llrs);
        self.scrambler.descramble_llrs(&mut llrs);

        // De-rate-match and turbo decode per code block.
        let mut block_bits = Vec::new();
        let mut block_crc_ok = Vec::new();
        let mut block_iterations = Vec::new();
        let mut off = 0usize;
        let multi = cfg.seg.num_blocks > 1;
        for (r, &e) in cfg.e_splits().iter().enumerate() {
            let (_, rm, _, dec) = &self.codecs[r];
            let (mut d0, d1, d2) = rm.de_rate_match(&llrs[off..off + e]);
            off += e;
            let filler = if r == 0 { cfg.seg.filler } else { 0 };
            for v in d0.iter_mut().take(filler) {
                *v = FILLER_LLR;
            }
            let res = dec.decode(&d0, &d1, &d2, cfg.max_turbo_iters, |bits| {
                if multi {
                    CRC24B.check(bits)
                } else {
                    CRC24A.check(&bits[filler..])
                }
            });
            block_crc_ok.push(res.converged);
            block_iterations.push(res.iterations);
            block_bits.push(res.bits);
        }
        let (tb, _) = cfg.seg.desegment(&block_bits)?;
        let crc_ok = CRC24A.check(&tb) && block_crc_ok.iter().all(|&b| b);
        Ok(RxOutput {
            payload: bits_to_bytes(&tb[..cfg.tbs_bits()]),
            crc_ok,
            block_crc_ok,
            block_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{AwgnChannel, ChannelModel, MultipathChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    fn run(bw: Bandwidth, ants: usize, mcs: u8, snr: f64, seed: u64) -> (RxOutput, Vec<u8>) {
        let cfg = DownlinkConfig::new(bw, ants, mcs).unwrap();
        let tx = DownlinkTx::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let p: Vec<u8> = (0..cfg.transport_block_bytes())
            .map(|_| rng.gen())
            .collect();
        let wave = tx.encode_subframe(&p).unwrap();
        let mut ch = AwgnChannel::new(snr);
        let rxs = ch.apply(&wave, ants, &mut rng);
        let rx = DownlinkRx::new(cfg);
        (rx.decode_subframe(&rxs).unwrap(), p)
    }

    #[test]
    fn crs_pattern_basics() {
        assert!(is_crs_symbol(0) && is_crs_symbol(4) && is_crs_symbol(7) && is_crs_symbol(11));
        assert!(!is_crs_symbol(3) && !is_crs_symbol(10));
        // v-shift between l=0 and l=4 is 3 subcarriers.
        let a = crs_offset(0, 0);
        let b = crs_offset(4, 0);
        assert_eq!((b + CRS_STRIDE - a) % CRS_STRIDE, 3);
        // The cell id rotates the comb.
        assert_ne!(crs_offset(0, 0), crs_offset(0, 1));
    }

    #[test]
    fn data_res_accounting() {
        let cfg = DownlinkConfig::new(Bandwidth::Mhz1_4, 1, 10).unwrap();
        let m = Bandwidth::Mhz1_4.num_subcarriers();
        assert_eq!(cfg.pilots_per_symbol(), m / 6);
        assert_eq!(cfg.data_res(), 14 * m - 4 * (m / 6));
        assert_eq!(cfg.data_positions().count(), cfg.data_res());
        let total: usize = cfg.e_splits().iter().sum();
        assert_eq!(total, cfg.coded_bits());
    }

    #[test]
    fn e2e_awgn_roundtrip() {
        let (out, p) = run(Bandwidth::Mhz1_4, 1, 12, 25.0, 1);
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
    }

    #[test]
    fn e2e_two_antennas_64qam() {
        let (out, p) = run(Bandwidth::Mhz1_4, 2, 24, 30.0, 2);
        assert!(out.crc_ok);
        assert_eq!(out.payload, p);
    }

    #[test]
    fn e2e_multipath_pilot_interpolation() {
        // The CRS comb + frequency interpolation must track a frequency-
        // selective channel.
        let cfg = DownlinkConfig::new(Bandwidth::Mhz1_4, 2, 8).unwrap();
        let tx = DownlinkTx::new(cfg.clone());
        let rx = DownlinkRx::new(cfg.clone());
        let mut ok = 0;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(300 + seed);
            let p: Vec<u8> = (0..cfg.transport_block_bytes())
                .map(|_| rng.gen())
                .collect();
            let wave = tx.encode_subframe(&p).unwrap();
            let mut ch = MultipathChannel::two_path(28.0);
            let rxs = ch.apply(&wave, 2, &mut rng);
            let out = rx.decode_subframe(&rxs).unwrap();
            if out.crc_ok && out.payload == p {
                ok += 1;
            }
        }
        assert!(ok >= 5, "only {ok}/6 decoded through multipath");
    }

    #[test]
    fn low_snr_fails_gracefully() {
        let (out, _) = run(Bandwidth::Mhz1_4, 1, 20, -2.0, 3);
        assert!(!out.crc_ok);
    }

    #[test]
    fn tx_processing_is_cheaper_than_rx() {
        // §2: downlink (encode) is significantly cheaper than uplink
        // (decode). Measure the real kernels.
        let cfg = DownlinkConfig::new(Bandwidth::Mhz1_4, 1, 16).unwrap();
        let tx = DownlinkTx::new(cfg.clone());
        let rx = DownlinkRx::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let p: Vec<u8> = (0..cfg.transport_block_bytes())
            .map(|_| rng.gen())
            .collect();
        let wave = tx.encode_subframe(&p).unwrap();
        let mut ch = AwgnChannel::new(8.0); // noisy: decoder iterates
        let rxs = ch.apply(&wave, 1, &mut rng);

        let t0 = Instant::now();
        for _ in 0..3 {
            std::hint::black_box(tx.encode_subframe(&p).unwrap());
        }
        let enc = t0.elapsed();
        let t1 = Instant::now();
        for _ in 0..3 {
            std::hint::black_box(rx.decode_subframe(&rxs).unwrap());
        }
        let dec = t1.elapsed();
        assert!(
            dec > enc,
            "decode ({dec:?}) should dominate encode ({enc:?})"
        );
    }

    #[test]
    fn wrong_payload_size_rejected() {
        let cfg = DownlinkConfig::new(Bandwidth::Mhz1_4, 1, 5).unwrap();
        let tx = DownlinkTx::new(cfg);
        assert!(tx.encode_subframe(&[0u8; 1]).is_err());
    }
}
