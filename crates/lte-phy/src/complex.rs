//! Minimal complex-number arithmetic for baseband (IQ) samples.
//!
//! A deliberately small, dependency-free `f32` complex type. Only the
//! operations the PHY chain needs are implemented; no generic numeric
//! tower, no trait tricks (see the smoltcp design notes adopted in this
//! repository: simplicity over cleverness).

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex sample with `f32` in-phase (`re`) and quadrature (`im`) parts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cf32 {
    /// Real (in-phase) component.
    pub re: f32,
    /// Imaginary (quadrature) component.
    pub im: f32,
}

impl Cf32 {
    /// The additive identity.
    pub const ZERO: Cf32 = Cf32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Cf32 = Cf32 { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Cf32 { re, im }
    }

    /// Creates a unit-magnitude complex number `e^{jθ}` from a phase in radians.
    #[inline]
    pub fn from_phase(theta: f32) -> Self {
        Cf32 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cf32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`Cf32::abs`]).
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the scalar `s`.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Cf32 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Cf32 {
    type Output = Cf32;
    #[inline]
    fn add(self, rhs: Cf32) -> Cf32 {
        Cf32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cf32 {
    #[inline]
    fn add_assign(&mut self, rhs: Cf32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cf32 {
    type Output = Cf32;
    #[inline]
    fn sub(self, rhs: Cf32) -> Cf32 {
        Cf32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cf32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Cf32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Cf32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, rhs: Cf32) -> Cf32 {
        Cf32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cf32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Cf32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Cf32 {
    type Output = Cf32;
    #[inline]
    fn mul(self, rhs: f32) -> Cf32 {
        self.scale(rhs)
    }
}

impl Div for Cf32 {
    type Output = Cf32;
    /// Complex division. Dividing by (near-)zero yields non-finite parts,
    /// mirroring `f32` semantics; callers guard with a noise floor.
    #[inline]
    fn div(self, rhs: Cf32) -> Cf32 {
        let d = rhs.norm_sq();
        let n = self * rhs.conj();
        Cf32::new(n.re / d, n.im / d)
    }
}

impl Div<f32> for Cf32 {
    type Output = Cf32;
    #[inline]
    fn div(self, rhs: f32) -> Cf32 {
        Cf32::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Cf32 {
    type Output = Cf32;
    #[inline]
    fn neg(self) -> Cf32 {
        Cf32::new(-self.re, -self.im)
    }
}

/// Mean power `Σ|zᵢ|²/n` of a sample slice (0.0 for an empty slice).
pub fn mean_power(samples: &[Cf32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sq() as f64).sum::<f64>() as f32 / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Cf32::new(1.5, -2.5);
        let b = Cf32::new(-0.25, 4.0);
        let c = a + b - b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Cf32::new(3.0, 4.0);
        let b = Cf32::new(-2.0, 1.0);
        let c = a * b;
        assert!(close(c.re, -10.0) && close(c.im, -5.0));
    }

    #[test]
    fn div_is_inverse_of_mul() {
        let a = Cf32::new(0.7, -1.3);
        let b = Cf32::new(2.0, 0.5);
        let c = (a * b) / b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Cf32::new(1.0, 2.0);
        assert_eq!(a.conj(), Cf32::new(1.0, -2.0));
    }

    #[test]
    fn norm_and_abs() {
        let a = Cf32::new(3.0, 4.0);
        assert!(close(a.norm_sq(), 25.0));
        assert!(close(a.abs(), 5.0));
    }

    #[test]
    fn from_phase_is_unit() {
        for k in 0..16 {
            let z = Cf32::from_phase(k as f32 * std::f32::consts::FRAC_PI_8);
            assert!(close(z.abs(), 1.0));
        }
    }

    #[test]
    fn arg_of_i_is_half_pi() {
        let z = Cf32::new(0.0, 1.0);
        assert!(close(z.arg(), std::f32::consts::FRAC_PI_2));
    }

    #[test]
    fn mean_power_of_unit_circle() {
        let v: Vec<Cf32> = (0..64).map(|k| Cf32::from_phase(k as f32 * 0.1)).collect();
        assert!(close(mean_power(&v), 1.0));
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }
}
