//! LTE numerology: bandwidths, resource-grid dimensions, sampling rates.
//!
//! Normal cyclic prefix, FDD frame structure. All values follow the standard
//! LTE numerology (3GPP TS 36.211); the paper's experiments use the 10 MHz
//! configuration (50 PRBs, 15.36 Msps, 15360 samples per 1 ms subframe).

/// Number of OFDM symbols in a subframe (normal cyclic prefix, 2 slots × 7).
pub const SYMBOLS_PER_SUBFRAME: usize = 14;

/// Number of OFDM symbols per slot (normal cyclic prefix).
pub const SYMBOLS_PER_SLOT: usize = 7;

/// Number of subcarriers in a physical resource block.
pub const SUBCARRIERS_PER_PRB: usize = 12;

/// Index (within each slot) of the OFDM symbol carrying the uplink DMRS.
pub const DMRS_SYMBOL_IN_SLOT: usize = 3;

/// Subframe duration in microseconds.
pub const SUBFRAME_US: u64 = 1_000;

/// Supported LTE channel bandwidths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 1.4 MHz — 6 PRBs, 128-point FFT.
    Mhz1_4,
    /// 3 MHz — 15 PRBs, 256-point FFT.
    Mhz3,
    /// 5 MHz — 25 PRBs, 512-point FFT.
    Mhz5,
    /// 10 MHz — 50 PRBs, 1024-point FFT (the paper's configuration).
    Mhz10,
    /// 15 MHz — 75 PRBs, 1536-point FFT.
    Mhz15,
    /// 20 MHz — 100 PRBs, 2048-point FFT.
    Mhz20,
}

impl Bandwidth {
    /// All supported bandwidths, narrowest first.
    pub const ALL: [Bandwidth; 6] = [
        Bandwidth::Mhz1_4,
        Bandwidth::Mhz3,
        Bandwidth::Mhz5,
        Bandwidth::Mhz10,
        Bandwidth::Mhz15,
        Bandwidth::Mhz20,
    ];

    /// Number of physical resource blocks.
    pub const fn num_prbs(self) -> usize {
        match self {
            Bandwidth::Mhz1_4 => 6,
            Bandwidth::Mhz3 => 15,
            Bandwidth::Mhz5 => 25,
            Bandwidth::Mhz10 => 50,
            Bandwidth::Mhz15 => 75,
            Bandwidth::Mhz20 => 100,
        }
    }

    /// FFT size (samples per OFDM symbol body).
    pub const fn fft_size(self) -> usize {
        match self {
            Bandwidth::Mhz1_4 => 128,
            Bandwidth::Mhz3 => 256,
            Bandwidth::Mhz5 => 512,
            Bandwidth::Mhz10 => 1024,
            Bandwidth::Mhz15 => 1536,
            Bandwidth::Mhz20 => 2048,
        }
    }

    /// Number of occupied data subcarriers (12 per PRB).
    pub const fn num_subcarriers(self) -> usize {
        self.num_prbs() * SUBCARRIERS_PER_PRB
    }

    /// Sampling rate in samples per second (`fft_size × 15 kHz`).
    pub const fn sample_rate_hz(self) -> u64 {
        self.fft_size() as u64 * 15_000
    }

    /// Cyclic-prefix length in samples for the first symbol of each slot.
    pub const fn cp_first(self) -> usize {
        self.fft_size() * 160 / 2048
    }

    /// Cyclic-prefix length in samples for symbols 1–6 of each slot.
    pub const fn cp_other(self) -> usize {
        self.fft_size() * 144 / 2048
    }

    /// Cyclic-prefix length of symbol `l ∈ [0, 13]` of a subframe.
    pub const fn cp_len(self, symbol: usize) -> usize {
        if symbol.is_multiple_of(SYMBOLS_PER_SLOT) {
            self.cp_first()
        } else {
            self.cp_other()
        }
    }

    /// Total IQ samples in one 1 ms subframe (per antenna).
    pub const fn samples_per_subframe(self) -> usize {
        // Two slots of (cp_first + fft) + 6 × (cp_other + fft).
        2 * (self.cp_first() + self.fft_size() + 6 * (self.cp_other() + self.fft_size()))
    }

    /// Sample offset of the start (CP included) of symbol `l ∈ [0,13]`.
    pub const fn symbol_offset(self, symbol: usize) -> usize {
        let slot = symbol / SYMBOLS_PER_SLOT;
        let l = symbol % SYMBOLS_PER_SLOT;
        let slot_len = self.samples_per_subframe() / 2;
        let mut off = slot * slot_len;
        if l > 0 {
            off += self.cp_first() + self.fft_size();
            off += (l - 1) * (self.cp_other() + self.fft_size());
        }
        off
    }

    /// Total resource elements in one subframe across all PRBs
    /// (the paper's "8400 REs" figure for 10 MHz).
    pub const fn total_res(self) -> usize {
        self.num_subcarriers() * SYMBOLS_PER_SUBFRAME
    }

    /// Resource elements usable for data in a PUSCH subframe: everything
    /// except the two DMRS symbols (one per slot).
    pub const fn data_res(self) -> usize {
        self.num_subcarriers() * (SYMBOLS_PER_SUBFRAME - 2)
    }

    /// Human-readable label such as `"10MHz"`.
    pub const fn label(self) -> &'static str {
        match self {
            Bandwidth::Mhz1_4 => "1.4MHz",
            Bandwidth::Mhz3 => "3MHz",
            Bandwidth::Mhz5 => "5MHz",
            Bandwidth::Mhz10 => "10MHz",
            Bandwidth::Mhz15 => "15MHz",
            Bandwidth::Mhz20 => "20MHz",
        }
    }
}

/// Indices (within a subframe) of the OFDM symbols that carry DMRS.
pub const fn dmrs_symbols() -> [usize; 2] {
    [DMRS_SYMBOL_IN_SLOT, SYMBOLS_PER_SLOT + DMRS_SYMBOL_IN_SLOT]
}

/// Returns `true` if subframe symbol `l` is a DMRS symbol.
pub const fn is_dmrs_symbol(l: usize) -> bool {
    l % SYMBOLS_PER_SLOT == DMRS_SYMBOL_IN_SLOT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_mhz_matches_paper_numbers() {
        let bw = Bandwidth::Mhz10;
        assert_eq!(bw.num_prbs(), 50);
        assert_eq!(bw.fft_size(), 1024);
        assert_eq!(bw.sample_rate_hz(), 15_360_000);
        assert_eq!(bw.samples_per_subframe(), 15_360);
        assert_eq!(bw.total_res(), 8_400); // the paper's RE count
        assert_eq!(bw.num_subcarriers(), 600);
    }

    #[test]
    fn five_mhz_sampling() {
        let bw = Bandwidth::Mhz5;
        assert_eq!(bw.sample_rate_hz(), 7_680_000);
        assert_eq!(bw.samples_per_subframe(), 7_680);
    }

    #[test]
    fn cp_lengths_scale_with_fft() {
        assert_eq!(Bandwidth::Mhz20.cp_first(), 160);
        assert_eq!(Bandwidth::Mhz20.cp_other(), 144);
        assert_eq!(Bandwidth::Mhz10.cp_first(), 80);
        assert_eq!(Bandwidth::Mhz10.cp_other(), 72);
    }

    #[test]
    fn symbol_offsets_are_increasing_and_cover_subframe() {
        for bw in Bandwidth::ALL {
            let mut prev_end = 0usize;
            for l in 0..SYMBOLS_PER_SUBFRAME {
                let off = bw.symbol_offset(l);
                assert_eq!(off, prev_end, "symbol {l} of {}", bw.label());
                prev_end = off + bw.cp_len(l) + bw.fft_size();
            }
            assert_eq!(prev_end, bw.samples_per_subframe());
        }
    }

    #[test]
    fn dmrs_symbols_are_3_and_10() {
        assert_eq!(dmrs_symbols(), [3, 10]);
        assert!(is_dmrs_symbol(3));
        assert!(is_dmrs_symbol(10));
        assert!(!is_dmrs_symbol(0));
        assert!(!is_dmrs_symbol(7));
    }

    #[test]
    fn data_res_excludes_two_symbols() {
        assert_eq!(Bandwidth::Mhz10.data_res(), 600 * 12);
    }
}
