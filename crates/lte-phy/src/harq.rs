//! HARQ soft combining — the reason the paper's 3 ms deadline exists.
//!
//! An LTE uplink subframe must be ACKed/NACKed in the downlink subframe
//! 3 ms later (the paper's Fig. 8); a NACK triggers a retransmission that
//! the receiver *soft-combines* with what it already has. This module
//! provides the receive-side HARQ state:
//!
//! * retransmissions with the same redundancy version add LLR energy at
//!   the same codeword positions (**chase combining**, ≈ +3 dB per rtx);
//! * retransmissions with a different rv fill previously punctured parity
//!   positions (**incremental redundancy**), lowering the effective code
//!   rate.
//!
//! One [`HarqProcess`] holds the accumulated turbo-stream LLRs of a single
//! transport block (all its code blocks); `UplinkRx::decode_subframe_harq`
//! drives it.

use crate::error::PhyError;
use crate::segmentation::Segmentation;
use crate::turbo::stream_len;

/// One code block's accumulated turbo-stream LLRs.
type BlockStreams = (Vec<f32>, Vec<f32>, Vec<f32>);

/// Accumulated soft information for one transport block across HARQ
/// (re)transmissions.
#[derive(Clone, Debug)]
pub struct HarqProcess {
    /// Per code block: accumulated `(d0, d1, d2)` stream LLRs.
    blocks: Vec<BlockStreams>,
    transmissions: u32,
}

impl HarqProcess {
    /// Creates an empty process for the given segmentation.
    pub fn new(seg: &Segmentation) -> Self {
        let blocks = seg
            .block_sizes()
            .into_iter()
            .map(|k| {
                let n = stream_len(k);
                (vec![0.0; n], vec![0.0; n], vec![0.0; n])
            })
            .collect();
        HarqProcess {
            blocks,
            transmissions: 0,
        }
    }

    /// Number of transmissions combined so far.
    pub fn transmissions(&self) -> u32 {
        self.transmissions
    }

    /// Number of code blocks tracked.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Adds one (re)transmission's de-rate-matched LLRs for block `r` and
    /// returns a view of the accumulated streams.
    ///
    /// Call once per block per transmission, then
    /// [`HarqProcess::mark_transmission`] once per transmission.
    ///
    /// # Errors
    /// Length mismatches return [`PhyError::LengthMismatch`].
    #[allow(clippy::type_complexity)] // three parallel LLR streams is the domain shape
    pub fn accumulate(
        &mut self,
        r: usize,
        d0: &[f32],
        d1: &[f32],
        d2: &[f32],
    ) -> Result<(&[f32], &[f32], &[f32]), PhyError> {
        let (a0, a1, a2) = self.blocks.get_mut(r).ok_or(PhyError::LengthMismatch {
            what: "harq block index",
            expected: 0,
            actual: r,
        })?;
        for (name, (acc, new)) in [
            ("d0", (&mut *a0, d0)),
            ("d1", (&mut *a1, d1)),
            ("d2", (&mut *a2, d2)),
        ] {
            if acc.len() != new.len() {
                return Err(PhyError::LengthMismatch {
                    what: match name {
                        "d0" => "harq d0 stream",
                        "d1" => "harq d1 stream",
                        _ => "harq d2 stream",
                    },
                    expected: acc.len(),
                    actual: new.len(),
                });
            }
            for (a, &n) in acc.iter_mut().zip(new) {
                *a += n;
            }
        }
        Ok((&self.blocks[r].0, &self.blocks[r].1, &self.blocks[r].2))
    }

    /// Records that a full transmission has been absorbed.
    pub fn mark_transmission(&mut self) {
        self.transmissions += 1;
    }

    /// The accumulated streams of block `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn streams(&self, r: usize) -> (&[f32], &[f32], &[f32]) {
        let (a, b, c) = &self.blocks[r];
        (a, b, c)
    }

    /// Clears all soft state (after an ACK, or on a new transport block).
    pub fn reset(&mut self) {
        for (a, b, c) in &mut self.blocks {
            a.iter_mut().for_each(|x| *x = 0.0);
            b.iter_mut().for_each(|x| *x = 0.0);
            c.iter_mut().for_each(|x| *x = 0.0);
        }
        self.transmissions = 0;
    }
}

/// The standard LTE rv cycling order for successive retransmissions.
pub const RV_SEQUENCE: [u8; 4] = [0, 2, 3, 1];

/// The redundancy version used for transmission number `tx` (0-based).
pub const fn rv_for_transmission(tx: u32) -> u8 {
    RV_SEQUENCE[(tx % 4) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segmentation {
        Segmentation::compute(10_000).unwrap()
    }

    #[test]
    fn fresh_process_is_empty() {
        let p = HarqProcess::new(&seg());
        assert_eq!(p.transmissions(), 0);
        assert_eq!(p.num_blocks(), seg().num_blocks);
        let (d0, _, _) = p.streams(0);
        assert!(d0.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn accumulate_adds_energy() {
        let s = seg();
        let mut p = HarqProcess::new(&s);
        let n = stream_len(s.block_sizes()[0]);
        let ones = vec![1.0f32; n];
        p.accumulate(0, &ones, &ones, &ones).unwrap();
        p.mark_transmission();
        p.accumulate(0, &ones, &ones, &ones).unwrap();
        p.mark_transmission();
        let (d0, d1, d2) = p.streams(0);
        assert!(d0.iter().all(|&x| (x - 2.0).abs() < 1e-6));
        assert!(d1.iter().all(|&x| (x - 2.0).abs() < 1e-6));
        assert!(d2.iter().all(|&x| (x - 2.0).abs() < 1e-6));
        assert_eq!(p.transmissions(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let s = seg();
        let mut p = HarqProcess::new(&s);
        let n = stream_len(s.block_sizes()[0]);
        p.accumulate(0, &vec![1.0; n], &vec![1.0; n], &vec![1.0; n])
            .unwrap();
        p.mark_transmission();
        p.reset();
        assert_eq!(p.transmissions(), 0);
        assert!(p.streams(0).0.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut p = HarqProcess::new(&seg());
        let err = p.accumulate(0, &[1.0; 3], &[1.0; 3], &[1.0; 3]);
        assert!(err.is_err());
        let err = p.accumulate(99, &[], &[], &[]);
        assert!(err.is_err());
    }

    #[test]
    fn rv_cycle_is_the_standard_order() {
        assert_eq!(rv_for_transmission(0), 0);
        assert_eq!(rv_for_transmission(1), 2);
        assert_eq!(rv_for_transmission(2), 3);
        assert_eq!(rv_for_transmission(3), 1);
        assert_eq!(rv_for_transmission(4), 0); // wraps
    }
}
