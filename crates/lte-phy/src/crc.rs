//! Cyclic redundancy checks from 3GPP TS 36.212 §5.1.1.
//!
//! LTE attaches CRC24A to the transport block and CRC24B to each code block
//! when a transport block is segmented. The checks operate on *bit*
//! sequences (one bit per `u8`, value 0 or 1), matching how the rest of the
//! coding chain passes data around.
//!
//! The decoder uses the per-code-block CRC both for error detection and —
//! crucially for this reproduction — for **early termination** of turbo
//! iterations, which is the paper's source of data-dependent processing
//! time (the `L` term in Eq. (1)).

/// A CRC polynomial of length `LEN` bits.
///
/// `poly` holds the generator coefficients below the leading `x^LEN` term
/// (the leading 1 is implicit), matching the conventional hex notation.
#[derive(Clone, Copy, Debug)]
pub struct Crc {
    /// Generator polynomial without the implicit leading term.
    pub poly: u32,
    /// CRC length in bits.
    pub len: u32,
}

/// CRC24A — attached to the transport block (gCRC24A, 0x864CFB).
pub const CRC24A: Crc = Crc {
    poly: 0x864CFB,
    len: 24,
};

/// CRC24B — attached to each code block after segmentation (gCRC24B, 0x800063).
pub const CRC24B: Crc = Crc {
    poly: 0x800063,
    len: 24,
};

/// CRC16 (gCRC16, 0x1021) — used for small control payloads.
pub const CRC16: Crc = Crc {
    poly: 0x1021,
    len: 16,
};

/// CRC8 (gCRC8, 0x9B).
pub const CRC8: Crc = Crc { poly: 0x9B, len: 8 };

impl Crc {
    /// Computes the CRC of `bits` (each element 0 or 1), MSB-first, with
    /// all-zero initial state as specified by 36.212.
    pub fn compute(&self, bits: &[u8]) -> u32 {
        debug_assert!(bits.iter().all(|&b| b <= 1), "inputs must be single bits");
        let mut reg: u32 = 0;
        let top: u32 = 1 << (self.len - 1);
        let mask: u32 = if self.len == 32 {
            u32::MAX
        } else {
            (1 << self.len) - 1
        };
        for &b in bits {
            let fb = ((reg & top) != 0) as u32 ^ (b as u32);
            reg = (reg << 1) & mask;
            if fb != 0 {
                reg ^= self.poly;
            }
        }
        reg
    }

    /// Appends the CRC parity bits (MSB first) of `bits` to `bits`.
    pub fn attach(&self, bits: &mut Vec<u8>) {
        let r = self.compute(bits);
        for i in (0..self.len).rev() {
            bits.push(((r >> i) & 1) as u8);
        }
    }

    /// Checks a bit sequence that has the CRC attached at the end.
    ///
    /// Returns `false` if the sequence is shorter than the CRC itself.
    pub fn check(&self, bits_with_crc: &[u8]) -> bool {
        let n = self.len as usize;
        if bits_with_crc.len() < n {
            return false;
        }
        // The defining property: the CRC of the whole codeword is zero.
        self.compute(bits_with_crc) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn attach_then_check_passes() {
        let mut bits: Vec<u8> = (0..123).map(|i| ((i * 7 + 3) % 2) as u8).collect();
        CRC24A.attach(&mut bits);
        assert!(CRC24A.check(&bits));
    }

    #[test]
    fn single_bit_error_is_detected() {
        let mut bits: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        CRC24B.attach(&mut bits);
        for i in 0..bits.len() {
            let mut corrupted = bits.clone();
            corrupted[i] ^= 1;
            assert!(!CRC24B.check(&corrupted), "undetected flip at {i}");
        }
    }

    #[test]
    fn burst_errors_up_to_crc_len_detected() {
        // A CRC of length L detects all burst errors of length ≤ L.
        let mut bits: Vec<u8> = (0..200).map(|i| ((i / 3) % 2) as u8).collect();
        CRC16.attach(&mut bits);
        for start in (0..bits.len() - 16).step_by(7) {
            let mut corrupted = bits.clone();
            for b in corrupted[start..start + 16].iter_mut() {
                *b ^= 1;
            }
            assert!(!CRC16.check(&corrupted));
        }
    }

    #[test]
    fn empty_payload_crc_is_zero() {
        assert_eq!(CRC24A.compute(&[]), 0);
        assert!(!CRC8.check(&[])); // too short to contain a CRC
    }

    #[test]
    fn known_vector_crc16_ccitt_structure() {
        // CRC16 here uses the CCITT polynomial with zero init; the CRC of a
        // single 1-bit followed by 15 zeros is the polynomial itself shifted.
        let mut bits = vec![1u8];
        let r = CRC16.compute(&bits);
        // One bit through a zero register: register becomes poly after the
        // feedback fires on the 1 bit... verify self-consistency instead:
        CRC16.attach(&mut bits);
        assert_eq!(bits.len(), 17);
        assert!(CRC16.check(&bits));
        assert_eq!(CRC16.compute(&[1]), r);
    }

    #[test]
    fn all_four_lte_polynomials_roundtrip() {
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            let mut bits: Vec<u8> = (0..91).map(|i| ((i * 13 + 1) % 2) as u8).collect();
            crc.attach(&mut bits);
            assert!(crc.check(&bits), "poly {:#x}", crc.poly);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(payload in proptest::collection::vec(0u8..2, 1..512)) {
            let mut bits = payload.clone();
            CRC24A.attach(&mut bits);
            prop_assert!(CRC24A.check(&bits));
            prop_assert_eq!(&bits[..payload.len()], &payload[..]);
        }

        #[test]
        fn prop_flip_detected(payload in proptest::collection::vec(0u8..2, 1..256), idx in any::<prop::sample::Index>()) {
            let mut bits = payload;
            CRC24B.attach(&mut bits);
            let i = idx.index(bits.len());
            bits[i] ^= 1;
            prop_assert!(!CRC24B.check(&bits));
        }
    }
}
