//! # rtopex-phy — LTE-style uplink PHY substrate
//!
//! A self-contained, from-scratch implementation of the LTE uplink (PUSCH)
//! physical-layer processing chain used by the RT-OPEX reproduction in place
//! of the OpenAirInterface PHY library the paper integrated with.
//!
//! The chain follows §2 of the paper. On the transmit (test-vector) side:
//!
//! ```text
//! payload bits → CRC24A → code-block segmentation (+CRC24B) → turbo encode
//!   → rate matching → scrambling → QAM mapping → DFT precoding
//!   → resource-grid mapping (+DMRS) → IFFT/CP → IQ samples → channel
//! ```
//!
//! and on the receive side (the part whose execution time the schedulers
//! care about), split into the three sequential tasks of the paper's Fig. 5:
//!
//! * **FFT** — CP removal + FFT per OFDM symbol per antenna
//!   (subtask = one antenna-symbol),
//! * **Demod** — channel estimation, equalization, DFT de-precoding,
//!   soft demapping (subtask = one OFDM symbol group),
//! * **Decode** — descrambling, de-rate-matching, iterative turbo decoding,
//!   CRC checks (subtask = one code block).
//!
//! The implementation favours clarity and robustness over micro-optimized
//! DSP: every block is real (a genuine max-log-MAP turbo decoder with
//! CRC-based early termination, a mixed-radix FFT, an MMSE equalizer…), so
//! the *data-dependent processing-time variability* the paper's scheduler
//! exploits arises natively rather than being faked.
//!
//! Deviations from the 3GPP specifications (exact TBS table columns, QPP
//! interleaver constants) are deliberate, documented substitutions — see
//! `DESIGN.md` at the repository root.
//!
//! ## Quick example
//!
//! ```
//! use rtopex_phy::uplink::{UplinkConfig, UplinkTx, UplinkRx};
//! use rtopex_phy::channel::{AwgnChannel, ChannelModel};
//! use rand::SeedableRng;
//!
//! let cfg = UplinkConfig::new(rtopex_phy::params::Bandwidth::Mhz1_4, 2, 16).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let tx = UplinkTx::new(cfg.clone());
//! let payload = vec![0xA5u8; cfg.transport_block_bytes()];
//! let subframe = tx.encode_subframe(&payload).unwrap();
//! let mut chan = AwgnChannel::new(30.0);
//! let rx_samples = chan.apply(&subframe.samples, cfg.num_antennas, &mut rng);
//! let rx = UplinkRx::new(cfg);
//! let out = rx.decode_subframe(&rx_samples).unwrap();
//! assert!(out.crc_ok);
//! assert_eq!(out.payload, payload);
//! ```

#![warn(missing_docs)]
// Unsafe is denied everywhere except the explicitly-allowed SIMD kernel
// modules, whose `core::arch` loads/stores need it (see `simd`).
#![deny(unsafe_code)]
// Inside those modules, every unsafe operation must sit in an explicit
// `unsafe {}` block with its own `// SAFETY:` comment (enforced by
// `cargo xtask lint`) — an `unsafe fn` signature alone licenses nothing.
#![deny(unsafe_op_in_unsafe_fn)]
// DSP recurrences (shift registers, trellis states, per-subcarrier loops)
// read most clearly with explicit indices; the iterator rewrites clippy
// suggests obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod channel;
pub mod complex;
pub mod crc;
pub mod downlink;
pub mod equalizer;
pub mod error;
pub mod fft;
pub mod harq;
pub mod mcs;
pub mod modulation;
pub mod params;
pub mod ratematch;
pub mod resource_grid;
pub mod scramble;
pub mod segmentation;
pub mod simd;
pub mod tasks;
pub mod turbo;
pub mod uplink;
pub mod workspace;
pub mod zadoff_chu;

pub use complex::Cf32;
pub use error::PhyError;
