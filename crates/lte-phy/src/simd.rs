//! Runtime-dispatched SIMD tier selection for the PHY kernels.
//!
//! The hot kernels (max-log-MAP, soft demapper, MRC, FFT butterflies) exist
//! in up to three tiers:
//!
//! * **lane-form scalar** — fixed-width, branchless `[f32; 8]` loops that
//!   LLVM autovectorizes on any target (this is the `portable_simd`-style
//!   fallback: on AArch64 the same lane forms compile to NEON); the
//!   reference the intrinsic tiers are tested against,
//! * **AVX2** — explicit 8-lane `core::arch::x86_64` intrinsics, and
//! * **AVX-512** — 16-lane intrinsics (`avx512f` + `avx512bw`), used by the
//!   wide demapper blocks and the paired-trellis batched turbo decoder.
//!
//! All tiers are **bit-exact** with each other: every kernel restricts
//! itself to the same adds, multiplies by exact constants, `max`/`min`
//! reductions and permutations in every form, so dispatch never changes a
//! single output bit (see `DESIGN.md` §"SIMD strategy").
//!
//! Detection runs once per process ([`active_tier`] caches it); tests and
//! benchmarks can pin a tier with [`force_tier`] / [`try_force_tier`] or
//! the `RTOPEX_SIMD` environment variable (`scalar`, `lanes`, `avx2` or
//! `avx512`, checked at first use). Unknown names and tiers the CPU cannot
//! run are rejected with an explicit error instead of silently falling
//! back to detection.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The instruction-set tier a kernel invocation will use.
///
/// Ordered by width: `Scalar < Avx2 < Avx512`. A CPU that supports a tier
/// supports every smaller one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable lane-form scalar code (autovectorized by LLVM; NEON on
    /// AArch64).
    Scalar,
    /// Explicit AVX2 intrinsics (8 × f32 lanes).
    Avx2,
    /// Explicit AVX-512 intrinsics (16 × f32 lanes; `avx512f`+`avx512bw`).
    Avx512,
}

impl SimdTier {
    /// Every tier, narrowest first.
    pub const ALL: [SimdTier; 3] = [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512];

    /// The canonical lowercase name (what `RTOPEX_SIMD` accepts and the
    /// bench JSON records).
    pub const fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }
}

/// Tier override: 0 = none, 1 = scalar, 2 = AVX2, 3 = AVX-512.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// One-time resolution of `RTOPEX_SIMD` + hardware detection.
static DETECTED: OnceLock<SimdTier> = OnceLock::new();

/// One-time pure hardware capability probe (ignores `RTOPEX_SIMD`).
static HARDWARE: OnceLock<SimdTier> = OnceLock::new();

/// The widest tier this CPU can execute, independent of any override.
pub fn hardware_tier() -> SimdTier {
    *HARDWARE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    })
}

/// Whether this CPU can execute `tier`.
pub fn supports(tier: SimdTier) -> bool {
    tier <= hardware_tier()
}

/// Every tier this CPU can execute, narrowest first (always starts with
/// [`SimdTier::Scalar`]). Drives the per-tier bench rows and the
/// all-tier equivalence tests.
pub fn supported_tiers() -> impl Iterator<Item = SimdTier> {
    SimdTier::ALL.into_iter().filter(|&t| supports(t))
}

/// Parses a `RTOPEX_SIMD`-style tier name. `lanes` is an alias for
/// `scalar` (the portable lane form).
pub fn parse_tier(name: &str) -> Result<SimdTier, String> {
    match name {
        "scalar" | "lanes" => Ok(SimdTier::Scalar),
        "avx2" => Ok(SimdTier::Avx2),
        "avx512" => Ok(SimdTier::Avx512),
        // analyze: allow(alloc): error construction on the once-per-process env-parse path (inside `DETECTED.get_or_init`), never in the steady state
        other => Err(format!(
            "unknown SIMD tier `{other}` (valid: scalar, lanes, avx2, avx512)"
        )),
    }
}

/// The tier the hardware (and `RTOPEX_SIMD`, if set) selects, resolved
/// once per process.
///
/// # Panics
/// Panics on first use if `RTOPEX_SIMD` names an unknown tier or one this
/// CPU cannot execute — a misconfigured forcing must fail loudly, not
/// silently bench the wrong tier.
pub fn detected_tier() -> SimdTier {
    *DETECTED.get_or_init(|| match std::env::var("RTOPEX_SIMD") {
        Ok(name) => {
            let tier = parse_tier(&name)
                // analyze: allow(panic): once-per-process env validation; silently benching the wrong tier is worse than a crash
                .unwrap_or_else(|e| panic!("RTOPEX_SIMD: {e}"));
            // analyze: allow(panic): once-per-process env validation; silently benching the wrong tier is worse than a crash
            assert!(
                supports(tier),
                "RTOPEX_SIMD={name}: this CPU does not support the {} tier (widest supported: {})",
                tier.name(),
                hardware_tier().name()
            );
            tier
        }
        Err(_) => hardware_tier(),
    })
}

/// The tier kernels will actually dispatch to right now: the programmatic
/// override if one is set, else the detected tier.
#[inline]
pub fn active_tier() -> SimdTier {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => SimdTier::Scalar,
        2 => SimdTier::Avx2,
        3 => SimdTier::Avx512,
        _ => detected_tier(),
    }
}

/// Forces every subsequent kernel dispatch to `tier` (process-wide), or
/// restores detection with `None`. Returns an error — leaving the current
/// dispatch unchanged — when the CPU cannot execute `tier`.
pub fn try_force_tier(tier: Option<SimdTier>) -> Result<(), String> {
    let v = match tier {
        None => 0,
        Some(t) => {
            if !supports(t) {
                return Err(format!(
                    "cannot force SIMD tier {}: this CPU supports at most {}",
                    t.name(),
                    hardware_tier().name()
                ));
            }
            match t {
                SimdTier::Scalar => 1,
                SimdTier::Avx2 => 2,
                SimdTier::Avx512 => 3,
            }
        }
    };
    OVERRIDE.store(v, Ordering::Relaxed);
    Ok(())
}

/// [`try_force_tier`] for call sites that treat an unsupported forcing as
/// a bug.
///
/// # Panics
/// Panics with a clear message when the CPU cannot execute `tier`.
pub fn force_tier(tier: Option<SimdTier>) {
    try_force_tier(tier).expect("force_tier");
}

/// Serializes tests (across modules) that mutate the process-wide override.
/// Poisoning is ignored: the override is valid in any state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_override_routes_to_scalar() {
        let _g = test_guard();
        force_tier(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        force_tier(None);
        assert_eq!(active_tier(), detected_tier());
    }

    #[test]
    fn forcing_an_unsupported_tier_errors_and_keeps_dispatch() {
        let _g = test_guard();
        force_tier(None);
        let before = active_tier();
        for tier in SimdTier::ALL {
            if !supports(tier) {
                let err = try_force_tier(Some(tier)).unwrap_err();
                assert!(err.contains(tier.name()), "{err}");
                assert_eq!(active_tier(), before, "failed forcing must not stick");
            }
        }
    }

    #[test]
    fn forcing_every_supported_tier_sticks() {
        let _g = test_guard();
        for tier in supported_tiers() {
            try_force_tier(Some(tier)).expect("supported tier");
            assert_eq!(active_tier(), tier);
        }
        force_tier(None);
    }

    #[test]
    fn tier_names_roundtrip_and_unknown_names_are_rejected() {
        for tier in SimdTier::ALL {
            assert_eq!(parse_tier(tier.name()), Ok(tier));
        }
        assert_eq!(parse_tier("lanes"), Ok(SimdTier::Scalar));
        let err = parse_tier("sse9").unwrap_err();
        assert!(err.contains("sse9") && err.contains("avx512"), "{err}");
    }

    #[test]
    fn supported_tiers_is_a_prefix_of_all() {
        let sup: Vec<_> = supported_tiers().collect();
        assert_eq!(sup[0], SimdTier::Scalar);
        assert_eq!(sup.last().copied(), Some(hardware_tier()));
        assert!(sup.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn detection_is_stable() {
        let _g = test_guard();
        assert_eq!(detected_tier(), detected_tier());
        assert!(supports(detected_tier()));
    }
}
