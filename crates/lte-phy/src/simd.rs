//! Runtime-dispatched SIMD tier selection for the PHY kernels.
//!
//! The hot kernels (max-log-MAP, soft demapper, MRC, FFT butterflies) each
//! exist in two tiers:
//!
//! * **lane-form scalar** — fixed-width, branchless `[f32; 8]` loops that
//!   LLVM autovectorizes on any target; the portable fallback and the
//!   reference the intrinsic tier is tested against, and
//! * **AVX2** — explicit `core::arch::x86_64` intrinsics, selected at
//!   runtime via [`is_x86_feature_detected!`].
//!
//! Both tiers are **bit-exact** with each other: every kernel restricts
//! itself to the same adds, multiplies by exact constants, `max`/`min`
//! reductions and permutations in both forms, so dispatch never changes a
//! single output bit (see `DESIGN.md` §"SIMD strategy").
//!
//! Detection runs once per process ([`active_tier`] caches it); tests and
//! benchmarks can pin a tier with [`force_tier`] or the `RTOPEX_SIMD`
//! environment variable (`scalar` or `avx2`, checked at first use).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The instruction-set tier a kernel invocation will use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdTier {
    /// Portable lane-form scalar code (autovectorized by LLVM).
    Scalar,
    /// Explicit AVX2 intrinsics.
    Avx2,
}

/// Tier override: 0 = none, 1 = force scalar, 2 = force AVX2.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// One-time hardware detection result (includes the env-var override).
static DETECTED: OnceLock<SimdTier> = OnceLock::new();

/// The tier the hardware (and `RTOPEX_SIMD`, if set) supports, resolved
/// once per process.
pub fn detected_tier() -> SimdTier {
    *DETECTED.get_or_init(|| {
        match std::env::var("RTOPEX_SIMD").as_deref() {
            Ok("scalar") => return SimdTier::Scalar,
            Ok("avx2") => return SimdTier::Avx2,
            _ => {}
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    })
}

/// The tier kernels will actually dispatch to right now: the programmatic
/// override if one is set, else the detected tier.
#[inline]
pub fn active_tier() -> SimdTier {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => SimdTier::Scalar,
        2 => SimdTier::Avx2,
        _ => detected_tier(),
    }
}

/// Forces every subsequent kernel dispatch to `tier` (process-wide), or
/// restores hardware detection with `None`.
///
/// Forcing [`SimdTier::Avx2`] on hardware without AVX2 is rejected
/// (detection wins), so this function is always safe to call.
pub fn force_tier(tier: Option<SimdTier>) {
    let v = match tier {
        None => 0,
        Some(SimdTier::Scalar) => 1,
        Some(SimdTier::Avx2) => {
            if detected_tier() != SimdTier::Avx2 {
                return;
            }
            2
        }
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Serializes tests (across modules) that mutate the process-wide override.
/// Poisoning is ignored: the override is valid in any state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_override_routes_to_scalar() {
        let _g = test_guard();
        force_tier(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        force_tier(None);
        assert_eq!(active_tier(), detected_tier());
    }

    #[test]
    fn forcing_avx2_without_hardware_is_rejected() {
        let _g = test_guard();
        force_tier(Some(SimdTier::Avx2));
        // Either the hardware has AVX2 (override honored) or it does not
        // (override rejected): active == detected in both cases only when
        // detection says AVX2; otherwise active stays Scalar.
        match detected_tier() {
            SimdTier::Avx2 => assert_eq!(active_tier(), SimdTier::Avx2),
            SimdTier::Scalar => assert_eq!(active_tier(), SimdTier::Scalar),
        }
        force_tier(None);
    }

    #[test]
    fn detection_is_stable() {
        let _g = test_guard();
        assert_eq!(detected_tier(), detected_tier());
    }
}
