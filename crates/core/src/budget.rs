//! End-to-end deadline arithmetic — Eq. (2) and Eq. (3) of the paper.
//!
//! An uplink subframe received over the air at time `t` must have its
//! ACK/NACK ready for the downlink subframe transmitted at `t + 3 ms`;
//! since Tx processing starts 1 ms before over-the-air transmission, only
//! **2 ms** remain for transport plus Rx processing:
//!
//! ```text
//! T_rxproc + RTT/2 ≤ 2 ms        (Eq. 2)
//! T_rxproc ≤ T_max := 2 ms − RTT/2   (Eq. 3)
//! ```
//!
//! The partitioned scheduler additionally uses `⌈T_max⌉` (in ms) as the
//! number of cores per basestation.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// The total end-to-end allowance for transport + Rx processing.
pub const E2E_ALLOWANCE: Nanos = Nanos(2_000_000); // 2 ms

/// HARQ response offset: ACK/NACK rides the downlink subframe 3 ms later.
pub const HARQ_OFFSET: Nanos = Nanos(3_000_000);

/// Deadline budget for one deployment's transport latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// One-way transport latency `RTT/2` (fronthaul + cloud network).
    pub rtt_half: Nanos,
}

impl Budget {
    /// Builds a budget from a one-way transport latency in µs.
    ///
    /// # Panics
    /// Panics if the latency consumes the whole 2 ms allowance — such a
    /// deployment cannot process anything and is a configuration error.
    pub fn from_rtt_half_us(us: u64) -> Self {
        let rtt_half = Nanos::from_us(us);
        assert!(
            rtt_half < E2E_ALLOWANCE,
            "RTT/2 of {us}µs leaves no processing budget"
        );
        Budget { rtt_half }
    }

    /// `T_max`: the processing-time budget of Eq. (3).
    pub fn tmax(&self) -> Nanos {
        E2E_ALLOWANCE - self.rtt_half
    }

    /// `⌈T_max⌉` in whole milliseconds — the per-basestation core count of
    /// the partitioned scheduler (§3.1.1). For the paper's 0.4–0.7 ms
    /// transport range this is always 2.
    pub fn ceil_tmax_ms(&self) -> usize {
        (self.tmax().0 as f64 / 1_000_000.0).ceil() as usize
    }

    /// Absolute processing deadline of a subframe released to the compute
    /// node at `release` (the transport already consumed `RTT/2`).
    pub fn deadline_for_release(&self, release: Nanos) -> Nanos {
        release + self.tmax()
    }

    /// True if a task that finished processing at `finish`, having been
    /// released at `release`, met its deadline.
    pub fn met(&self, release: Nanos, finish: Nanos) -> bool {
        finish <= self.deadline_for_release(release)
    }

    /// Remaining slack at time `now` for a task released at `release`.
    pub fn slack_at(&self, release: Nanos, now: Nanos) -> Nanos {
        self.deadline_for_release(release).saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_budgets() {
        // §4.2: RTT/2 swept 0.4–0.7 ms ⇒ T_max 1.6–1.3 ms.
        assert_eq!(Budget::from_rtt_half_us(400).tmax(), Nanos::from_us(1600));
        assert_eq!(Budget::from_rtt_half_us(500).tmax(), Nanos::from_us(1500));
        assert_eq!(Budget::from_rtt_half_us(700).tmax(), Nanos::from_us(1300));
    }

    #[test]
    fn ceil_tmax_is_2_for_paper_range() {
        // §4.2: "we choose ⌈Tmax⌉ = 2, i.e., each basestation is assigned
        // 2 CPU cores under partitioned scheduling".
        for us in [400, 500, 600, 700] {
            assert_eq!(Budget::from_rtt_half_us(us).ceil_tmax_ms(), 2, "{us}");
        }
    }

    #[test]
    fn tiny_transport_gives_2ms_budget_and_2_cores() {
        let b = Budget::from_rtt_half_us(0);
        assert_eq!(b.tmax(), Nanos::from_ms(2));
        assert_eq!(b.ceil_tmax_ms(), 2);
    }

    #[test]
    fn large_transport_shrinks_to_one_core() {
        assert_eq!(Budget::from_rtt_half_us(1100).ceil_tmax_ms(), 1);
    }

    #[test]
    fn deadline_and_slack() {
        let b = Budget::from_rtt_half_us(500);
        let release = Nanos::from_ms(10);
        assert_eq!(b.deadline_for_release(release), Nanos::from_us(11_500));
        assert!(b.met(release, Nanos::from_us(11_499)));
        assert!(b.met(release, Nanos::from_us(11_500)));
        assert!(!b.met(release, Nanos::from_us(11_501)));
        assert_eq!(
            b.slack_at(release, Nanos::from_us(11_000)),
            Nanos::from_us(500)
        );
        assert_eq!(b.slack_at(release, Nanos::from_us(12_000)), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "no processing budget")]
    fn transport_eating_everything_panics() {
        Budget::from_rtt_half_us(2000);
    }
}
