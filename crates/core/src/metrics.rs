//! Deadline, gap, and migration accounting — the raw material of the
//! paper's Figures 15–19.

use crate::time::Nanos;
use rtopex_model::stats::{MissRate, Samples};
use rtopex_phy::tasks::TaskKind;

/// Per-basestation and aggregate deadline outcomes (Fig. 15, Fig. 17).
#[derive(Clone, Debug)]
pub struct DeadlineMetrics {
    per_bs: Vec<MissRate>,
}

impl DeadlineMetrics {
    /// Creates metrics for `num_bs` basestations.
    pub fn new(num_bs: usize) -> Self {
        DeadlineMetrics {
            per_bs: vec![MissRate::default(); num_bs],
        }
    }

    /// Records one subframe outcome for a basestation.
    ///
    /// # Panics
    /// Panics if `bs` is out of range.
    pub fn record(&mut self, bs: usize, missed: bool) {
        self.per_bs[bs].record(missed);
    }

    /// A basestation's miss rate.
    pub fn bs_rate(&self, bs: usize) -> f64 {
        self.per_bs[bs].rate()
    }

    /// Aggregate miss rate across basestations.
    pub fn overall(&self) -> MissRate {
        let mut total = MissRate::default();
        for m in &self.per_bs {
            total.merge(m);
        }
        total
    }

    /// Total subframes recorded.
    pub fn total_subframes(&self) -> u64 {
        self.overall().total()
    }

    /// Raw per-basestation counters (the determinism tests compare these
    /// bit for bit across shard counts).
    pub fn per_bs(&self) -> &[MissRate] {
        &self.per_bs
    }

    /// Merges another accumulator with the same basestation count
    /// (per-worker metrics merged at the end of a run).
    ///
    /// # Panics
    /// Panics on a basestation-count mismatch.
    pub fn merge(&mut self, other: &DeadlineMetrics) {
        // analyze: allow(panic): per-worker accumulators are built from one SimConfig, so differing cell counts mean corrupted results — abort the merge loudly
        assert_eq!(
            self.per_bs.len(),
            other.per_bs.len(),
            "merging metrics for different cell counts"
        );
        for (a, b) in self.per_bs.iter_mut().zip(&other.per_bs) {
            a.merge(b);
        }
    }
}

/// Distribution of idle gaps on partitioned cores (Fig. 16, left).
#[derive(Clone, Debug, Default)]
pub struct GapTracker {
    gaps_us: Samples,
}

impl GapTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one idle gap.
    pub fn record(&mut self, gap: Nanos) {
        self.gaps_us.push(gap.as_us_f64());
    }

    /// Number of gaps recorded.
    pub fn count(&self) -> usize {
        self.gaps_us.len()
    }

    /// Fraction of gaps at least `threshold` long (Fig. 16 reports that
    /// ≥ 60 % of gaps exceed 500 µs at low transport latency).
    pub fn fraction_at_least(&mut self, threshold: Nanos) -> f64 {
        if self.gaps_us.is_empty() {
            return 0.0;
        }
        let t = threshold.as_us_f64();
        self.gaps_us.ccdf_at(t - 1e-9)
    }

    /// Median gap in µs.
    pub fn median_us(&mut self) -> f64 {
        self.gaps_us.median()
    }

    /// Access to the raw samples (µs) for CDF plots.
    pub fn samples(&mut self) -> &mut Samples {
        &mut self.gaps_us
    }

    /// Appends another tracker's gaps (per-shard trackers merged in a
    /// fixed host order at the end of a fleet run).
    pub fn merge(&mut self, other: &GapTracker) {
        self.gaps_us.merge(&other.gaps_us);
    }
}

/// Counts of migrated vs. total subtasks per task kind (Fig. 16, right),
/// plus recovery events (the §3.2 straggler path).
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrationStats {
    /// Total FFT subtasks processed.
    pub fft_total: u64,
    /// FFT subtasks executed on a remote (migrated-to) core.
    pub fft_migrated: u64,
    /// Total decode subtasks processed.
    pub decode_total: u64,
    /// Decode subtasks executed on a remote core.
    pub decode_migrated: u64,
    /// Migrated subtasks whose results were not ready in time and had to
    /// be recomputed locally.
    pub recoveries: u64,
    /// Whole tasks moved to another core (semi-partitioned scheduling —
    /// the task-granularity baseline RT-OPEX's subtask granularity beats).
    pub whole_tasks: u64,
}

impl MigrationStats {
    /// Records a stage execution: `migrated` of `total` subtasks offloaded.
    pub fn record_stage(&mut self, kind: TaskKind, total: usize, migrated: usize) {
        debug_assert!(migrated <= total);
        match kind {
            TaskKind::Fft => {
                self.fft_total += total as u64;
                self.fft_migrated += migrated as u64;
            }
            TaskKind::Decode => {
                self.decode_total += total as u64;
                self.decode_migrated += migrated as u64;
            }
            TaskKind::Demod => {}
        }
    }

    /// Records straggler recoveries.
    pub fn record_recovery(&mut self, count: usize) {
        self.recoveries += count as u64;
    }

    /// Records a whole-task migration (semi-partitioned scheduling).
    pub fn record_whole_task(&mut self) {
        self.whole_tasks += 1;
    }

    /// Fraction of FFT subtasks migrated.
    pub fn fft_fraction(&self) -> f64 {
        fraction(self.fft_migrated, self.fft_total)
    }

    /// Fraction of decode subtasks migrated.
    pub fn decode_fraction(&self) -> f64 {
        fraction(self.decode_migrated, self.decode_total)
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &MigrationStats) {
        self.fft_total += other.fft_total;
        self.fft_migrated += other.fft_migrated;
        self.decode_total += other.decode_total;
        self.decode_migrated += other.decode_migrated;
        self.recoveries += other.recoveries;
        self.whole_tasks += other.whole_tasks;
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_metrics_aggregate() {
        let mut m = DeadlineMetrics::new(2);
        for i in 0..100 {
            m.record(0, i % 10 == 0); // 10% misses
            m.record(1, false);
        }
        assert!((m.bs_rate(0) - 0.1).abs() < 1e-12);
        assert_eq!(m.bs_rate(1), 0.0);
        assert!((m.overall().rate() - 0.05).abs() < 1e-12);
        assert_eq!(m.total_subframes(), 200);
    }

    #[test]
    fn gap_tracker_fractions() {
        let mut g = GapTracker::new();
        for us in [100u64, 300, 500, 700, 900] {
            g.record(Nanos::from_us(us));
        }
        assert_eq!(g.count(), 5);
        // Gaps ≥ 500 µs: 3 of 5.
        assert!((g.fraction_at_least(Nanos::from_us(500)) - 0.6).abs() < 1e-9);
        assert_eq!(g.median_us(), 500.0);
    }

    #[test]
    fn empty_gap_tracker_is_safe() {
        let mut g = GapTracker::new();
        assert_eq!(g.fraction_at_least(Nanos::from_us(1)), 0.0);
    }

    #[test]
    fn migration_stats_fractions() {
        let mut s = MigrationStats::default();
        s.record_stage(TaskKind::Fft, 2, 1);
        s.record_stage(TaskKind::Fft, 2, 0);
        s.record_stage(TaskKind::Decode, 6, 3);
        s.record_stage(TaskKind::Demod, 12, 0); // ignored
        assert!((s.fft_fraction() - 0.25).abs() < 1e-12);
        assert!((s.decode_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn migration_stats_merge() {
        let mut a = MigrationStats::default();
        a.record_stage(TaskKind::Decode, 6, 2);
        a.record_recovery(1);
        let mut b = MigrationStats::default();
        b.record_stage(TaskKind::Decode, 6, 4);
        b.merge(&a);
        assert_eq!(b.decode_total, 12);
        assert_eq!(b.decode_migrated, 6);
        assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn zero_denominator_fraction_is_zero() {
        let s = MigrationStats::default();
        assert_eq!(s.fft_fraction(), 0.0);
        assert_eq!(s.decode_fraction(), 0.0);
    }
}
