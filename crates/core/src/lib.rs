//! # rtopex-core — the RT-OPEX scheduling framework
//!
//! The paper's contribution (§3), reproduced as a substrate-agnostic
//! library: the same types and algorithms drive both the discrete-event
//! simulator (`rtopex-sim`) and the real pinned-thread runtime
//! (`rtopex-runtime`).
//!
//! * [`time`] — integer-nanosecond time base with µs/ms conversions;
//! * [`budget`] — the end-to-end deadline arithmetic of Eq. (2)/(3):
//!   `T_rxproc ≤ T_max := 2 ms − RTT/2`;
//! * [`task`] — the execution profile of one subframe-processing task,
//!   split into the Fig. 5 stages (FFT / demod / decode subtasks);
//! * [`partitioned`] — §3.1.1: offline core assignment
//!   `core(i, j) = i·⌈T_max⌉ + (j mod ⌈T_max⌉)`;
//! * [`global`] — §3.1.2: shared-queue dispatch with FIFO/EDF priority;
//! * [`migration`] — §3.2, Algorithm 1: how many subtasks to migrate to
//!   each idle core, under requirements R1–R3;
//! * [`cpu_state`] — the shared per-core activity table RT-OPEX polls to
//!   find idle cycles and their remaining duration;
//! * [`state`] — the processing-thread state machine of Fig. 12;
//! * [`steal`] — lock-free work-stealing migration: a bounded Chase–Lev
//!   deque of subtask tickets plus the steal-time δ admission guard (the
//!   contention-free form of Algorithm 1's "migrate to idle cores");
//! * [`slots`] — epoch-validated slot-arena publication: the board a
//!   core publishes a stage on and helpers complete/decline slots
//!   through (model-checked by `rtopex-check`);
//! * [`sync`] — the synchronization facade: `std::sync` in production,
//!   the model checker's instrumented shims under `--cfg rtopex_model`;
//! * [`metrics`] — deadline-miss, gap, and migration accounting
//!   (the raw material of Figs. 15–19).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod cpu_state;
pub mod global;
pub mod metrics;
pub mod migration;
pub mod partitioned;
pub mod slots;
pub mod state;
pub mod steal;
pub mod sync;
pub mod task;
pub mod time;

pub use budget::Budget;
pub use migration::{plan_migration, MigrationPlan};
pub use steal::{steal_pair, AdmissionPolicy, DeltaGuard, Steal, Stealer, Worker};
pub use task::{StageProfile, SubframeTask, TaskProfile};
pub use time::Nanos;
