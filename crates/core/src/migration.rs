//! RT-OPEX's migration decision — Algorithm 1 of the paper.
//!
//! Given `P` subtasks of deterministic time `tp`, a set of idle cores with
//! known free-time budgets `fck`, and the per-subtask migration cost `δ`,
//! decide how many subtasks to offload to each idle core. Greedy, under
//! three requirements:
//!
//! * **R1** — a core receives no more subtasks than its free time can
//!   absorb: `noff ≤ ⌊fck / (tp + δ)⌋`;
//! * **R2** — the subtasks kept local must outnumber the largest batch
//!   already sent to any core: `S − noff ≥ maxoff`;
//! * **R3** — never offload more than half of what remains:
//!   `noff ≤ ⌊S/2⌋`.
//!
//! Together these keep the local share the critical path in the ideal
//! case: by the time the owner finishes its local subtasks, migrated ones
//! are (expected to be) done. Mispredictions are handled by the recovery
//! state (§3.2.1-B), not here.

use crate::time::Nanos;

/// The outcome of one Algorithm 1 run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationPlan {
    /// `(core, subtask count)` for every core that receives work.
    /// Cores assigned zero subtasks are omitted.
    pub assignments: Vec<(usize, usize)>,
    /// Subtasks kept on the owning core.
    pub local: usize,
    /// Largest batch assigned to any single core (`maxoff`).
    pub max_off: usize,
}

impl MigrationPlan {
    /// Total migrated subtasks.
    pub fn migrated(&self) -> usize {
        self.assignments.iter().map(|(_, n)| n).sum()
    }

    /// A plan that migrates nothing.
    pub fn none(p_subtasks: usize) -> Self {
        MigrationPlan {
            assignments: Vec::new(),
            local: p_subtasks,
            max_off: 0,
        }
    }

    /// Ideal-case stage completion time under this plan: the owner runs
    /// `local` subtasks; each helper runs its batch, paying `δ` per
    /// migrated subtask; the stage ends when the slowest party finishes.
    pub fn critical_path(&self, tp: Nanos, delta: Nanos) -> Nanos {
        let local = Nanos(tp.0 * self.local as u64);
        let helper = self
            .assignments
            .iter()
            .map(|&(_, n)| Nanos((tp.0 + delta.0) * n as u64))
            .max()
            .unwrap_or(Nanos::ZERO);
        local.max(helper)
    }
}

/// Runs Algorithm 1.
///
/// * `p_subtasks` — `P`, the stage's subtask count;
/// * `tp` — per-subtask execution time;
/// * `delta` — per-subtask migration cost `δ` (the paper measures
///   ≈ 20 µs for both FFT and decode subtasks, Fig. 18);
/// * `free` — `(core, fck)` pairs for each currently idle core, in the
///   order the scheduler discovered them.
///
/// Returns the assignment; migrating can only help, never hurt, because
/// the plan never makes the local share smaller than any migrated batch.
pub fn plan_migration(
    p_subtasks: usize,
    tp: Nanos,
    delta: Nanos,
    free: &[(usize, Nanos)],
) -> MigrationPlan {
    let mut assignments = Vec::new();
    let stats = plan_migration_into(p_subtasks, tp, delta, free, &mut assignments);
    MigrationPlan {
        assignments,
        local: stats.local,
        max_off: stats.max_off,
    }
}

/// The scalar outcome of [`plan_migration_into`]; the batch assignments
/// land in the caller's buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanStats {
    /// Subtasks kept on the owning core.
    pub local: usize,
    /// Largest batch assigned to any single core (`maxoff`).
    pub max_off: usize,
}

/// Allocation-free Algorithm 1: identical decisions to
/// [`plan_migration`], but `(core, count)` assignments are written into
/// `assignments` (cleared first, capacity reused) so the simulator's
/// per-event hot loop never touches the heap once the buffer is warm.
pub fn plan_migration_into(
    p_subtasks: usize,
    tp: Nanos,
    delta: Nanos,
    free: &[(usize, Nanos)],
    assignments: &mut Vec<(usize, usize)>,
) -> PlanStats {
    assignments.clear();
    let mut s = p_subtasks; // S: subtasks not yet migrated
    let mut max_off = 0usize;
    if tp == Nanos::ZERO {
        // Degenerate profile: nothing worth migrating.
        return PlanStats {
            local: p_subtasks,
            max_off: 0,
        };
    }
    // The §3.2.1 caveat ("performance must be equal to or strictly better
    // than the case without migration"): a helper's batch, migration cost
    // included, must never outlast the serial baseline `P·tp`.
    let lim_serial = (p_subtasks as u64 * tp.0 / (tp.0 + delta.0)) as usize;
    for &(core, fck) in free {
        if s <= 1 {
            break;
        }
        if fck == Nanos::ZERO {
            continue;
        }
        // R1: what the core's free time can absorb, including δ.
        let lim_off = (fck.0 / (tp.0 + delta.0)) as usize;
        // R2 ∧ R3 with R1 and the serial-baseline cap.
        let n_off = (s.saturating_sub(max_off))
            .min(lim_off)
            .min(s / 2)
            .min(lim_serial);
        if n_off == 0 {
            continue;
        }
        max_off = max_off.max(n_off);
        assignments.push((core, n_off));
        s -= n_off;
    }
    PlanStats { local: s, max_off }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_us(v)
    }

    #[test]
    fn no_idle_cores_no_migration() {
        let plan = plan_migration(6, us(117), us(20), &[]);
        assert_eq!(plan, MigrationPlan::none(6));
    }

    #[test]
    fn single_subtask_never_migrates() {
        let plan = plan_migration(1, us(500), us(20), &[(1, us(10_000))]);
        assert_eq!(plan.migrated(), 0);
        assert_eq!(plan.local, 1);
    }

    #[test]
    fn r3_offloads_at_most_half() {
        // One enormous idle core: still keep at least half locally.
        let plan = plan_migration(6, us(117), us(20), &[(1, us(100_000))]);
        assert_eq!(plan.migrated(), 3);
        assert_eq!(plan.local, 3);
    }

    #[test]
    fn r1_respects_free_time() {
        // Core 1 can absorb exactly two subtasks: 2·(117+20) = 274 ≤ 280.
        let plan = plan_migration(6, us(117), us(20), &[(1, us(280))]);
        assert_eq!(plan.assignments, vec![(1, 2)]);
        assert_eq!(plan.local, 4);
    }

    #[test]
    fn r1_counts_migration_cost() {
        // 130 µs of free time fits one bare subtask (117) but not one
        // migrated subtask (117+20) — so nothing is sent.
        let plan = plan_migration(6, us(117), us(20), &[(1, us(130))]);
        assert_eq!(plan.migrated(), 0);
    }

    #[test]
    fn r2_keeps_local_at_least_maxoff() {
        // Two big cores, P = 6: greedy sends 3 to the first; then
        // S − maxoff = 0 forbids the second from receiving anything.
        let plan = plan_migration(6, us(117), us(20), &[(1, us(100_000)), (2, us(100_000))]);
        assert_eq!(plan.assignments, vec![(1, 3)]);
        assert_eq!(plan.local, 3);
        assert!(plan.local >= plan.max_off);
    }

    #[test]
    fn small_batches_spread_across_cores() {
        // Cores that each fit one subtask: 6 → 1+1 migrated, 4 local
        // (R2 allows the second core: S=5, maxoff=1 → min(4, 1, 2) = 1).
        let plan = plan_migration(
            6,
            us(117),
            us(20),
            &[(1, us(140)), (2, us(140)), (3, us(140))],
        );
        assert_eq!(plan.migrated(), 3);
        assert_eq!(plan.local, 3);
        assert!(plan.assignments.iter().all(|&(_, n)| n == 1));
    }

    #[test]
    fn paper_fft_example() {
        // N = 2 antennas → P = 2 FFT subtasks of ≈ 108 µs; one idle core
        // with a comfortable gap takes exactly one (Fig. 11's scenario).
        let plan = plan_migration(2, us(108), us(20), &[(0, us(500))]);
        assert_eq!(plan.assignments, vec![(0, 1)]);
        assert_eq!(plan.local, 1);
    }

    #[test]
    fn critical_path_ideal_case() {
        let plan = plan_migration(6, us(100), us(20), &[(1, us(1000))]);
        // 3 local × 100 = 300 vs 3 migrated × 120 = 360.
        assert_eq!(plan.critical_path(us(100), us(20)), us(360));
        // Serial baseline would be 600: migration wins even with δ.
        assert!(plan.critical_path(us(100), us(20)) < us(600));
    }

    #[test]
    fn zero_tp_degenerates_safely() {
        let plan = plan_migration(5, Nanos::ZERO, us(20), &[(1, us(1000))]);
        assert_eq!(plan.migrated(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        #[test]
        fn prop_invariants(
            p in 0usize..40,
            tp_us in 1u64..500,
            delta_us in 0u64..100,
            frees in proptest::collection::vec(0u64..5_000, 0..8),
        ) {
            let tp = us(tp_us);
            let delta = us(delta_us);
            // Core ids are unique by construction (index-based), matching
            // the CpuStateTable contract.
            let free: Vec<(usize, Nanos)> =
                frees.iter().enumerate().map(|(c, &f)| (c, us(f))).collect();
            let plan = plan_migration(p, tp, delta, &free);

            // Conservation: local + migrated = P.
            prop_assert_eq!(plan.local + plan.migrated(), p);
            // R2: local share at least the largest migrated batch.
            prop_assert!(plan.local >= plan.max_off);
            // maxoff is really the max batch.
            let batch_max = plan.assignments.iter().map(|&(_, n)| n).max().unwrap_or(0);
            prop_assert_eq!(plan.max_off, batch_max);
            // R1 per assignment: the batch fits the core's free time.
            for &(core, n) in &plan.assignments {
                let fck = free.iter().find(|&&(c, _)| c == core).unwrap().1;
                prop_assert!(Nanos((tp.0 + delta.0) * n as u64) <= fck);
                prop_assert!(n > 0);
            }
            // Never migrate the only subtask.
            if p <= 1 {
                prop_assert_eq!(plan.migrated(), 0);
            }
            // Performance guarantee: the planned critical path never
            // exceeds the serial baseline (the paper's "equal to or
            // strictly better" requirement, ideal case).
            let serial = Nanos(tp.0 * p as u64);
            prop_assert!(plan.critical_path(tp, delta) <= serial);
        }
    }
}
