//! The RT-OPEX processing-thread state machine — Fig. 12 of the paper.
//!
//! A processing thread alternates between a **waiting** side (hosting
//! migrated subtasks from other cores) and an **active** side (processing
//! its own subframe, possibly migrating parts of it away and recovering
//! stragglers). This module encodes the states and the legal transitions;
//! the simulator and runtime both drive their threads through it, and a
//! property test checks the machine can neither deadlock nor take an
//! undeclared edge.

use serde::{Deserialize, Serialize};

/// States of a processing thread (numbered as in Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadState {
    /// (1) Waiting for a migrated subtask (or a new subframe).
    WaitMigrated,
    /// (2) Executing a subtask migrated from another core.
    PerformMigrated,
    /// (3) A new subframe was received; about to start processing.
    ReceivedSubframe,
    /// (4) Processing the subframe's tasks.
    Process,
    /// (5) Parallelizable task reached: migrating subtasks to idle cores.
    MigrateTask,
    /// (6) Recovering migrated subtasks whose results are not ready.
    Recovery,
    /// (7) Deadline check done; emitting ACK/NACK.
    AckNack,
}

/// Events that drive the state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadEvent {
    /// A migrated subtask arrived from another core.
    MigratedTaskArrived,
    /// The hosted migrated subtask completed (result ready).
    MigratedTaskDone,
    /// The transport signalled a new subframe (preemption).
    NewSubframe,
    /// Processing reached a parallelizable task with idle cores available.
    ParallelStageReached,
    /// All migrated subtasks reported results ready.
    ResultsReady,
    /// At least one migrated subtask's result was not ready.
    ResultsNotReady,
    /// Recovery finished recomputing the stragglers.
    RecoveryDone,
    /// All tasks of the subframe completed (or the deadline forced a stop).
    ProcessingComplete,
    /// The ACK/NACK was sent.
    ResponseSent,
}

impl ThreadState {
    /// The legal transition for `event` in this state, or `None` if the
    /// edge does not exist in Fig. 12.
    pub fn on(self, event: ThreadEvent) -> Option<ThreadState> {
        use ThreadEvent::*;
        use ThreadState::*;
        match (self, event) {
            // Waiting side.
            (WaitMigrated, MigratedTaskArrived) => Some(PerformMigrated),
            (WaitMigrated, NewSubframe) => Some(ReceivedSubframe),
            (PerformMigrated, MigratedTaskDone) => Some(WaitMigrated),
            // Preempted mid-subtask: result not ready, switch to active.
            (PerformMigrated, NewSubframe) => Some(ReceivedSubframe),
            // Active side.
            (ReceivedSubframe, ProcessingComplete) => Some(AckNack), // degenerate empty task
            (ReceivedSubframe, ParallelStageReached) => Some(MigrateTask),
            (ReceivedSubframe, NewSubframe) => Some(ReceivedSubframe), // overrun: keep newest
            (Process, ParallelStageReached) => Some(MigrateTask),
            (Process, ProcessingComplete) => Some(AckNack),
            (MigrateTask, ResultsReady) => Some(Process),
            (MigrateTask, ResultsNotReady) => Some(Recovery),
            (Recovery, RecoveryDone) => Some(Process),
            (AckNack, ResponseSent) => Some(WaitMigrated),
            // Every other (state, event) pair is not an edge of Fig. 12.
            _ => None,
        }
    }

    /// True for the waiting-side states in which the thread may host
    /// migrated subtasks.
    pub fn can_host_migration(self) -> bool {
        matches!(
            self,
            ThreadState::WaitMigrated | ThreadState::PerformMigrated
        )
    }

    /// True for the active-side states (the thread owns a subframe).
    pub fn is_active(self) -> bool {
        matches!(
            self,
            ThreadState::ReceivedSubframe
                | ThreadState::Process
                | ThreadState::MigrateTask
                | ThreadState::Recovery
                | ThreadState::AckNack
        )
    }
}

/// Helper: start processing after `ReceivedSubframe` (the implicit
/// 3→4 edge of Fig. 12, taken unconditionally).
pub fn begin_processing(state: ThreadState) -> Option<ThreadState> {
    (state == ThreadState::ReceivedSubframe).then_some(ThreadState::Process)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ThreadEvent::*;
    use ThreadState::*;

    #[test]
    fn happy_path_with_migration() {
        // Fig. 12's main loop: wait → receive → process → migrate →
        // results ready → process → complete → ack → wait.
        let mut s = WaitMigrated;
        s = s.on(NewSubframe).unwrap();
        s = begin_processing(s).unwrap();
        s = s.on(ParallelStageReached).unwrap();
        s = s.on(ResultsReady).unwrap();
        s = s.on(ProcessingComplete).unwrap();
        s = s.on(ResponseSent).unwrap();
        assert_eq!(s, WaitMigrated);
    }

    #[test]
    fn recovery_path() {
        let mut s = Process;
        s = s.on(ParallelStageReached).unwrap();
        s = s.on(ResultsNotReady).unwrap();
        assert_eq!(s, Recovery);
        s = s.on(RecoveryDone).unwrap();
        assert_eq!(s, Process);
    }

    #[test]
    fn hosting_side_paths() {
        // Migrated work completes before preemption.
        assert_eq!(WaitMigrated.on(MigratedTaskArrived), Some(PerformMigrated));
        assert_eq!(PerformMigrated.on(MigratedTaskDone), Some(WaitMigrated));
        // Preempted mid-migrated-subtask: abandon it, go active.
        assert_eq!(PerformMigrated.on(NewSubframe), Some(ReceivedSubframe));
    }

    #[test]
    fn active_thread_cannot_host() {
        for s in [ReceivedSubframe, Process, MigrateTask, Recovery, AckNack] {
            assert!(!s.can_host_migration(), "{s:?}");
            assert!(s.is_active());
        }
        assert!(WaitMigrated.can_host_migration());
        assert!(!WaitMigrated.is_active());
    }

    #[test]
    fn illegal_edges_rejected() {
        assert!(Process.on(MigratedTaskArrived).is_none());
        assert!(Recovery.on(ResultsReady).is_none());
        assert!(AckNack.on(NewSubframe).is_none());
        assert!(WaitMigrated.on(ResultsNotReady).is_none());
    }

    #[test]
    fn every_state_has_an_exit() {
        // No deadlock: every state has at least one event it accepts (or,
        // for ReceivedSubframe, the implicit begin_processing edge).
        let events = [
            MigratedTaskArrived,
            MigratedTaskDone,
            NewSubframe,
            ParallelStageReached,
            ResultsReady,
            ResultsNotReady,
            RecoveryDone,
            ProcessingComplete,
            ResponseSent,
        ];
        for s in [
            WaitMigrated,
            PerformMigrated,
            ReceivedSubframe,
            Process,
            MigrateTask,
            Recovery,
            AckNack,
        ] {
            let has_exit =
                events.iter().any(|&e| s.on(e).is_some()) || begin_processing(s).is_some();
            assert!(has_exit, "{s:?} is a dead end");
        }
    }

    proptest! {
        #[test]
        fn prop_transitions_stay_in_machine(walk in proptest::collection::vec(0usize..9, 0..64)) {
            let events = [
                MigratedTaskArrived, MigratedTaskDone, NewSubframe,
                ParallelStageReached, ResultsReady, ResultsNotReady,
                RecoveryDone, ProcessingComplete, ResponseSent,
            ];
            let mut s = WaitMigrated;
            for idx in walk {
                if let Some(next) = s.on(events[idx]) {
                    s = next;
                } else if let Some(next) = begin_processing(s) {
                    // Take the implicit edge when the event was illegal.
                    s = next;
                }
                // Invariant: hosting and active are mutually exclusive.
                prop_assert!(!(s.can_host_migration() && s.is_active()));
            }
        }
    }
}
