//! The shared CPU-state table (§4.1).
//!
//! "We also implement a shared data structure, indexed by each core ID, to
//! maintain the CPU states (active, idle — with remaining time) that each
//! processing thread updates and polls." RT-OPEX reads this table to find
//! migration targets and their free-time budgets `fck`; the underlying
//! partitioned schedule makes future preemption times *predictable*, so
//! the table can state how long a core will stay idle.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// One core's advertised activity state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreActivity {
    /// The core's processing thread is executing a task; it will not
    /// accept migrated subtasks.
    Active {
        /// When the current task is expected to complete.
        busy_until: Nanos,
    },
    /// The core is in its waiting state and can host migrated subtasks
    /// until its next (deterministic) subframe arrival.
    Idle {
        /// When the next processing task will preempt this core.
        next_preemption: Nanos,
    },
}

/// The table itself: one entry per core.
#[derive(Clone, Debug)]
pub struct CpuStateTable {
    states: Vec<CoreActivity>,
}

impl CpuStateTable {
    /// Creates a table of `cores` entries, all idle with no known
    /// preemption (free time = infinity is represented by `Nanos::MAX`).
    pub fn new(cores: usize) -> Self {
        CpuStateTable {
            states: vec![
                CoreActivity::Idle {
                    next_preemption: Nanos(u64::MAX),
                };
                cores
            ],
        }
    }

    /// Number of cores tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the table tracks no cores.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of a core.
    pub fn get(&self, core: usize) -> CoreActivity {
        self.states[core]
    }

    /// Marks a core active until `busy_until`.
    pub fn set_active(&mut self, core: usize, busy_until: Nanos) {
        self.states[core] = CoreActivity::Active { busy_until };
    }

    /// Marks a core idle until its next known preemption.
    pub fn set_idle(&mut self, core: usize, next_preemption: Nanos) {
        self.states[core] = CoreActivity::Idle { next_preemption };
    }

    /// Free-time budget `fck` of a core at time `now`: the remaining idle
    /// window, or zero for active cores.
    pub fn free_time(&self, core: usize, now: Nanos) -> Nanos {
        match self.states[core] {
            CoreActivity::Active { .. } => Nanos::ZERO,
            CoreActivity::Idle { next_preemption } => next_preemption.saturating_sub(now),
        }
    }

    /// All idle cores except `exclude`, with their free time at `now`,
    /// largest budget first — the candidate list for Algorithm 1.
    pub fn idle_cores(&self, now: Nanos, exclude: usize) -> Vec<(usize, Nanos)> {
        let mut v: Vec<(usize, Nanos)> = (0..self.states.len())
            .filter(|&c| c != exclude)
            .filter_map(|c| {
                let f = self.free_time(c, now);
                (f > Nanos::ZERO).then_some((c, f))
            })
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_all_idle() {
        let t = CpuStateTable::new(4);
        assert_eq!(t.len(), 4);
        for c in 0..4 {
            assert!(t.free_time(c, Nanos::from_ms(1)) > Nanos::from_ms(1000));
        }
    }

    #[test]
    fn active_core_has_zero_free_time() {
        let mut t = CpuStateTable::new(2);
        t.set_active(0, Nanos::from_ms(5));
        assert_eq!(t.free_time(0, Nanos::from_ms(1)), Nanos::ZERO);
        assert_eq!(
            t.get(0),
            CoreActivity::Active {
                busy_until: Nanos::from_ms(5)
            }
        );
    }

    #[test]
    fn idle_budget_shrinks_with_time() {
        let mut t = CpuStateTable::new(1);
        t.set_idle(0, Nanos::from_us(2000));
        assert_eq!(t.free_time(0, Nanos::from_us(500)), Nanos::from_us(1500));
        assert_eq!(t.free_time(0, Nanos::from_us(2000)), Nanos::ZERO);
        assert_eq!(t.free_time(0, Nanos::from_us(9999)), Nanos::ZERO);
    }

    #[test]
    fn idle_cores_excludes_self_and_sorts_by_budget() {
        let mut t = CpuStateTable::new(4);
        t.set_idle(0, Nanos::from_us(100)); // the requester
        t.set_idle(1, Nanos::from_us(300));
        t.set_active(2, Nanos::from_us(500));
        t.set_idle(3, Nanos::from_us(900));
        let now = Nanos::ZERO;
        let idle = t.idle_cores(now, 0);
        assert_eq!(
            idle,
            vec![(3, Nanos::from_us(900)), (1, Nanos::from_us(300))]
        );
    }

    #[test]
    fn expired_idle_windows_are_filtered() {
        let mut t = CpuStateTable::new(2);
        t.set_idle(0, Nanos::from_us(100));
        t.set_idle(1, Nanos::from_us(100));
        assert!(t.idle_cores(Nanos::from_us(100), 5).is_empty());
    }

    #[test]
    fn ties_break_by_core_id() {
        let mut t = CpuStateTable::new(3);
        t.set_idle(0, Nanos::from_us(100));
        t.set_idle(1, Nanos::from_us(100));
        t.set_idle(2, Nanos::from_us(100));
        let idle = t.idle_cores(Nanos::ZERO, 99);
        assert_eq!(
            idle.iter().map(|&(c, _)| c).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
