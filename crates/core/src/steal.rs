//! Lock-free work-stealing primitives for subtask migration.
//!
//! Algorithm 1 migrates parallelizable subtasks to idle cores. The
//! original runtime implemented the handoff with a `Mutex<VecDeque>` +
//! `Condvar` mailbox per core — correct, but every migrated subtask paid a
//! lock acquisition, a heap-boxed closure, and a futex wake, and the owner
//! had to *predict* which cores would still be idle by the time the work
//! arrived. This module replaces that with a bounded **Chase–Lev deque**:
//!
//! * the **owner** pushes subtask *tickets* onto the bottom of its own
//!   deque and pops them back LIFO as it works through the stage;
//! * **idle cores steal** tickets from the top, FIFO, using a single CAS —
//!   no locks, no allocation, no syscalls;
//! * RT-OPEX's δ admission check moves to **steal time** (see
//!   [`DeltaGuard`]): a thief only takes work whose migrated execution
//!   `tp + δ` fits both its own idle window and the task's remaining
//!   deadline slack. The owner no longer guesses remote capacity — if no
//!   core has real spare cycles, nothing is stolen and the owner simply
//!   pops its own tickets, degrading gracefully to serial execution.
//!
//! A ticket is a bare `u64` (see [`encode_ticket`]) indexing a
//! preallocated slot arena owned by the publishing core, so the steady
//! state performs no heap allocation anywhere on the migration path.
//!
//! The deque is *bounded* (capacity fixed at construction, rounded up to a
//! power of two) and stores plain `u64`s in `AtomicU64` slots, which makes
//! the classic algorithm expressible in entirely safe Rust: a slot can
//! only be overwritten by a push that wrapped the ring, which the capacity
//! check forbids while any stealer still holds an un-CASed claim on it
//! (`bottom − top` never exceeds the capacity, so an overwrite of slot
//! `t mod cap` implies `top > t`, which makes the stale stealer's CAS
//! fail).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::time::Nanos;
use std::sync::Arc;

/// Result of one steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// A ticket was taken.
    Taken(u64),
}

struct Inner {
    /// Next index to steal (monotonically increasing).
    top: AtomicU64,
    /// Next index to push (owner-written only).
    bottom: AtomicU64,
    /// Ring capacity minus one (capacity is a power of two).
    mask: u64,
    slots: Box<[AtomicU64]>,
}

impl Inner {
    fn slot(&self, index: u64) -> &AtomicU64 {
        &self.slots[(index & self.mask) as usize]
    }
}

/// Creates a bounded work-stealing deque pair with room for at least
/// `capacity` tickets (rounded up to a power of two, minimum 2).
pub fn steal_pair(capacity: usize) -> (Worker, Stealer) {
    let cap = capacity.max(2).next_power_of_two();
    let inner = Arc::new(Inner {
        top: AtomicU64::new(0),
        bottom: AtomicU64::new(0),
        mask: cap as u64 - 1,
        // analyze: allow(alloc): one-time ring construction at node setup
        slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

/// The owning side of a deque: exactly one thread may push and pop.
/// Deliberately neither `Clone` nor `Sync`; `push`/`pop` take `&mut self`
/// so the single-owner discipline is enforced by the borrow checker.
pub struct Worker {
    inner: Arc<Inner>,
}

impl Worker {
    /// Pushes a ticket onto the bottom. Fails (returning the ticket) when
    /// the ring is full — the caller keeps the subtask local in that case.
    pub fn push(&mut self, ticket: u64) -> Result<(), u64> {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) > self.inner.mask {
            return Err(ticket);
        }
        self.inner.slot(b).store(ticket, Ordering::Relaxed);
        // Release publishes the slot write to stealers that acquire-load
        // `bottom`.
        self.inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops the most recently pushed ticket (LIFO), racing stealers for
    /// the last element with a CAS on `top`.
    pub fn pop(&mut self) -> Option<u64> {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        if t >= b {
            return None;
        }
        let nb = b - 1;
        // ORDERING: SeqCst store + SeqCst load form the StoreLoad barrier
        // the algorithm needs: the reservation of `bottom` must be globally
        // visible before we trust our `top` read, or a concurrent steal and
        // this pop could both take the last ticket (the model checker's
        // `deque_last_element_race` test fails with anything weaker here).
        self.inner.bottom.store(nb, Ordering::SeqCst);
        // ORDERING: SeqCst — the load half of the StoreLoad pair above; it
        // must be ordered after the `bottom` reservation in the single
        // total order that concurrent stealers' SeqCst loads observe.
        let t = self.inner.top.load(Ordering::SeqCst);
        if t < nb {
            // More than one element remained: slot `nb` is exclusively
            // ours (stealers stop at `bottom`).
            return Some(self.inner.slot(nb).load(Ordering::Relaxed));
        }
        if t == nb {
            // Exactly one element: race any stealer for it.
            // ORDERING: SeqCst success keeps the decisive CAS in the same
            // total order as the stealers' SeqCst top/bottom loads, so
            // exactly one contender wins the last ticket. Failure is
            // Relaxed (Lê et al., CPP'13): a losing owner only restores
            // `bottom` and returns None, using nothing it read.
            let won = self
                .inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // Either way the deque is now empty; restore canonical form.
            // Relaxed suffices: the store only un-reserves the ticket we
            // no longer hold, and the next publication that makes slot
            // contents reachable again is push's Release `bottom` store
            // (verified by the model's deque suites; Lê et al. use a
            // relaxed store here too).
            self.inner.bottom.store(t + 1, Ordering::Relaxed);
            return won.then(|| self.inner.slot(nb).load(Ordering::Relaxed));
        }
        // t > nb: stealers emptied it under us; undo the reservation.
        // Relaxed for the same reason as the empty-case restore above.
        self.inner.bottom.store(t, Ordering::Relaxed);
        None
    }

    /// True when the deque currently holds no tickets.
    pub fn is_empty(&self) -> bool {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        t >= b
    }

    /// Another handle for thieves.
    pub fn stealer(&self) -> Stealer {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The stealing side: any number of threads may hold clones and steal
/// concurrently.
#[derive(Clone)]
pub struct Stealer {
    inner: Arc<Inner>,
}

impl Stealer {
    /// Attempts to steal the oldest ticket (FIFO end).
    pub fn steal(&self) -> Steal {
        // ORDERING: SeqCst — paired with pop's SeqCst bottom-store /
        // top-load barrier: if this load is ordered before an owner's
        // reservation in the SC total order, the owner's subsequent `top`
        // read sees our claim (or our CAS fails); Acquire alone would let
        // both sides read stale values and hand out the last ticket twice.
        let t = self.inner.top.load(Ordering::SeqCst);
        // ORDERING: SeqCst — the second half of the emptiness check must
        // not be reordered before the `top` load, and must observe any
        // owner reservation SC-ordered earlier. (Also Acquire: pairs with
        // push's Release `bottom` store so the slot write below is
        // visible.)
        let b = self.inner.bottom.load(Ordering::SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        let v = self.inner.slot(t).load(Ordering::Relaxed);
        // The CAS decides ownership; on failure the value may have been
        // taken by the owner's pop or another thief.
        // ORDERING: SeqCst success joins the claim into the same total
        // order as pop's barrier (see above); Relaxed failure is fine —
        // a losing thief discards `v` and reports Retry.
        match self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        {
            Ok(_) => Steal::Taken(v),
            Err(_) => Steal::Retry,
        }
    }

    /// Approximate number of stealable tickets (racy, advisory only).
    pub fn len_hint(&self) -> usize {
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        b.saturating_sub(t) as usize
    }
}

/// Maximum subtask index representable in a ticket (exclusive).
pub const MAX_TICKET_INDEX: usize = 256;

/// Packs a stage epoch and a subtask index into one ticket.
///
/// The low 8 bits carry the subtask index (an LTE stage has at most 13
/// code blocks or 8 antenna batches); the remaining 56 bits carry the
/// publishing core's stage epoch, which thieves validate against the
/// owner's arena before executing — a ticket from a completed (recovered)
/// stage is dropped harmlessly.
///
/// # Panics
/// Debug-panics if `idx` does not fit in 8 bits.
pub fn encode_ticket(epoch: u64, idx: usize) -> u64 {
    debug_assert!(idx < MAX_TICKET_INDEX, "subtask index {idx} exceeds u8");
    (epoch << 8) | idx as u64
}

/// Unpacks a ticket into `(epoch, subtask index)`.
pub fn decode_ticket(ticket: u64) -> (u64, usize) {
    (ticket >> 8, (ticket & 0xFF) as usize)
}

/// Steal-time admission: may this thief take one subtask of execution
/// time `tp`, given the task's remaining deadline `slack` and the thief's
/// own `idle_window` (time until its next own release)?
pub trait AdmissionPolicy {
    /// Returns true when the migrated execution is admissible.
    fn admit(&self, tp: Nanos, slack: Nanos, idle_window: Nanos) -> bool;
}

/// RT-OPEX's guard, moved from plan time (Algorithm 1's `fck ≥ tp + δ`)
/// to steal time: the migrated cost `tp + δ` must fit both the thief's
/// idle window (R1 — don't make the thief late for its own subframe) and
/// the owner's remaining slack (migrating must still be able to help).
#[derive(Clone, Copy, Debug)]
pub struct DeltaGuard {
    /// Per-subtask migration cost δ (the paper measures ≈ 20 µs).
    pub delta: Nanos,
}

impl AdmissionPolicy for DeltaGuard {
    fn admit(&self, tp: Nanos, slack: Nanos, idle_window: Nanos) -> bool {
        let cost = Nanos(tp.0.saturating_add(self.delta.0));
        cost <= slack && cost <= idle_window
    }
}

/// Unconditional admission — the "global queue" style baseline that
/// ignores δ and deadlines; used for ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(&self, _tp: Nanos, _slack: Nanos, _idle_window: Nanos) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let (mut w, _s) = steal_pair(8);
        for v in 0..5u64 {
            w.push(v).unwrap();
        }
        for v in (0..5u64).rev() {
            assert_eq!(w.pop(), Some(v));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_is_fifo() {
        let (mut w, s) = steal_pair(8);
        for v in 10..14u64 {
            w.push(v).unwrap();
        }
        assert_eq!(s.steal(), Steal::Taken(10));
        assert_eq!(s.steal(), Steal::Taken(11));
        // Owner pops from the opposite end.
        assert_eq!(w.pop(), Some(13));
        assert_eq!(s.steal(), Steal::Taken(12));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn bounded_push_rejects_when_full() {
        let (mut w, s) = steal_pair(2);
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(w.push(3), Err(3));
        // Draining one slot frees capacity again.
        assert_eq!(s.steal(), Steal::Taken(1));
        w.push(3).unwrap();
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (mut w, _s) = steal_pair(3);
        for v in 0..4u64 {
            w.push(v).unwrap();
        }
        assert_eq!(w.push(4), Err(4));
    }

    #[test]
    fn interleaved_wraparound_stays_consistent() {
        let (mut w, s) = steal_pair(4);
        let mut taken = Vec::new();
        let mut next = 0u64;
        for round in 0..64 {
            while w.push(next).is_ok() {
                next += 1;
            }
            if round % 2 == 0 {
                if let Steal::Taken(v) = s.steal() {
                    taken.push(v);
                }
            } else if let Some(v) = w.pop() {
                taken.push(v);
            }
        }
        while let Some(v) = w.pop() {
            taken.push(v);
        }
        taken.sort_unstable();
        let expect: Vec<u64> = (0..next).collect();
        assert_eq!(taken, expect, "every pushed ticket exactly once");
    }

    #[test]
    fn ticket_roundtrip() {
        let t = encode_ticket(0xAB_CDEF, 17);
        assert_eq!(decode_ticket(t), (0xAB_CDEF, 17));
        assert_eq!(decode_ticket(encode_ticket(0, 0)), (0, 0));
    }

    #[test]
    fn delta_guard_checks_both_windows() {
        let g = DeltaGuard {
            delta: Nanos::from_us(20),
        };
        let tp = Nanos::from_us(100);
        // Fits both.
        assert!(g.admit(tp, Nanos::from_us(500), Nanos::from_us(500)));
        // Idle window too small (R1).
        assert!(!g.admit(tp, Nanos::from_us(500), Nanos::from_us(119)));
        // Deadline slack too small.
        assert!(!g.admit(tp, Nanos::from_us(119), Nanos::from_us(500)));
        // Exactly fitting is admissible.
        assert!(g.admit(tp, Nanos::from_us(120), Nanos::from_us(120)));
        // AdmitAll ignores everything.
        assert!(AdmitAll.admit(tp, Nanos::ZERO, Nanos::ZERO));
    }

    #[test]
    fn two_thieves_share_one_owner() {
        // Minimal in-module concurrency check; the heavy stress test
        // lives in `tests/steal_stress.rs`.
        let (mut w, s) = steal_pair(1024);
        let total = 10_000u64;
        let stolen = std::sync::atomic::AtomicU64::new(0);
        let popped = std::sync::atomic::AtomicU64::new(0);
        let done = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let s = s.clone();
                let stolen = &stolen;
                let done = &done;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Taken(v) => {
                            stolen.fetch_add(v + 1, Ordering::Relaxed);
                        }
                        _ if done.load(Ordering::Acquire) == 1 => break,
                        _ => std::hint::spin_loop(),
                    }
                });
            }
            for v in 0..total {
                while w.push(v).is_err() {
                    if let Some(x) = w.pop() {
                        popped.fetch_add(x + 1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(x) = w.pop() {
                popped.fetch_add(x + 1, Ordering::Relaxed);
            }
            // Drain stragglers the thieves may still claim, then stop them.
            while !w.is_empty() {
                std::hint::spin_loop();
            }
            done.store(1, Ordering::Release);
        });
        // Σ(v+1) over 0..total, counted exactly once each.
        let want = total * (total + 1) / 2;
        assert_eq!(
            stolen.load(Ordering::Relaxed) + popped.load(Ordering::Relaxed),
            want
        );
    }
}
