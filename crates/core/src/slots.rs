//! Epoch-validated slot-arena publication — the coordination half of the
//! runtime's migration arena, extracted so the model checker can compile
//! it against shim primitives and the runtime can reuse it verbatim.
//!
//! The protocol (one board per core):
//!
//! * the **owner** [`publish`](SlotBoard::publish)es a stage: bumps the
//!   epoch under the stage lock's *write* guard (which blocks until every
//!   straggling helper of the previous stage has left), updates the stage
//!   descriptor, and resets the first `count` ready flags to
//!   [`SlotState::Pending`];
//! * a **helper** that stole a ticket `(epoch, idx)` calls
//!   [`enter`](SlotBoard::enter): it takes the *read* guard and
//!   re-validates the epoch — a stale ticket from a recovered stage is
//!   refused before it can touch anything. While the returned
//!   [`StageGuard`] lives, the owner cannot republish, so a validated
//!   helper can never write into a *newer* stage's slots;
//! * the helper finishes its slot with [`StageGuard::complete`] (payload
//!   written) or [`StageGuard::decline`] (δ admission failed), both
//!   `Release` stores the owner's `Acquire` [`poll`](SlotBoard::poll) /
//!   [`wait`](SlotBoard::wait) pairs with — seeing `Done` therefore
//!   proves the payload writes are visible.
//!
//! Slot *payloads* stay with the embedding code (the runtime keeps them
//! in per-slot mutexes next to the board); the board only carries the
//! descriptor, the epoch, and the ready flags, which is exactly the part
//! whose interleavings are hard to reason about and worth model-checking
//! (`rtopex-check` includes this file and drives it from its arena test
//! suite).

use crate::sync::atomic::{AtomicU8, Ordering};
use crate::sync::{spin_loop, yield_now, RwLock, RwLockReadGuard};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// State of one result slot in the active stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// Published, not yet taken to completion by anyone.
    Pending,
    /// A helper (or the owner) wrote the payload; safe to absorb.
    Done,
    /// A helper took the ticket but the δ guard refused it; the owner
    /// must recover the subtask locally.
    Declined,
}

const SLOT_PENDING: u8 = 0;
const SLOT_DONE: u8 = 1;
const SLOT_DECLINED: u8 = 2;

impl SlotState {
    fn from_u8(v: u8) -> SlotState {
        match v {
            SLOT_PENDING => SlotState::Pending,
            SLOT_DONE => SlotState::Done,
            _ => SlotState::Declined,
        }
    }
}

/// The published stage: a monotonic epoch plus the embedding code's
/// descriptor (task kind, deadline, input snapshot, …).
struct Stage<D> {
    epoch: u64,
    desc: D,
}

/// One core's publication board: stage descriptor + epoch under a
/// read/write lock, and per-slot ready flags.
pub struct SlotBoard<D> {
    stage: RwLock<Stage<D>>,
    ready: Vec<AtomicU8>,
}

impl<D> SlotBoard<D> {
    /// A board with `slots` result slots (all initially `Done`, i.e. no
    /// stage outstanding) and the initial descriptor value.
    pub fn new(slots: usize, desc: D) -> Self {
        SlotBoard {
            stage: RwLock::new(Stage { epoch: 0, desc }),
            ready: (0..slots).map(|_| AtomicU8::new(SLOT_DONE)).collect(),
        }
    }

    /// Number of result slots.
    pub fn slot_count(&self) -> usize {
        self.ready.len()
    }

    /// Publishes a new stage: bumps the epoch (blocking out stragglers of
    /// the previous stage via the write guard), lets `update` rewrite the
    /// descriptor, and resets the first `count` ready flags. Returns the
    /// new epoch for ticket encoding.
    ///
    /// Must be called by the owning core only, and only after the
    /// previous stage is fully absorbed/recovered.
    pub fn publish(&self, count: usize, update: impl FnOnce(&mut D)) -> u64 {
        debug_assert!(count <= self.ready.len(), "stage larger than the arena");
        let mut st = self.stage.write().unwrap_or_else(PoisonError::into_inner);
        st.epoch += 1;
        update(&mut st.desc);
        let epoch = st.epoch;
        drop(st);
        // Flags reset after the bump but before the owner hands out any
        // ticket, so a helper admitted into this epoch can only find
        // Pending here.
        for r in self.ready.iter().take(count) {
            // ORDERING: Release — a helper that validated the epoch reads
            // these flags with Acquire before writing its slot payload;
            // the edge guarantees it sees this stage's reset, not the
            // previous stage's terminal states.
            r.store(SLOT_PENDING, Ordering::Release);
        }
        epoch
    }

    /// Validates a stolen ticket's epoch and pins the stage against
    /// republication. Returns `None` for a stale ticket (the helper must
    /// drop it without touching any slot).
    pub fn enter(&self, epoch: u64) -> Option<StageGuard<'_, D>> {
        let guard = self.stage.read().unwrap_or_else(PoisonError::into_inner);
        if guard.epoch != epoch {
            return None;
        }
        Some(StageGuard { board: self, guard })
    }

    /// Owner-side non-blocking slot check (`Acquire`; pairs with
    /// [`StageGuard::complete`] / [`StageGuard::decline`]).
    pub fn poll(&self, idx: usize) -> SlotState {
        SlotState::from_u8(self.ready[idx].load(Ordering::Acquire))
    }

    /// Owner-side spin-then-yield wait for a slot to leave `Pending`,
    /// bounded by the remaining deadline budget (capped at 50 ms).
    /// Returns `Pending` on timeout — the straggler-recovery path.
    pub fn wait(&self, idx: usize, deadline: Instant) -> SlotState {
        let start = Instant::now();
        let limit = deadline
            .saturating_duration_since(start)
            .min(Duration::from_millis(50));
        let mut spins = 0u32;
        loop {
            let v = self.poll(idx);
            if v != SlotState::Pending {
                return v;
            }
            if start.elapsed() >= limit {
                return SlotState::Pending;
            }
            if spins < 128 {
                spins += 1;
                spin_loop();
            } else {
                yield_now();
            }
        }
    }
}

/// Proof that a helper validated its ticket against the live epoch; while
/// it exists the owner's next [`SlotBoard::publish`] blocks. Grants read
/// access to the stage descriptor and the right to finish slots.
pub struct StageGuard<'a, D> {
    board: &'a SlotBoard<D>,
    guard: RwLockReadGuard<'a, Stage<D>>,
}

impl<D> StageGuard<'_, D> {
    /// The validated epoch.
    pub fn epoch(&self) -> u64 {
        self.guard.epoch
    }

    /// The published stage descriptor.
    pub fn desc(&self) -> &D {
        &self.guard.desc
    }

    /// Marks `idx` done — call only after the slot payload is fully
    /// written.
    pub fn complete(&self, idx: usize) {
        // ORDERING: Release publishes the helper's payload writes; the
        // owner's Acquire poll/wait observing `Done` therefore proves the
        // payload is safe to absorb (the model's ready-flag publication
        // test fails with Relaxed here).
        self.board.ready[idx].store(SLOT_DONE, Ordering::Release);
    }

    /// Marks `idx` declined by the admission guard; the owner recovers
    /// the subtask locally.
    pub fn decline(&self, idx: usize) {
        // ORDERING: Release for symmetry with `complete`: the owner's
        // Acquire load of `Declined` must also be ordered after the
        // helper's (absence of) payload writes.
        self.board.ready[idx].store(SLOT_DECLINED, Ordering::Release);
    }
}

impl<D> std::ops::Deref for StageGuard<'_, D> {
    type Target = D;
    fn deref(&self) -> &D {
        self.desc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_resets_flags() {
        let board = SlotBoard::new(4, 0u32);
        assert_eq!(board.slot_count(), 4);
        let e1 = board.publish(2, |d| *d = 7);
        assert_eq!(e1, 1);
        assert_eq!(board.poll(0), SlotState::Pending);
        assert_eq!(board.poll(1), SlotState::Pending);
        // Slots beyond `count` keep their terminal state.
        assert_eq!(board.poll(2), SlotState::Done);
        let e2 = board.publish(1, |d| *d = 8);
        assert_eq!(e2, 2);
    }

    #[test]
    fn enter_refuses_stale_epoch() {
        let board = SlotBoard::new(2, ());
        let e1 = board.publish(1, |_| {});
        {
            let g = board.enter(e1).expect("live epoch must validate");
            assert_eq!(g.epoch(), e1);
            g.complete(0);
        }
        let e2 = board.publish(1, |_| {});
        assert!(board.enter(e1).is_none(), "stale ticket must be refused");
        assert!(board.enter(e2).is_some());
    }

    #[test]
    fn decline_and_complete_reach_the_owner() {
        let board = SlotBoard::new(2, ());
        let e = board.publish(2, |_| {});
        {
            let g = board.enter(e).unwrap();
            g.decline(0);
            g.complete(1);
        }
        assert_eq!(board.poll(0), SlotState::Declined);
        assert_eq!(board.poll(1), SlotState::Done);
    }

    #[test]
    fn wait_times_out_to_pending() {
        let board = SlotBoard::new(1, ());
        let _e = board.publish(1, |_| {});
        let r = board.wait(0, Instant::now() + Duration::from_millis(1));
        assert_eq!(r, SlotState::Pending);
    }

    #[test]
    fn descriptor_is_readable_through_the_guard() {
        let board = SlotBoard::new(1, String::new());
        let e = board.publish(1, |d| {
            d.clear();
            d.push_str("decode");
        });
        let g = board.enter(e).unwrap();
        assert_eq!(&*g, "decode");
    }
}
