//! The execution profile of one subframe-processing task.
//!
//! A task (= decode one basestation's subframe, §2.2/Fig. 5) runs three
//! sequential stages. The FFT and decode stages consist of independent
//! subtasks with deterministic per-subtask times — the granularity
//! RT-OPEX migrates; the demod stage is modeled as serial (the paper
//! migrates FFT and decode subtasks, Figs. 16/18).

use crate::time::Nanos;
use rtopex_model::tasks::TaskTimeModel;
use rtopex_phy::tasks::TaskKind;
use serde::{Deserialize, Serialize};

/// A parallelizable stage: `subtasks` units of `subtask` time each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Number of independent subtasks `P`.
    pub subtasks: usize,
    /// Deterministic per-subtask execution time `tp`.
    pub subtask: Nanos,
}

impl StageProfile {
    /// Serial execution time of the whole stage.
    pub fn total(&self) -> Nanos {
        Nanos(self.subtask.0 * self.subtasks as u64)
    }
}

/// Complete execution profile of one subframe task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// FFT stage (one subtask per antenna batch).
    pub fft: StageProfile,
    /// Demod stage, executed serially by the owning thread.
    pub demod: Nanos,
    /// Decode stage (one subtask per code block).
    pub decode: StageProfile,
    /// Platform error term `E` — extra serial time from kernel noise.
    pub platform_extra: Nanos,
}

impl TaskProfile {
    /// Builds a profile from the analytical model.
    ///
    /// * `n_antennas`, `qm`, `d_load`, `iters` — the Eq. (1) inputs;
    /// * `code_blocks` — decode subtask count `C`;
    /// * `extra_us` — sampled platform error `E` (clamped at 0 from below:
    ///   negative model error is absorbed rather than crediting time).
    pub fn from_model(
        model: &TaskTimeModel,
        n_antennas: usize,
        qm: usize,
        d_load: f64,
        iters: f64,
        code_blocks: usize,
        extra_us: f64,
    ) -> Self {
        let (fft_n, fft_tp) = model.fft_subtasks(n_antennas);
        let (dec_n, dec_tp) = model.decode_subtasks(d_load, iters, code_blocks);
        TaskProfile {
            fft: StageProfile {
                subtasks: fft_n,
                subtask: Nanos::from_us_f64(fft_tp),
            },
            demod: Nanos::from_us_f64(model.demod_total(n_antennas, qm)),
            decode: StageProfile {
                subtasks: dec_n,
                subtask: Nanos::from_us_f64(dec_tp),
            },
            platform_extra: Nanos::from_us_f64(extra_us),
        }
    }

    /// Serial (single-core, no-migration) execution time of the task —
    /// the baseline `T_rxproc` of Eq. (1).
    pub fn total(&self) -> Nanos {
        self.fft.total() + self.demod + self.decode.total() + self.platform_extra
    }

    /// The stage profile for a parallelizable task kind.
    ///
    /// Returns `None` for [`TaskKind::Demod`], which this profile treats
    /// as serial.
    pub fn stage(&self, kind: TaskKind) -> Option<StageProfile> {
        match kind {
            TaskKind::Fft => Some(self.fft),
            TaskKind::Demod => None,
            TaskKind::Decode => Some(self.decode),
        }
    }
}

/// One subframe-processing task instance, as the schedulers see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubframeTask {
    /// Which basestation the subframe belongs to.
    pub bs_id: usize,
    /// Subframe counter within the basestation's stream.
    pub subframe_index: u64,
    /// When the transport made the subframe available to processing.
    pub release: Nanos,
    /// Absolute processing deadline (release + `T_max`).
    pub deadline: Nanos,
    /// The subframe's MCS index (drives cache/profile bookkeeping).
    pub mcs: u8,
    /// Whether the (modeled) decode ends in CRC success.
    pub crc_ok: bool,
    /// Execution profile.
    pub profile: TaskProfile,
}

impl SubframeTask {
    /// Laxity at time `now`: deadline minus now minus remaining serial
    /// work; negative laxity (returned as `None`) means the task cannot
    /// finish in time even undisturbed.
    pub fn laxity(&self, now: Nanos) -> Option<Nanos> {
        let finish = now + self.profile.total();
        self.deadline.checked_sub(finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> TaskProfile {
        TaskProfile::from_model(&TaskTimeModel::paper_gpp(), 2, 6, 3.774, 2.0, 6, 50.0)
    }

    #[test]
    fn totals_match_model() {
        let p = profile();
        let m = TaskTimeModel::paper_gpp();
        let want = m.subframe_total(2, 6, 3.774, 2.0) + 50.0;
        let got = p.total().as_us_f64();
        assert!((got - want).abs() < 0.01, "{got} vs {want}");
    }

    #[test]
    fn paper_fig5_shape() {
        let p = profile();
        assert_eq!(p.fft.subtasks, 2); // one per antenna
        assert_eq!(p.decode.subtasks, 6); // MCS 27 → 6 code blocks
        assert!(p.fft.subtask.as_us_f64() > 100.0); // ≈ 108 µs
        assert!(p.decode.subtask.as_us_f64() > 100.0); // ≈ 117 µs at L=2
    }

    #[test]
    fn negative_error_clamped() {
        let p = TaskProfile::from_model(&TaskTimeModel::paper_gpp(), 1, 2, 0.2, 1.0, 1, -40.0);
        assert_eq!(p.platform_extra, Nanos::ZERO);
    }

    #[test]
    fn stage_lookup() {
        let p = profile();
        assert_eq!(p.stage(TaskKind::Fft), Some(p.fft));
        assert_eq!(p.stage(TaskKind::Decode), Some(p.decode));
        assert!(p.stage(TaskKind::Demod).is_none());
    }

    #[test]
    fn laxity_math() {
        let p = profile();
        let t = SubframeTask {
            bs_id: 0,
            subframe_index: 0,
            release: Nanos::ZERO,
            deadline: Nanos::from_us(1500),
            mcs: 27,
            crc_ok: true,
            profile: p,
        };
        // MCS 27 at L=2 is ≈ 1.37 ms + 50 µs: barely fits in 1.5 ms.
        let lax = t.laxity(Nanos::ZERO);
        assert!(lax.is_some());
        assert!(lax.unwrap() < Nanos::from_us(120));
        // Starting 200 µs late, it cannot make it.
        assert!(t.laxity(Nanos::from_us(200)).is_none());
    }

    #[test]
    fn stage_total_is_product() {
        let s = StageProfile {
            subtasks: 6,
            subtask: Nanos::from_us(117),
        };
        assert_eq!(s.total(), Nanos::from_us(702));
    }
}
