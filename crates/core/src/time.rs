//! Integer-nanosecond time base.
//!
//! The simulator and runtime account time in whole nanoseconds (`u64`),
//! which is exact, totally ordered, and free of float-comparison hazards
//! in the event queue; the analytical models speak microseconds (`f64`).
//! [`Nanos`] is the bridge.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in time or a duration, in nanoseconds since experiment start.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero.
    pub const ZERO: Nanos = Nanos(0);
    /// One microsecond.
    pub const US: Nanos = Nanos(1_000);
    /// One millisecond — an LTE subframe period.
    pub const MS: Nanos = Nanos(1_000_000);

    /// From whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// From fractional microseconds (clamped below at zero, rounded).
    pub fn from_us_f64(us: f64) -> Self {
        Nanos((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// As fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction (durations never go negative).
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// # Panics
    /// Panics on underflow in debug builds (wraps in release like `u64`).
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}µs", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_us(1500), Nanos(1_500_000));
        assert_eq!(Nanos::from_ms(2), Nanos(2_000_000));
        assert_eq!(Nanos::from_us_f64(0.5), Nanos(500));
        assert!((Nanos(2_500_000).as_ms_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn negative_us_clamps_to_zero() {
        assert_eq!(Nanos::from_us_f64(-5.0), Nanos::ZERO);
    }

    #[test]
    fn saturating_and_checked_sub() {
        assert_eq!(Nanos(5).saturating_sub(Nanos(10)), Nanos::ZERO);
        assert_eq!(Nanos(10).checked_sub(Nanos(5)), Some(Nanos(5)));
        assert_eq!(Nanos(5).checked_sub(Nanos(10)), None);
    }

    #[test]
    fn ordering_and_arith() {
        let a = Nanos::from_us(100);
        let b = Nanos::from_us(200);
        assert!(a < b);
        assert_eq!(a + a, b);
        assert_eq!(b - a, a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_us(42)), "42.0µs");
        assert_eq!(format!("{}", Nanos::from_ms(3)), "3.000ms");
    }
}
