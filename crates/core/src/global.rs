//! The global scheduler's shared queue (§3.1.2).
//!
//! "We utilize a single queue shared across basestations … realized with a
//! fixed-size ring-buffer that holds the incoming subframes. A scheduling
//! thread … dispatches subframes from the queue to the available cores
//! according to EDF schedule. Note that EDF is equivalent to FIFO when all
//! basestations have the same transport delay."

use crate::task::SubframeTask;
use crate::time::Nanos;
use std::collections::VecDeque;

/// Dispatch priority of the global scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueuePolicy {
    /// First-in-first-out (arrival order).
    Fifo,
    /// Earliest-deadline-first.
    Edf,
}

/// The fixed-capacity shared subframe queue.
#[derive(Clone, Debug)]
pub struct GlobalQueue {
    policy: QueuePolicy,
    capacity: usize,
    items: VecDeque<SubframeTask>,
    /// Subframes evicted because the ring buffer was full.
    pub overflowed: u64,
}

impl GlobalQueue {
    /// Creates a queue with the given policy and ring-buffer capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(policy: QueuePolicy, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        GlobalQueue {
            policy,
            capacity,
            items: VecDeque::with_capacity(capacity),
            overflowed: 0,
        }
    }

    /// The dispatch policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Tasks currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues an arriving subframe. When the ring buffer is full the
    /// *oldest* entry is overwritten (returned for accounting), matching
    /// ring-buffer transport semantics.
    pub fn push(&mut self, task: SubframeTask) -> Option<SubframeTask> {
        let evicted = if self.items.len() == self.capacity {
            self.overflowed += 1;
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(task);
        evicted
    }

    /// Dispatches the next subframe per the policy, or `None` when empty.
    pub fn pop(&mut self) -> Option<SubframeTask> {
        match self.policy {
            QueuePolicy::Fifo => self.items.pop_front(),
            QueuePolicy::Edf => {
                let idx = self
                    .items
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, t)| (t.deadline, *i))?
                    .0;
                self.items.remove(idx)
            }
        }
    }

    /// Removes and returns every queued task whose deadline can no longer
    /// be met even if dispatched at `now` (the §3.1.2 drop: a late task is
    /// terminated so the core can serve feasible work).
    pub fn drop_hopeless(&mut self, now: Nanos) -> Vec<SubframeTask> {
        let mut dropped = Vec::new();
        self.items.retain(|t| {
            if t.laxity(now).is_none() {
                dropped.push(*t);
                false
            } else {
                true
            }
        });
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{StageProfile, TaskProfile};

    fn task(bs: usize, idx: u64, release_us: u64, deadline_us: u64) -> SubframeTask {
        let stage = StageProfile {
            subtasks: 1,
            subtask: Nanos::from_us(100),
        };
        SubframeTask {
            bs_id: bs,
            subframe_index: idx,
            release: Nanos::from_us(release_us),
            deadline: Nanos::from_us(deadline_us),
            mcs: 10,
            crc_ok: true,
            profile: TaskProfile {
                fft: stage,
                demod: Nanos::from_us(100),
                decode: stage,
                platform_extra: Nanos::ZERO,
            },
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = GlobalQueue::new(QueuePolicy::Fifo, 8);
        q.push(task(0, 0, 0, 5000));
        q.push(task(1, 0, 1, 4000));
        q.push(task(0, 1, 2, 3000));
        assert_eq!(q.pop().unwrap().bs_id, 0);
        assert_eq!(q.pop().unwrap().bs_id, 1);
        assert_eq!(q.pop().unwrap().subframe_index, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn edf_picks_earliest_deadline() {
        let mut q = GlobalQueue::new(QueuePolicy::Edf, 8);
        q.push(task(0, 0, 0, 5000));
        q.push(task(1, 0, 1, 3000));
        q.push(task(2, 0, 2, 4000));
        assert_eq!(q.pop().unwrap().bs_id, 1);
        assert_eq!(q.pop().unwrap().bs_id, 2);
        assert_eq!(q.pop().unwrap().bs_id, 0);
    }

    #[test]
    fn edf_equals_fifo_at_equal_transport_delay() {
        // §3.1.2: same per-subframe budget ⇒ deadlines ordered by arrival.
        let mut fifo = GlobalQueue::new(QueuePolicy::Fifo, 8);
        let mut edf = GlobalQueue::new(QueuePolicy::Edf, 8);
        for i in 0..5u64 {
            let t = task((i % 2) as usize, i, i * 1000, i * 1000 + 1500);
            fifo.push(t);
            edf.push(t);
        }
        for _ in 0..5 {
            assert_eq!(
                fifo.pop().unwrap().subframe_index,
                edf.pop().unwrap().subframe_index
            );
        }
    }

    #[test]
    fn ring_buffer_overwrites_oldest() {
        let mut q = GlobalQueue::new(QueuePolicy::Fifo, 2);
        assert!(q.push(task(0, 0, 0, 100)).is_none());
        assert!(q.push(task(0, 1, 1, 101)).is_none());
        let evicted = q.push(task(0, 2, 2, 102)).unwrap();
        assert_eq!(evicted.subframe_index, 0);
        assert_eq!(q.overflowed, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drop_hopeless_removes_only_infeasible() {
        let mut q = GlobalQueue::new(QueuePolicy::Edf, 8);
        // Profile totals 300 µs; deadline 350 µs ⇒ feasible at now = 0,
        // hopeless at now = 100.
        q.push(task(0, 0, 0, 350));
        q.push(task(1, 0, 0, 10_000));
        let dropped = q.drop_hopeless(Nanos::from_us(100));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].bs_id, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        GlobalQueue::new(QueuePolicy::Fifo, 0);
    }
}
