//! Synchronization facade: `std::sync` in production, the model checker's
//! shims under `--cfg rtopex_model`.
//!
//! Every concurrency primitive the runtime's lock-free paths use is
//! imported through this module rather than from `std` directly, so the
//! *same source text* can be compiled against `rtopex-check`'s
//! instrumented atomics (whose every operation is a visible, explorable
//! event) simply by setting `RUSTFLAGS="--cfg rtopex_model"`. Normal
//! builds re-export the `std` types unchanged — the facade is a pure
//! renaming with zero runtime cost.
//!
//! Note the model checker does not normally rebuild this crate: it
//! compiles `steal.rs` / `slots.rs` directly into `rtopex-check` via
//! `#[path]` includes, where `crate::sync` resolves to the shim
//! natively. The `rtopex_model` cfg arm exists so the *whole* crate (and
//! its dependents) can also be compiled against the shims, e.g. to model
//! higher-level code that embeds these primitives.

#[cfg(not(rtopex_model))]
pub use std::hint::spin_loop;
#[cfg(not(rtopex_model))]
pub use std::sync::atomic;
#[cfg(not(rtopex_model))]
pub use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(rtopex_model))]
pub use std::thread::yield_now;

#[cfg(rtopex_model)]
pub use rtopex_check::sync::{
    atomic, spin_loop, yield_now, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
